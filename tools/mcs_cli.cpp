// mcs_cli -- the command-line face of the library.
//
//   mcs_cli generate --out campaign.mcs --slots 50 --lambda 6 ...
//   mcs_cli run      --file campaign.mcs --mechanism online [--reserve 40]
//   mcs_cli audit    --file campaign.mcs --mechanism second-price
//   mcs_cli figure   --id fig6 [--reps 50] [--csv fig6.csv]
//
// generate draws a Table-I-style round and saves it as a plain-text
// scenario file; run executes a mechanism on a scenario file and prints
// the outcome; audit runs the truthfulness/IR deviation grids; figure
// regenerates one of the paper's evaluation figures.
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include <fstream>

#include "analysis/metrics.hpp"
#include "analysis/report_json.hpp"
#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/batched_matching.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/scenario_io.hpp"
#include "model/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/experiments.hpp"
#include "sim/html_report.hpp"

namespace {

using namespace mcs;

/// Telemetry session for a subcommand: installs a registry + trace
/// collector for the calling thread when --metrics-out or --trace asked
/// for them (otherwise everything stays a no-op), and writes the report /
/// renders the trace in finish().
class CliTelemetry {
 public:
  CliTelemetry(std::string metrics_path, bool trace_to_stdout)
      : metrics_path_(std::move(metrics_path)),
        trace_to_stdout_(trace_to_stdout) {
    if (!enabled()) return;
    registry_guard_.emplace(&registry_);
    trace_guard_.emplace(&trace_);
    // Pre-register the headline counters so every report carries the same
    // schema keys regardless of which mechanism ran (zero means "this run
    // never exercised that path") -- the smoke test and downstream perf
    // tooling key on their presence.
    registry_.counter("matching.hungarian.iterations");
    registry_.counter("matching.hungarian.augmenting_paths");
    registry_.counter("matching.flow.augmenting_paths");
    registry_.counter("auction.critical_value.probes");
    registry_.counter("auction.greedy.allocation_runs");
  }

  [[nodiscard]] bool enabled() const {
    return !metrics_path_.empty() || trace_to_stdout_;
  }

  /// Writes the JSON report and/or prints the span tree. Must be called
  /// after every traced span has closed.
  void finish(const std::map<std::string, std::string>& meta) {
    if (!enabled()) return;
    trace_guard_.reset();
    registry_guard_.reset();
    if (trace_to_stdout_) {
      std::cout << "trace:\n";
      obs::render_trace_text(std::cout, trace_);
    }
    if (metrics_path_.empty()) return;
    std::ofstream out(metrics_path_);
    if (!out) throw IoError("cannot open metrics file: " + metrics_path_);
    obs::write_metrics_json(out, registry_, &trace_, meta);
    std::cout << "telemetry written to " << metrics_path_ << '\n';
  }

 private:
  std::string metrics_path_;
  bool trace_to_stdout_;
  obs::MetricsRegistry registry_;
  obs::TraceCollector trace_;
  std::optional<obs::ScopedRegistry> registry_guard_;
  std::optional<obs::ScopedTrace> trace_guard_;
};

void print_usage() {
  std::cout <<
      R"(mcs_cli -- truthful crowdsourcing auctions (ICDCS 2014 reproduction)

Subcommands:
  generate   draw a random round and save it as a scenario file
  run        run a mechanism on a scenario file
  audit      truthfulness + individual-rationality audit on a scenario file
  figure     regenerate one of the paper's evaluation figures
  report     all figures as one self-contained HTML file

Run 'mcs_cli <subcommand> --help' for the flags of each subcommand.
)";
}

std::unique_ptr<auction::Mechanism> make_mechanism(const std::string& name,
                                                   double reserve,
                                                   bool profitable_only,
                                                   std::int64_t batch) {
  auction::OnlineGreedyConfig online_config;
  online_config.allocate_only_profitable = profitable_only;
  if (reserve > 0.0) online_config.reserve_price = Money::from_double(reserve);

  if (name == "online") {
    return std::make_unique<auction::OnlineGreedyMechanism>(online_config);
  }
  if (name == "offline") {
    return std::make_unique<auction::OfflineVcgMechanism>();
  }
  if (name == "second-price") {
    auction::SecondPriceConfig config;
    config.allocation = online_config;
    return std::make_unique<auction::SecondPriceBaseline>(config);
  }
  if (name == "batched") {
    return std::make_unique<auction::BatchedMatchingMechanism>(
        auction::BatchedMatchingConfig{static_cast<Slot::rep_type>(batch)});
  }
  throw InvalidArgumentError(
      "unknown mechanism '" + name +
      "' (expected online, offline, second-price, or batched)");
}

int cmd_generate(int argc, const char* const* argv) {
  io::CliParser cli("Draws one auction round and saves it as a scenario file.");
  cli.add_string("out", "scenario.mcs", "output path");
  cli.add_int("slots", 50, "slots per round (m)");
  cli.add_double("lambda", 6.0, "smartphone arrival rate per slot");
  cli.add_double("lambda-t", 3.0, "task arrival rate per slot");
  cli.add_double("mean-cost", 25.0, "average real cost");
  cli.add_double("mean-active", 5.0, "average active-window length");
  cli.add_double("value", 50.0, "task value nu");
  cli.add_string("distribution", "uniform", "cost family: uniform|normal|exponential");
  cli.add_int("seed", 42, "RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  model::WorkloadConfig workload;
  workload.num_slots = static_cast<Slot::rep_type>(cli.get_int("slots"));
  workload.phone_arrival_rate = cli.get_double("lambda");
  workload.task_arrival_rate = cli.get_double("lambda-t");
  workload.mean_cost = cli.get_double("mean-cost");
  workload.mean_active_length = cli.get_double("mean-active");
  workload.task_value = Money::from_double(cli.get_double("value"));
  const std::string family = cli.get_string("distribution");
  if (family == "uniform") {
    workload.cost_distribution = model::CostDistribution::kUniform;
  } else if (family == "normal") {
    workload.cost_distribution = model::CostDistribution::kNormal;
  } else if (family == "exponential") {
    workload.cost_distribution = model::CostDistribution::kExponential;
  } else {
    throw InvalidArgumentError("unknown cost distribution: " + family);
  }

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const model::Scenario scenario = model::generate_scenario(workload, rng);
  model::save_scenario(cli.get_string("out"), scenario);
  std::cout << "wrote " << cli.get_string("out") << ": "
            << scenario.phone_count() << " phones, " << scenario.task_count()
            << " tasks over " << scenario.num_slots << " slots\n";
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  io::CliParser cli("Runs a mechanism on a scenario file (truthful bids).");
  cli.add_string("file", "scenario.mcs", "scenario file");
  cli.add_string("mechanism", "online",
                 "online | offline | second-price | batched");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_int("batch", 5, "batch size for --mechanism batched");
  cli.add_switch("allocation", "also print the per-task allocation");
  cli.add_string("json", "", "also write a machine-readable round report");
  cli.add_string("metrics-out", "",
                 "write a telemetry report (counters, histograms, trace) as JSON");
  cli.add_switch("trace", "print the nested phase-timing tree");
  if (!cli.parse(argc, argv)) return 0;

  CliTelemetry telemetry(cli.get_string("metrics-out"),
                         cli.get_switch("trace"));

  auction::Outcome outcome;
  analysis::RoundMetrics metrics;
  std::unique_ptr<auction::Mechanism> mechanism;
  model::Scenario scenario;
  model::BidProfile bids;
  {
    const obs::TraceSpan span("cli.run");
    {
      const obs::TraceSpan load_span("cli.load_scenario");
      scenario = model::load_scenario(cli.get_string("file"));
    }
    mechanism = make_mechanism(
        cli.get_string("mechanism"), cli.get_double("reserve"),
        cli.get_switch("profitable-only"), cli.get_int("batch"));
    {
      const obs::TraceSpan intake_span("cli.bid_intake");
      bids = scenario.truthful_bids();
    }
    outcome = mechanism->run(scenario, bids);
    {
      const obs::TraceSpan metrics_span("cli.compute_metrics");
      metrics = analysis::compute_metrics(scenario, bids, outcome);
    }
  }
  telemetry.finish({{"tool", "mcs_cli run"},
                    {"scenario", cli.get_string("file")},
                    {"mechanism", mechanism->name()}});

  std::cout << mechanism->name() << " on " << cli.get_string("file") << ":\n"
            << analysis::describe(metrics);
  if (const std::string json_path = cli.get_string("json");
      !json_path.empty()) {
    std::ofstream json_file(json_path);
    if (!json_file) throw IoError("cannot open JSON report file: " + json_path);
    analysis::write_round_report_json(json_file, scenario, bids, outcome,
                                      mechanism->name());
    std::cout << "JSON report written to " << json_path << '\n';
  }
  if (cli.get_switch("allocation")) {
    io::TextTable table({"task", "slot", "phone", "payment"});
    for (const model::Task& task : scenario.tasks) {
      const auto phone = outcome.allocation.phone_for(task.id);
      table.add_row(
          {std::to_string(task.id.value()), std::to_string(task.slot.value()),
           phone ? std::to_string(phone->value()) : "-",
           phone ? outcome.payments[static_cast<std::size_t>(phone->value())]
                       .to_string()
                 : "-"});
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_audit(int argc, const char* const* argv) {
  io::CliParser cli(
      "Runs the truthfulness and individual-rationality audits on a "
      "scenario file.");
  cli.add_string("file", "scenario.mcs", "scenario file");
  cli.add_string("mechanism", "online",
                 "online | offline | second-price | batched");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_int("batch", 5, "batch size for --mechanism batched");
  if (!cli.parse(argc, argv)) return 0;

  const model::Scenario scenario = model::load_scenario(cli.get_string("file"));
  const auto mechanism = make_mechanism(
      cli.get_string("mechanism"), cli.get_double("reserve"),
      cli.get_switch("profitable-only"), cli.get_int("batch"));

  const analysis::TruthfulnessReport truth =
      analysis::audit_truthfulness(*mechanism, scenario);
  const analysis::RationalityReport rationality =
      analysis::audit_individual_rationality(*mechanism, scenario);
  std::cout << mechanism->name() << " on " << cli.get_string("file") << ":\n"
            << "  truthfulness: " << truth.summary() << '\n'
            << "  rationality:  " << rationality.summary() << '\n';
  if (!truth.truthful()) {
    const analysis::DeviationViolation& worst =
        *std::max_element(truth.violations.begin(), truth.violations.end(),
                          [](const auto& a, const auto& b) {
                            return a.gain() < b.gain();
                          });
    std::cout << "  worst manipulation: phone " << worst.phone << " reports "
              << worst.deviant_bid << " and gains " << worst.gain() << '\n';
    return 1;
  }
  return 0;
}

int cmd_report(int argc, const char* const* argv) {
  io::CliParser cli(
      "Regenerates ALL evaluation figures and writes them as one "
      "self-contained HTML report (inline SVG charts + data tables).");
  cli.add_string("out", "report.html", "output HTML path");
  cli.add_int("reps", 50, "repetitions per sweep point");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimulationConfig base;
  base.repetitions = static_cast<int>(cli.get_int("reps"));
  base.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int figures = sim::write_html_report(cli.get_string("out"), base);
  std::cout << "wrote " << figures << " figures to " << cli.get_string("out")
            << '\n';
  return 0;
}

int cmd_figure(int argc, const char* const* argv) {
  io::CliParser cli("Regenerates one of the paper's evaluation figures.");
  cli.add_string("id", "fig6", "fig6 | fig7 | fig8 | fig9 | fig10 | fig11");
  cli.add_int("reps", 50, "repetitions per sweep point");
  cli.add_int("seed", 42, "base RNG seed");
  cli.add_string("csv", "", "also write the series as CSV");
  cli.add_string("metrics-out", "",
                 "write a telemetry report (counters, histograms, trace) as JSON");
  cli.add_switch("trace", "print the nested phase-timing tree");
  if (!cli.parse(argc, argv)) return 0;

  const sim::FigureSpec& spec = sim::figure(cli.get_string("id"));
  sim::SimulationConfig base;
  base.repetitions = static_cast<int>(cli.get_int("reps"));
  base.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  CliTelemetry telemetry(cli.get_string("metrics-out"),
                         cli.get_switch("trace"));
  std::cout << spec.id << ": " << spec.title << '\n';
  sim::FigureSeries series;
  {
    const obs::TraceSpan span("cli.figure");
    series = sim::run_figure(spec, base);
  }
  telemetry.finish({{"tool", "mcs_cli figure"}, {"figure", spec.id}});
  series.to_table().print(std::cout);
  std::cout << '\n' << series.to_chart();
  if (const std::string path = cli.get_string("csv"); !path.empty()) {
    io::write_csv_file(path, series.header, series.rows);
    std::cout << "series written to " << path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string subcommand = argv[1];
  try {
    if (subcommand == "generate") return cmd_generate(argc - 1, argv + 1);
    if (subcommand == "run") return cmd_run(argc - 1, argv + 1);
    if (subcommand == "audit") return cmd_audit(argc - 1, argv + 1);
    if (subcommand == "figure") return cmd_figure(argc - 1, argv + 1);
    if (subcommand == "report") return cmd_report(argc - 1, argv + 1);
    if (subcommand == "--help" || subcommand == "help") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown subcommand: " << subcommand << "\n\n";
    print_usage();
    return 2;
  } catch (const mcs::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
