// mcs_cli -- the command-line face of the library.
//
//   mcs_cli generate --out campaign.mcs --slots 50 --lambda 6 ...
//   mcs_cli run      --file campaign.mcs --mechanism online [--reserve 40]
//   mcs_cli audit    --file campaign.mcs --mechanism second-price
//   mcs_cli figure   --id fig6 [--reps 50] [--csv fig6.csv]
//   mcs_cli replay   events.jsonl
//   mcs_cli explain  events.jsonl --phone 3
//   mcs_cli serve    --loadgen --rounds 64 --shards 4 [--verify]
//   mcs_cli serve    --replay stream.jsonl --shards 4 [--batch 64]
//   mcs_cli serve    --listen 7777 --shards 8          (socket front-end)
//   mcs_cli serve    --connect 127.0.0.1:7777 --wire   (load client)
//   mcs_cli transcode --in stream.jsonl --out stream.bin
//
// generate draws a Table-I-style round and saves it as a plain-text
// scenario file; run executes a mechanism on a scenario file and prints
// the outcome (--events-out records the decision log); audit runs the
// truthfulness/IR deviation grids; figure regenerates one of the paper's
// evaluation figures; replay re-executes a recorded run and verifies the
// outcome byte-for-byte; explain narrates one phone's round from the log.
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <fstream>
#include <sstream>

#include "analysis/bench_diff.hpp"
#include "analysis/econ_report.hpp"
#include "arena/arena.hpp"
#include "arena/leaderboard.hpp"
#include "analysis/flight.hpp"
#include "analysis/metrics.hpp"
#include "analysis/report_json.hpp"
#include "analysis/rationality.hpp"
#include "analysis/trace_report.hpp"
#include "analysis/truthfulness.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/scenario_io.hpp"
#include "model/workload.hpp"
#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/econ_telemetry.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/replay.hpp"
#include "serve/socket.hpp"
#include "serve/telemetry.hpp"
#include "serve/trace_plane.hpp"
#include "serve/verify.hpp"
#include "serve/wire.hpp"
#include "sim/experiments.hpp"
#include "sim/html_report.hpp"

namespace {

using namespace mcs;

/// Telemetry session for a subcommand: installs a registry + trace
/// collector for the calling thread when --metrics-out, --trace, or
/// --trace-out asked for them (otherwise everything stays a no-op), and
/// writes the report(s) / renders the trace in finish().
class CliTelemetry {
 public:
  CliTelemetry(std::string metrics_path, bool trace_to_stdout,
               std::string trace_path = {})
      : metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)),
        trace_to_stdout_(trace_to_stdout) {
    if (!enabled()) return;
    registry_guard_.emplace(&registry_);
    trace_guard_.emplace(&trace_);
    // Pre-register the headline counters so every report carries the same
    // schema keys regardless of which mechanism ran (zero means "this run
    // never exercised that path") -- the smoke test and bench-diff key on
    // their presence.
    obs::preregister_headline_counters(registry_);
  }

  [[nodiscard]] bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() || trace_to_stdout_;
  }

  /// Writes the JSON report(s) and/or prints the span tree. Must be
  /// called after every traced span has closed.
  void finish(const std::map<std::string, std::string>& meta) {
    if (!enabled()) return;
    trace_guard_.reset();
    registry_guard_.reset();
    if (trace_to_stdout_) {
      std::cout << "trace:\n";
      obs::render_trace_text(std::cout, trace_);
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) throw IoError("cannot open trace file: " + trace_path_);
      obs::write_chrome_trace(out, trace_, meta);
      std::cout << "chrome trace written to " << trace_path_
                << " (load in Perfetto or chrome://tracing)\n";
    }
    if (metrics_path_.empty()) return;
    std::ofstream out(metrics_path_);
    if (!out) throw IoError("cannot open metrics file: " + metrics_path_);
    obs::write_metrics_json(out, registry_, &trace_, meta);
    std::cout << "telemetry written to " << metrics_path_ << '\n';
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  bool trace_to_stdout_;
  obs::MetricsRegistry registry_;
  obs::TraceCollector trace_;
  std::optional<obs::ScopedRegistry> registry_guard_;
  std::optional<obs::ScopedTrace> trace_guard_;
};

void print_usage(std::ostream& os) {
  os <<
      R"(mcs_cli -- truthful crowdsourcing auctions (ICDCS 2014 reproduction)

Subcommands:
  generate   draw a random round and save it as a scenario file
  run        run a mechanism on a scenario file (--events-out records the
             structured decision log for replay/explain)
  audit      truthfulness + individual-rationality audit on a scenario file
  figure     regenerate one of the paper's evaluation figures
  report     all figures as one self-contained HTML file
  replay     re-execute a recorded decision log and verify the outcome
  explain    narrate one phone's round from a recorded decision log
  serve      streaming auction engine: sharded event-driven rounds fed by
             the seeded load generator, a recorded stream (--replay,
             JSONL or binary, autodetected), or a TCP socket (--listen);
             --connect turns the CLI into a load client pushing the
             loadgen stream to a listening server
             (--econ-out turns on the live economic plane + sentinel)
  transcode  losslessly convert a recorded serve stream between
             mcs.serve.v1 JSONL and the mcs.serve.b1 binary wire format
  econ-report economic leaderboard: batch-simulate mechanisms into a
             markdown welfare/overpayment table, or summarize a live
             mcs.serve_econ.v1 snapshot stream (--from)
  trace-report digest an mcs.trace.v1 round-trace stream (serve
             --trace-jsonl) into per-phase p50/p99 and the slowest
             retained rounds as ASCII span waterfalls
  bench-diff compare two bench telemetry reports: exact on deterministic
             work counters, p50/p95/p99 ratios on duration histograms;
             exit 1 on regression
  arena      strategic-agent arena: populations of bidder policies
             (truthful, cost-shading, arrival-delaying, best-responding)
             attack each mechanism over seeded rounds; emits a
             deterministic mcs.arena.v1 leaderboard with per-policy
             incentive-to-deviate scores

Run 'mcs_cli <subcommand> --help' (or 'mcs_cli help <subcommand>') for the
flags of each subcommand.
)";
}

/// RunSpec from the common mechanism-selection flags (run and audit).
analysis::RunSpec spec_from_cli(const io::CliParser& cli) {
  analysis::RunSpec spec;
  spec.mechanism = cli.get_string("mechanism");
  spec.reserve = cli.get_double("reserve");
  spec.profitable_only = cli.get_switch("profitable-only");
  spec.batch = cli.get_int("batch");
  return spec;
}

/// Splits "subcommand FILE --flags..." argument lists: when the first
/// argument after the subcommand is not a flag it is taken as the file
/// path, and the strict flag parser sees the rest. Returns "" when the
/// file must come from --file instead.
std::string take_leading_positional(int& argc, const char* const*& argv,
                                    std::vector<const char*>& rest) {
  if (argc < 2 || argv[1][0] == '-') return "";
  const std::string positional = argv[1];
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  --argc;
  argv = rest.data();
  return positional;
}

int cmd_generate(int argc, const char* const* argv) {
  io::CliParser cli("Draws one auction round and saves it as a scenario file.");
  cli.add_string("out", "scenario.mcs", "output path");
  cli.add_int("slots", 50, "slots per round (m)");
  cli.add_double("lambda", 6.0, "smartphone arrival rate per slot");
  cli.add_double("lambda-t", 3.0, "task arrival rate per slot");
  cli.add_double("mean-cost", 25.0, "average real cost");
  cli.add_double("mean-active", 5.0, "average active-window length");
  cli.add_double("value", 50.0, "task value nu");
  cli.add_string("distribution", "uniform", "cost family: uniform|normal|exponential");
  cli.add_int("seed", 42, "RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  model::WorkloadConfig workload;
  workload.num_slots = static_cast<Slot::rep_type>(cli.get_int("slots"));
  workload.phone_arrival_rate = cli.get_double("lambda");
  workload.task_arrival_rate = cli.get_double("lambda-t");
  workload.mean_cost = cli.get_double("mean-cost");
  workload.mean_active_length = cli.get_double("mean-active");
  workload.task_value = Money::from_double(cli.get_double("value"));
  const std::string family = cli.get_string("distribution");
  if (family == "uniform") {
    workload.cost_distribution = model::CostDistribution::kUniform;
  } else if (family == "normal") {
    workload.cost_distribution = model::CostDistribution::kNormal;
  } else if (family == "exponential") {
    workload.cost_distribution = model::CostDistribution::kExponential;
  } else {
    throw InvalidArgumentError("unknown cost distribution: " + family);
  }

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const model::Scenario scenario = model::generate_scenario(workload, rng);
  model::save_scenario(cli.get_string("out"), scenario);
  std::cout << "wrote " << cli.get_string("out") << ": "
            << scenario.phone_count() << " phones, " << scenario.task_count()
            << " tasks over " << scenario.num_slots << " slots\n";
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  io::CliParser cli("Runs a mechanism on a scenario file (truthful bids).");
  cli.add_string("file", "scenario.mcs", "scenario file");
  cli.add_string("mechanism", "online",
                 "online | offline | second-price | batched");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_int("batch", 5, "batch size for --mechanism batched");
  cli.add_switch("allocation", "also print the per-task allocation");
  cli.add_string("json", "", "also write a machine-readable round report");
  cli.add_string("events-out", "",
                 "record the structured decision log (JSONL, mcs.events.v1)");
  cli.add_switch("probe-critical",
                 "with --events-out: log each winner's critical-value "
                 "bisection probes (online mechanism)");
  cli.add_string("metrics-out", "",
                 "write a telemetry report (counters, histograms, trace) as JSON");
  cli.add_switch("trace", "print the nested phase-timing tree");
  cli.add_string("trace-out", "",
                 "write the span tree in Chrome Trace Event Format "
                 "(Perfetto / chrome://tracing)");
  if (!cli.parse(argc, argv)) return 0;

  CliTelemetry telemetry(cli.get_string("metrics-out"),
                         cli.get_switch("trace"),
                         cli.get_string("trace-out"));

  auction::Outcome outcome;
  analysis::RoundMetrics metrics;
  std::unique_ptr<auction::Mechanism> mechanism;
  model::Scenario scenario;
  model::BidProfile bids;
  const std::string events_path = cli.get_string("events-out");
  std::uint64_t events_recorded = 0;
  {
    const obs::TraceSpan span("cli.run");
    {
      const obs::TraceSpan load_span("cli.load_scenario");
      scenario = model::load_scenario(cli.get_string("file"));
    }
    const analysis::RunSpec spec = spec_from_cli(cli);
    mechanism = analysis::make_mechanism(spec);
    {
      const obs::TraceSpan intake_span("cli.bid_intake");
      bids = scenario.truthful_bids();
    }
    if (events_path.empty()) {
      outcome = mechanism->run(scenario, bids);
    } else {
      std::ofstream events_file(events_path);
      if (!events_file) {
        throw IoError("cannot open events file: " + events_path);
      }
      obs::JsonlEventSink sink(events_file);
      obs::EventLog log(&sink);
      outcome = analysis::record_run(log, spec, scenario, bids,
                                     cli.get_switch("probe-critical"));
      events_recorded = log.count();
    }
    {
      const obs::TraceSpan metrics_span("cli.compute_metrics");
      metrics = analysis::compute_metrics(scenario, bids, outcome);
    }
  }
  telemetry.finish({{"tool", "mcs_cli run"},
                    {"scenario", cli.get_string("file")},
                    {"mechanism", mechanism->name()}});
  if (!events_path.empty()) {
    std::cout << "decision log written to " << events_path << " ("
              << events_recorded << " events)\n";
  }

  std::cout << mechanism->name() << " on " << cli.get_string("file") << ":\n"
            << analysis::describe(metrics);
  if (const std::string json_path = cli.get_string("json");
      !json_path.empty()) {
    std::ofstream json_file(json_path);
    if (!json_file) throw IoError("cannot open JSON report file: " + json_path);
    analysis::write_round_report_json(json_file, scenario, bids, outcome,
                                      mechanism->name());
    std::cout << "JSON report written to " << json_path << '\n';
  }
  if (cli.get_switch("allocation")) {
    io::TextTable table({"task", "slot", "phone", "payment"});
    for (const model::Task& task : scenario.tasks) {
      const auto phone = outcome.allocation.phone_for(task.id);
      table.add_row(
          {std::to_string(task.id.value()), std::to_string(task.slot.value()),
           phone ? std::to_string(phone->value()) : "-",
           phone ? outcome.payments[static_cast<std::size_t>(phone->value())]
                       .to_string()
                 : "-"});
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_audit(int argc, const char* const* argv) {
  io::CliParser cli(
      "Runs the truthfulness and individual-rationality audits on a "
      "scenario file.");
  cli.add_string("file", "scenario.mcs", "scenario file");
  cli.add_string("mechanism", "online",
                 "online | offline | second-price | batched");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_int("batch", 5, "batch size for --mechanism batched");
  if (!cli.parse(argc, argv)) return 0;

  const model::Scenario scenario = model::load_scenario(cli.get_string("file"));
  const auto mechanism = analysis::make_mechanism(spec_from_cli(cli));

  const analysis::TruthfulnessReport truth =
      analysis::audit_truthfulness(*mechanism, scenario);
  const analysis::RationalityReport rationality =
      analysis::audit_individual_rationality(*mechanism, scenario);
  std::cout << mechanism->name() << " on " << cli.get_string("file") << ":\n"
            << "  truthfulness: " << truth.summary() << '\n'
            << "  rationality:  " << rationality.summary() << '\n';
  if (!truth.truthful()) {
    const analysis::DeviationViolation& worst =
        *std::max_element(truth.violations.begin(), truth.violations.end(),
                          [](const auto& a, const auto& b) {
                            return a.gain() < b.gain();
                          });
    std::cout << "  worst manipulation: phone " << worst.phone << " reports "
              << worst.deviant_bid << " and gains " << worst.gain() << '\n';
    return 1;
  }
  return 0;
}

int cmd_report(int argc, const char* const* argv) {
  io::CliParser cli(
      "Regenerates ALL evaluation figures and writes them as one "
      "self-contained HTML report (inline SVG charts + data tables).");
  cli.add_string("out", "report.html", "output HTML path");
  cli.add_int("reps", 50, "repetitions per sweep point");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimulationConfig base;
  base.repetitions = static_cast<int>(cli.get_int("reps"));
  base.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int figures = sim::write_html_report(cli.get_string("out"), base);
  std::cout << "wrote " << figures << " figures to " << cli.get_string("out")
            << '\n';
  return 0;
}

int cmd_figure(int argc, const char* const* argv) {
  io::CliParser cli("Regenerates one of the paper's evaluation figures.");
  cli.add_string("id", "fig6", "fig6 | fig7 | fig8 | fig9 | fig10 | fig11");
  cli.add_int("reps", 50, "repetitions per sweep point");
  cli.add_int("seed", 42, "base RNG seed");
  cli.add_string("csv", "", "also write the series as CSV");
  cli.add_string("metrics-out", "",
                 "write a telemetry report (counters, histograms, trace) as JSON");
  cli.add_switch("trace", "print the nested phase-timing tree");
  cli.add_string("trace-out", "",
                 "write the span tree in Chrome Trace Event Format "
                 "(Perfetto / chrome://tracing)");
  if (!cli.parse(argc, argv)) return 0;

  const sim::FigureSpec& spec = sim::figure(cli.get_string("id"));
  sim::SimulationConfig base;
  base.repetitions = static_cast<int>(cli.get_int("reps"));
  base.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  CliTelemetry telemetry(cli.get_string("metrics-out"),
                         cli.get_switch("trace"),
                         cli.get_string("trace-out"));
  std::cout << spec.id << ": " << spec.title << '\n';
  sim::FigureSeries series;
  {
    const obs::TraceSpan span("cli.figure");
    series = sim::run_figure(spec, base);
  }
  telemetry.finish({{"tool", "mcs_cli figure"}, {"figure", spec.id}});
  series.to_table().print(std::cout);
  std::cout << '\n' << series.to_chart();
  if (const std::string path = cli.get_string("csv"); !path.empty()) {
    io::write_csv_file(path, series.header, series.rows);
    std::cout << "series written to " << path << '\n';
  }
  return 0;
}

int cmd_replay(int argc, const char* const* argv) {
  std::vector<const char*> rest;
  const std::string positional = take_leading_positional(argc, argv, rest);
  io::CliParser cli(
      "Re-executes the run recorded in a decision log (mcs.events.v1 "
      "JSONL) and byte-compares the reproduced outcome against the "
      "recorded one. Exit 0 = identical, 1 = divergence.");
  cli.add_string("file", positional, "events.jsonl decision log");
  if (!cli.parse(argc, argv)) return 0;

  const std::string path = cli.get_string("file");
  if (path.empty()) {
    throw InvalidArgumentError(
        "usage: mcs_cli replay <events.jsonl> (or --file <events.jsonl>)");
  }
  std::ifstream events(path);
  if (!events) throw IoError("cannot open events file: " + path);
  const analysis::ReplayReport report = analysis::replay_run(events);
  std::cout << "replayed " << report.mechanism << " run from " << path << " ("
            << report.events << " events)\n";
  if (report.clean) {
    std::cout << "outcome reproduced byte-for-byte: " << report.recorded
              << '\n';
    return 0;
  }
  std::cout << "REPLAY DIVERGED: " << report.diff << '\n';
  return 1;
}

int cmd_transcode(int argc, const char* const* argv) {
  io::CliParser cli(
      "Losslessly converts a recorded serve event stream between "
      "mcs.serve.v1 JSONL and the mcs.serve.b1 binary wire format. The "
      "input format is autodetected from its first bytes; by default the "
      "output is the other format (a JSONL->binary->JSONL round trip is "
      "byte-exact). Both decoders are strict: a malformed input fails "
      "with the offending line / byte offset instead of producing a "
      "partial output.");
  cli.add_string("in", "", "input stream (JSONL or binary, autodetected)");
  cli.add_string("out", "", "output path");
  cli.add_string("to", "",
                 "target format: jsonl | binary (default: the opposite of "
                 "the input)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string in_path = cli.get_string("in");
  const std::string out_path = cli.get_string("out");
  if (in_path.empty() || out_path.empty()) {
    throw InvalidArgumentError(
        "usage: mcs_cli transcode --in <stream> --out <stream> [--to "
        "jsonl|binary]");
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in) throw IoError("cannot open input stream: " + in_path);
  const serve::WireFormat from = serve::detect_stream_format(in);

  serve::WireFormat to = from == serve::WireFormat::kBinary
                             ? serve::WireFormat::kJsonl
                             : serve::WireFormat::kBinary;
  if (const std::string target = cli.get_string("to"); !target.empty()) {
    if (target == "jsonl") {
      to = serve::WireFormat::kJsonl;
    } else if (target == "binary") {
      to = serve::WireFormat::kBinary;
    } else {
      throw InvalidArgumentError("unknown target format: " + target);
    }
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw IoError("cannot open output stream: " + out_path);
  const std::int64_t events = serve::transcode_serve_stream(in, out, to);
  out.flush();
  if (!out) throw IoError("write failed: " + out_path);
  std::cout << "transcoded " << events << " events: " << in_path << " ("
            << serve::to_string(from) << ") -> " << out_path << " ("
            << serve::to_string(to) << ")\n";
  return 0;
}

int cmd_bench_diff(int argc, const char* const* argv) {
  // Accept "bench-diff <baseline> <candidate> [--flags]" with the two
  // leading positionals, or fully flagged --baseline/--candidate.
  std::vector<const char*> rest;
  std::vector<std::string> positionals;
  rest.push_back(argc > 0 ? argv[0] : "bench-diff");
  int i = 1;
  for (; i < argc && positionals.size() < 2; ++i) {
    if (argv[i][0] == '-') break;
    positionals.emplace_back(argv[i]);
  }
  for (; i < argc; ++i) rest.push_back(argv[i]);

  io::CliParser cli(
      "Compares two bench telemetry reports (mcs.bench_telemetry.v1 or "
      "mcs.telemetry.v1): deterministic work counters and non-duration "
      "histograms must match exactly; duration (*_us) histograms are "
      "compared as p50/p95/p99 ratios against a threshold. Exit 0 = no "
      "regression, 1 = regression.");
  cli.add_string("baseline", positionals.empty() ? "" : positionals[0],
                 "baseline telemetry JSON (e.g. BENCH_telemetry.json)");
  cli.add_string("candidate", positionals.size() < 2 ? "" : positionals[1],
                 "candidate telemetry JSON to judge");
  cli.add_double("timing-threshold", 1.5,
                 "flag a duration histogram when a quantile ratio "
                 "(candidate/baseline) exceeds this");
  cli.add_switch("gate-timings",
                 "timing regressions also fail the verdict (default: "
                 "report-only; counter drift always fails)");
  cli.add_string("json", "", "also write the verdict as mcs.bench_diff.v1 JSON");
  if (!cli.parse(static_cast<int>(rest.size()), rest.data())) return 0;

  const std::string baseline = cli.get_string("baseline");
  const std::string candidate = cli.get_string("candidate");
  if (baseline.empty() || candidate.empty()) {
    throw InvalidArgumentError(
        "usage: mcs_cli bench-diff <baseline.json> <candidate.json>");
  }
  analysis::BenchDiffOptions options;
  options.timing_ratio_threshold = cli.get_double("timing-threshold");
  options.gate_timings = cli.get_switch("gate-timings");

  const analysis::BenchDiffReport report =
      analysis::diff_bench_telemetry_files(baseline, candidate, options);
  analysis::write_bench_diff_markdown(std::cout, report, options);
  if (const std::string json_path = cli.get_string("json");
      !json_path.empty()) {
    std::ofstream json_file(json_path);
    if (!json_file) {
      throw IoError("cannot open JSON verdict file: " + json_path);
    }
    analysis::write_bench_diff_json(json_file, report, options);
    std::cout << "\nJSON verdict written to " << json_path << '\n';
  }
  return report.regression(options) ? 1 : 0;
}

/// Splits "[HOST:]PORT"; the host defaults to loopback.
std::pair<std::string, int> parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  const std::string host =
      colon == std::string::npos ? "127.0.0.1" : spec.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  int port = -1;
  try {
    port = std::stoi(port_text);
  } catch (const std::exception&) {
  }
  if (host.empty() || port < 0 || port > 65535) {
    throw InvalidArgumentError("bad endpoint (want [HOST:]PORT): " + spec);
  }
  return {host, port};
}

/// --events-out recorder, in either wire format. Binary frames are
/// buffered and flushed in 64 KiB chunks like the library writers.
class EventRecorder {
 public:
  void open(const std::string& path, bool wire) {
    file_.open(path, std::ios::binary);
    if (!file_) throw IoError("cannot open events file: " + path);
    wire_ = wire;
    if (wire_) {
      serve::append_wire_header(buffer_);
    } else {
      serve::write_stream_header(file_);
    }
  }

  void record(const serve::ServeEvent& event) {
    if (!file_.is_open()) return;
    if (wire_) {
      serve::append_wire_frame(buffer_, event);
      if (buffer_.size() >= std::size_t{64} * 1024) flush_buffer();
    } else {
      serve::write_serve_event(file_, event);
    }
  }

  void finish() {
    if (file_.is_open() && wire_ && !buffer_.empty()) flush_buffer();
  }

 private:
  void flush_buffer() {
    file_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }

  std::ofstream file_;
  bool wire_ = false;
  std::string buffer_;
};

/// serve --connect: push the loadgen stream to a listening server.
int run_connect_client(const std::string& endpoint,
                       const serve::LoadGenConfig& load, bool wire) {
  const auto [host, port] = parse_endpoint(endpoint);
  serve::SocketClient client = serve::SocketClient::connect(host, port);
  std::int64_t sent = 0;
  std::int64_t bytes = 0;
  std::string buffer;
  const auto flush = [&] {
    if (buffer.empty()) return;
    bytes += static_cast<std::int64_t>(buffer.size());
    client.send(buffer);
    buffer.clear();
  };
  if (wire) {
    serve::append_wire_header(buffer);
    sent = serve::generate_events(load, [&](const serve::ServeEvent& e) {
      serve::append_wire_frame(buffer, e);
      if (buffer.size() >= std::size_t{64} * 1024) flush();
      return true;
    });
  } else {
    std::ostringstream header;
    serve::write_stream_header(header);
    buffer = header.str();
    sent = serve::generate_events(load, [&](const serve::ServeEvent& e) {
      std::ostringstream line;
      serve::write_serve_event(line, e);
      buffer += line.str();
      if (buffer.size() >= std::size_t{64} * 1024) flush();
      return true;
    });
  }
  flush();
  client.close();
  std::cout << "sent " << sent << " events (" << bytes << " bytes, "
            << (wire ? "binary" : "jsonl") << ") to " << host << ":" << port
            << '\n';
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  io::CliParser cli(
      "Long-running streaming auction engine: shards rounds across worker "
      "threads fed by bounded queues. Traffic comes from the seeded load "
      "generator (--loadgen, the default) or a recorded mcs.serve.v1 "
      "stream (--replay). --verify batch-compares every completed "
      "loadgen round against the batch online mechanism (the "
      "streaming/batch equivalence oracle); exit 1 on divergence.");
  cli.add_string("replay", "",
                 "replay a recorded event stream (mcs.serve.v1 JSONL or "
                 "mcs.serve.b1 binary, autodetected)");
  cli.add_switch("loadgen", "synthesize traffic (default when no --replay)");
  cli.add_string("listen", "",
                 "serve events arriving over TCP: [HOST:]PORT (0 = pick an "
                 "ephemeral port); each connection carries one stream, "
                 "JSONL or binary per connection (autodetected)");
  cli.add_int("listen-conns", 1,
              "listen: drain after this many client connections have been "
              "accepted (their streams are still read to EOF)");
  cli.add_string("connect", "",
                 "act as a load client instead of serving: push the "
                 "loadgen stream to a listening server at [HOST:]PORT");
  cli.add_switch("wire",
                 "use the mcs.serve.b1 binary wire format for --events-out "
                 "and --connect (--replay and --listen autodetect)");
  cli.add_int("batch", 1,
              "producer-side batch size: events buffered per shard before "
              "one queue handoff (1 = per-event submit)");
  cli.add_int("rounds", 64, "loadgen: rounds to stream");
  cli.add_int("slots", 50, "loadgen: slots per round (m)");
  cli.add_double("lambda", 6.0, "loadgen: smartphone arrival rate per slot");
  cli.add_double("lambda-t", 3.0, "loadgen: task arrival rate per slot");
  cli.add_int("seed", 42, "loadgen: base RNG seed (round k forks stream k)");
  cli.add_int("shards", 4, "worker shards (rounds are hashed across them)");
  cli.add_int("queue-depth", 1024, "bounded per-shard queue capacity");
  cli.add_string("admission", "block",
                 "backpressure policy: block | reject (shed when full)");
  cli.add_double("reserve", 0.0, "platform reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_string("events-out", "",
                 "also record the generated stream as mcs.serve.v1 JSONL");
  cli.add_switch("verify",
                 "batch-compare every completed round (loadgen only)");
  cli.add_string("metrics-out", "",
                 "write a telemetry report (counters, histograms, trace) as JSON");
  cli.add_switch("trace", "print the nested phase-timing tree");
  cli.add_string("trace-out", "",
                 "write the span tree in Chrome Trace Event Format "
                 "(Perfetto / chrome://tracing)");
  cli.add_string("stats-out", "",
                 "stream live mcs.serve_stats.v1 snapshots (JSONL) while "
                 "serving; enables the wall-clock telemetry plane");
  cli.add_int("stats-period-ms", 100, "live snapshot period in milliseconds");
  cli.add_string("stats-prom", "",
                 "write the final live snapshot as Prometheus text");
  cli.add_double("target-eps", 0.0,
                 "open-loop pacing: offered events/sec (0 = as fast as "
                 "possible; loadgen only)");
  cli.add_string("econ-out", "",
                 "stream live mcs.serve_econ.v1 snapshots (JSONL); enables "
                 "the economic telemetry plane + invariant sentinel");
  cli.add_string("econ-prom", "",
                 "write the final econ snapshot as Prometheus text");
  cli.add_string("econ-events", "",
                 "record sentinel econ_violation events (JSONL, "
                 "mcs.events.v1)");
  cli.add_int("econ-probe-every", 16,
              "deep-probe 1-in-N rounds through the counterfactual engine "
              "(0 = cheap invariants only)");
  cli.add_int("econ-probe-seed", 0, "seed of the deep-probe round sampler");
  cli.add_string("trace-jsonl", "",
                 "write retained per-round traces as mcs.trace.v1 JSONL; "
                 "enables the causal trace plane (tail-based sampling)");
  cli.add_string("trace-chrome", "",
                 "write retained per-round traces in Chrome Trace Event "
                 "Format (one lane per shard, flow events across lanes)");
  cli.add_int("trace-threshold-us", 0,
              "retain every round slower than this many microseconds "
              "(0 = auto: track the rolling per-shard p99)");
  cli.add_int("trace-capacity", 256,
              "per-shard retained-trace ring capacity");
  if (!cli.parse(argc, argv)) return 0;

  serve::ServeConfig config;
  config.shards = static_cast<int>(cli.get_int("shards"));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-depth"));
  const std::string admission = cli.get_string("admission");
  if (admission == "block") {
    config.admission = serve::ServeConfig::Admission::kBlock;
  } else if (admission == "reject") {
    config.admission = serve::ServeConfig::Admission::kReject;
  } else {
    throw InvalidArgumentError("unknown admission policy: " + admission);
  }
  if (const double reserve = cli.get_double("reserve"); reserve > 0.0) {
    config.greedy.reserve_price = Money::from_double(reserve);
  }
  config.greedy.allocate_only_profitable = cli.get_switch("profitable-only");
  if (const std::int64_t batch = cli.get_int("batch"); batch >= 1) {
    config.batch_size = static_cast<std::size_t>(batch);
  } else {
    throw InvalidArgumentError("--batch must be >= 1");
  }

  serve::LoadGenConfig load;
  load.rounds = cli.get_int("rounds");
  load.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  load.workload.num_slots = static_cast<Slot::rep_type>(cli.get_int("slots"));
  load.workload.phone_arrival_rate = cli.get_double("lambda");
  load.workload.task_arrival_rate = cli.get_double("lambda-t");

  const std::string replay_path = cli.get_string("replay");
  const std::string listen_spec = cli.get_string("listen");
  const std::string connect_spec = cli.get_string("connect");
  if (!connect_spec.empty()) {
    if (!replay_path.empty() || !listen_spec.empty()) {
      throw InvalidArgumentError(
          "--connect streams the load generator to a remote server; it "
          "cannot be combined with --replay or --listen");
    }
    return run_connect_client(connect_spec, load, cli.get_switch("wire"));
  }
  const bool use_listen = !listen_spec.empty();
  if (use_listen && !replay_path.empty()) {
    throw InvalidArgumentError(
        "--listen and --replay are both event sources; pick one");
  }
  const bool use_loadgen = replay_path.empty() && !use_listen;
  if (!use_loadgen && cli.get_switch("verify")) {
    throw InvalidArgumentError(
        "--verify regenerates rounds from loadgen seeds; it cannot be "
        "combined with --replay or --listen");
  }

  const std::string stats_path = cli.get_string("stats-out");
  const std::string prom_path = cli.get_string("stats-prom");
  const double target_eps = cli.get_double("target-eps");
  if (target_eps > 0.0 && !use_loadgen) {
    throw InvalidArgumentError(
        "--target-eps paces the load generator; it cannot be combined "
        "with --replay or --listen");
  }
  // Any live flag turns on the wall-clock plane (it is off by default so
  // the deterministic plane never pays for clock reads it does not need).
  std::unique_ptr<serve::LiveTelemetry> live;
  if (!stats_path.empty() || !prom_path.empty() || target_eps > 0.0) {
    live = std::make_unique<serve::LiveTelemetry>();
    config.live = live.get();
  }

  // Any econ flag turns on the economic plane (off by default: capture
  // mode and per-round audits are paid only when asked for).
  const std::string econ_path = cli.get_string("econ-out");
  const std::string econ_prom_path = cli.get_string("econ-prom");
  const std::string econ_events_path = cli.get_string("econ-events");
  std::ofstream econ_events_file;
  std::unique_ptr<obs::JsonlEventSink> econ_events_sink;
  std::unique_ptr<obs::EventLog> econ_events_log;
  std::unique_ptr<serve::EconTelemetry> econ;
  if (!econ_path.empty() || !econ_prom_path.empty() ||
      !econ_events_path.empty()) {
    serve::EconTelemetryConfig econ_config;
    econ_config.greedy = config.greedy;
    econ_config.probe_every = cli.get_int("econ-probe-every");
    econ_config.probe_seed =
        static_cast<std::uint64_t>(cli.get_int("econ-probe-seed"));
    if (!econ_events_path.empty()) {
      econ_events_file.open(econ_events_path);
      if (!econ_events_file) {
        throw IoError("cannot open econ events file: " + econ_events_path);
      }
      econ_events_sink =
          std::make_unique<obs::JsonlEventSink>(econ_events_file);
      econ_events_log = std::make_unique<obs::EventLog>(econ_events_sink.get());
      econ_config.events = econ_events_log.get();
    }
    econ = std::make_unique<serve::EconTelemetry>(econ_config);
    config.econ = econ.get();
  }

  // Any trace flag turns on the causal trace plane. Like the live plane it
  // is quarantined from the deterministic counters: trace-on and trace-off
  // runs produce bit-identical registry state.
  const std::string trace_jsonl_path = cli.get_string("trace-jsonl");
  const std::string trace_chrome_path = cli.get_string("trace-chrome");
  std::unique_ptr<serve::TracePlane> trace_plane;
  if (!trace_jsonl_path.empty() || !trace_chrome_path.empty()) {
    serve::TracePlaneConfig trace_config;
    trace_config.ring_capacity =
        static_cast<std::size_t>(cli.get_int("trace-capacity"));
    trace_config.slow_threshold_ns =
        static_cast<std::uint64_t>(cli.get_int("trace-threshold-us")) *
        1000ULL;
    trace_plane = std::make_unique<serve::TracePlane>(trace_config);
    config.trace = trace_plane.get();
  }

  CliTelemetry telemetry(cli.get_string("metrics-out"),
                         cli.get_switch("trace"),
                         cli.get_string("trace-out"));

  std::int64_t offered = 0;
  std::int64_t shed = 0;
  serve::PaceReport pace_report;
  std::vector<serve::RoundOutcome> outcomes;
  serve::ServeStats stats;
  const auto start = std::chrono::steady_clock::now();
  {
    const obs::TraceSpan span("cli.serve");
    serve::ServeEngine engine(config);

    std::ofstream stats_file;
    std::ofstream econ_file;
    if (!econ_path.empty()) {
      econ_file.open(econ_path);
      if (!econ_file) throw IoError("cannot open econ file: " + econ_path);
    }
    std::unique_ptr<serve::StatsPublisher> publisher;
    if (!stats_path.empty()) {
      stats_file.open(stats_path);
      if (!stats_file) throw IoError("cannot open stats file: " + stats_path);
      publisher = std::make_unique<serve::StatsPublisher>(
          *live, stats_file,
          std::chrono::milliseconds(cli.get_int("stats-period-ms")),
          econ.get(), econ_file.is_open() ? &econ_file : nullptr);
    }

    // Producer-side batching: one ShardBatcher per (single) producer; the
    // replay path batches internally instead.
    std::unique_ptr<serve::ShardBatcher> batcher;
    if (config.batch_size > 1 && (use_loadgen || use_listen)) {
      batcher = std::make_unique<serve::ShardBatcher>(engine);
    }
    EventRecorder recorder;
    if (const std::string events_path = cli.get_string("events-out");
        !events_path.empty()) {
      recorder.open(events_path, cli.get_switch("wire"));
    }

    if (use_loadgen) {
      const auto submit = [&](const serve::ServeEvent& e) {
        recorder.record(e);
        const serve::SubmitStatus status =
            batcher ? batcher->add(e) : engine.submit(e);
        return status == serve::SubmitStatus::kAccepted;
      };
      if (target_eps > 0.0) {
        serve::PaceConfig pace;
        pace.target_eps = target_eps;
        pace_report = serve::run_paced_load(load, pace, submit);
        offered = pace_report.offered;
        shed = pace_report.shed;
      } else {
        offered = serve::generate_events(load, [&](const serve::ServeEvent& e) {
          if (!submit(e)) ++shed;
          return true;
        });
      }
    } else if (use_listen) {
      const auto [host, port] = parse_endpoint(listen_spec);
      serve::SocketServerConfig socket_config;
      socket_config.host = host;
      socket_config.port = static_cast<std::uint16_t>(port);
      // The server's reader threads share this sink; one lock serializes
      // the recorder and the batcher (both single-producer by contract).
      std::mutex sink_mutex;
      std::int64_t socket_shed = 0;
      serve::SocketServer server(
          socket_config, [&](const serve::ServeEvent& e) {
            const std::lock_guard<std::mutex> lock(sink_mutex);
            recorder.record(e);
            const serve::SubmitStatus status =
                batcher ? batcher->add(e) : engine.submit(e);
            if (status == serve::SubmitStatus::kRejectedQueueFull) {
              ++socket_shed;
            }
          });
      server.start();
      const std::int64_t want_conns =
          std::max<std::int64_t>(cli.get_int("listen-conns"), 1);
      std::cout << "listening on " << host << ":" << server.port()
                << ", draining after " << want_conns << " connection(s)\n"
                << std::flush;
      while (server.stats().connections < want_conns) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      server.drain();
      const serve::SocketServerStats socket_stats = server.stats();
      offered = socket_stats.events;
      shed = socket_shed;
      if (socket_stats.decode_errors > 0) {
        std::cout << socket_stats.decode_errors
                  << " connection(s) aborted on malformed or truncated "
                     "input\n";
      }
    } else {
      std::ifstream stream(replay_path, std::ios::binary);
      if (!stream) throw IoError("cannot open event stream: " + replay_path);
      const serve::ReplayStats replayed =
          serve::replay_event_stream(stream, engine, config.batch_size > 1);
      offered = replayed.events;
      shed = replayed.shed;
    }
    if (batcher) {
      batcher->flush();
      shed = batcher->rejected_events();  // exact under batch granularity
    }
    recorder.finish();
    engine.drain();
    if (publisher) publisher->stop();  // flushes the final tail snapshot
    if (econ_file.is_open() && !publisher) {
      // No publisher thread to emit the tail; write one snapshot so even a
      // stats-less run produces a non-empty econ stream.
      serve::write_econ_snapshot(econ_file, econ->take_snapshot());
    }
    if (!prom_path.empty()) {
      std::ofstream prom_file(prom_path);
      if (!prom_file) throw IoError("cannot open stats file: " + prom_path);
      const serve::ServeSnapshot tail = live->take_snapshot();
      serve::render_live_prometheus(prom_file, tail);
    }
    if (!econ_prom_path.empty()) {
      std::ofstream prom_file(econ_prom_path);
      if (!prom_file) {
        throw IoError("cannot open econ stats file: " + econ_prom_path);
      }
      serve::render_econ_prometheus(prom_file, econ->take_snapshot());
    }
    if (trace_plane) {
      if (!trace_jsonl_path.empty()) {
        std::ofstream trace_file(trace_jsonl_path);
        if (!trace_file) {
          throw IoError("cannot open trace stream file: " + trace_jsonl_path);
        }
        serve::write_trace_stream(trace_file, *trace_plane);
      }
      if (!trace_chrome_path.empty()) {
        std::ofstream trace_file(trace_chrome_path);
        if (!trace_file) {
          throw IoError("cannot open trace chrome file: " + trace_chrome_path);
        }
        serve::write_trace_chrome(trace_file, *trace_plane);
      }
    }
    outcomes = engine.take_outcomes();
    stats = engine.stats();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  telemetry.finish({{"tool", "mcs_cli serve"},
                    {"source", use_loadgen
                                   ? std::string("loadgen")
                                   : (use_listen ? "listen " + listen_spec
                                                 : replay_path)},
                    {"shards", std::to_string(config.shards)}});

  Money total_paid;
  for (const serve::RoundOutcome& outcome : outcomes) {
    total_paid += outcome.total_paid;
  }
  std::cout << "served " << stats.processed << "/" << offered
            << " events across " << config.shards << " shard(s): "
            << stats.rounds_completed << " rounds completed, "
            << stats.tasks_announced << " tasks, " << stats.bids_admitted
            << " bids admitted (" << stats.bids_rejected_reserve
            << " reserve-rejected), total paid " << total_paid << '\n';
  if (shed > 0) {
    std::cout << "admission control shed " << shed
              << " events (policy: " << admission << "); downstream: "
              << stats.orphaned_events << " orphaned events dropped, "
              << stats.rounds_corrupted << " rounds abandoned mid-flight\n";
  }
  if (seconds > 0.0) {
    std::cout << "sustained "
              << static_cast<std::int64_t>(
                     static_cast<double>(stats.processed) / seconds)
              << " events/sec over " << seconds << " s\n";
  }
  if (target_eps > 0.0) {
    std::cout << "pacing: offered " << pace_report.offered
              << " events at target " << target_eps << " events/sec, "
              << pace_report.late_events << " late sends (max lag "
              << static_cast<double>(pace_report.max_lag_ns) / 1e6
              << " ms)\n";
  }
  if (live) {
    const serve::LiveSummary summary = live->summary();
    std::cout << "live: queue_wait p50/p99 "
              << summary.queue_wait.quantile_us(0.5) << "/"
              << summary.queue_wait.quantile_us(0.99)
              << " us, round_close p50/p99 "
              << summary.round_latency.quantile_us(0.5) << "/"
              << summary.round_latency.quantile_us(0.99) << " us, "
              << static_cast<std::int64_t>(summary.events_per_sec())
              << " events/sec live, queue high watermark "
              << summary.queue_high_watermark << '\n';
  }

  if (econ) {
    const std::int64_t violations = econ->violations();
    std::cout << "econ: "
              << obs::to_string(obs::classify_econ_health(violations))
              << ", " << violations << " sentinel violation(s)\n";
  }

  if (trace_plane) {
    const serve::TraceSummary trace_summary = trace_plane->summary();
    std::cout << "trace: " << trace_summary.rounds_traced
              << " rounds traced, " << trace_summary.retained << " retained ("
              << trace_summary.retained_slow << " slow, "
              << trace_summary.retained_econ << " econ, "
              << trace_summary.retained_error << " error), "
              << trace_summary.dropped << " folded into summary, threshold ";
    if (trace_summary.slow_threshold_ns == ~0ULL) {
      std::cout << "not warmed up";
    } else {
      std::cout << static_cast<double>(trace_summary.slow_threshold_ns) / 1e3
                << " us";
    }
    std::cout << '\n';
  }

  if (cli.get_switch("verify")) {
    const serve::VerifyReport report =
        serve::verify_against_batch(load, outcomes, config.greedy);
    if (!report.clean()) {
      std::cout << "VERIFY FAILED: " << report.rounds_diverged << "/"
                << report.rounds_checked << " rounds diverged; first: "
                << report.first_diff << '\n';
      return 1;
    }
    std::cout << "verify: all " << report.rounds_checked
              << " rounds byte-identical to the batch mechanism\n";
  }
  return 0;
}

int cmd_econ_report(int argc, const char* const* argv) {
  io::CliParser cli(
      "Economic leaderboard. Batch mode (default): run a set of mechanisms "
      "over seeded loadgen rounds with truthful bids and render a markdown "
      "welfare/payment/overpayment table (the Fig. 9-11 numbers, computed "
      "through the same analysis::compute_metrics as the offline audits). "
      "Stream mode (--from): summarize an mcs.serve_econ.v1 JSONL snapshot "
      "stream written by 'serve --econ-out'.");
  cli.add_string("from", "",
                 "summarize an mcs.serve_econ.v1 snapshot stream instead of "
                 "simulating");
  cli.add_string("mechanisms", "online,offline,second-price",
                 "comma-separated list: online | offline | second-price | "
                 "batched");
  cli.add_int("rounds", 16, "rounds to simulate per mechanism");
  cli.add_int("slots", 20, "loadgen: slots per round (m)");
  cli.add_double("lambda", 4.0, "loadgen: smartphone arrival rate per slot");
  cli.add_double("lambda-t", 2.0, "loadgen: task arrival rate per slot");
  cli.add_int("seed", 42, "loadgen: base RNG seed (round k forks stream k)");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_int("batch", 5, "batch size for the batched mechanism");
  cli.add_string("out", "", "also write the markdown to a file");
  if (!cli.parse(argc, argv)) return 0;

  std::string rendered;
  const std::string from_path = cli.get_string("from");
  if (!from_path.empty()) {
    std::ifstream stream(from_path);
    if (!stream) throw IoError("cannot open econ stream: " + from_path);
    const analysis::EconStreamSummary summary =
        analysis::summarize_econ_stream(stream);
    std::ostringstream os;
    analysis::render_econ_stream(os, summary);
    rendered = os.str();
  } else {
    serve::LoadGenConfig load;
    load.rounds = cli.get_int("rounds");
    load.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    load.workload.num_slots =
        static_cast<Slot::rep_type>(cli.get_int("slots"));
    load.workload.phone_arrival_rate = cli.get_double("lambda");
    load.workload.task_arrival_rate = cli.get_double("lambda-t");
    const analysis::ScenarioGenerator generator =
        [&load](std::int64_t round) {
          return serve::loadgen_scenario(load, round);
        };

    std::vector<analysis::MechanismEconSummary> summaries;
    std::string names = cli.get_string("mechanisms");
    std::istringstream split(names);
    for (std::string name; std::getline(split, name, ',');) {
      if (name.empty()) continue;
      analysis::RunSpec spec;
      spec.mechanism = name;
      spec.reserve = cli.get_double("reserve");
      spec.profitable_only = cli.get_switch("profitable-only");
      spec.batch = cli.get_int("batch");
      const std::unique_ptr<auction::Mechanism> mechanism =
          analysis::make_mechanism(spec);
      summaries.push_back(analysis::summarize_mechanism(
          *mechanism, generator, cli.get_int("rounds")));
    }
    if (summaries.empty()) {
      throw InvalidArgumentError("econ-report: no mechanisms selected");
    }
    std::ostringstream os;
    analysis::render_econ_leaderboard(os, std::move(summaries));
    rendered = os.str();
  }

  std::cout << rendered;
  if (const std::string out = cli.get_string("out"); !out.empty()) {
    std::ofstream file(out);
    if (!file) throw IoError("cannot open output file: " + out);
    file << rendered;
    std::cout << "report written to " << out << '\n';
  }
  return 0;
}

int cmd_trace_report(int argc, const char* const* argv) {
  std::vector<const char*> rest;
  const std::string positional = take_leading_positional(argc, argv, rest);
  io::CliParser cli(
      "Digests an mcs.trace.v1 round-trace stream (written by 'serve "
      "--trace-jsonl') into per-phase p50/p99 latency, the slowest retained "
      "rounds rendered as ASCII span waterfalls, and sketch exemplars.");
  cli.add_string("from", positional, "mcs.trace.v1 JSONL stream to digest");
  cli.add_int("top", 5, "slowest retained rounds to render");
  if (!cli.parse(argc, argv)) return 0;

  const std::string path = cli.get_string("from");
  if (path.empty()) {
    throw InvalidArgumentError(
        "usage: mcs_cli trace-report <trace.jsonl> [--top N]");
  }
  std::ifstream stream(path);
  if (!stream) throw IoError("cannot open trace stream: " + path);
  const analysis::TraceStreamSummary summary =
      analysis::summarize_trace_stream(stream);
  analysis::render_trace_report(std::cout, summary,
                                static_cast<int>(cli.get_int("top")));
  return 0;
}

int cmd_explain(int argc, const char* const* argv) {
  std::vector<const char*> rest;
  const std::string positional = take_leading_positional(argc, argv, rest);
  io::CliParser cli(
      "Narrates one phone's round from a decision log: admission, "
      "candidate-pool standing, wins, critical-value probes, and the "
      "payment derivation.");
  cli.add_string("file", positional, "events.jsonl decision log");
  cli.add_int("phone", 0, "phone id to explain");
  if (!cli.parse(argc, argv)) return 0;

  const std::string path = cli.get_string("file");
  if (path.empty()) {
    throw InvalidArgumentError(
        "usage: mcs_cli explain <events.jsonl> --phone <id>");
  }
  std::ifstream events(path);
  if (!events) throw IoError("cannot open events file: " + path);
  std::cout << analysis::explain_phone(events,
                                       static_cast<int>(cli.get_int("phone")));
  return 0;
}

int cmd_arena(int argc, const char* const* argv) {
  io::CliParser cli(
      "Strategic-agent arena: assigns a population of bidder policies to "
      "every phone of seeded workload rounds and pits each (mechanism x "
      "policy mix) cell over the same round stream. Reports welfare, "
      "payment vs the offline-VCG-on-truthful reference, overpayment "
      "sigma, Jain fairness, per-policy mean utility, and an "
      "incentive-to-deviate score (utility of the policy's bid minus the "
      "truthful bid, all else fixed; for truthful agents, the best gain "
      "over the canonical shade(1.5)/delay(2) deviations). The leaderboard "
      "is byte-identical across runs and worker-thread counts.");
  cli.add_string("mechanisms", "online,offline,second-price",
                 "comma-separated: online | offline | second-price | "
                 "posted(P) | patience(K)");
  cli.add_string("policies",
                 "truthful;"
                 "shaded=truthful:3,shade(1.5):1;"
                 "delayed=truthful:3,delay(2):1",
                 "semicolon-separated mixes, each [name=]policy:weight,... "
                 "(policies: truthful | shade(F) | delay(K) | early(K) | "
                 "best-response)");
  cli.add_int("rounds", 400, "seeded rounds per cell");
  cli.add_int("slots", 12, "slots per round (m)");
  cli.add_double("lambda", 4.0, "smartphone arrival rate per slot");
  cli.add_double("lambda-t", 2.0, "task arrival rate per slot");
  cli.add_int("seed", 42, "arena seed (rounds, assignment, probes)");
  cli.add_int("threads", 1, "worker threads for the cell fan-out "
                            "(0 = hardware; any value, same bytes)");
  cli.add_int("probes", 4, "deviation probes per (round, policy)");
  cli.add_double("reserve", 0.0, "online reserve price (0 = none)");
  cli.add_switch("profitable-only", "skip bids above the task value");
  cli.add_string("json", "", "write the mcs.arena.v1 leaderboard JSON");
  cli.add_string("out", "", "also write the markdown leaderboard to a file");
  cli.add_string("metrics-out", "", "write a telemetry JSON report");
  if (!cli.parse(argc, argv)) return 0;

  arena::ArenaConfig config;
  config.rounds = cli.get_int("rounds");
  config.threads = static_cast<int>(cli.get_int("threads"));
  config.match.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.match.probes_per_policy = cli.get_int("probes");
  config.match.workload.num_slots =
      static_cast<Slot::rep_type>(cli.get_int("slots"));
  config.match.workload.phone_arrival_rate = cli.get_double("lambda");
  config.match.workload.task_arrival_rate = cli.get_double("lambda-t");
  if (cli.get_double("reserve") > 0.0) {
    config.match.greedy.reserve_price =
        Money::from_double(cli.get_double("reserve"));
  }
  config.match.greedy.allocate_only_profitable =
      cli.get_switch("profitable-only");
  {
    std::istringstream split(cli.get_string("mechanisms"));
    for (std::string spec; std::getline(split, spec, ',');) {
      if (!spec.empty()) config.mechanisms.push_back(spec);
    }
  }
  {
    std::istringstream split(cli.get_string("policies"));
    for (std::string spec; std::getline(split, spec, ';');) {
      if (!spec.empty()) config.mixes.push_back(spec);
    }
  }

  CliTelemetry telemetry(cli.get_string("metrics-out"), false);
  const arena::ArenaResult result = arena::run_arena(config);

  std::ostringstream markdown;
  arena::render_arena_markdown(markdown, result);
  std::cout << markdown.str();
  if (const std::string out = cli.get_string("out"); !out.empty()) {
    std::ofstream file(out);
    if (!file) throw IoError("cannot open output file: " + out);
    file << markdown.str();
    std::cout << "leaderboard written to " << out << '\n';
  }
  if (const std::string json = cli.get_string("json"); !json.empty()) {
    std::ofstream file(json);
    if (!file) throw IoError("cannot open output file: " + json);
    arena::write_arena_json(file, result);
    std::cout << "mcs.arena.v1 written to " << json << '\n';
  }
  telemetry.finish({{"tool", "mcs_cli arena"}});
  return 0;
}

/// Dispatches one subcommand; returns -1 when the name is unknown (the
/// caller owns the unknown-subcommand diagnostics, so 'help X' and plain
/// 'X' report identically).
int dispatch(const std::string& subcommand, int argc,
             const char* const* argv) {
  if (subcommand == "generate") return cmd_generate(argc, argv);
  if (subcommand == "run") return cmd_run(argc, argv);
  if (subcommand == "audit") return cmd_audit(argc, argv);
  if (subcommand == "figure") return cmd_figure(argc, argv);
  if (subcommand == "report") return cmd_report(argc, argv);
  if (subcommand == "replay") return cmd_replay(argc, argv);
  if (subcommand == "explain") return cmd_explain(argc, argv);
  if (subcommand == "serve") return cmd_serve(argc, argv);
  if (subcommand == "transcode") return cmd_transcode(argc, argv);
  if (subcommand == "econ-report") return cmd_econ_report(argc, argv);
  if (subcommand == "trace-report") return cmd_trace_report(argc, argv);
  if (subcommand == "bench-diff") return cmd_bench_diff(argc, argv);
  if (subcommand == "arena") return cmd_arena(argc, argv);
  return -1;
}

int unknown_subcommand(const std::string& subcommand) {
  std::cerr << "unknown subcommand: " << subcommand << "\n\n";
  print_usage(std::cerr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Exit-code contract: requested help prints to stdout and exits 0
  // (banner for 'help'/'--help', per-command usage for 'help <sub>' and
  // '<sub> --help'); usage errors -- no arguments, unknown subcommand --
  // diagnose on stderr and exit 2; runtime failures exit 1.
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string subcommand = argv[1];
  try {
    if (subcommand == "--help" || subcommand == "help") {
      if (subcommand == "help" && argc >= 3) {
        const char* help_argv[] = {argv[2], "--help"};
        const int code = dispatch(argv[2], 2, help_argv);
        return code == -1 ? unknown_subcommand(argv[2]) : code;
      }
      print_usage(std::cout);
      return 0;
    }
    const int code = dispatch(subcommand, argc - 1, argv + 1);
    return code == -1 ? unknown_subcommand(subcommand) : code;
  } catch (const mcs::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
