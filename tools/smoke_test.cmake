# CLI smoke test: generate a small scenario, run both mechanisms on it,
# audit the online mechanism (must pass -> exit 0) and the second-price
# baseline is *not* required to pass here (random small rounds may or may
# not expose its manipulation, so we only require it to execute).
set(SCENARIO ${WORKDIR}/cli_smoke_scenario.mcs)

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "mcs_cli ${ARGN} failed (${code}):\n${out}\n${err}")
  endif()
endfunction()

run_cli(generate --out ${SCENARIO} --slots 8 --lambda 3 --lambda-t 1.5
        --mean-cost 10 --value 25 --seed 7)
if(NOT EXISTS ${SCENARIO})
  message(FATAL_ERROR "generate did not write ${SCENARIO}")
endif()

run_cli(run --file ${SCENARIO} --mechanism online --allocation)
run_cli(run --file ${SCENARIO} --mechanism offline)
run_cli(run --file ${SCENARIO} --mechanism batched --batch 3)
run_cli(run --file ${SCENARIO} --mechanism online --reserve 24
        --profitable-only)

run_cli(run --file ${SCENARIO} --mechanism online --json ${WORKDIR}/cli_smoke_report.json)
if(NOT EXISTS ${WORKDIR}/cli_smoke_report.json)
  message(FATAL_ERROR "run --json did not write the report")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_report.json)

# Telemetry: --metrics-out must produce a valid mcs.telemetry.v1 JSON
# report with the headline work counters and a non-empty trace.
set(METRICS ${WORKDIR}/cli_smoke_metrics.json)
run_cli(run --file ${SCENARIO} --mechanism online --metrics-out ${METRICS} --trace)
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "run --metrics-out did not write the telemetry report")
endif()
file(READ ${METRICS} metrics_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # Full structural validation: parse errors abort, and the counters
  # object must carry the headline keys.
  string(JSON schema GET "${metrics_json}" schema)
  if(NOT schema STREQUAL "mcs.telemetry.v1")
    message(FATAL_ERROR "unexpected telemetry schema: ${schema}")
  endif()
  foreach(counter
      matching.hungarian.iterations
      auction.critical_value.probes
      auction.greedy.allocation_runs)
    string(JSON value GET "${metrics_json}" counters ${counter})
    if(value STREQUAL "")
      message(FATAL_ERROR "telemetry counters missing ${counter}")
    endif()
  endforeach()
  string(JSON trace_len LENGTH "${metrics_json}" trace)
  if(trace_len EQUAL 0)
    message(FATAL_ERROR "telemetry trace is empty")
  endif()
else()
  if(NOT metrics_json MATCHES "\"schema\":\"mcs\\.telemetry\\.v1\"")
    message(FATAL_ERROR "telemetry report lacks the schema marker")
  endif()
endif()
file(REMOVE ${METRICS})

run_cli(audit --file ${SCENARIO} --mechanism offline)

# Flight recorder: record a decision log, verify the header, and require
# the replay determinism oracle to pass (exit 0 = byte-identical outcome).
set(EVENTS ${WORKDIR}/cli_smoke_events.jsonl)
run_cli(run --file ${SCENARIO} --mechanism online --events-out ${EVENTS}
        --probe-critical)
if(NOT EXISTS ${EVENTS})
  message(FATAL_ERROR "run --events-out did not write the decision log")
endif()
file(READ ${EVENTS} events_head LIMIT 128)
if(NOT events_head MATCHES "mcs\\.events\\.v1")
  message(FATAL_ERROR "decision log lacks the mcs.events.v1 header")
endif()
run_cli(replay ${EVENTS})
run_cli(explain ${EVENTS} --phone 0)
file(REMOVE ${EVENTS})

run_cli(run --file ${SCENARIO} --mechanism offline --events-out ${EVENTS})
run_cli(replay ${EVENTS})
file(REMOVE ${EVENTS})

file(REMOVE ${SCENARIO})

# figure subcommand at tiny rep count (plumbing only).
run_cli(figure --id fig7 --reps 2 --csv ${WORKDIR}/cli_smoke_fig7.csv)
if(NOT EXISTS ${WORKDIR}/cli_smoke_fig7.csv)
  message(FATAL_ERROR "figure --csv did not write the series")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_fig7.csv)

# report subcommand at tiny rep count.
run_cli(report --out ${WORKDIR}/cli_smoke_report.html --reps 2)
if(NOT EXISTS ${WORKDIR}/cli_smoke_report.html)
  message(FATAL_ERROR "report did not write the HTML file")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_report.html)
