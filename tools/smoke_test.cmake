# CLI smoke test: generate a small scenario, run both mechanisms on it,
# audit the online mechanism (must pass -> exit 0) and the second-price
# baseline is *not* required to pass here (random small rounds may or may
# not expose its manipulation, so we only require it to execute).
set(SCENARIO ${WORKDIR}/cli_smoke_scenario.mcs)

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "mcs_cli ${ARGN} failed (${code}):\n${out}\n${err}")
  endif()
endfunction()

run_cli(generate --out ${SCENARIO} --slots 8 --lambda 3 --lambda-t 1.5
        --mean-cost 10 --value 25 --seed 7)
if(NOT EXISTS ${SCENARIO})
  message(FATAL_ERROR "generate did not write ${SCENARIO}")
endif()

run_cli(run --file ${SCENARIO} --mechanism online --allocation)
run_cli(run --file ${SCENARIO} --mechanism offline)
run_cli(run --file ${SCENARIO} --mechanism batched --batch 3)
run_cli(run --file ${SCENARIO} --mechanism online --reserve 24
        --profitable-only)

run_cli(run --file ${SCENARIO} --mechanism online --json ${WORKDIR}/cli_smoke_report.json)
if(NOT EXISTS ${WORKDIR}/cli_smoke_report.json)
  message(FATAL_ERROR "run --json did not write the report")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_report.json)

# Telemetry: --metrics-out must produce a valid mcs.telemetry.v1 JSON
# report with the headline work counters and a non-empty trace.
set(METRICS ${WORKDIR}/cli_smoke_metrics.json)
run_cli(run --file ${SCENARIO} --mechanism online --metrics-out ${METRICS} --trace)
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "run --metrics-out did not write the telemetry report")
endif()
file(READ ${METRICS} metrics_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # Full structural validation: parse errors abort, and the counters
  # object must carry the headline keys.
  string(JSON schema GET "${metrics_json}" schema)
  if(NOT schema STREQUAL "mcs.telemetry.v1")
    message(FATAL_ERROR "unexpected telemetry schema: ${schema}")
  endif()
  foreach(counter
      matching.hungarian.iterations
      auction.critical_value.probes
      auction.greedy.allocation_runs)
    string(JSON value GET "${metrics_json}" counters ${counter})
    if(value STREQUAL "")
      message(FATAL_ERROR "telemetry counters missing ${counter}")
    endif()
  endforeach()
  string(JSON trace_len LENGTH "${metrics_json}" trace)
  if(trace_len EQUAL 0)
    message(FATAL_ERROR "telemetry trace is empty")
  endif()
else()
  if(NOT metrics_json MATCHES "\"schema\":\"mcs\\.telemetry\\.v1\"")
    message(FATAL_ERROR "telemetry report lacks the schema marker")
  endif()
endif()

# Perf-regression sentinel: two telemetry reports of the same seeded run
# must self-compare clean (the work counters are deterministic), and the
# markdown verdict must land on stdout.
set(METRICS2 ${WORKDIR}/cli_smoke_metrics2.json)
run_cli(run --file ${SCENARIO} --mechanism online --metrics-out ${METRICS2})
execute_process(COMMAND ${CLI} bench-diff ${METRICS} ${METRICS2}
                        --json ${WORKDIR}/cli_smoke_bench_diff.json
                WORKING_DIRECTORY ${WORKDIR}
                RESULT_VARIABLE diff_code
                OUTPUT_VARIABLE diff_out
                ERROR_VARIABLE diff_err)
if(NOT diff_code EQUAL 0)
  message(FATAL_ERROR "bench-diff self-compare regressed (${diff_code}):\n${diff_out}\n${diff_err}")
endif()
if(NOT diff_out MATCHES "bench-diff: OK")
  message(FATAL_ERROR "bench-diff verdict missing from stdout:\n${diff_out}")
endif()
file(READ ${WORKDIR}/cli_smoke_bench_diff.json diff_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON diff_verdict GET "${diff_json}" verdict)
  if(NOT diff_verdict STREQUAL "ok")
    message(FATAL_ERROR "bench-diff JSON verdict: ${diff_verdict}")
  endif()
endif()
file(REMOVE ${WORKDIR}/cli_smoke_bench_diff.json)
file(REMOVE ${METRICS2})
file(REMOVE ${METRICS})

# Chrome trace export: --trace-out must write a trace JSON whose
# traceEvents carry the pipeline spans.
set(TRACE ${WORKDIR}/cli_smoke_trace.json)
run_cli(run --file ${SCENARIO} --mechanism online --trace-out ${TRACE})
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "run --trace-out did not write the chrome trace")
endif()
file(READ ${TRACE} trace_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON trace_events_len LENGTH "${trace_json}" traceEvents)
  if(trace_events_len LESS 2)
    message(FATAL_ERROR "chrome trace has no span events")
  endif()
  string(JSON first_name GET "${trace_json}" traceEvents 1 name)
  if(NOT first_name STREQUAL "cli.run")
    message(FATAL_ERROR "chrome trace root span is ${first_name}, want cli.run")
  endif()
else()
  if(NOT trace_json MATCHES "\"traceEvents\"")
    message(FATAL_ERROR "chrome trace lacks traceEvents")
  endif()
endif()
file(REMOVE ${TRACE})

run_cli(audit --file ${SCENARIO} --mechanism offline)

# Flight recorder: record a decision log, verify the header, and require
# the replay determinism oracle to pass (exit 0 = byte-identical outcome).
set(EVENTS ${WORKDIR}/cli_smoke_events.jsonl)
run_cli(run --file ${SCENARIO} --mechanism online --events-out ${EVENTS}
        --probe-critical)
if(NOT EXISTS ${EVENTS})
  message(FATAL_ERROR "run --events-out did not write the decision log")
endif()
file(READ ${EVENTS} events_head LIMIT 128)
if(NOT events_head MATCHES "mcs\\.events\\.v1")
  message(FATAL_ERROR "decision log lacks the mcs.events.v1 header")
endif()
run_cli(replay ${EVENTS})
run_cli(explain ${EVENTS} --phone 0)
file(REMOVE ${EVENTS})

run_cli(run --file ${SCENARIO} --mechanism offline --events-out ${EVENTS})
run_cli(replay ${EVENTS})
file(REMOVE ${EVENTS})

file(REMOVE ${SCENARIO})

# figure subcommand at tiny rep count (plumbing only).
run_cli(figure --id fig7 --reps 2 --csv ${WORKDIR}/cli_smoke_fig7.csv)
if(NOT EXISTS ${WORKDIR}/cli_smoke_fig7.csv)
  message(FATAL_ERROR "figure --csv did not write the series")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_fig7.csv)

# report subcommand at tiny rep count.
run_cli(report --out ${WORKDIR}/cli_smoke_report.html --reps 2)
if(NOT EXISTS ${WORKDIR}/cli_smoke_report.html)
  message(FATAL_ERROR "report did not write the HTML file")
endif()
file(REMOVE ${WORKDIR}/cli_smoke_report.html)
