// Tests for the core vocabulary: strong ids, slot intervals, contracts,
// logging.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/interval.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"

namespace mcs {
namespace {

TEST(TaggedTypes, ComparisonsAndValue) {
  EXPECT_LT(Slot{1}, Slot{2});
  EXPECT_EQ(PhoneId{3}, PhoneId{3});
  EXPECT_NE(TaskId{0}, TaskId{1});
  EXPECT_EQ(Slot{5}.value(), 5);
}

TEST(TaggedTypes, NextAndPrevSlot) {
  EXPECT_EQ(next(Slot{3}), Slot{4});
  EXPECT_EQ(prev(Slot{3}), Slot{2});
}

TEST(TaggedTypes, Hashable) {
  std::unordered_set<PhoneId> set;
  set.insert(PhoneId{1});
  set.insert(PhoneId{2});
  set.insert(PhoneId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(PhoneId{2}));
}

TEST(TaggedTypes, Streamable) {
  std::ostringstream os;
  os << Slot{7} << ' ' << PhoneId{2};
  EXPECT_EQ(os.str(), "7 2");
}

TEST(SlotInterval, ConstructionAndAccessors) {
  const SlotInterval iv = SlotInterval::of(2, 5);
  EXPECT_EQ(iv.begin(), Slot{2});
  EXPECT_EQ(iv.end(), Slot{5});
  EXPECT_EQ(iv.length(), 4);
}

TEST(SlotInterval, RejectsInvertedBounds) {
  EXPECT_THROW(std::ignore = SlotInterval::of(5, 2), ContractViolation);
}

TEST(SlotInterval, SingletonInterval) {
  const SlotInterval iv = SlotInterval::of(3, 3);
  EXPECT_EQ(iv.length(), 1);
  EXPECT_TRUE(iv.contains(Slot{3}));
  EXPECT_FALSE(iv.contains(Slot{2}));
}

TEST(SlotInterval, ContainsSlot) {
  const SlotInterval iv = SlotInterval::of(2, 5);
  EXPECT_FALSE(iv.contains(Slot{1}));
  EXPECT_TRUE(iv.contains(Slot{2}));
  EXPECT_TRUE(iv.contains(Slot{5}));
  EXPECT_FALSE(iv.contains(Slot{6}));
}

TEST(SlotInterval, ContainsIntervalIsReportLegality) {
  const SlotInterval active = SlotInterval::of(2, 5);
  EXPECT_TRUE(active.contains(SlotInterval::of(2, 5)));   // truthful
  EXPECT_TRUE(active.contains(SlotInterval::of(3, 4)));   // tighter
  EXPECT_FALSE(active.contains(SlotInterval::of(1, 5)));  // early arrival
  EXPECT_FALSE(active.contains(SlotInterval::of(2, 6)));  // late departure
}

TEST(SlotInterval, Intersect) {
  const SlotInterval a = SlotInterval::of(1, 4);
  const SlotInterval b = SlotInterval::of(3, 7);
  const auto inter = a.intersect(b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*inter, SlotInterval::of(3, 4));
  EXPECT_FALSE(a.intersect(SlotInterval::of(5, 9)).has_value());
  EXPECT_TRUE(a.intersect(SlotInterval::of(4, 9)).has_value());
}

TEST(SlotInterval, Streamable) {
  std::ostringstream os;
  os << SlotInterval::of(2, 5);
  EXPECT_EQ(os.str(), "[2,5]");
}

TEST(Contracts, ThrowWithContext) {
  try {
    MCS_EXPECTS(1 == 2, "numbers disagree");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("common_core_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MCS_ASSERT(2 + 2 == 4, "arithmetic"));
  EXPECT_NO_THROW(MCS_ENSURES(true, ""));
}

TEST(Errors, HierarchyCatchableAsBase) {
  EXPECT_THROW(throw InvalidScenarioError("x"), Error);
  EXPECT_THROW(throw SolverError("x"), Error);
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
}

TEST(Logging, RespectsLevelAndSink) {
  Logger& logger = Logger::instance();
  const LogLevel previous = logger.level();

  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });

  logger.set_level(LogLevel::kWarn);
  MCS_LOG_DEBUG("hidden " << 1);
  MCS_LOG_WARN("visible " << 2);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible 2");

  logger.set_level(LogLevel::kOff);
  MCS_LOG_ERROR("also hidden");
  EXPECT_EQ(captured.size(), 1u);

  // Restore defaults for other tests.
  logger.set_level(previous);
  logger.set_sink([](LogLevel, std::string_view) {});
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace mcs
