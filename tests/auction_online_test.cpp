// Tests for the online greedy mechanism (paper Section V): the Fig. 4
// allocation walkthrough, Algorithm 2 payments (hand-computed for every
// winner), the critical-value equivalence of Theorem 4 (cross-checked
// against an independent bisection), monotonicity, truthfulness and IR
// audits, and the paper-silent corner cases (scarcity, unprofitable bids).
//
// Hand computation on fig4_scenario (one task per slot, truthful bids):
//   slot winners: 1 -> phone 1 (5), 2 -> phone 0 (3), 3 -> phone 6 (6),
//                 4 -> phone 5 (8), 5 -> phone 3 (9); total cost 31.
//   Algorithm 2 payments: phone 1 -> 11, phone 0 -> 9 (the paper's worked
//   example), phone 6 -> 8, phone 5 -> 11, phone 3 -> 11.
#include "auction/online_greedy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/monotonicity.hpp"
#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/critical_value.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/scenario_io.hpp"
#include "model/strategy.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ------------------------------------------------------------- allocation

TEST(OnlineGreedy, Fig4SlotBySlotAllocationMatchesPaper) {
  const model::Scenario s = model::fig4_scenario();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  ASSERT_EQ(run.slots.size(), 5u);
  // Paper prose: Smartphone 2 wins slot 1, Smartphone 1 wins slot 2,
  // Smartphone 7 wins slot 3 (0-based phones 1, 0, 6).
  EXPECT_EQ(run.slots[0].winners, std::vector<PhoneId>{PhoneId{1}});
  EXPECT_EQ(run.slots[1].winners, std::vector<PhoneId>{PhoneId{0}});
  EXPECT_EQ(run.slots[2].winners, std::vector<PhoneId>{PhoneId{6}});
  EXPECT_EQ(run.slots[3].winners, std::vector<PhoneId>{PhoneId{5}});
  EXPECT_EQ(run.slots[4].winners, std::vector<PhoneId>{PhoneId{3}});
  for (const GreedySlotRecord& record : run.slots) {
    EXPECT_EQ(record.unallocated_tasks, 0);
  }
}

TEST(OnlineGreedy, Fig4DynamicPoolAtSlot3MatchesPaper) {
  // Fig. 4's dotted rectangle: Smartphones 3, 6, 7 (0-based 2, 5, 6) are
  // the active unallocated pool in slot 3, cheapest first.
  const model::Scenario s = model::fig4_scenario();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  EXPECT_EQ(run.slots[2].pool,
            (std::vector<PhoneId>{PhoneId{6}, PhoneId{5}, PhoneId{2}}));
}

TEST(OnlineGreedy, PoolOrderBreaksCostTiesById) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 4)
                                .phone(1, 1, 4)
                                .task(1)
                                .build();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  EXPECT_EQ(run.slots[0].winners, std::vector<PhoneId>{PhoneId{0}});
}

TEST(OnlineGreedy, DepartedPhonesLeaveThePool) {
  // Phone 0 active only in slot 1 with no task there; it must not win the
  // slot-2 task despite being cheapest overall.
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(10)
                                .phone(1, 1, 1)
                                .phone(2, 2, 5)
                                .task(2)
                                .build();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  EXPECT_FALSE(run.allocation.is_winner(PhoneId{0}));
  EXPECT_TRUE(run.allocation.is_winner(PhoneId{1}));
}

TEST(OnlineGreedy, MultipleTasksPerSlotTakeCheapestFirst) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 7)
                                .phone(1, 1, 2)
                                .phone(1, 1, 5)
                                .tasks(1, 2)
                                .build();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  EXPECT_EQ(run.slots[0].winners,
            (std::vector<PhoneId>{PhoneId{1}, PhoneId{2}}));
  EXPECT_FALSE(run.allocation.is_winner(PhoneId{0}));
}

TEST(OnlineGreedy, EmptyPoolLeavesTasksUnallocated) {
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 1, 3).tasks(2, 2).build();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids());
  EXPECT_EQ(run.slots[1].unallocated_tasks, 2);
  EXPECT_EQ(run.allocation.allocated_count(), 0);
}

TEST(OnlineGreedy, ExcludePhoneReproducesPaperCounterfactual) {
  // Removing phone 0: the paper says the tasks go to smartphones 5, 7, 6, 4
  // (0-based 4, 6, 5, 3) with costs 4, 6, 8, 9 in slots 2-5.
  const model::Scenario s = model::fig4_scenario();
  const GreedyRun run =
      run_greedy_allocation(s, s.truthful_bids(), {}, PhoneId{0});
  EXPECT_EQ(run.slots[1].winners, std::vector<PhoneId>{PhoneId{4}});
  EXPECT_EQ(run.slots[2].winners, std::vector<PhoneId>{PhoneId{6}});
  EXPECT_EQ(run.slots[3].winners, std::vector<PhoneId>{PhoneId{5}});
  EXPECT_EQ(run.slots[4].winners, std::vector<PhoneId>{PhoneId{3}});
}

TEST(OnlineGreedy, LastSlotLimitTruncatesTheRun) {
  const model::Scenario s = model::fig4_scenario();
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids(), {},
                                              std::nullopt, /*last_slot=*/2);
  EXPECT_EQ(run.slots.size(), 2u);
}

TEST(OnlineGreedy, ProfitableOnlySkipsOverpricedBids) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(5)
                                .phone(1, 1, 9)  // above value
                                .phone(1, 1, 3)
                                .task(1)
                                .build();
  OnlineGreedyConfig config;
  config.allocate_only_profitable = true;
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids(), config);
  EXPECT_TRUE(run.allocation.is_winner(PhoneId{1}));

  // And with only the overpriced phone, the task stays unallocated (while
  // the paper-faithful default would allocate it).
  const model::Scenario lone =
      model::ScenarioBuilder(1).value(5).phone(1, 1, 9).task(1).build();
  EXPECT_EQ(run_greedy_allocation(lone, lone.truthful_bids(), config)
                .allocation.allocated_count(),
            0);
  EXPECT_EQ(run_greedy_allocation(lone, lone.truthful_bids())
                .allocation.allocated_count(),
            1);
}

// ---------------------------------------------------------------- payments

TEST(OnlineGreedy, Fig4PaymentForPhone0MatchesPaperWorkedExample) {
  const model::Scenario s = model::fig4_scenario();
  const OnlineGreedyMechanism mechanism;
  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(9));
}

TEST(OnlineGreedy, Fig4AllPaymentsHandComputed) {
  const model::Scenario s = model::fig4_scenario();
  const Outcome outcome = OnlineGreedyMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.payments[1], mu(11));
  EXPECT_EQ(outcome.payments[0], mu(9));
  EXPECT_EQ(outcome.payments[6], mu(8));
  EXPECT_EQ(outcome.payments[5], mu(11));
  EXPECT_EQ(outcome.payments[3], mu(11));
  // Losers paid nothing.
  EXPECT_EQ(outcome.payments[2], Money{});
  EXPECT_EQ(outcome.payments[4], Money{});
  EXPECT_EQ(outcome.total_payment(), mu(50));
  EXPECT_EQ(outcome.social_welfare(s), mu(5 * 20 - 31));
}

TEST(OnlineGreedy, PaymentNeverBelowClaimedCost) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const Outcome outcome = OnlineGreedyMechanism{}.run(s, bids);
  for (const PhoneId winner : outcome.allocation.winners()) {
    EXPECT_GE(outcome.payments[static_cast<std::size_t>(winner.value())],
              bids[static_cast<std::size_t>(winner.value())].claimed_cost);
  }
}

TEST(OnlineGreedy, ScarcityPaymentPolicies) {
  // A single phone: without it every task in its window is unserved, so
  // its critical value is unbounded.
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 2, 3).task(1).build();
  {
    const OnlineGreedyMechanism cap;  // default kCapAtValue
    EXPECT_EQ(cap.run_truthful(s).payments[0], mu(10));
  }
  {
    OnlineGreedyConfig config;
    config.scarce_payment = OnlineGreedyConfig::ScarcePayment::kOwnBid;
    const OnlineGreedyMechanism own(config);
    EXPECT_EQ(own.run_truthful(s).payments[0], mu(3));
  }
}

TEST(OnlineGreedy, ScarcityManipulationAndTheProfitableGuard) {
  // Under supply scarcity the critical value is unbounded and *no* bounded
  // payment is truthful: in paper-faithful mode (allocate at any bid) a
  // lone expensive phone profits from inflating its bid. The
  // allocate_only_profitable guard restores exact truthfulness: bids above
  // nu can never win, so the capped payment nu IS the critical value.
  // (This is the supply assumption the paper leaves implicit; DESIGN.md
  // Section 5.)
  const model::Scenario s =
      model::ScenarioBuilder(1).value(10).phone(1, 1, 8).task(1).build();
  const model::BidProfile truthful = s.truthful_bids();
  const model::BidProfile inflated = model::with_bid(
      truthful, PhoneId{0}, model::Bid{SlotInterval::of(1, 1), mu(50)});

  {
    const OnlineGreedyMechanism faithful;  // paper-faithful
    const Money honest = faithful.run(s, truthful).utility(s, PhoneId{0});
    const Money gamed = faithful.run(s, inflated).utility(s, PhoneId{0});
    EXPECT_EQ(honest, mu(2));   // paid the nu cap
    EXPECT_EQ(gamed, mu(42));   // paid its own inflated bid: manipulable
  }
  {
    OnlineGreedyConfig config;
    config.allocate_only_profitable = true;
    const OnlineGreedyMechanism guarded(config);
    EXPECT_EQ(guarded.run(s, truthful).utility(s, PhoneId{0}), mu(2));
    // The inflated bid no longer wins at all.
    EXPECT_EQ(guarded.run(s, inflated).utility(s, PhoneId{0}), Money{});
    // And the full deviation-grid audit passes with the guard on.
    const analysis::TruthfulnessReport report =
        analysis::audit_truthfulness(guarded, s);
    EXPECT_TRUE(report.truthful()) << report.summary();
  }
}

TEST(OnlineGreedy, ReservePriceExcludesExpensiveBids) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .phone(1, 1, 15)
                                .phone(1, 1, 4)
                                .task(1)
                                .build();
  OnlineGreedyConfig config;
  config.reserve_price = mu(10);
  const GreedyRun run = run_greedy_allocation(s, s.truthful_bids(), config);
  EXPECT_TRUE(run.allocation.is_winner(PhoneId{1}));
  EXPECT_FALSE(run.allocation.is_winner(PhoneId{0}));
  // Phone 0 never entered the pool at all.
  EXPECT_EQ(run.slots[0].pool, std::vector<PhoneId>{PhoneId{1}});
}

TEST(OnlineGreedy, ReservePriceIsTheScarcePaymentAndRestoresTruthfulness) {
  // A lone phone under scarcity: with a reserve the critical value is
  // exactly the reserve (bids above it never win), so the mechanism is
  // truthful even here -- unlike the uncapped paper-faithful mode (see
  // ScarcityManipulationAndTheProfitableGuard).
  const model::Scenario s =
      model::ScenarioBuilder(1).value(20).phone(1, 1, 8).task(1).build();
  OnlineGreedyConfig config;
  config.reserve_price = mu(12);
  const OnlineGreedyMechanism mechanism(config);

  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(12));
  EXPECT_EQ(outcome.utility(s, PhoneId{0}), mu(4));

  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();

  // Explicit: the big-lie manipulation from the unguarded mode now fails.
  const model::BidProfile inflated = model::with_bid(
      s.truthful_bids(), PhoneId{0}, model::Bid{SlotInterval::of(1, 1), mu(50)});
  EXPECT_EQ(mechanism.run(s, inflated).utility(s, PhoneId{0}), Money{});
}

TEST(OnlineGreedy, ReserveComposesWithProfitableOnly) {
  // Reserve 12, profitable-only on, task worth 9: eligibility needs
  // b <= min(12, 9) = 9, and the scarce payment caps there too.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 9)
                                .phone(1, 1, 5)
                                .build();
  OnlineGreedyConfig config;
  config.reserve_price = mu(12);
  config.allocate_only_profitable = true;
  const OnlineGreedyMechanism mechanism(config);
  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(outcome.payments[0], mu(9));

  // A phone above the per-task threshold is not allocated.
  const model::BidProfile pricey = model::with_bid(
      s.truthful_bids(), PhoneId{0}, model::Bid{SlotInterval::of(1, 1), mu(10)});
  EXPECT_FALSE(mechanism.run(s, pricey).allocation.is_winner(PhoneId{0}));
}

TEST(OnlineGreedy, ReservePriceKeepsNormalCompetitionUntouched) {
  // With ample supply below the reserve, payments equal the unguarded ones.
  const model::Scenario s = model::fig4_scenario();
  OnlineGreedyConfig config;
  config.reserve_price = mu(15);  // above every cost in the instance
  const Outcome guarded = OnlineGreedyMechanism(config).run_truthful(s);
  const Outcome plain = OnlineGreedyMechanism{}.run_truthful(s);
  EXPECT_EQ(guarded.payments, plain.payments);
}

TEST(OnlineGreedy, SecondPhoneRemovesScarcity) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 3)
                                .phone(1, 1, 7)
                                .task(1)
                                .build();
  const Outcome outcome = OnlineGreedyMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(7));  // classic second price
  EXPECT_EQ(outcome.payments[1], Money{});
}

// ----------------------------------------------- critical-value equivalence

TEST(OnlineGreedy, Fig4PaymentsEqualBisectedCriticalValues) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const OnlineGreedyMechanism mechanism;
  const Outcome outcome = mechanism.run(s, bids);
  for (const PhoneId winner : outcome.allocation.winners()) {
    const auto critical = greedy_critical_value(s, bids, winner);
    ASSERT_TRUE(critical.has_value()) << "phone " << winner;
    const Money payment =
        outcome.payments[static_cast<std::size_t>(winner.value())];
    // The bisection brackets the threshold to within one micro-unit.
    EXPECT_LE((payment - *critical).micros() < 0
                  ? (*critical - payment).micros()
                  : (payment - *critical).micros(),
              1)
        << "phone " << winner;
  }
}

class OnlineCriticalValueProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineCriticalValueProperty, PaymentIsCriticalValue) {
  // Random scarcity-free instances: every phone spans the whole round and
  // there are strictly more phones than tasks, so no counterfactual run
  // ever starves (DESIGN.md Section 5, scarcity policy).
  Rng rng(GetParam());
  const int tasks = static_cast<int>(rng.uniform_int(1, 5));
  const int phones = tasks + 1 + static_cast<int>(rng.uniform_int(1, 4));
  model::ScenarioBuilder builder(4);
  builder.value(100);
  for (int i = 0; i < phones; ++i) {
    builder.phone(1, 4, rng.uniform_int(1, 60));
  }
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
  }
  const model::Scenario s = builder.build();
  const model::BidProfile bids = s.truthful_bids();
  const OnlineGreedyMechanism mechanism;
  const Outcome outcome = mechanism.run(s, bids);

  for (const PhoneId winner : outcome.allocation.winners()) {
    const auto critical = greedy_critical_value(s, bids, winner);
    ASSERT_TRUE(critical.has_value());
    const Money payment =
        outcome.payments[static_cast<std::size_t>(winner.value())];
    const std::int64_t gap = payment >= *critical
                                 ? (payment - *critical).micros()
                                 : (*critical - payment).micros();
    EXPECT_LE(gap, 1) << "phone " << winner << " payment " << payment
                      << " critical " << *critical;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineCriticalValueProperty,
                         ::testing::Range<std::uint64_t>(100, 130));

// -------------------------------------------------------------- theorems

TEST(OnlineGreedy, Fig4MonotonicityAuditPasses) {
  const model::Scenario s = model::fig4_scenario();
  const analysis::MonotonicityReport report =
      analysis::audit_greedy_monotonicity(s, s.truthful_bids());
  EXPECT_TRUE(report.monotone()) << report.summary();
  EXPECT_EQ(report.winners_checked, 5);
}

TEST(OnlineGreedy, Fig4TruthfulnessAuditPasses) {
  const model::Scenario s = model::fig4_scenario();
  const OnlineGreedyMechanism mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();
  EXPECT_GT(report.deviations_tested, 200);
}

TEST(OnlineGreedy, Fig4IndividualRationality) {
  const model::Scenario s = model::fig4_scenario();
  const analysis::RationalityReport report =
      analysis::audit_individual_rationality(OnlineGreedyMechanism{}, s);
  EXPECT_TRUE(report.individually_rational()) << report.summary();
}

class OnlineRandomAudit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineRandomAudit, TruthfulMonotoneAndRationalOnRandomInstance) {
  // Scarcity-free family (see above) with random full-round phones.
  Rng rng(GetParam());
  const int tasks = static_cast<int>(rng.uniform_int(1, 4));
  const int phones = tasks + 2 + static_cast<int>(rng.uniform_int(0, 3));
  model::ScenarioBuilder builder(5);
  builder.value(80);
  for (int i = 0; i < phones; ++i) {
    builder.phone(1, 5, rng.uniform_int(1, 50));
  }
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
  }
  const model::Scenario s = builder.build();
  const OnlineGreedyMechanism mechanism;

  const analysis::TruthfulnessReport truth =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(truth.truthful()) << truth.summary();

  const analysis::MonotonicityReport mono =
      analysis::audit_greedy_monotonicity(s, s.truthful_bids());
  EXPECT_TRUE(mono.monotone()) << mono.summary();

  const analysis::RationalityReport rationality =
      analysis::audit_individual_rationality(mechanism, s);
  EXPECT_TRUE(rationality.individually_rational()) << rationality.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineRandomAudit,
                         ::testing::Range<std::uint64_t>(200, 220));

TEST(OnlineGreedy, TruthfulnessHoldsAgainstStrategicOthers) {
  const model::Scenario s = model::fig4_scenario();
  Rng rng(7);
  const model::BidProfile base =
      model::apply_strategy(s, model::CostMarkupStrategy(1.3), rng);
  const OnlineGreedyMechanism mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s, base);
  EXPECT_TRUE(report.truthful()) << report.summary();
}

class OnlineReserveGuardedAudit
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineReserveGuardedAudit, TruthfulOnArbitraryWindowedInstances) {
  // With a reserve price the critical value is bounded by the reserve even
  // under supply scarcity, so the mechanism is exactly truthful on
  // *arbitrary* instances -- no scarcity-free construction needed (unlike
  // the paper-faithful audits above).
  Rng rng(GetParam());
  model::ScenarioBuilder builder(5);
  builder.value(40);
  const int phones = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < phones; ++i) {
    const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 5));
    const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 5));
    builder.phone(a, d, rng.uniform_int(1, 60));  // some above the reserve
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 5));
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
  }
  const model::Scenario s = builder.build();

  OnlineGreedyConfig config;
  config.reserve_price = mu(50);
  const OnlineGreedyMechanism mechanism(config);
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineReserveGuardedAudit,
                         ::testing::Range<std::uint64_t>(600, 625));

TEST(OnlineGreedy, WindowedRandomInstancesStayRationalAndMonotone) {
  // Arbitrary windows (scarcity possible): IR and monotonicity must still
  // hold -- only the *strict critical value* claim needs the supply
  // assumption.
  Rng rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    model::ScenarioBuilder builder(6);
    builder.value(100);
    const int phones = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 6));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 6));
      builder.phone(a, d, rng.uniform_int(1, 60));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 6)));
    }
    const model::Scenario s = builder.build();

    const analysis::RationalityReport rationality =
        analysis::audit_individual_rationality(OnlineGreedyMechanism{}, s);
    EXPECT_TRUE(rationality.individually_rational())
        << "trial " << trial << ": " << rationality.summary();

    const analysis::MonotonicityReport mono =
        analysis::audit_greedy_monotonicity(s, s.truthful_bids());
    EXPECT_TRUE(mono.monotone()) << "trial " << trial << ": "
                                 << mono.summary();
  }
}

TEST(OnlineGreedy, DepartureIndexedPoolMatchesDefinitionOnRandomWindows) {
  // The departure sweep is indexed by reported departure slot (erase only
  // actual departures) instead of scanning every pool entry each slot.
  // Pin the observable contract: at every slot t the recorded pool is
  // exactly the phones with a~ <= t <= d~ that no earlier slot allocated,
  // in (claimed cost, id) order -- recomputed here from the definition.
  Rng rng(8642);
  for (int trial = 0; trial < 30; ++trial) {
    model::ScenarioBuilder builder(7);
    builder.value(40);
    const int phones = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 7));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 7));
      builder.phone(a, d, rng.uniform_int(1, 25));  // duplicate costs likely
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 8));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 7)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    const GreedyRun run = run_greedy_allocation(s, bids);

    std::vector<bool> allocated(bids.size(), false);
    for (const GreedySlotRecord& record : run.slots) {
      const auto t = record.slot.value();
      std::vector<PhoneId> expected;
      for (std::size_t i = 0; i < bids.size(); ++i) {
        if (!allocated[i] && bids[i].window.begin().value() <= t &&
            t <= bids[i].window.end().value()) {
          expected.push_back(PhoneId{static_cast<std::int32_t>(i)});
        }
      }
      std::sort(expected.begin(), expected.end(),
                [&](PhoneId a, PhoneId b) {
                  const Money ca = bids[static_cast<std::size_t>(a.value())]
                                       .claimed_cost;
                  const Money cb = bids[static_cast<std::size_t>(b.value())]
                                       .claimed_cost;
                  if (ca != cb) return ca < cb;
                  return a.value() < b.value();
                });
      EXPECT_EQ(record.pool, expected)
          << "trial " << trial << " slot " << t;
      for (const PhoneId winner : record.winners) {
        allocated[static_cast<std::size_t>(winner.value())] = true;
      }
    }
  }
}

TEST(OnlineGreedy, CriticalValueBoundSaturatesOnAdversarialScenarioFiles) {
  // Regression: upper_bound = max_value + max_cost + 1 used raw int64
  // addition, which is UB when a scenario_io file declares a task value
  // near Money::max(). The bound now saturates and the bisection still
  // terminates with the exact rival-cost threshold.
  std::istringstream is(
      "mcs-scenario v1\n"
      "slots 2\n"
      "value 2305843009213.693951\n"  // Money::max(): the printable ceiling
      "phone 1 2 5\n"
      "phone 1 2 7\n"
      "task 1\n");
  const model::Scenario s = model::read_scenario(is);
  ASSERT_EQ(s.task_value, Money::max());
  const std::optional<Money> critical =
      greedy_critical_value(s, s.truthful_bids(), PhoneId{0});
  ASSERT_TRUE(critical.has_value());
  // Phone 0 beats the rival up to its cost (ties break toward the lower
  // id), so the threshold sits one micro above the rival's 7.
  EXPECT_EQ(*critical, Money::from_micros(7'000'001));
}

TEST(OnlineGreedy, SaturatingAddClampsInsteadOfOverflowing) {
  EXPECT_EQ(Money::saturating_add(Money::max(), Money::from_units(1)),
            Money::max());
  EXPECT_EQ(Money::saturating_add(-Money::max(), -Money::from_units(1)),
            -Money::max());
  EXPECT_EQ(Money::saturating_add(Money::from_units(2), Money::from_units(3)),
            Money::from_units(5));
  EXPECT_EQ(Money::saturating_add(Money::max(), -Money::max()), Money{});
}

}  // namespace
}  // namespace mcs::auction
