// Tests for the weighted-sensing-query extension: per-task value overrides
// threaded through the model, the offline VCG mechanism, the online greedy
// mechanism (value-descending service order, per-task profitability,
// value-capped scarcity payments), and the metrics.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/critical_value.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/scenario.hpp"

namespace mcs {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(WeightedTasks, ValueOfFallsBackToScenarioNu) {
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(20)
                                .valued_task(1, 30)
                                .task(2)
                                .phone(1, 2, 1)
                                .build();
  EXPECT_EQ(s.value_of(TaskId{0}), mu(30));
  EXPECT_EQ(s.value_of(TaskId{1}), mu(20));
  EXPECT_TRUE(s.has_weighted_tasks());

  const model::Scenario plain =
      model::ScenarioBuilder(1).value(20).task(1).phone(1, 1, 1).build();
  EXPECT_FALSE(plain.has_weighted_tasks());
}

TEST(WeightedTasks, BuilderSortKeepsValuesAttached) {
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(10)
                                .valued_task(3, 99)
                                .valued_task(1, 7)
                                .build();
  // After sorting by slot, the slot-1 task (value 7) is id 0.
  EXPECT_EQ(s.tasks[0].slot, Slot{1});
  EXPECT_EQ(s.value_of(TaskId{0}), mu(7));
  EXPECT_EQ(s.value_of(TaskId{1}), mu(99));
}

TEST(WeightedTasks, ValidationRejectsNegativeValue) {
  model::Scenario s =
      model::ScenarioBuilder(1).value(10).valued_task(1, 5).build();
  s.tasks[0].value = mu(-1);
  EXPECT_THROW(s.validate(), InvalidScenarioError);
}

TEST(WeightedTasks, OfflineGraphUsesPerTaskValues) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 30)
                                .task(1)
                                .phone(1, 1, 4)
                                .build();
  const matching::WeightMatrix g =
      auction::OfflineVcgMechanism::build_graph(s, s.truthful_bids());
  EXPECT_EQ(g.weight(0, 0), mu(26));  // 30 - 4
  EXPECT_EQ(g.weight(1, 0), mu(16));  // 20 - 4
}

TEST(WeightedTasks, OfflineServesValuableTaskWhenSupplyScarce) {
  // One phone, two tasks in its window: the optimum takes the 30 task.
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(6)
                                .valued_task(1, 30)
                                .task(2)
                                .phone(1, 2, 10)
                                .build();
  const auction::Outcome outcome =
      auction::OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.allocation.phone_for(TaskId{0}), PhoneId{0});
  EXPECT_FALSE(outcome.allocation.phone_for(TaskId{1}).has_value());
  EXPECT_EQ(outcome.social_welfare(s), mu(20));
  // VCG: externality is the whole 30-value task.
  EXPECT_EQ(outcome.payments[0], mu(30));
}

TEST(WeightedTasks, OnlineServesHighValueTasksFirstInASlot) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 5)  // id 0, low value
                                .task(1)            // id 1, value 20
                                .phone(1, 1, 3)
                                .build();
  const auction::GreedyRun run =
      auction::run_greedy_allocation(s, s.truthful_bids());
  EXPECT_EQ(run.allocation.phone_for(TaskId{1}), PhoneId{0});
  EXPECT_FALSE(run.allocation.phone_for(TaskId{0}).has_value());
  ASSERT_EQ(run.slots[0].unserved.size(), 1u);
  EXPECT_EQ(run.slots[0].unserved[0], TaskId{0});
}

TEST(WeightedTasks, ScarcityPaymentCapsAtDearestUnservedTask) {
  // W1: one phone, tasks worth 30 and 6; without the phone both go
  // unserved, so the cap is 30 -- and VCG agrees exactly.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 30)
                                .valued_task(1, 6)
                                .phone(1, 1, 10)
                                .build();
  const auction::Outcome online =
      auction::OnlineGreedyMechanism{}.run_truthful(s);
  EXPECT_EQ(online.payments[0], mu(30));
  const auction::Outcome offline =
      auction::OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(offline.payments[0], mu(30));
  EXPECT_EQ(online.social_welfare(s), mu(20));
}

TEST(WeightedTasks, ProfitableOnlyChecksEligibilityPerTask) {
  // W2: tasks worth 30 and 6; phones cost 8 and 10. B (8) serves the
  // 30-task; A (10) is too expensive for the 6-task and stays unallocated.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 30)
                                .valued_task(1, 6)
                                .phone(1, 1, 10)  // A
                                .phone(1, 1, 8)   // B
                                .build();
  auction::OnlineGreedyConfig config;
  config.allocate_only_profitable = true;
  const auction::OnlineGreedyMechanism mechanism(config);
  const auction::Outcome outcome = mechanism.run_truthful(s);
  EXPECT_EQ(outcome.allocation.phone_for(TaskId{0}), PhoneId{1});
  EXPECT_FALSE(outcome.allocation.phone_for(TaskId{1}).has_value());
  // B's critical value: above 10 it loses the 30-task to A and is too
  // expensive for the 6-task.
  EXPECT_EQ(outcome.payments[1], mu(10));
  EXPECT_EQ(outcome.payments[0], Money{});

  // A phone above the scenario nu can still win a high-value task.
  const model::Scenario premium = model::ScenarioBuilder(1)
                                      .value(20)
                                      .valued_task(1, 100)
                                      .phone(1, 1, 60)
                                      .build();
  const auction::Outcome premium_outcome = mechanism.run_truthful(premium);
  EXPECT_TRUE(premium_outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(premium_outcome.payments[0], mu(100));  // scarce cap = task value
}

TEST(WeightedTasks, OfflineOnlineAuditsPassOnWeightedInstances) {
  Rng rng(3141);
  for (int trial = 0; trial < 8; ++trial) {
    model::ScenarioBuilder builder(4);
    builder.value(40);
    const int tasks = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < tasks; ++k) {
      builder.valued_task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)),
                          rng.uniform_int(20, 90));
    }
    // Scarcity-free: full-round phones, more phones than tasks.
    const int phones = tasks + 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < phones; ++i) {
      builder.phone(1, 4, rng.uniform_int(1, 19));
    }
    const model::Scenario s = builder.build();

    const analysis::TruthfulnessReport offline = analysis::audit_truthfulness(
        auction::OfflineVcgMechanism{}, s);
    EXPECT_TRUE(offline.truthful()) << "trial " << trial << ": "
                                    << offline.summary();
    const analysis::TruthfulnessReport online = analysis::audit_truthfulness(
        auction::OnlineGreedyMechanism{}, s);
    EXPECT_TRUE(online.truthful()) << "trial " << trial << ": "
                                   << online.summary();
  }
}

TEST(WeightedTasks, OnlinePaymentStillCriticalValueOnWeightedInstances) {
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    model::ScenarioBuilder builder(3);
    builder.value(50);
    const int tasks = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < tasks; ++k) {
      builder.valued_task(static_cast<Slot::rep_type>(rng.uniform_int(1, 3)),
                          rng.uniform_int(40, 100));
    }
    const int phones = tasks + 2;
    for (int i = 0; i < phones; ++i) {
      builder.phone(1, 3, rng.uniform_int(1, 30));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    const auction::OnlineGreedyMechanism mechanism;
    const auction::Outcome outcome = mechanism.run(s, bids);
    for (const PhoneId winner : outcome.allocation.winners()) {
      const auto critical = auction::greedy_critical_value(s, bids, winner);
      ASSERT_TRUE(critical.has_value());
      const Money payment =
          outcome.payments[static_cast<std::size_t>(winner.value())];
      const std::int64_t gap = payment >= *critical
                                   ? (payment - *critical).micros()
                                   : (*critical - payment).micros();
      EXPECT_LE(gap, 1) << "trial " << trial << " phone " << winner;
    }
  }
}

TEST(WeightedTasks, MetricsUsePerTaskValues) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .valued_task(1, 30)
                                .phone(1, 1, 10)
                                .phone(1, 1, 12)
                                .build();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const analysis::RoundMetrics m = analysis::compute_metrics(s, bids, outcome);
  EXPECT_EQ(m.social_welfare, mu(20));        // 30 - 10
  EXPECT_EQ(m.total_payment, mu(12));         // second price
  EXPECT_EQ(m.platform_utility, mu(18));      // 30 - 12
}

TEST(WeightedTasks, UniformInstancesUnchangedByExtension) {
  // Regression guard: with no overrides the weighted code paths must
  // reproduce the paper numbers exactly (spot check: the Fig. 4 payments).
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 3)
                                .phone(1, 1, 7)
                                .task(1)
                                .build();
  EXPECT_EQ(auction::OnlineGreedyMechanism{}.run_truthful(s).payments[0],
            mu(7));
}

}  // namespace
}  // namespace mcs
