// Tests for the batched-matching lookahead ablation: its extremes must
// coincide with the paper's two mechanisms, intermediate batch sizes must
// interpolate welfare, and the loss of time-truthfulness for any finite
// lookahead must be demonstrable (the generalized Fig. 5 lesson).
#include "auction/batched_matching.hpp"

#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(BatchedMatching, RejectsZeroBatchSize) {
  EXPECT_THROW(BatchedMatchingMechanism(BatchedMatchingConfig{0}),
               ContractViolation);
}

TEST(BatchedMatching, NameCarriesTheWindow) {
  EXPECT_EQ(BatchedMatchingMechanism(BatchedMatchingConfig{5}).name(),
            "batched-matching(w=5)");
}

TEST(BatchedMatching, FullRoundBatchEqualsOfflineVcgExactly) {
  const model::Scenario s = model::fig4_scenario();
  const BatchedMatchingMechanism batched(BatchedMatchingConfig{5});
  const OfflineVcgMechanism offline;
  const Outcome a = batched.run_truthful(s);
  const Outcome b = offline.run_truthful(s);
  EXPECT_EQ(a.payments, b.payments);
  for (int t = 0; t < s.task_count(); ++t) {
    EXPECT_EQ(a.allocation.phone_for(TaskId{t}),
              b.allocation.phone_for(TaskId{t}));
  }
}

TEST(BatchedMatching, OversizedBatchAlsoEqualsOffline) {
  const model::Scenario s = model::fig4_scenario();
  const Outcome a =
      BatchedMatchingMechanism(BatchedMatchingConfig{100}).run_truthful(s);
  const Outcome b = OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(a.payments, b.payments);
}

TEST(BatchedMatching, UnitBatchMatchesGreedyAllocationOnFig4) {
  // With one task per slot and distinct costs, the per-slot optimum is the
  // greedy choice; payments become per-slot VCG = second price.
  const model::Scenario s = model::fig4_scenario();
  const Outcome batched =
      BatchedMatchingMechanism(BatchedMatchingConfig{1}).run_truthful(s);
  const GreedyRun greedy = run_greedy_allocation(s, s.truthful_bids());
  for (int t = 0; t < s.task_count(); ++t) {
    EXPECT_EQ(batched.allocation.phone_for(TaskId{t}),
              greedy.allocation.phone_for(TaskId{t}))
        << "task " << t;
  }
  // Slot 2 winner (phone 0, cost 3) is paid the slot runner-up 4 -- the
  // Fig. 5(a) second-price number, NOT Algorithm 2's 9.
  EXPECT_EQ(batched.payments[0], mu(4));
}

TEST(BatchedMatching, AnyFiniteLookaheadLosesTimeTruthfulness) {
  // The generalized Fig. 5: with w = 1 on the Fig. 4 instance the delayed
  // arrival manipulation is profitable again.
  const model::Scenario s = model::fig4_scenario();
  const BatchedMatchingMechanism unit(BatchedMatchingConfig{1});
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(unit, s);
  EXPECT_FALSE(report.truthful())
      << "unit lookahead should be manipulable on Fig. 4";

  // While the full-round batch (= offline VCG) passes the same audit.
  const BatchedMatchingMechanism full(BatchedMatchingConfig{5});
  EXPECT_TRUE(analysis::audit_truthfulness(full, s).truthful());
}

TEST(BatchedMatching, WelfareInterpolatesTowardOffline) {
  Rng rng(606);
  model::WorkloadConfig workload;
  workload.num_slots = 20;
  workload.phone_arrival_rate = 3.0;
  workload.task_arrival_rate = 1.5;
  workload.mean_cost = 12.0;
  workload.task_value = mu(30);

  double w1_total = 0.0;
  double w5_total = 0.0;
  double offline_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const model::Scenario s = model::generate_scenario(workload, rng);
    const model::BidProfile bids = s.truthful_bids();
    const Money w1 = BatchedMatchingMechanism(BatchedMatchingConfig{1})
                         .run(s, bids)
                         .claimed_welfare(s, bids);
    const Money w5 = BatchedMatchingMechanism(BatchedMatchingConfig{5})
                         .run(s, bids)
                         .claimed_welfare(s, bids);
    const Money offline =
        OfflineVcgMechanism::optimal_claimed_welfare(s, bids);
    // Per-instance: every batch size is dominated by the offline optimum.
    EXPECT_LE(w1, offline);
    EXPECT_LE(w5, offline);
    w1_total += w1.to_double();
    w5_total += w5.to_double();
    offline_total += offline.to_double();
  }
  // In aggregate, more lookahead helps.
  EXPECT_LE(w1_total, w5_total + 1e-9);
  EXPECT_LE(w5_total, offline_total + 1e-9);
}

TEST(BatchedMatching, IndividuallyRationalOnGeneratedRounds) {
  Rng rng(707);
  model::WorkloadConfig workload;
  workload.num_slots = 15;
  const model::Scenario s = model::generate_scenario(workload, rng);
  for (const Slot::rep_type w : {1, 3, 7, 15}) {
    const BatchedMatchingMechanism mechanism(BatchedMatchingConfig{w});
    const analysis::RationalityReport report =
        analysis::audit_individual_rationality(mechanism, s);
    EXPECT_TRUE(report.individually_rational())
        << "w=" << w << ": " << report.summary();
  }
}

TEST(BatchedMatching, SkipsEmptyBatches) {
  const model::Scenario s = model::ScenarioBuilder(6)
                                .value(10)
                                .phone(1, 6, 2)
                                .task(6)  // only the last batch has a task
                                .build();
  const Outcome outcome =
      BatchedMatchingMechanism(BatchedMatchingConfig{2}).run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(outcome.payments[0], mu(10));  // alone in its batch: paid nu
}

TEST(BatchedMatching, PhonesAllocatedInEarlierBatchLeaveTheMarket) {
  // One phone, tasks in two batches: it serves the first batch's task and
  // must not be double-allocated in the second.
  const model::Scenario s = model::ScenarioBuilder(4)
                                .value(10)
                                .phone(1, 4, 2)
                                .task(1)
                                .task(3)
                                .build();
  const Outcome outcome =
      BatchedMatchingMechanism(BatchedMatchingConfig{2}).run_truthful(s);
  EXPECT_EQ(outcome.allocation.phone_for(TaskId{0}), PhoneId{0});
  EXPECT_FALSE(outcome.allocation.phone_for(TaskId{1}).has_value());
}

}  // namespace
}  // namespace mcs::auction
