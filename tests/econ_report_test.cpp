// Tests for the econ-report leaderboard: exact (Money-level) agreement
// between summarize_mechanism and a manual fold through the same
// compute_metrics the offline audits use, deterministic leaderboard
// rendering, and round-tripping an mcs.serve_econ.v1 snapshot stream
// through summarize_econ_stream.
#include "analysis/econ_report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/flight.hpp"
#include "analysis/metrics.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/workload.hpp"
#include "obs/wallclock.hpp"
#include "serve/econ_telemetry.hpp"
#include "serve/loadgen.hpp"

namespace mcs::analysis {
namespace {

ScenarioGenerator small_generator() {
  return [](std::int64_t round) {
    model::WorkloadConfig workload;
    workload.num_slots = 8;
    Rng rng(9000 + static_cast<std::uint64_t>(round));
    return model::generate_scenario(workload, rng);
  };
}

TEST(EconReport, SummaryMatchesManualMetricsFoldExactly) {
  const ScenarioGenerator generator = small_generator();
  const RunSpec spec;  // online greedy
  const auto mechanism = make_mechanism(spec);
  const std::int64_t rounds = 5;

  const MechanismEconSummary summary =
      summarize_mechanism(*mechanism, generator, rounds);

  std::int64_t payment = 0;
  std::int64_t welfare = 0;
  std::int64_t true_cost = 0;
  std::int64_t tasks = 0;
  std::int64_t allocated = 0;
  for (std::int64_t round = 0; round < rounds; ++round) {
    const model::Scenario scenario = generator(round);
    const model::BidProfile bids = scenario.truthful_bids();
    const RoundMetrics metrics =
        compute_metrics(scenario, bids, mechanism->run(scenario, bids));
    payment += metrics.total_payment.micros();
    welfare += metrics.social_welfare.micros();
    true_cost += metrics.total_true_cost.micros();
    tasks += metrics.tasks_total;
    allocated += metrics.tasks_allocated;
  }

  EXPECT_EQ(summary.rounds, rounds);
  EXPECT_EQ(summary.total_payment.micros(), payment);
  EXPECT_EQ(summary.social_welfare.micros(), welfare);
  EXPECT_EQ(summary.total_true_cost.micros(), true_cost);
  EXPECT_EQ(summary.overpayment.micros(), payment - true_cost);
  EXPECT_EQ(summary.tasks_total, tasks);
  EXPECT_EQ(summary.tasks_allocated, allocated);
}

TEST(EconReport, LeaderboardRanksByWelfareDeterministically) {
  const ScenarioGenerator generator = small_generator();
  std::vector<MechanismEconSummary> summaries;
  for (const std::string name : {"online", "offline", "second-price"}) {
    RunSpec spec;
    spec.mechanism = name;
    summaries.push_back(
        summarize_mechanism(*make_mechanism(spec), generator, 3));
  }
  std::ostringstream first;
  render_econ_leaderboard(first, summaries);
  std::ostringstream second;
  render_econ_leaderboard(second, summaries);
  EXPECT_EQ(first.str(), second.str()) << "rendering must be deterministic";
  EXPECT_NE(first.str().find("| 1 |"), std::string::npos) << first.str();
  EXPECT_NE(first.str().find("online"), std::string::npos);
  EXPECT_NE(first.str().find("second-price"), std::string::npos);
}

TEST(EconReport, StreamSummaryRoundTripsLiveSnapshots) {
  // Write two snapshots through the real serializer, parse them back, and
  // expect the tail's cumulative block -- Money exact.
  obs::FakeClock clock;
  serve::EconTelemetryConfig config;
  config.clock = &clock;
  serve::EconTelemetry econ(config);
  econ.attach(1);
  std::ostringstream stream;
  clock.advance_ms(500);
  serve::write_econ_snapshot(stream, econ.take_snapshot());
  clock.advance_ms(500);
  serve::write_econ_snapshot(stream, econ.take_snapshot());

  std::istringstream in(stream.str());
  const EconStreamSummary summary = summarize_econ_stream(in);
  EXPECT_EQ(summary.snapshots, 2);
  EXPECT_EQ(summary.first_window, 0);
  EXPECT_EQ(summary.last_window, 1);
  EXPECT_EQ(summary.state, "healthy");
  EXPECT_EQ(summary.rounds, 0);
  EXPECT_EQ(summary.payment, Money{});
  EXPECT_EQ(summary.violations, 0);

  std::ostringstream rendered;
  render_econ_stream(rendered, summary);
  EXPECT_NE(rendered.str().find("healthy"), std::string::npos)
      << rendered.str();
}

TEST(EconReport, StreamSummaryRejectsForeignSchema) {
  std::istringstream in("{\"schema\":\"mcs.serve_stats.v1\",\"window\":0}\n");
  EXPECT_THROW((void)summarize_econ_stream(in), InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::analysis
