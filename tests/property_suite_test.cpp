// Cross-mechanism property suite: the invariants every mechanism in the
// library must satisfy, swept over (mechanism x supply-regime x seed).
// This is the coarse net under the per-mechanism suites -- any new
// mechanism added to the registry below inherits the whole battery.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "analysis/metrics.hpp"
#include "analysis/rationality.hpp"
#include "auction/batched_matching.hpp"
#include "auction/naive_baselines.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/patience_greedy.hpp"
#include "auction/posted_price.hpp"
#include "auction/second_price.hpp"
#include "support/generators.hpp"

namespace mcs {
namespace {

std::unique_ptr<auction::Mechanism> make_mechanism(int id) {
  switch (id) {
    case 0:
      return std::make_unique<auction::OnlineGreedyMechanism>();
    case 1:
      return std::make_unique<auction::OfflineVcgMechanism>();
    case 2:
      return std::make_unique<auction::SecondPriceBaseline>();
    case 3:
      return std::make_unique<auction::BatchedMatchingMechanism>(
          auction::BatchedMatchingConfig{2});
    case 4:
      return std::make_unique<auction::PatienceGreedyMechanism>(
          auction::PatienceConfig{2, {}});
    case 5:
      return std::make_unique<auction::PostedPriceMechanism>(
          Money::from_units(20));
    case 6:
      return std::make_unique<auction::FifoAllocationMechanism>();
    case 7: {
      auction::OnlineGreedyConfig config;
      config.reserve_price = Money::from_units(30);
      config.allocate_only_profitable = true;
      return std::make_unique<auction::OnlineGreedyMechanism>(config);
    }
    default:
      return std::make_unique<auction::RandomAllocationMechanism>(5);
  }
}

constexpr int kMechanismCount = 9;

using Param = std::tuple<int, std::uint64_t, bool>;  // mechanism, seed, scarce-free

class MechanismInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(MechanismInvariants, UniversalOutcomeProperties) {
  const auto [mechanism_id, seed, scarcity_free] = GetParam();
  const auto mechanism = make_mechanism(mechanism_id);
  Rng rng(seed);
  const model::Scenario scenario =
      scarcity_free ? test_support::scarcity_free(rng)
                    : test_support::windowed(rng);
  const model::BidProfile bids = scenario.truthful_bids();

  const auction::Outcome outcome = mechanism->run(scenario, bids);

  // 1. Structural validity (allocation within reported windows, losers
  //    paid zero) -- validate() throws on violation.
  outcome.validate(scenario, bids);

  // 2. Determinism: a second run is identical.
  const auction::Outcome again = mechanism->run(scenario, bids);
  ASSERT_EQ(outcome.payments, again.payments) << mechanism->name();
  for (int t = 0; t < scenario.task_count(); ++t) {
    ASSERT_EQ(outcome.allocation.phone_for(TaskId{t}),
              again.allocation.phone_for(TaskId{t}))
        << mechanism->name() << " task " << t;
  }

  // 3. Individual rationality under truthful reporting.
  EXPECT_TRUE(analysis::check_individual_rationality(scenario, bids, outcome)
                  .individually_rational())
      << mechanism->name();

  // 4. Winners are paid at least their claimed cost.
  for (const PhoneId winner : outcome.allocation.winners()) {
    EXPECT_GE(outcome.payments[static_cast<std::size_t>(winner.value())],
              bids[static_cast<std::size_t>(winner.value())].claimed_cost)
        << mechanism->name() << " phone " << winner;
  }

  // 5. Metrics derive without contradiction.
  const analysis::RoundMetrics metrics =
      analysis::compute_metrics(scenario, bids, outcome);
  EXPECT_LE(metrics.tasks_allocated, metrics.tasks_total);
  EXPECT_GE(metrics.overpayment, Money{}) << mechanism->name();
  EXPECT_EQ(metrics.total_payment,
            metrics.total_true_cost + metrics.overpayment);

  // 6. No mechanism beats the clairvoyant optimum (claimed welfare)...
  //    except the patience mechanism, whose service window is genuinely
  //    larger than the paper's (it may serve tasks the P=0 optimum cannot).
  if (mechanism_id != 4) {
    EXPECT_LE(outcome.claimed_welfare(scenario, bids),
              auction::OfflineVcgMechanism::optimal_claimed_welfare(scenario,
                                                                    bids))
        << mechanism->name();
  } else {
    EXPECT_LE(outcome.claimed_welfare(scenario, bids),
              auction::optimal_patience_welfare(scenario, bids, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MechanismInvariants,
    ::testing::Combine(::testing::Range(0, kMechanismCount),
                       ::testing::Range<std::uint64_t>(40000, 40008),
                       ::testing::Bool()));

}  // namespace
}  // namespace mcs
