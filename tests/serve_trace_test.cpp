// Tests for the causal trace plane: tail-based retention (slow / econ /
// error), ring wraparound under a fake clock, golden mcs.trace.v1 JSONL,
// the plane-separation contract (trace-on never perturbs the
// deterministic counters), engine integration, the paced loadgen's
// client-lag stamping, and the trace-report digest.
#include "serve/trace_plane.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_report.hpp"
#include "common/error.hpp"
#include "obs/latency_sketch.hpp"
#include "obs/metrics.hpp"
#include "obs/round_trace.hpp"
#include "obs/wallclock.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/telemetry.hpp"

namespace mcs::serve {
namespace {

LoadGenConfig small_load(std::int64_t rounds = 6) {
  LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 2026;
  load.workload.num_slots = 12;
  return load;
}

std::vector<ServeEvent> events_of(const LoadGenConfig& load) {
  std::vector<ServeEvent> events;
  generate_events(load, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

/// A plane on a fake clock with a fixed 1 us slow threshold.
TracePlaneConfig fake_clock_config(obs::FakeClock& clock) {
  TracePlaneConfig config;
  config.clock = &clock;
  config.ring_capacity = 8;
  config.slow_threshold_ns = 1000;
  config.exemplar_threshold_ns = 1000;
  return config;
}

// ------------------------------------------------------- tail retention

TEST(TracePlane, TailSamplerRetainsSlowEconAndErrorRounds) {
  obs::FakeClock clock;
  TracePlane plane(fake_clock_config(clock));
  plane.attach(1);

  // Round 0: fast and clean -- folded into summaries, not retained.
  plane.on_round_open(0, 0, 100, 200, 0);
  plane.on_slot_tick(0, 0, 1, 250, 300);
  plane.on_round_complete(0, 0, 500, 600, 700, 0);
  // Round 1: slow (latency 1400 ns >= 1000 ns threshold).
  plane.on_round_open(0, 1, 1000, 1100, 0);
  plane.on_round_complete(0, 1, 2500, 2600, 2700, 0);
  // Round 2: fast but economically violating.
  plane.on_round_open(0, 2, 3000, 3100, 0);
  plane.on_round_complete(0, 2, 3300, 3400, 3500, 2);
  // Round 3: corrupted mid-flight by shedding.
  plane.on_round_open(0, 3, 4000, 4100, 0);
  plane.on_round_corrupted(0, 3, 4200);
  // Round 7: orphaned events (open was shed); duplicates collapse.
  plane.on_orphaned_event(0, 7, 5000);
  plane.on_orphaned_event(0, 7, 5100);
  plane.on_worker_exit(0, 6000);

  const TraceSummary summary = plane.summary();
  EXPECT_EQ(summary.rounds_traced, 5);
  EXPECT_EQ(summary.rounds_completed, 3);
  EXPECT_EQ(summary.retained, 4);
  EXPECT_EQ(summary.retained_slow, 1);
  EXPECT_EQ(summary.retained_econ, 1);
  EXPECT_EQ(summary.retained_error, 2);
  EXPECT_EQ(summary.dropped, 1);
  EXPECT_EQ(summary.retained_evicted, 0);
  EXPECT_EQ(summary.slow_threshold_ns, 1000u);

  const std::vector<obs::RoundTrace> retained = plane.retained();
  ASSERT_EQ(retained.size(), 4u);
  EXPECT_EQ(retained[0].round, 1);
  EXPECT_EQ(retained[0].status, obs::TraceStatus::kCompleted);
  EXPECT_EQ(retained[0].retained, obs::retain::kSlow);
  EXPECT_EQ(retained[0].latency_ns, 1400u);
  EXPECT_EQ(retained[1].round, 2);
  EXPECT_EQ(retained[1].retained, obs::retain::kEconViolation);
  EXPECT_EQ(retained[1].violations, 2);
  EXPECT_EQ(retained[2].round, 3);
  EXPECT_EQ(retained[2].status, obs::TraceStatus::kCorrupted);
  EXPECT_EQ(retained[2].retained, obs::retain::kError);
  EXPECT_EQ(retained[3].round, 7);
  EXPECT_EQ(retained[3].status, obs::TraceStatus::kOrphaned);
  EXPECT_EQ(retained[3].retained, obs::retain::kError);

  // Completed retained traces end in the terminal round_close marker and
  // their spans are chronologically ordered.
  for (const obs::RoundTrace& trace : retained) {
    if (trace.status != obs::TraceStatus::kCompleted) continue;
    ASSERT_FALSE(trace.spans.empty());
    EXPECT_EQ(trace.spans.back().phase, obs::TracePhase::kRoundClose);
    for (std::size_t i = 0; i + 1 < trace.spans.size(); ++i) {
      EXPECT_LE(trace.spans[i].start_ns, trace.spans[i + 1].start_ns);
    }
  }
}

TEST(TracePlane, AbandonedOpenRoundsAreSealedAtWorkerExit) {
  obs::FakeClock clock;
  TracePlane plane(fake_clock_config(clock));
  plane.attach(1);
  plane.on_round_open(0, 4, 100, 200, 0);
  plane.on_worker_exit(0, 900);

  const std::vector<obs::RoundTrace> retained = plane.retained();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].status, obs::TraceStatus::kAbandoned);
  EXPECT_EQ(retained[0].latency_ns, 700u);
  EXPECT_EQ(plane.summary().retained_error, 1);
  EXPECT_EQ(plane.summary().rounds_completed, 0);
}

TEST(TracePlane, AutoThresholdStaysQuietUntilWarmedUp) {
  obs::FakeClock clock;
  TracePlaneConfig config;
  config.clock = &clock;
  config.slow_threshold_ns = 0;  // auto
  TracePlane plane(config);
  plane.attach(1);

  // 31 uniform closes: below the warm-up floor, nothing qualifies as slow.
  std::uint64_t t = 0;
  for (std::int64_t round = 0; round < 31; ++round) {
    plane.on_round_open(0, round, t, t, 0);
    plane.on_round_complete(0, round, t + 1000, t + 1000, t + 1000, 0);
    t += 2000;
  }
  EXPECT_EQ(plane.summary().retained_slow, 0);
  EXPECT_EQ(plane.summary().slow_threshold_ns, ~0ULL) << "not warmed up";

  // Keep closing until the refresh fires with >= 32 samples banked, then
  // a 100x outlier must be caught by the rolling p99.
  for (std::int64_t round = 31; round < 48; ++round) {
    plane.on_round_open(0, round, t, t, 0);
    plane.on_round_complete(0, round, t + 1000, t + 1000, t + 1000, 0);
    t += 2000;
  }
  EXPECT_NE(plane.summary().slow_threshold_ns, ~0ULL);
  // Uniform baseline latencies make the rolling p99 equal the common
  // value, so baseline rounds may legitimately qualify now; the property
  // under test is that a 100x outlier is always caught from here on.
  const std::int64_t slow_before = plane.summary().retained_slow;
  plane.on_round_open(0, 100, t, t, 0);
  plane.on_round_complete(0, 100, t + 100000, t + 100000, t + 100000, 0);
  EXPECT_EQ(plane.summary().retained_slow, slow_before + 1);
  bool outlier_retained = false;
  for (const obs::RoundTrace& trace : plane.retained()) {
    if (trace.round == 100) {
      outlier_retained = true;
      EXPECT_EQ(trace.retained, obs::retain::kSlow);
    }
  }
  EXPECT_TRUE(outlier_retained);
}

// -------------------------------------------------------- ring wraparound

TEST(TracePlane, RingWraparoundKeepsTailSampledSetAndEvictsHealthyFirst) {
  // More rounds than ring capacity: the retained set (slow + violating)
  // survives in full, healthy context traces are the eviction fodder.
  obs::FakeClock clock;
  TracePlaneConfig config = fake_clock_config(clock);
  config.ring_capacity = 3;
  TracePlane plane(config);
  plane.attach(1);

  std::uint64_t t = 0;
  for (std::int64_t round = 0; round < 10; ++round) {
    plane.on_round_open(0, round, t, t, 0);
    const bool slow = round == 2;        // latency 5000 >= 1000
    const bool violating = round == 5;   // sentinel trips
    const std::uint64_t close = t + (slow ? 5000 : 100);
    plane.on_round_complete(0, round, close, close, close, violating ? 1 : 0);
    t = close + 100;
  }
  plane.on_worker_exit(0, t);

  const TraceSummary summary = plane.summary();
  EXPECT_EQ(summary.rounds_traced, 10);
  EXPECT_EQ(summary.retained, 2);
  EXPECT_EQ(summary.dropped, 8);
  EXPECT_EQ(summary.retained_evicted, 0)
      << "healthy rounds absorbed every eviction";

  const std::vector<obs::RoundTrace> retained = plane.retained();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].round, 2);
  EXPECT_EQ(retained[0].retained, obs::retain::kSlow);
  EXPECT_EQ(retained[1].round, 5);
  EXPECT_EQ(retained[1].retained, obs::retain::kEconViolation);

  // Overflowing the ring with retained traces is lossy but accounted.
  for (std::int64_t round = 20; round < 24; ++round) {
    plane.on_round_open(0, round, t, t, 0);
    plane.on_round_complete(0, round, t + 5000, t + 5000, t + 5000, 0);
    t += 6000;
  }
  EXPECT_EQ(plane.summary().retained, 6);
  EXPECT_EQ(plane.summary().retained_evicted, 3)
      << "capacity 3 cannot hold 6 pinned traces";
  EXPECT_EQ(plane.retained().size(), 3u);
}

// ----------------------------------------------------------- golden JSONL

TEST(TracePlane, GoldenJsonlStreamUnderFakeClock) {
  obs::FakeClock clock;
  TracePlaneConfig config;
  config.clock = &clock;
  config.ring_capacity = 4;
  config.max_spans = 8;
  config.slow_threshold_ns = 1000;
  config.exemplar_threshold_ns = 1000;
  TracePlane plane(config);
  plane.attach(1);

  plane.on_round_open(0, 0, 100, 200, 50);
  plane.on_slot_tick(0, 0, 1, 200, 300);
  plane.on_round_complete(0, 0, 1400, 1500, 1600, 1);

  std::ostringstream os;
  write_trace_stream(os, plane);
  const std::uint64_t le = obs::sketch_detail::bucket_upper_edge(
      obs::sketch_detail::bucket_of(1200));
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"mcs.trace.v1\",\"shards\":1,\"ring_capacity\":4,"
      "\"max_spans\":8,\"slow_threshold_ns\":1000}\n"
      "{\"type\":\"trace\",\"trace_id\":\"e220a8397b1dcdaf\",\"round\":0,"
      "\"shard\":0,\"status\":\"completed\","
      "\"retained\":[\"slow\",\"econ_violation\"],\"violations\":1,"
      "\"open_ns\":200,\"close_ns\":1600,\"latency_ns\":1200,"
      "\"spans_dropped\":0,\"spans\":["
      "{\"phase\":\"ingest\",\"start_ns\":50,\"end_ns\":100},"
      "{\"phase\":\"queue_wait\",\"start_ns\":100,\"end_ns\":200},"
      "{\"phase\":\"slot_tick\",\"slot\":1,\"start_ns\":200,\"end_ns\":300},"
      "{\"phase\":\"payment\",\"start_ns\":1400,\"end_ns\":1500},"
      "{\"phase\":\"audit\",\"start_ns\":1500,\"end_ns\":1600},"
      "{\"phase\":\"round_close\",\"start_ns\":1600,\"end_ns\":1600}]}\n"
      "{\"type\":\"summary\",\"rounds\":1,\"completed\":1,\"retained\":1,"
      "\"retained_slow\":1,\"retained_econ\":1,\"retained_error\":0,"
      "\"dropped\":0,\"retained_evicted\":0,\"spans_truncated\":0,"
      "\"slow_threshold_ns\":1000,\"phases\":{"
      "\"ingest\":{\"count\":0,\"p50_ns\":null,\"p99_ns\":null,\"max_ns\":0},"
      "\"queue_wait\":{\"count\":0,\"p50_ns\":null,\"p99_ns\":null,"
      "\"max_ns\":0},"
      "\"slot_tick\":{\"count\":1,\"p50_ns\":100,\"p99_ns\":100,"
      "\"max_ns\":100},"
      "\"payment\":{\"count\":1,\"p50_ns\":100,\"p99_ns\":100,\"max_ns\":100},"
      "\"audit\":{\"count\":1,\"p50_ns\":100,\"p99_ns\":100,\"max_ns\":100},"
      "\"round_close\":{\"count\":1,\"p50_ns\":1200,\"p99_ns\":1200,"
      "\"max_ns\":1200}}}\n"
      "{\"type\":\"exemplars\",\"threshold_ns\":1000,\"entries\":["
      "{\"le_ns\":" +
          std::to_string(le) +
          ",\"latency_ns\":1200,\"trace_id\":\"e220a8397b1dcdaf\","
          "\"round\":0}]}\n");
}

// ---------------------------------------------- plane-separation contract

std::map<std::string, std::int64_t> counters_for(
    const std::vector<ServeEvent>& events, int shards, bool with_trace) {
  obs::MetricsRegistry registry;
  TracePlaneConfig trace_config;
  trace_config.slow_threshold_ns = 1;  // retain everything
  TracePlane trace(trace_config);
  {
    const obs::ScopedRegistry guard(&registry);
    ServeConfig config;
    config.shards = shards;
    if (with_trace) config.trace = &trace;
    ServeEngine engine(config);
    for (const ServeEvent& event : events) engine.submit(event);
    engine.drain();
  }
  return registry.snapshot().counters;
}

TEST(TracePlane, TracingNeverPerturbsDeterministicCounters) {
  // The acceptance contract: identical merged counters with the trace
  // plane off and on, for 1 and 8 shards.
  const std::vector<ServeEvent> events = events_of(small_load());
  const std::map<std::string, std::int64_t> baseline =
      counters_for(events, 1, false);
  ASSERT_GT(baseline.at("serve.events.round_open"), 0);
  EXPECT_EQ(baseline, counters_for(events, 1, true));
  EXPECT_EQ(baseline, counters_for(events, 8, false));
  EXPECT_EQ(baseline, counters_for(events, 8, true));
}

// ----------------------------------------------------- engine integration

TEST(TracePlane, EngineFeedsTheTracePlaneWhileServing) {
  const LoadGenConfig load = small_load(4);
  const std::vector<ServeEvent> events = events_of(load);
  TracePlaneConfig trace_config;
  trace_config.slow_threshold_ns = 1;  // every round qualifies as slow
  TracePlane trace(trace_config);
  ServeConfig config;
  config.shards = 2;
  config.trace = &trace;
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();

  const TraceSummary summary = trace.summary();
  EXPECT_EQ(summary.rounds_traced, load.rounds);
  EXPECT_EQ(summary.rounds_completed, load.rounds);
  EXPECT_EQ(summary.retained, load.rounds);
  EXPECT_EQ(summary.retained_slow, load.rounds);
  EXPECT_EQ(summary.dropped, 0);

  const std::vector<obs::RoundTrace> retained = trace.retained();
  ASSERT_EQ(retained.size(), static_cast<std::size_t>(load.rounds));
  for (const obs::RoundTrace& round_trace : retained) {
    EXPECT_EQ(round_trace.status, obs::TraceStatus::kCompleted);
    EXPECT_EQ(round_trace.trace_id, obs::trace_id_of(round_trace.round));
    ASSERT_GE(round_trace.spans.size(), 4u)
        << "ingest, queue, payment, round_close at minimum";
    EXPECT_EQ(round_trace.spans.back().phase, obs::TracePhase::kRoundClose);
    for (std::size_t i = 0; i + 1 < round_trace.spans.size(); ++i) {
      EXPECT_LE(round_trace.spans[i].start_ns,
                round_trace.spans[i + 1].start_ns)
          << "spans are chronologically ordered";
    }
  }

  // The JSONL stream round-trips through the analysis digest.
  std::ostringstream os;
  write_trace_stream(os, trace);
  std::istringstream in(os.str());
  const analysis::TraceStreamSummary digest =
      analysis::summarize_trace_stream(in);
  EXPECT_EQ(digest.shards, 2);
  EXPECT_EQ(digest.rounds, load.rounds);
  EXPECT_EQ(digest.traces.size(), static_cast<std::size_t>(load.rounds));
  EXPECT_EQ(digest.phases.at("round_close").count, load.rounds);
}

TEST(TracePlane, LiveAndTraceRoundLatencySketchesAgree) {
  // Both planes derive round latency from the same engine stamps, so the
  // trace plane's round_close sketch must match the live plane's
  // round_latency sketch sample for sample.
  const std::vector<ServeEvent> events = events_of(small_load(5));
  LiveTelemetry live;
  TracePlane trace;
  ServeConfig config;
  config.shards = 2;
  config.live = &live;
  config.trace = &trace;
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();

  const obs::LatencySketchSnapshot live_sketch =
      live.summary().round_latency;
  const obs::LatencySketchSnapshot trace_sketch =
      trace.summary()
          .phases[static_cast<std::size_t>(obs::TracePhase::kRoundClose)]
          .sketch;
  ASSERT_EQ(live_sketch.count, trace_sketch.count);
  EXPECT_EQ(live_sketch.counts, trace_sketch.counts);
  EXPECT_DOUBLE_EQ(live_sketch.quantile_ns(0.5), trace_sketch.quantile_ns(0.5));
  EXPECT_DOUBLE_EQ(live_sketch.quantile_ns(0.99),
                   trace_sketch.quantile_ns(0.99));
}

// ------------------------------------------------------ loadgen lag stamp

TEST(ServePacing, StampsClientLagOnLateEvents) {
  // A consumer that drags the fake clock makes every subsequent send late;
  // those events must carry their schedule lag so traces can show the
  // client-side ingest span.
  const LoadGenConfig load = small_load(1);
  obs::FakeClock clock;
  PaceConfig pace;
  pace.target_eps = 1000.0;
  pace.clock = &clock;
  pace.sleep_ns = [&clock](std::uint64_t ns) { clock.advance_ns(ns); };

  std::vector<ServeEvent> seen;
  run_paced_load(load, pace, [&](const ServeEvent& event) {
    seen.push_back(event);
    clock.advance_ns(2'500'000);  // 2.5 gaps per submit
    return true;
  });
  ASSERT_GT(seen.size(), 2u);
  EXPECT_EQ(seen.front().client_lag_ns, 0u) << "first send is on schedule";
  EXPECT_EQ(seen[1].client_lag_ns, 1'500'000u)
      << "one gap of 1 ms minus 2.5 ms burned";
  EXPECT_GT(seen.back().client_lag_ns, seen[1].client_lag_ns)
      << "lag keeps growing under a dragging consumer";
}

TEST(ServePacing, OnScheduleEventsCarryNoLag) {
  const LoadGenConfig load = small_load(1);
  obs::FakeClock clock;
  PaceConfig pace;
  pace.target_eps = 1000.0;
  pace.clock = &clock;
  pace.sleep_ns = [&clock](std::uint64_t ns) { clock.advance_ns(ns); };
  run_paced_load(load, pace, [&](const ServeEvent& event) {
    EXPECT_EQ(event.client_lag_ns, 0u);
    return true;
  });
}

// ------------------------------------------------------------ trace-report

TEST(TraceReport, DigestsAndRendersAPlaneStream) {
  obs::FakeClock clock;
  TracePlane plane(fake_clock_config(clock));
  plane.attach(1);
  plane.on_round_open(0, 0, 100, 200, 50);
  plane.on_slot_tick(0, 0, 1, 200, 300);
  plane.on_round_complete(0, 0, 1400, 1500, 1600, 1);
  plane.on_round_open(0, 1, 2000, 2100, 0);
  plane.on_round_complete(0, 1, 2200, 2300, 2400, 0);
  plane.on_worker_exit(0, 3000);

  std::ostringstream stream;
  write_trace_stream(stream, plane);
  std::istringstream in(stream.str());
  const analysis::TraceStreamSummary summary =
      analysis::summarize_trace_stream(in);
  EXPECT_EQ(summary.rounds, 2);
  EXPECT_EQ(summary.retained, 1);
  EXPECT_FALSE(summary.auto_threshold);
  EXPECT_EQ(summary.slow_threshold_ns, 1000);
  ASSERT_EQ(summary.traces.size(), 1u);
  EXPECT_EQ(summary.traces[0].round, 0);
  ASSERT_EQ(summary.exemplars.size(), 1u);
  EXPECT_EQ(summary.exemplars[0].latency_ns, 1200u);

  std::ostringstream report;
  analysis::render_trace_report(report, summary, 5);
  const std::string text = report.str();
  EXPECT_NE(text.find("mcs.trace.v1 -- 1 shard(s), 2 round(s) traced"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("slow threshold: 1.00 us (fixed)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("round_close"), std::string::npos) << text;
  EXPECT_NE(text.find("slowest retained rounds (top 1 of 1)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("trace e220a8397b1dcdaf"), std::string::npos) << text;
  EXPECT_NE(text.find("1 violation(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("slot 1"), std::string::npos) << text;
  EXPECT_NE(text.find("sketch exemplars"), std::string::npos) << text;
}

TEST(TraceReport, RejectsForeignStreams) {
  std::istringstream not_a_trace("{\"schema\":\"mcs.serve_stats.v1\"}\n");
  EXPECT_THROW(analysis::summarize_trace_stream(not_a_trace),
               InvalidArgumentError);
  std::istringstream empty("");
  EXPECT_THROW(analysis::summarize_trace_stream(empty), InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::serve
