// Binary wire codec (mcs.serve.b1) tests: golden frame bytes, lossless
// round trips, strict rejection of malformed frames, chunked incremental
// decoding, JSONL<->binary transcoding, and two fuzz suites -- a
// mutation/truncation fuzz mirroring json_parse_fuzz, and a differential
// fuzz pinning that the binary and JSONL decoders accept or reject the
// same logical events with zero divergence. Iteration counts scale with
// MCS_WIRE_FUZZ_ITERS (the CI smoke job runs 100k).
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "model/bid.hpp"
#include "serve/loadgen.hpp"

namespace mcs::serve {
namespace {

std::int64_t fuzz_iters(std::int64_t fallback) {
  if (const char* env = std::getenv("MCS_WIRE_FUZZ_ITERS")) {
    return std::max<std::int64_t>(1, std::atoll(env));
  }
  return fallback;
}

model::Bid bid(int from, int to, double cost) {
  return model::Bid{SlotInterval::of(from, to), Money::from_double(cost)};
}

// Little-endian builders for hand-crafting raw (possibly malformed) frames.
std::string le32(std::int64_t v) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                                    0xFF));
  }
  return out;
}

std::string le64(std::int64_t v) {
  std::string out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                                    0xFF));
  }
  return out;
}

std::string frame(const std::string& payload) {
  return le32(static_cast<std::int64_t>(payload.size())) + payload;
}

std::string header_bytes() {
  std::string out;
  append_wire_header(out);
  return out;
}

/// Decodes exactly one complete frame or throws.
ServeEvent decode_one(const std::string& bytes) {
  const auto decoded = decode_wire_frame(bytes);
  if (!decoded) throw InvalidArgumentError("incomplete frame in test");
  EXPECT_EQ(decoded->consumed, bytes.size());
  return decoded->event;
}

const std::vector<ServeEvent>& every_kind() {
  static const std::vector<ServeEvent> events = {
      round_open(5, 50, Money::from_double(12.25)),
      task_arrived(5, Slot{2}, TaskId{1}),
      task_arrived(5, Slot{2}, TaskId{2}, Money::from_double(0.75)),
      bid_submitted(5, PhoneId{0}, bid(2, 9, 3.141592)),
      slot_tick(5, Slot{2}),
      round_close(5),
  };
  return events;
}

// ----------------------------------------------------------- golden bytes

TEST(WireCodec, GoldenHeader) {
  EXPECT_EQ(header_bytes(), std::string("MCSB\x01\x00\x00\x00", 8));
}

TEST(WireCodec, GoldenFrames) {
  // round_open(0, 12, "30"): kind 0, round 0, slots 12, 30'000'000 micros.
  EXPECT_EQ(encode_wire_frame(round_open(0, 12, Money::from_units(30))),
            frame(std::string(1, '\0') + le64(0) + le32(12) + le64(30000000)));
  // task_arrived without a value: has_value byte 0, no trailing micros.
  EXPECT_EQ(encode_wire_frame(task_arrived(0, Slot{1}, TaskId{0})),
            frame(std::string(1, '\1') + le64(0) + le32(1) + le32(0) +
                  std::string(1, '\0')));
  EXPECT_EQ(
      encode_wire_frame(
          task_arrived(2, Slot{3}, TaskId{4}, Money::from_double(2.5))),
      frame(std::string(1, '\1') + le64(2) + le32(3) + le32(4) +
            std::string(1, '\1') + le64(2500000)));
  EXPECT_EQ(encode_wire_frame(bid_submitted(0, PhoneId{3}, bid(1, 4, 7.5))),
            frame(std::string(1, '\2') + le64(0) + le32(3) + le32(1) +
                  le32(4) + le64(7500000)));
  EXPECT_EQ(encode_wire_frame(slot_tick(0, Slot{1})),
            frame(std::string(1, '\3') + le64(0) + le32(1)));
  EXPECT_EQ(encode_wire_frame(round_close(7)),
            frame(std::string(1, '\4') + le64(7)));
}

// ------------------------------------------------------------- round trip

TEST(WireCodec, EncodeDecodeRoundTripsEveryKind) {
  for (const ServeEvent& event : every_kind()) {
    const std::string bytes = encode_wire_frame(event);
    EXPECT_LE(bytes.size(), 4 + kMaxWireFrameBytes);
    EXPECT_EQ(decode_one(bytes), event) << encode_serve_event(event);
  }
}

TEST(WireCodec, MoneyExtremesTravelExactly) {
  const std::vector<Money> amounts = {
      Money::from_micros(1),           Money::from_micros(-1),
      Money::max(),                    -Money::max(),
      Money::from_micros(1234567),     Money{},
  };
  for (const Money amount : amounts) {
    const ServeEvent event = round_open(0, 1, amount);
    EXPECT_EQ(decode_one(encode_wire_frame(event)).round_value.micros(),
              amount.micros());
  }
}

TEST(WireCodec, RoundIdBoundsAreExact) {
  EXPECT_EQ(decode_one(encode_wire_frame(round_close(kMaxServeRound))).round,
            kMaxServeRound);
  EXPECT_THROW(decode_one(frame(std::string(1, '\4') +
                                le64(kMaxServeRound + 1))),
               InvalidArgumentError);
  EXPECT_THROW(decode_one(frame(std::string(1, '\4') + le64(-1))),
               InvalidArgumentError);
}

// -------------------------------------------------------- malformed input

TEST(WireCodec, HeaderRejectsWrongMagicVersionFlags) {
  EXPECT_THROW((void)decode_wire_header("XCSB\x01\x00\x00\x00"),
               InvalidArgumentError);
  EXPECT_THROW((void)decode_wire_header(std::string("MCSB\x02\x00\x00\x00", 8)),
               InvalidArgumentError);
  EXPECT_THROW((void)decode_wire_header(std::string("MCSB\x01\x00\x01\x00", 8)),
               InvalidArgumentError);
  // A proper prefix of a valid header asks for more bytes.
  EXPECT_EQ(decode_wire_header(std::string("MCS", 3)), std::nullopt);
  EXPECT_EQ(decode_wire_header(std::string("MCSB\x01", 5)), std::nullopt);
  // ...but a prefix that already contradicts the magic fails immediately.
  EXPECT_THROW((void)decode_wire_header(std::string("MX", 2)),
               InvalidArgumentError);
  EXPECT_EQ(decode_wire_header(header_bytes()), kWireHeaderBytes);
}

TEST(WireCodec, RejectsMalformedFrames) {
  const std::vector<std::string> bad = {
      // zero-length frame (no kind byte)
      le32(0),
      // hostile length beyond the frame cap
      le32(65) + std::string(65, '\0'),
      le32(1 << 30),
      // unknown kind
      frame(std::string(1, '\5') + le64(0)),
      frame(std::string(1, '\xff') + le64(0)),
      // wrong length for the kind (round_close with a trailing byte)
      frame(std::string(1, '\4') + le64(0) + std::string(1, '\0')),
      // slot_tick one byte short of its layout
      frame(std::string(1, '\3') + le64(0) + le32(1).substr(0, 3)),
      // domain: slots < 1
      frame(std::string(1, '\0') + le64(0) + le32(0) + le64(1)),
      // domain: slot < 1
      frame(std::string(1, '\3') + le64(0) + le32(0)),
      // domain: negative task id
      frame(std::string(1, '\1') + le64(0) + le32(1) + le32(-1) +
            std::string(1, '\0')),
      // domain: negative agent id
      frame(std::string(1, '\2') + le64(0) + le32(-2) + le32(1) + le32(2) +
            le64(0)),
      // domain: window begins before slot 1
      frame(std::string(1, '\2') + le64(0) + le32(0) + le32(0) + le32(2) +
            le64(0)),
      // domain: inverted window
      frame(std::string(1, '\2') + le64(0) + le32(0) + le32(4) + le32(2) +
            le64(0)),
      // domain: negative cost
      frame(std::string(1, '\2') + le64(0) + le32(0) + le32(1) + le32(2) +
            le64(-1)),
      // Money outside the +/-max() envelope
      frame(std::string(1, '\0') + le64(0) + le32(1) +
            le64(Money::max().micros() + 1)),
      frame(std::string(1, '\0') + le64(0) + le32(1) +
            le64(std::numeric_limits<std::int64_t>::min())),
      // has_value flag neither 0 nor 1
      frame(std::string(1, '\1') + le64(0) + le32(1) + le32(0) +
            std::string(1, '\2')),
      // has_value=0 but a value payload present (flag/length contradiction)
      frame(std::string(1, '\1') + le64(0) + le32(1) + le32(0) +
            std::string(1, '\0') + le64(5)),
      // has_value=1 but no value payload
      frame(std::string(1, '\1') + le64(0) + le32(1) + le32(0) +
            std::string(1, '\1')),
  };
  for (const std::string& bytes : bad) {
    EXPECT_THROW((void)decode_one(bytes), InvalidArgumentError)
        << "frame of " << bytes.size() << " bytes accepted";
  }
}

TEST(WireCodec, EveryTruncationAsksForMoreBytesNotGarbage) {
  // A strict prefix of a valid frame is "incomplete", never an event and
  // never UB -- except prefixes shorter than the length word are also just
  // incomplete. Mirrors json_parse_fuzz's EveryTruncationFailsCleanly.
  for (const ServeEvent& event : every_kind()) {
    const std::string bytes = encode_wire_frame(event);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_EQ(decode_wire_frame(bytes.substr(0, len)), std::nullopt)
          << "prefix of length " << len;
    }
  }
}

// ---------------------------------------------------- incremental decoding

TEST(WireDecoderTest, OneByteAtATimeFeedsDecodeTheFullStream) {
  std::string stream = header_bytes();
  for (const ServeEvent& event : every_kind()) {
    append_wire_frame(stream, event);
  }
  WireDecoder decoder;
  std::vector<ServeEvent> got;
  for (char byte : stream) {
    decoder.feed(std::string_view(&byte, 1),
                 [&](const ServeEvent& event) { got.push_back(event); });
  }
  EXPECT_TRUE(decoder.idle());
  EXPECT_TRUE(decoder.header_seen());
  EXPECT_EQ(decoder.events_decoded(),
            static_cast<std::int64_t>(every_kind().size()));
  EXPECT_EQ(got, every_kind());
}

TEST(WireDecoderTest, PoisonsAfterMalformedInput) {
  WireDecoder decoder;
  const auto sink = [](const ServeEvent&) {};
  std::string stream = header_bytes();
  append_wire_frame(stream, round_close(0));
  EXPECT_EQ(decoder.feed(stream, sink), 1);
  EXPECT_THROW(decoder.feed(frame(std::string(1, '\7') + le64(0)), sink),
               InvalidArgumentError);
  // Even valid bytes are refused now: the stream is corrupt.
  EXPECT_THROW(decoder.feed(encode_wire_frame(round_close(1)), sink),
               InvalidArgumentError);
  EXPECT_FALSE(decoder.idle());
}

TEST(WireDecoderTest, MissingHeaderIsRejected) {
  WireDecoder decoder;
  EXPECT_THROW(decoder.feed(encode_wire_frame(round_close(0)),
                            [](const ServeEvent&) {}),
               InvalidArgumentError);
}

// ------------------------------------------------------------- transcoding

TEST(WireTranscode, JsonlToBinaryToJsonlIsByteExact) {
  LoadGenConfig config;
  config.rounds = 6;
  config.seed = 2024;
  std::ostringstream jsonl;
  const std::int64_t events = write_event_stream(jsonl, config);
  ASSERT_GT(events, 0);

  std::istringstream in1(jsonl.str());
  std::ostringstream binary;
  EXPECT_EQ(transcode_serve_stream(in1, binary, WireFormat::kBinary), events);
  EXPECT_EQ(binary.str().compare(0, 4, "MCSB"), 0);
  // The binary stream is materially smaller than its JSONL source.
  EXPECT_LT(binary.str().size(), jsonl.str().size() / 2);

  std::istringstream in2(binary.str());
  std::ostringstream back;
  EXPECT_EQ(transcode_serve_stream(in2, back, WireFormat::kJsonl), events);
  EXPECT_EQ(back.str(), jsonl.str());
}

TEST(WireTranscode, DetectsFormatWithoutConsumingBytes) {
  std::istringstream binary(header_bytes());
  EXPECT_EQ(detect_stream_format(binary), WireFormat::kBinary);
  EXPECT_EQ(binary.get(), 'M');  // stream still at the start

  std::istringstream jsonl("{\"schema\":\"mcs.serve.v1\"}\n");
  EXPECT_EQ(detect_stream_format(jsonl), WireFormat::kJsonl);
  EXPECT_EQ(jsonl.get(), '{');
}

TEST(WireTranscode, ReadServeStreamReportsTruncation) {
  std::string stream = header_bytes();
  append_wire_frame(stream, round_close(0));
  stream.pop_back();  // drop the final byte: the last frame is truncated
  std::istringstream is(stream);
  EXPECT_THROW(
      read_serve_stream(is, [](const ServeEvent&) {}),
      InvalidArgumentError);
}

TEST(WireTranscode, ReadServeStreamNamesTheFailingLine) {
  std::istringstream is(
      "{\"schema\":\"mcs.serve.v1\"}\n{\"ev\":\"round_close\",\"round\":0}\nnot json\n");
  try {
    read_serve_stream(is, [](const ServeEvent&) {});
    FAIL() << "malformed line accepted";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ mutation fuzz

TEST(WireFuzz, SeededMutationsNeverCrashTheDecoder) {
  // Mirror of JsonParseFuzz.SeededByteMutationsNeverCrash for the binary
  // path: flip bytes / truncate a valid stream, then decode. Every outcome
  // must be "decoded fine" or InvalidArgumentError -- the sanitizer jobs
  // turn any overread or UB into a failure.
  std::string stream = header_bytes();
  for (const ServeEvent& event : every_kind()) {
    append_wire_frame(stream, event);
  }
  std::mt19937_64 rng(20260809);
  const std::int64_t iters = fuzz_iters(4000);
  std::int64_t rejected = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    std::string mutated = stream;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<char>(1 << (rng() % 8));
    }
    if (rng() % 4 == 0) mutated.resize(rng() % (mutated.size() + 1));
    WireDecoder decoder;
    try {
      decoder.feed(mutated, [](const ServeEvent&) {});
      if (!decoder.idle() || !decoder.header_seen()) ++rejected;
    } catch (const InvalidArgumentError&) {
      ++rejected;
    }
  }
  // Most random corruptions must be caught (magic, kinds, lengths, and
  // domains are all checked); a mutation in a Money field can legally
  // survive.
  EXPECT_GT(rejected, iters / 2);
}

// ---------------------------------------------------------- differential

/// One logical event drawn with adversarial field values, rendered both as
/// a JSONL line and as a binary frame carrying exactly the same values.
struct DrawnEvent {
  std::string jsonl;
  std::string binary;  ///< frame bytes (no stream header)
};

std::string render_micros(std::int64_t micros) {
  const bool negative = micros < 0;
  // Two's-complement-safe magnitude (INT64_MIN negates cleanly unsigned).
  const auto magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(micros)
               : static_cast<unsigned long long>(micros);
  char fraction[8];
  std::snprintf(fraction, sizeof fraction, "%06llu", magnitude % 1000000ULL);
  return (negative ? "-" : "") + std::to_string(magnitude / 1000000ULL) +
         "." + fraction;
}

DrawnEvent draw_event(std::mt19937_64& rng) {
  // Edge-biased draws. i32 fields stay inside int32 (the binary wire
  // cannot even express wider values; the JSONL-side wide-value rejection
  // has its own test in serve_event_test).
  const auto pick = [&rng](const std::vector<std::int64_t>& edges) {
    if (rng() % 2 == 0) return edges[rng() % edges.size()];
    return static_cast<std::int64_t>(rng() % 7) - 1;
  };
  const std::vector<std::int64_t> id_edges = {
      -1, 0, 1, 2, std::numeric_limits<std::int32_t>::max()};
  const std::vector<std::int64_t> round_edges = {
      -1, 0, 1, kMaxServeRound, kMaxServeRound + 1};
  const std::vector<std::int64_t> micro_edges = {
      0,
      1,
      -1,
      Money::max().micros(),
      Money::max().micros() + 1,
      -Money::max().micros(),
      -Money::max().micros() - 1,
  };
  const std::int64_t round = pick(round_edges);
  DrawnEvent drawn;
  switch (rng() % 5) {
    case 0: {
      const std::int64_t slots = pick(id_edges);
      const std::int64_t micros = micro_edges[rng() % micro_edges.size()];
      drawn.jsonl = "{\"ev\":\"round_open\",\"round\":" +
                    std::to_string(round) +
                    ",\"slots\":" + std::to_string(slots) + ",\"value\":\"" +
                    render_micros(micros) + "\"}";
      drawn.binary = frame(std::string(1, '\0') + le64(round) + le32(slots) +
                           le64(micros));
      break;
    }
    case 1: {
      const std::int64_t slot = pick(id_edges);
      const std::int64_t task = pick(id_edges);
      const bool has_value = rng() % 2 == 0;
      const std::int64_t micros = micro_edges[rng() % micro_edges.size()];
      drawn.jsonl = "{\"ev\":\"task_arrived\",\"round\":" +
                    std::to_string(round) +
                    ",\"slot\":" + std::to_string(slot) +
                    ",\"task\":" + std::to_string(task);
      drawn.binary = std::string(1, '\1') + le64(round) + le32(slot) +
                     le32(task);
      if (has_value) {
        drawn.jsonl += ",\"value\":\"" + render_micros(micros) + "\"";
        drawn.binary += std::string(1, '\1') + le64(micros);
      } else {
        drawn.binary += std::string(1, '\0');
      }
      drawn.jsonl += "}";
      drawn.binary = frame(drawn.binary);
      break;
    }
    case 2: {
      const std::int64_t agent = pick(id_edges);
      const std::int64_t from = pick(id_edges);
      const std::int64_t to = pick(id_edges);
      const std::int64_t micros = micro_edges[rng() % micro_edges.size()];
      drawn.jsonl = "{\"ev\":\"bid_submitted\",\"round\":" +
                    std::to_string(round) +
                    ",\"agent\":" + std::to_string(agent) +
                    ",\"from\":" + std::to_string(from) +
                    ",\"to\":" + std::to_string(to) + ",\"cost\":\"" +
                    render_micros(micros) + "\"}";
      drawn.binary = frame(std::string(1, '\2') + le64(round) + le32(agent) +
                           le32(from) + le32(to) + le64(micros));
      break;
    }
    case 3: {
      const std::int64_t slot = pick(id_edges);
      drawn.jsonl = "{\"ev\":\"slot_tick\",\"round\":" +
                    std::to_string(round) +
                    ",\"slot\":" + std::to_string(slot) + "}";
      drawn.binary = frame(std::string(1, '\3') + le64(round) + le32(slot));
      break;
    }
    default: {
      drawn.jsonl =
          "{\"ev\":\"round_close\",\"round\":" + std::to_string(round) + "}";
      drawn.binary = frame(std::string(1, '\4') + le64(round));
      break;
    }
  }
  return drawn;
}

TEST(WireFuzz, BinaryAndJsonlDecodersAcceptAndRejectInLockstep) {
  std::mt19937_64 rng(987654321);
  const std::int64_t iters = fuzz_iters(4000);
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    const DrawnEvent drawn = draw_event(rng);
    std::optional<ServeEvent> from_jsonl;
    std::optional<ServeEvent> from_binary;
    try {
      from_jsonl = decode_serve_line(drawn.jsonl);
    } catch (const InvalidArgumentError&) {
    }
    try {
      const auto decoded = decode_wire_frame(drawn.binary);
      ASSERT_TRUE(decoded.has_value()) << drawn.jsonl;  // complete frame
      from_binary = decoded->event;
    } catch (const InvalidArgumentError&) {
    }
    ASSERT_EQ(from_jsonl.has_value(), from_binary.has_value())
        << "divergence on " << drawn.jsonl << " (jsonl "
        << (from_jsonl ? "accepted" : "rejected") << ", binary "
        << (from_binary ? "accepted" : "rejected") << ")";
    if (from_jsonl) {
      ++accepted;
      // Acceptance must also agree on the decoded value, byte for byte.
      ASSERT_EQ(*from_jsonl, *from_binary) << drawn.jsonl;
      ASSERT_EQ(encode_wire_frame(*from_jsonl), drawn.binary) << drawn.jsonl;
    } else {
      ++rejected;
    }
  }
  // The draw is adversarial but not degenerate: both outcomes must occur.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace mcs::serve
