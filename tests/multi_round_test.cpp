// Tests for the multi-round community simulation (the Fig. 9 "stable in
// the long run" driver).
#include "sim/multi_round.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mcs::sim {
namespace {

MultiRoundConfig small_config() {
  MultiRoundConfig config;
  config.workload.num_slots = 8;
  config.workload.phone_arrival_rate = 2.0;
  config.workload.task_arrival_rate = 1.0;
  config.workload.mean_cost = 10.0;
  config.workload.task_value = Money::from_units(25);
  config.rounds = 6;
  config.retention = 0.5;
  config.seed = 5;
  return config;
}

TEST(MultiRound, ProducesOneRecordPerRound) {
  const MultiRoundResult result = run_multi_round(small_config());
  ASSERT_EQ(result.rounds.size(), 6u);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(result.rounds[static_cast<std::size_t>(r)].round, r + 1);
  }
  EXPECT_EQ(result.online_sigma.count(), 6u);
  EXPECT_EQ(result.community_size.count(), 6u);
}

TEST(MultiRound, DeterministicPerSeed) {
  const MultiRoundResult a = run_multi_round(small_config());
  const MultiRoundResult b = run_multi_round(small_config());
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].community_size, b.rounds[r].community_size);
    EXPECT_EQ(a.rounds[r].online.social_welfare,
              b.rounds[r].online.social_welfare);
  }
  MultiRoundConfig other = small_config();
  other.seed = 6;
  const MultiRoundResult c = run_multi_round(other);
  EXPECT_NE(a.online_welfare.mean(), c.online_welfare.mean());
}

TEST(MultiRound, ZeroRetentionMeansFreshCommunityEachRound) {
  MultiRoundConfig config = small_config();
  config.retention = 0.0;
  const MultiRoundResult result = run_multi_round(config);
  // Community = that round's newcomers only: ~ Poisson(lambda * m) = 16.
  for (const RoundRecord& record : result.rounds) {
    EXPECT_LT(record.community_size, 40);
  }
}

TEST(MultiRound, FullRetentionGrowsTheCommunity) {
  MultiRoundConfig config = small_config();
  config.retention = 1.0;
  const MultiRoundResult result = run_multi_round(config);
  // Nobody leaves: community size is nondecreasing.
  for (std::size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_GE(result.rounds[r].community_size,
              result.rounds[r - 1].community_size);
  }
}

TEST(MultiRound, PartialRetentionStabilizesCommunity) {
  MultiRoundConfig config = small_config();
  config.rounds = 20;
  const MultiRoundResult result = run_multi_round(config);
  // Steady state ~ newcomers / (1 - retention) = 32; generous band.
  const int late = result.rounds.back().community_size;
  EXPECT_GT(late, 8);
  EXPECT_LT(late, 100);
}

TEST(MultiRound, OfflineDominatesOnlineEveryRound) {
  const MultiRoundResult result = run_multi_round(small_config());
  for (const RoundRecord& record : result.rounds) {
    EXPECT_GE(record.offline.social_welfare, record.online.social_welfare)
        << "round " << record.round;
    EXPECT_GE(record.online.overpayment_ratio, 0.0);
    EXPECT_GE(record.offline.overpayment_ratio, 0.0);
  }
}

TEST(MultiRound, ValidationRejectsBadConfig) {
  MultiRoundConfig config = small_config();
  config.rounds = 0;
  EXPECT_THROW(run_multi_round(config), InvalidArgumentError);

  config = small_config();
  config.retention = 1.5;
  EXPECT_THROW(run_multi_round(config), InvalidArgumentError);

  config = small_config();
  config.workload.cost_distribution = model::CostDistribution::kNormal;
  EXPECT_THROW(run_multi_round(config), ContractViolation);
}

}  // namespace
}  // namespace mcs::sim
