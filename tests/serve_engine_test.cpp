// Tests for the sharded streaming engine: the streaming/batch equivalence
// oracle (replaying an event file through the engine reproduces the batch
// OnlineGreedyMechanism byte for byte, for any shard count), shard-count
// determinism of both outcomes and merged telemetry counters, admission
// control under both policies, strict stream validation, and drain
// semantics.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "auction/online_greedy.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/replay.hpp"
#include "serve/verify.hpp"
#include "serve/wire.hpp"

namespace mcs::serve {
namespace {

LoadGenConfig small_load(std::int64_t rounds = 6) {
  LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 2026;
  load.workload.num_slots = 12;
  return load;
}

std::vector<ServeEvent> events_of(const LoadGenConfig& load) {
  std::vector<ServeEvent> events;
  generate_events(load, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

std::vector<RoundOutcome> run_engine(const std::vector<ServeEvent>& events,
                                     ServeConfig config) {
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();
  return engine.take_outcomes();
}

void expect_same_outcomes(const std::vector<RoundOutcome>& a,
                          const std::vector<RoundOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].total_paid, b[i].total_paid);
    EXPECT_EQ(a[i].tasks_announced, b[i].tasks_announced);
    EXPECT_EQ(a[i].bids_admitted, b[i].bids_admitted);
    EXPECT_EQ(a[i].bids_rejected, b[i].bids_rejected);
    EXPECT_EQ(a[i].events_consumed, b[i].events_consumed);
    EXPECT_EQ(a[i].outcome.payments, b[i].outcome.payments);
    ASSERT_EQ(a[i].outcome.allocation.task_count(),
              b[i].outcome.allocation.task_count());
    for (int t = 0; t < a[i].outcome.allocation.task_count(); ++t) {
      EXPECT_TRUE(a[i].outcome.allocation.phone_for(TaskId{t}) ==
                  b[i].outcome.allocation.phone_for(TaskId{t}))
          << "round " << a[i].round << " task " << t;
    }
  }
}

// ----------------------------------------------- streaming/batch oracle

TEST(ServeEngine, StreamedOutcomesMatchBatchMechanism_Shards1And4) {
  // The acceptance oracle: replaying a generated event file through the
  // sharded engine reproduces the batch OnlineGreedyMechanism outcome
  // byte-identically per round, for shard counts 1 and 4.
  const LoadGenConfig load = small_load(8);
  for (const int shards : {1, 4}) {
    std::ostringstream recorded;
    write_event_stream(recorded, load);

    ServeConfig config;
    config.shards = shards;
    ServeEngine engine(config);
    std::istringstream is(recorded.str());
    const ReplayStats replay = replay_event_stream(is, engine);
    engine.drain();
    EXPECT_EQ(replay.shed, 0);
    EXPECT_EQ(replay.events, replay.accepted);

    const std::vector<RoundOutcome> outcomes = engine.take_outcomes();
    ASSERT_EQ(static_cast<std::int64_t>(outcomes.size()), load.rounds);
    const VerifyReport report =
        verify_against_batch(load, outcomes, config.greedy);
    EXPECT_EQ(report.rounds_checked, load.rounds);
    EXPECT_TRUE(report.clean()) << "shards=" << shards << ": "
                                << report.first_diff;
  }
}

TEST(ServeEngine, EquivalenceHoldsUnderReserveAndProfitabilityKnobs) {
  const LoadGenConfig load = small_load(5);
  ServeConfig config;
  config.shards = 2;
  config.greedy.reserve_price = Money::from_units(30);
  config.greedy.allocate_only_profitable = true;
  config.greedy.scarce_payment =
      auction::OnlineGreedyConfig::ScarcePayment::kOwnBid;

  const std::vector<RoundOutcome> outcomes =
      run_engine(events_of(load), config);
  ASSERT_EQ(static_cast<std::int64_t>(outcomes.size()), load.rounds);
  const VerifyReport report =
      verify_against_batch(load, outcomes, config.greedy);
  EXPECT_TRUE(report.clean()) << report.first_diff;
}

// ------------------------------------------------- shard determinism

TEST(ServeEngine, OutcomesIdenticalForAnyShardCount) {
  const std::vector<ServeEvent> events = events_of(small_load());
  ServeConfig config;
  config.shards = 1;
  const std::vector<RoundOutcome> baseline = run_engine(events, config);
  for (const int shards : {2, 8}) {
    config.shards = shards;
    expect_same_outcomes(baseline, run_engine(events, config));
  }
}

TEST(ServeEngine, MergedCountersIdenticalForAnyShardCount) {
  // Per-shard registries fold via the deterministic merge, and every
  // counter on the serve path is per-event work (block admission loses
  // nothing), so the merged counter values must not depend on the shard
  // count. Durations live in span histograms, which are excluded here.
  const std::vector<ServeEvent> events = events_of(small_load());
  const auto counters_for = [&](int shards) {
    obs::MetricsRegistry registry;
    {
      const obs::ScopedRegistry guard(&registry);
      ServeConfig config;
      config.shards = shards;
      ServeEngine engine(config);
      for (const ServeEvent& event : events) engine.submit(event);
      engine.drain();
    }
    return registry.snapshot().counters;
  };

  const std::map<std::string, std::int64_t> baseline = counters_for(1);
  EXPECT_GT(baseline.at("serve.events.round_open"), 0);
  EXPECT_GT(baseline.at("serve.rounds_completed"), 0);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(baseline, counters_for(shards)) << "shards=" << shards;
  }
}

TEST(ServeEngine, ShardOfRoundIsStableAndInRange) {
  for (const int shards : {1, 2, 7, 16}) {
    for (std::int64_t round = 0; round < 100; ++round) {
      const int shard = shard_of_round(round, shards);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, shard_of_round(round, shards));  // pure function
    }
  }
  EXPECT_EQ(shard_of_round(12345, 1), 0);
}

// --------------------------------------------------- loadgen + replay

TEST(ServeLoadGen, SameSeedSameBytes) {
  const LoadGenConfig load = small_load(3);
  std::ostringstream a;
  std::ostringstream b;
  EXPECT_EQ(write_event_stream(a, load), write_event_stream(b, load));
  EXPECT_EQ(a.str(), b.str());

  LoadGenConfig other = load;
  other.seed = load.seed + 1;
  std::ostringstream c;
  write_event_stream(c, other);
  EXPECT_NE(a.str(), c.str());
}

TEST(ServeReplay, ReplayOfRecordedStreamMatchesDirectFeed) {
  const LoadGenConfig load = small_load(4);
  const std::vector<ServeEvent> events = events_of(load);

  ServeConfig config;
  config.shards = 3;
  const std::vector<RoundOutcome> direct = run_engine(events, config);

  std::ostringstream recorded;
  write_event_stream(recorded, load);
  ServeEngine engine(config);
  std::istringstream is(recorded.str());
  const ReplayStats stats = replay_event_stream(is, engine);
  engine.drain();

  EXPECT_EQ(stats.events, static_cast<std::int64_t>(events.size()));
  EXPECT_EQ(stats.lines, stats.events + 1);  // + header
  EXPECT_EQ(stats.shed, 0);
  expect_same_outcomes(direct, engine.take_outcomes());
}

TEST(ServeReplay, MalformedLineReportsItsLineNumber) {
  ServeConfig config;
  ServeEngine engine(config);
  std::istringstream is(
      "{\"schema\":\"mcs.serve.v1\"}\n"
      "{\"ev\":\"round_open\",\"round\":0,\"slots\":3,\"value\":\"10\"}\n"
      "{\"ev\":\"slot_tick\",\"round\":0,\"slot\":\n");
  try {
    replay_event_stream(is, engine);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  engine.drain();
}

TEST(ServeReplay, BinaryReplayMatchesJsonlReplay) {
  const LoadGenConfig load = small_load(5);
  std::ostringstream jsonl;
  write_event_stream(jsonl, load);
  std::istringstream jsonl_in(jsonl.str());
  std::ostringstream binary;
  transcode_serve_stream(jsonl_in, binary, WireFormat::kBinary);

  ServeConfig config;
  config.shards = 2;
  ServeEngine via_jsonl(config);
  std::istringstream a(jsonl.str());
  const ReplayStats jsonl_stats = replay_event_stream(a, via_jsonl);
  via_jsonl.drain();

  ServeEngine via_binary(config);
  std::istringstream b(binary.str());
  const ReplayStats binary_stats = replay_event_stream(b, via_binary);
  via_binary.drain();

  EXPECT_EQ(binary_stats.events, jsonl_stats.events);
  EXPECT_EQ(binary_stats.accepted, jsonl_stats.accepted);
  EXPECT_EQ(binary_stats.lines, 0);  // frames are not line-shaped
  expect_same_outcomes(via_jsonl.take_outcomes(), via_binary.take_outcomes());
}

TEST(ServeReplay, BatchedReplayMatchesPerEventReplay) {
  const LoadGenConfig load = small_load(5);
  std::ostringstream recorded;
  write_event_stream(recorded, load);

  ServeConfig config;
  config.shards = 4;
  ServeEngine per_event(config);
  std::istringstream a(recorded.str());
  const ReplayStats one_at_a_time = replay_event_stream(a, per_event);
  per_event.drain();

  config.batch_size = 32;
  ServeEngine batched(config);
  std::istringstream b(recorded.str());
  const ReplayStats in_batches =
      replay_event_stream(b, batched, /*batch=*/true);
  batched.drain();

  EXPECT_EQ(in_batches.events, one_at_a_time.events);
  EXPECT_EQ(in_batches.accepted, one_at_a_time.accepted);
  EXPECT_EQ(in_batches.shed, 0);
  expect_same_outcomes(per_event.take_outcomes(), batched.take_outcomes());
}

TEST(ServeReplay, TruncatedBinaryStreamReportsByteOffset) {
  const LoadGenConfig load = small_load(2);
  std::ostringstream jsonl;
  write_event_stream(jsonl, load);
  std::istringstream jsonl_in(jsonl.str());
  std::ostringstream binary;
  transcode_serve_stream(jsonl_in, binary, WireFormat::kBinary);
  std::string bytes = binary.str();
  bytes.pop_back();

  ServeConfig config;
  ServeEngine engine(config);
  std::istringstream is(bytes);
  try {
    replay_event_stream(is, engine);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  engine.drain();
}

// --------------------------------------------------- admission control

TEST(ServeEngine, BlockAdmissionLosesNothingEvenWithATinyQueue) {
  // queue_capacity 1 forces constant producer/consumer handoff; block
  // admission must still deliver every event exactly once.
  const LoadGenConfig load = small_load(4);
  ServeConfig config;
  config.shards = 2;
  config.queue_capacity = 1;
  const std::vector<RoundOutcome> outcomes =
      run_engine(events_of(load), config);
  ASSERT_EQ(static_cast<std::int64_t>(outcomes.size()), load.rounds);
  EXPECT_TRUE(verify_against_batch(load, outcomes, config.greedy).clean());
}

TEST(ServeEngine, RejectAdmissionShedsButCompletedRoundsStayExact) {
  // Under load shedding rounds may be lost whole or dropped mid-flight,
  // but any round that *does* complete consumed its full event sequence,
  // so it must still be byte-identical to the batch mechanism.
  const LoadGenConfig load = small_load(8);
  const std::vector<ServeEvent> events = events_of(load);
  ServeConfig config;
  config.shards = 2;
  config.queue_capacity = 2;
  config.admission = ServeConfig::Admission::kReject;

  ServeEngine engine(config);
  std::int64_t accepted = 0;
  std::int64_t shed = 0;
  for (const ServeEvent& event : events) {
    switch (engine.submit(event)) {
      case SubmitStatus::kAccepted:
        ++accepted;
        break;
      case SubmitStatus::kRejectedQueueFull:
        ++shed;
        break;
      case SubmitStatus::kRejectedStopped:
        FAIL() << "engine is not stopping";
    }
  }
  engine.drain();  // shedding must never poison the engine

  const ServeStats& stats = engine.stats();
  EXPECT_EQ(stats.submitted, accepted);
  EXPECT_EQ(stats.rejected_backpressure, shed);
  EXPECT_EQ(stats.processed, accepted);
  EXPECT_EQ(accepted + shed, static_cast<std::int64_t>(events.size()));

  for (const RoundOutcome& outcome : engine.take_outcomes()) {
    const model::Scenario scenario = loadgen_scenario(load, outcome.round);
    EXPECT_EQ(diff_against_batch(scenario, scenario.truthful_bids(), outcome,
                                 config.greedy),
              "");
  }
}

TEST(ServeEngine, RejectPolicyCountsOrphansInsteadOfFailing) {
  ServeConfig config;
  config.admission = ServeConfig::Admission::kReject;
  ServeEngine engine(config);
  // Round 9 was never opened (as if its round_open had been shed).
  EXPECT_EQ(engine.submit(slot_tick(9, Slot{1})), SubmitStatus::kAccepted);
  EXPECT_EQ(engine.submit(round_close(9)), SubmitStatus::kAccepted);
  engine.drain();
  EXPECT_EQ(engine.stats().orphaned_events, 2);
  EXPECT_EQ(engine.stats().rounds_corrupted, 0);
  EXPECT_TRUE(engine.take_outcomes().empty());
}

TEST(ServeEngine, RejectPolicyAbandonsACorruptedRound) {
  ServeConfig config;
  config.admission = ServeConfig::Admission::kReject;
  ServeEngine engine(config);
  engine.submit(round_open(1, 3, Money::from_units(10)));
  // Slot 2 arrives while the round clock still sits at slot 1 -- the kind
  // of hole shedding a slot_tick leaves behind.
  engine.submit(task_arrived(1, Slot{2}, TaskId{0}));
  engine.submit(round_close(1));
  engine.drain();
  EXPECT_EQ(engine.stats().rounds_corrupted, 1);
  // The close after the corruption is an orphan of the dropped round.
  EXPECT_EQ(engine.stats().orphaned_events, 1);
  EXPECT_TRUE(engine.take_outcomes().empty());
}

// ------------------------------------------------- strict stream errors

TEST(ServeEngine, BlockPolicyFailsOnEventForUnopenedRound) {
  ServeConfig config;
  ServeEngine engine(config);
  engine.submit(slot_tick(3, Slot{1}));
  EXPECT_THROW(engine.drain(), InvalidArgumentError);
}

TEST(ServeEngine, BlockPolicyFailsOnDuplicateRoundOpen) {
  ServeConfig config;
  ServeEngine engine(config);
  engine.submit(round_open(0, 3, Money::from_units(10)));
  engine.submit(round_open(0, 3, Money::from_units(10)));
  EXPECT_THROW(engine.drain(), InvalidArgumentError);
}

TEST(ServeEngine, BlockPolicyFailsOnOutOfOrderSlot) {
  ServeConfig config;
  ServeEngine engine(config);
  engine.submit(round_open(0, 4, Money::from_units(10)));
  engine.submit(slot_tick(0, Slot{2}));  // clock expects slot 1
  EXPECT_THROW(engine.drain(), InvalidArgumentError);
}

// ------------------------------------------------------ drain semantics

TEST(ServeEngine, DrainIsIdempotentAndStopsAdmission) {
  ServeConfig config;
  config.shards = 2;
  ServeEngine engine(config);
  engine.submit(round_open(0, 1, Money::from_units(10)));
  engine.submit(slot_tick(0, Slot{1}));
  engine.submit(round_close(0));
  engine.drain();
  engine.drain();  // no-op
  EXPECT_EQ(engine.submit(round_close(1)), SubmitStatus::kRejectedStopped);
  EXPECT_EQ(engine.stats().rounds_completed, 1);
}

TEST(ServeEngine, OpenRoundsAtShutdownAreAbandonedNotInvented) {
  ServeConfig config;
  ServeEngine engine(config);
  engine.submit(round_open(0, 5, Money::from_units(10)));
  engine.submit(slot_tick(0, Slot{1}));  // never closed
  engine.drain();
  EXPECT_EQ(engine.stats().rounds_abandoned, 1);
  EXPECT_EQ(engine.stats().rounds_completed, 0);
  EXPECT_TRUE(engine.take_outcomes().empty());
}

TEST(ServeEngine, OutcomesAreSortedByRoundId) {
  ServeConfig config;
  config.shards = 4;
  ServeEngine engine(config);
  // Feed rounds in reverse id order; take_outcomes must sort.
  for (const std::int64_t round : {5, 3, 1, 0}) {
    engine.submit(round_open(round, 1, Money::from_units(10)));
    engine.submit(slot_tick(round, Slot{1}));
    engine.submit(round_close(round));
  }
  engine.drain();
  const std::vector<RoundOutcome> outcomes = engine.take_outcomes();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].round, 0);
  EXPECT_EQ(outcomes[1].round, 1);
  EXPECT_EQ(outcomes[2].round, 3);
  EXPECT_EQ(outcomes[3].round, 5);
}

TEST(ServeEngine, StatsAggregateAcrossShards) {
  const LoadGenConfig load = small_load(5);
  const std::vector<ServeEvent> events = events_of(load);
  ServeConfig config;
  config.shards = 3;
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();

  const ServeStats& stats = engine.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(events.size()));
  EXPECT_EQ(stats.processed, stats.submitted);
  EXPECT_EQ(stats.rounds_completed, load.rounds);

  Money total;
  std::int64_t tasks = 0;
  for (const RoundOutcome& outcome : engine.take_outcomes()) {
    total += outcome.total_paid;
    tasks += outcome.tasks_announced;
  }
  EXPECT_EQ(stats.total_paid, total);
  EXPECT_EQ(stats.tasks_announced, tasks);
}

TEST(ServeEngine, QueueHighWatermarkIsTrackedAndMaxMerged) {
  // The watermark's value is scheduling-dependent, but it must be > 0
  // whenever anything queued, bounded by capacity, and max-merged into the
  // drain totals (plus exported as the serve.queue_high_watermark gauge).
  const std::vector<ServeEvent> events = events_of(small_load(4));
  obs::MetricsRegistry registry;
  std::int64_t watermark = 0;
  {
    const obs::ScopedRegistry guard(&registry);
    ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 8;
    ServeEngine engine(config);
    for (const ServeEvent& event : events) engine.submit(event);
    engine.drain();
    watermark = engine.stats().queue_high_watermark;
  }
  EXPECT_GT(watermark, 0);
  EXPECT_LE(watermark, 8);
  const auto gauges = registry.snapshot().gauges;
  ASSERT_EQ(gauges.count("serve.queue_high_watermark"), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(gauges.at("serve.queue_high_watermark")),
            watermark);
  // Per-shard gauges exist for every shard and max up to the total.
  std::int64_t shard_max = 0;
  for (const int shard : {0, 1}) {
    const std::string name =
        "serve.shard." + std::to_string(shard) + ".queue_high_watermark";
    ASSERT_EQ(gauges.count(name), 1u) << name;
    shard_max = std::max(shard_max,
                         static_cast<std::int64_t>(gauges.at(name)));
  }
  EXPECT_EQ(shard_max, watermark);
}

TEST(ServeConfigTest, ValidateRejectsOutOfDomainKnobs) {
  ServeConfig bad_shards;
  bad_shards.shards = 0;
  EXPECT_THROW(bad_shards.validate(), InvalidArgumentError);
  ServeConfig bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(bad_queue.validate(), InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::serve
