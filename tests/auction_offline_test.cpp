// Tests for the offline VCG mechanism (paper Section IV): graph
// construction (Fig. 3), allocation optimality against the brute-force
// oracle, hand-computed VCG payments on the Fig. 4 instance, equality of
// incremental and naive marginal computations, and the Theorem 1/2 audits.
//
// Hand computation used below (fig4_scenario, nu = 20): the unique cheapest
// feasible set of 5 winners is phones {0, 1, 4, 5, 6} with claimed costs
// {3, 5, 4, 8, 6} (total 26), so omega*(B) = 100 - 26 = 74. Removing any
// single winner forces the next-cheapest feasible substitution, giving
// omega*(B_{-i}) of 68, 70, 69, 73, 71 for i = 0, 1, 4, 5, 6 respectively
// -- which makes every winner's VCG payment exactly 9.
#include "auction/offline_vcg.hpp"

#include <gtest/gtest.h>

#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "common/rng.hpp"
#include "matching/brute_force.hpp"
#include "model/paper_examples.hpp"
#include "model/strategy.hpp"
#include "model/workload.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ------------------------------------------------------ graph construction

TEST(OfflineGraph, Fig3EdgesFollowActivity) {
  const model::Scenario s = model::fig3_scenario();
  const matching::WeightMatrix g =
      OfflineVcgMechanism::build_graph(s, s.truthful_bids());
  ASSERT_EQ(g.rows(), 5);  // tasks
  ASSERT_EQ(g.cols(), 4);  // phones
  // Phone 0 is active in both slots: edges to all five tasks.
  for (int t = 0; t < 5; ++t) {
    EXPECT_TRUE(g.has_edge(t, 0)) << "task " << t;
    EXPECT_EQ(g.weight(t, 0), s.task_value - s.phone(PhoneId{0}).cost);
  }
  // Phones 1-3 join in slot 2: no edges to the slot-1 tasks (0, 1), edges
  // to the slot-2 tasks (2, 3, 4).
  for (int phone = 1; phone < 4; ++phone) {
    EXPECT_FALSE(g.has_edge(0, phone));
    EXPECT_FALSE(g.has_edge(1, phone));
    for (int t = 2; t < 5; ++t) {
      EXPECT_TRUE(g.has_edge(t, phone));
    }
  }
}

TEST(OfflineGraph, WeightIsValueMinusClaimedCost) {
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 2, 3).task(1).build();
  model::BidProfile bids = s.truthful_bids();
  bids[0].claimed_cost = mu(7);  // misreport; graph must use the claim
  const matching::WeightMatrix g = OfflineVcgMechanism::build_graph(s, bids);
  EXPECT_EQ(g.weight(0, 0), mu(3));
}

// ------------------------------------------------------------- allocation

TEST(OfflineVcg, Fig4AllocatesCheapestFeasibleSet) {
  const model::Scenario s = model::fig4_scenario();
  const OfflineVcgMechanism mechanism;
  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_EQ(outcome.allocation.allocated_count(), 5);
  const std::vector<PhoneId> winners = outcome.allocation.winners();
  EXPECT_EQ(winners, (std::vector<PhoneId>{PhoneId{0}, PhoneId{1}, PhoneId{4},
                                           PhoneId{5}, PhoneId{6}}));
  EXPECT_EQ(outcome.social_welfare(s), mu(74));
}

TEST(OfflineVcg, Fig4BeatsOnlineWelfare) {
  // The online greedy run allocates {1, 0, 6, 5, 3} at total cost 31
  // (welfare 69); the offline optimum is 74.
  const model::Scenario s = model::fig4_scenario();
  EXPECT_EQ(OfflineVcgMechanism::optimal_claimed_welfare(s, s.truthful_bids()),
            mu(74));
}

TEST(OfflineVcg, LeavesUnprofitableTasksUnallocated) {
  // One phone costing more than the value: the optimum allocates nothing.
  const model::Scenario s =
      model::ScenarioBuilder(1).value(5).phone(1, 1, 9).task(1).build();
  const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.allocation.allocated_count(), 0);
  EXPECT_EQ(outcome.total_payment(), Money{});
}

TEST(OfflineVcg, EmptyScenarios) {
  {
    const model::Scenario s = model::ScenarioBuilder(3).value(5).build();
    const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
    EXPECT_EQ(outcome.allocation.allocated_count(), 0);
  }
  {
    const model::Scenario s =
        model::ScenarioBuilder(3).value(5).phone(1, 2, 1).build();
    const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
    EXPECT_EQ(outcome.allocation.allocated_count(), 0);
    EXPECT_EQ(outcome.payments[0], Money{});
  }
}

TEST(OfflineVcg, OptimalityAgainstOracleOnRandomInstances) {
  Rng rng(808);
  for (int trial = 0; trial < 50; ++trial) {
    model::ScenarioBuilder builder(4);
    builder.value(15);
    const int phones = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 4));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 4));
      builder.phone(a, d, rng.uniform_int(1, 20));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();

    const Outcome outcome = OfflineVcgMechanism{}.run(s, bids);
    const matching::Matching oracle = matching::brute_force_max_weight(
        OfflineVcgMechanism::build_graph(s, bids));
    ASSERT_EQ(outcome.claimed_welfare(s, bids), oracle.total_weight)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------- payments

TEST(OfflineVcg, Fig4PaymentsAllNine) {
  const model::Scenario s = model::fig4_scenario();
  const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
  for (const PhoneId winner :
       {PhoneId{0}, PhoneId{1}, PhoneId{4}, PhoneId{5}, PhoneId{6}}) {
    EXPECT_EQ(outcome.payments[static_cast<std::size_t>(winner.value())],
              mu(9))
        << "phone " << winner;
  }
  // Losers are paid nothing.
  EXPECT_EQ(outcome.payments[2], Money{});
  EXPECT_EQ(outcome.payments[3], Money{});
  EXPECT_EQ(outcome.total_payment(), mu(45));
}

TEST(OfflineVcg, Fig4UtilitiesAreMarginalContributions) {
  // u_i = omega*(B) - omega*(B_{-i}): 6, 4, 5, 1, 3 for phones 0,1,4,5,6.
  const model::Scenario s = model::fig4_scenario();
  const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.utility(s, PhoneId{0}), mu(6));
  EXPECT_EQ(outcome.utility(s, PhoneId{1}), mu(4));
  EXPECT_EQ(outcome.utility(s, PhoneId{4}), mu(5));
  EXPECT_EQ(outcome.utility(s, PhoneId{5}), mu(1));
  EXPECT_EQ(outcome.utility(s, PhoneId{6}), mu(3));
  EXPECT_EQ(outcome.utility(s, PhoneId{2}), Money{});
  EXPECT_EQ(outcome.utility(s, PhoneId{3}), Money{});
}

TEST(OfflineVcg, SingleBidderPaidFullValue) {
  // Alone, a bidder's externality is the whole task: VCG pays nu.
  const model::Scenario s =
      model::ScenarioBuilder(1).value(10).phone(1, 1, 2).task(1).build();
  const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(10));
  EXPECT_EQ(outcome.utility(s, PhoneId{0}), mu(8));
}

TEST(OfflineVcg, DuopolyPaysSecondPrice) {
  // Two phones, one task: classic VCG = second price.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 2)
                                .phone(1, 1, 7)
                                .task(1)
                                .build();
  const Outcome outcome = OfflineVcgMechanism{}.run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(7));
  EXPECT_EQ(outcome.payments[1], Money{});
}

TEST(OfflineVcg, NaiveAndIncrementalMarginalsAgree) {
  Rng rng(909);
  const OfflineVcgMechanism fast;
  const OfflineVcgMechanism naive(OfflineVcgConfig{.naive_marginals = true});
  for (int trial = 0; trial < 25; ++trial) {
    model::ScenarioBuilder builder(5);
    builder.value(25);
    const int phones = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 5));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 5));
      builder.phone(a, d, rng.uniform_int(1, 24));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 7));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
    }
    const model::Scenario s = builder.build();
    const Outcome a = fast.run_truthful(s);
    const Outcome b = naive.run_truthful(s);
    ASSERT_EQ(a.payments, b.payments) << "trial " << trial;
  }
}

// ------------------------------------------------------- theorem audits

TEST(OfflineVcg, Fig4TruthfulnessAuditPasses) {
  const model::Scenario s = model::fig4_scenario();
  const OfflineVcgMechanism mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();
  EXPECT_GT(report.deviations_tested, 200);
}

class OfflineVcgRandomAudit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineVcgRandomAudit, TruthfulAndRationalOnRandomInstance) {
  Rng rng(GetParam());
  model::ScenarioBuilder builder(4);
  builder.value(12);
  const int phones = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < phones; ++i) {
    const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 4));
    const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 4));
    builder.phone(a, d, rng.uniform_int(1, 15));
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 4));
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
  }
  const model::Scenario s = builder.build();
  const OfflineVcgMechanism mechanism;

  const analysis::TruthfulnessReport truth =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(truth.truthful()) << truth.summary();

  const analysis::RationalityReport rationality =
      analysis::audit_individual_rationality(mechanism, s);
  EXPECT_TRUE(rationality.individually_rational()) << rationality.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineVcgRandomAudit,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(OfflineVcg, TruthfulnessHoldsAgainstStrategicOthers) {
  // Definition 4 quantifies over arbitrary B_{-i}: audit with the other
  // phones already misreporting.
  const model::Scenario s = model::fig4_scenario();
  Rng rng(5);
  model::BidProfile base =
      model::apply_strategy(s, model::CostMarkupStrategy(1.5), rng);
  const OfflineVcgMechanism mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s, base);
  EXPECT_TRUE(report.truthful()) << report.summary();
}

TEST(OfflineVcg, WinnersPaidAtLeastClaimedCost) {
  Rng rng(1234);
  model::WorkloadConfig workload;
  workload.num_slots = 10;
  workload.phone_arrival_rate = 3.0;
  workload.task_arrival_rate = 1.5;
  workload.mean_cost = 10.0;
  workload.task_value = mu(20);
  const model::Scenario s = model::generate_scenario(workload, rng);
  const model::BidProfile bids = s.truthful_bids();
  const Outcome outcome = OfflineVcgMechanism{}.run(s, bids);
  for (const PhoneId winner : outcome.allocation.winners()) {
    EXPECT_GE(outcome.payments[static_cast<std::size_t>(winner.value())],
              bids[static_cast<std::size_t>(winner.value())].claimed_cost);
  }
}

}  // namespace
}  // namespace mcs::auction
