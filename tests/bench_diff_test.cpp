#include "analysis/bench_diff.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "io/json_parse.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mcs::analysis {
namespace {

// Fixtures are built the same way the real pipeline builds them: fill a
// MetricsRegistry, export it with write_metrics_json, and (for wrapper
// documents) splice the per-bench reports into a mcs.bench_telemetry.v1
// object -- exactly what scripts/collect_bench.sh does with `tr`/printf.

std::string export_registry(const obs::MetricsRegistry& registry,
                            const std::string& tool) {
  std::ostringstream os;
  obs::write_metrics_json(os, registry, nullptr, {{"tool", tool}});
  std::string text = os.str();
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::string wrap_sections(
    const std::vector<std::pair<std::string, std::string>>& sections) {
  std::string out = "{\"schema\":\"mcs.bench_telemetry.v1\"";
  for (const auto& [name, report] : sections) {
    out += ",\"" + name + "\":" + report;
  }
  out += "}";
  return out;
}

/// A registry resembling one bench section: headline counters, one
/// deterministic distribution histogram, one duration histogram.
void fill_section(obs::MetricsRegistry& registry, std::int64_t iterations,
                  double pool_sample, double duration_us) {
  obs::preregister_headline_counters(registry);
  registry.counter("matching.hungarian.iterations").add(iterations);
  registry.counter("auction.critical_value.probes").add(7);
  const std::vector<double> pool_edges{2.0, 4.0, 8.0};
  registry.histogram("auction.greedy.pool_size", &pool_edges)
      .observe(pool_sample);
  registry.histogram("span.allocation_us").observe(duration_us);
}

io::JsonValue parse(const std::string& text) { return io::parse_json(text); }

TEST(BenchDiff, SelfCompareIsClean) {
  obs::MetricsRegistry registry;
  fill_section(registry, 42, 3.0, 100.0);
  const std::string doc =
      wrap_sections({{"perf_matching", export_registry(registry, "perf_matching")}});
  const BenchDiffReport report =
      diff_bench_telemetry(parse(doc), parse(doc));

  EXPECT_TRUE(report.deterministic_clean());
  EXPECT_FALSE(report.timings_regressed());
  EXPECT_FALSE(report.regression({}));
  // All nine headline counters plus nothing else.
  EXPECT_EQ(report.counters_compared, 9);
  EXPECT_EQ(report.histograms_compared, 1);
  ASSERT_EQ(report.timings.size(), 1u);
  EXPECT_EQ(report.timings[0].name, "span.allocation_us");
  EXPECT_DOUBLE_EQ(report.timings[0].ratio_p50, 1.0);
  EXPECT_DOUBLE_EQ(report.timings[0].ratio_p99, 1.0);
  EXPECT_FALSE(report.timings[0].regressed);
}

TEST(BenchDiff, CounterDriftIsNamedAndFailsTheGate) {
  obs::MetricsRegistry baseline;
  fill_section(baseline, 42, 3.0, 100.0);
  obs::MetricsRegistry candidate;
  fill_section(candidate, 45, 3.0, 100.0);  // iterations drifted 42 -> 45
  const BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections(
          {{"perf_matching", export_registry(baseline, "perf_matching")}})),
      parse(wrap_sections(
          {{"perf_matching", export_registry(candidate, "perf_matching")}})));

  EXPECT_FALSE(report.deterministic_clean());
  EXPECT_TRUE(report.regression({}));  // even without gate_timings
  ASSERT_EQ(report.counter_drifts.size(), 1u);
  EXPECT_EQ(report.counter_drifts[0].bench, "perf_matching");
  EXPECT_EQ(report.counter_drifts[0].name, "matching.hungarian.iterations");
  EXPECT_EQ(report.counter_drifts[0].baseline, 42);
  EXPECT_EQ(report.counter_drifts[0].candidate, 45);

  // The markdown verdict names the drifted counter.
  std::ostringstream md;
  write_bench_diff_markdown(md, report);
  EXPECT_NE(md.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(md.str().find("matching.hungarian.iterations"), std::string::npos);
}

TEST(BenchDiff, MissingCounterIsDrift) {
  obs::MetricsRegistry baseline;
  fill_section(baseline, 42, 3.0, 100.0);
  baseline.counter("matching.flow.spfa_pops").add(9);
  obs::MetricsRegistry candidate;
  fill_section(candidate, 42, 3.0, 100.0);
  const BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections({{"b", export_registry(baseline, "b")}})),
      parse(wrap_sections({{"b", export_registry(candidate, "b")}})));

  ASSERT_EQ(report.counter_drifts.size(), 1u);
  EXPECT_EQ(report.counter_drifts[0].name, "matching.flow.spfa_pops");
  EXPECT_TRUE(report.counter_drifts[0].in_baseline);
  EXPECT_FALSE(report.counter_drifts[0].in_candidate);
  EXPECT_TRUE(report.regression({}));
}

TEST(BenchDiff, MissingSectionIsANote) {
  obs::MetricsRegistry a;
  fill_section(a, 1, 2.0, 10.0);
  const std::string section = export_registry(a, "a");
  const BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections({{"a", section}, {"b", section}})),
      parse(wrap_sections({{"a", section}})));

  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("b"), std::string::npos);
  EXPECT_TRUE(report.regression({}));
}

TEST(BenchDiff, DeterministicHistogramDriftFails) {
  obs::MetricsRegistry baseline;
  fill_section(baseline, 42, 3.0, 100.0);  // pool sample in (2, 4]
  obs::MetricsRegistry candidate;
  fill_section(candidate, 42, 7.0, 100.0);  // pool sample in (4, 8]
  const BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections({{"b", export_registry(baseline, "b")}})),
      parse(wrap_sections({{"b", export_registry(candidate, "b")}})));

  ASSERT_EQ(report.histogram_drifts.size(), 1u);
  EXPECT_EQ(report.histogram_drifts[0].name, "auction.greedy.pool_size");
  EXPECT_TRUE(report.regression({}));
}

TEST(BenchDiff, TimingRegressionGatesOnlyWhenAsked) {
  obs::MetricsRegistry baseline;
  fill_section(baseline, 42, 3.0, 100.0);
  obs::MetricsRegistry candidate;
  fill_section(candidate, 42, 3.0, 1000.0);  // ~10x slower span
  const BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections({{"b", export_registry(baseline, "b")}})),
      parse(wrap_sections({{"b", export_registry(candidate, "b")}})));

  EXPECT_TRUE(report.deterministic_clean());
  ASSERT_EQ(report.timings.size(), 1u);
  EXPECT_TRUE(report.timings[0].regressed);
  EXPECT_GT(report.timings[0].max_ratio, 5.0);
  EXPECT_TRUE(report.timings_regressed());
  // Report-only by default; fails only with the opt-in gate.
  EXPECT_FALSE(report.regression({}));
  BenchDiffOptions gated;
  gated.gate_timings = true;
  EXPECT_TRUE(report.regression(gated));
  // A looser threshold un-flags it.
  BenchDiffOptions loose;
  loose.timing_ratio_threshold = 100.0;
  const BenchDiffReport relaxed = diff_bench_telemetry(
      parse(wrap_sections({{"b", export_registry(baseline, "b")}})),
      parse(wrap_sections({{"b", export_registry(candidate, "b")}})), loose);
  EXPECT_FALSE(relaxed.timings_regressed());
}

TEST(BenchDiff, BareTelemetryReportsDiffAsOneSection) {
  obs::MetricsRegistry registry;
  fill_section(registry, 42, 3.0, 100.0);
  const std::string doc = export_registry(registry, "mcs_cli run");
  const BenchDiffReport report = diff_bench_telemetry(parse(doc), parse(doc));
  EXPECT_TRUE(report.deterministic_clean());
  EXPECT_EQ(report.counters_compared, 9);
  ASSERT_EQ(report.timings.size(), 1u);
  // The single section is named after meta.tool.
  EXPECT_EQ(report.timings[0].bench, "mcs_cli run");
}

TEST(BenchDiff, RejectsNonTelemetryDocuments) {
  EXPECT_THROW(
      (void)diff_bench_telemetry(parse("{\"schema\":\"other.v1\"}"),
                                 parse("{\"schema\":\"other.v1\"}")),
      InvalidArgumentError);
}

TEST(BenchDiff, JsonVerdictRoundTrips) {
  obs::MetricsRegistry baseline;
  fill_section(baseline, 42, 3.0, 100.0);
  obs::MetricsRegistry candidate;
  fill_section(candidate, 43, 3.0, 100.0);
  BenchDiffReport report = diff_bench_telemetry(
      parse(wrap_sections({{"b", export_registry(baseline, "b")}})),
      parse(wrap_sections({{"b", export_registry(candidate, "b")}})));
  report.baseline_label = "base.json";
  report.candidate_label = "cand.json";

  std::ostringstream os;
  write_bench_diff_json(os, report);
  const io::JsonValue doc = parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "mcs.bench_diff.v1");
  EXPECT_EQ(doc.at("verdict").as_string(), "regression");
  EXPECT_EQ(doc.at("baseline").as_string(), "base.json");
  const auto& drifts = doc.at("counters").at("drifts").as_array();
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].at("name").as_string(), "matching.hungarian.iterations");
  EXPECT_EQ(doc.at("counters").at("compared").as_int(), 9);
  EXPECT_EQ(doc.at("timings").as_array().size(), 1u);
}

}  // namespace
}  // namespace mcs::analysis
