// Tests for the XOR multi-window bid extension: single-option reduction to
// the paper's offline mechanism, cheapest-covering-option selection, VCG
// payment properties, and the "reporting everything truthfully is optimal"
// spot checks.
#include "auction/xor_bids.hpp"

#include <gtest/gtest.h>

#include "auction/offline_vcg.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(XorBids, SingleOptionProfileReducesToOfflineVcg) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const XorOutcome xor_outcome = run_xor_vcg(s, as_xor_profile(bids));
  const Outcome plain = OfflineVcgMechanism{}.run(s, bids);

  EXPECT_EQ(xor_outcome.payments, plain.payments);
  for (int t = 0; t < s.task_count(); ++t) {
    const auto& a = xor_outcome.assignments[static_cast<std::size_t>(t)];
    const auto phone = plain.allocation.phone_for(TaskId{t});
    ASSERT_EQ(a.has_value(), phone.has_value()) << "task " << t;
    if (a) {
      EXPECT_EQ(a->phone, *phone);
      EXPECT_EQ(a->option, 0);
    }
  }
}

TEST(XorBids, PhoneExercisesItsCheapestCoveringOption) {
  // One phone, two options covering slot 1 at different costs.
  const model::Scenario s =
      model::ScenarioBuilder(3).value(20).phone(1, 1, 99).task(1).build();
  XorBidProfile profile(1);
  profile[0] = {BidOption{SlotInterval::of(1, 2), mu(9)},
                BidOption{SlotInterval::of(1, 3), mu(4)},
                BidOption{SlotInterval::of(2, 3), mu(1)}};  // doesn't cover
  const XorOutcome outcome = run_xor_vcg(s, profile);
  ASSERT_TRUE(outcome.assignments[0].has_value());
  EXPECT_EQ(outcome.assignments[0]->option, 1);  // the 4, not the 9 or the 1
  // Alone in the market: VCG pays the full task value.
  EXPECT_EQ(outcome.payments[0], mu(20));
  EXPECT_EQ(outcome.utility(profile, PhoneId{0}), mu(16));
}

TEST(XorBids, SecondWindowUnlocksOtherwiseLostTasks) {
  // Under the paper's single-bid rule the phone must pick one window and
  // one of the two tasks is lost; XOR bidding serves... still only one
  // (one phone, one task), but a *pair* of phones shows the gain:
  const model::Scenario s = model::ScenarioBuilder(9)
                                .value(20)
                                .phone(1, 1, 0)   // placeholder profiles
                                .phone(1, 1, 0)
                                .task(2)
                                .task(8)
                                .build();
  // Both phones are free in the morning AND evening; single-bid forces
  // each to offer one window. Worst single-bid choice: both offer mornings
  // -> the evening task expires.
  const model::BidProfile both_morning = {
      model::Bid{SlotInterval::of(1, 3), mu(5)},
      model::Bid{SlotInterval::of(1, 3), mu(6)}};
  EXPECT_EQ(OfflineVcgMechanism::optimal_claimed_welfare(s, both_morning),
            mu(15));

  // XOR bids offer both windows; the optimum spreads the phones out.
  XorBidProfile profile(2);
  profile[0] = {BidOption{SlotInterval::of(1, 3), mu(5)},
                BidOption{SlotInterval::of(7, 9), mu(3)}};  // cheaper evening
  profile[1] = {BidOption{SlotInterval::of(1, 3), mu(6)},
                BidOption{SlotInterval::of(7, 9), mu(8)}};
  EXPECT_EQ(optimal_xor_welfare(s, profile), mu(31));  // (20-6) + (20-3)

  const XorOutcome outcome = run_xor_vcg(s, profile);
  ASSERT_TRUE(outcome.assignments[0].has_value());
  ASSERT_TRUE(outcome.assignments[1].has_value());
  EXPECT_EQ(outcome.assignments[0]->phone, PhoneId{1});  // morning task
  EXPECT_EQ(outcome.assignments[1]->phone, PhoneId{0});  // evening task
  EXPECT_EQ(outcome.assignments[1]->option, 1);
}

TEST(XorBids, EmptyBidAbstains) {
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(10)
                                .phone(1, 2, 3)
                                .phone(1, 2, 5)
                                .task(1)
                                .build();
  XorBidProfile profile(2);
  profile[1] = {BidOption{SlotInterval::of(1, 2), mu(5)}};
  // Phone 0 abstains (empty option set): phone 1 wins alone.
  const XorOutcome outcome = run_xor_vcg(s, profile);
  EXPECT_FALSE(outcome.is_winner(PhoneId{0}));
  EXPECT_TRUE(outcome.is_winner(PhoneId{1}));
  EXPECT_EQ(outcome.payments[1], mu(10));  // unopposed: full value
}

TEST(XorBids, GraphTakesBestOptionPerPair) {
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 2, 0).task(2).build();
  XorBidProfile profile(1);
  profile[0] = {BidOption{SlotInterval::of(1, 2), mu(7)},
                BidOption{SlotInterval::of(2, 2), mu(3)}};
  const matching::WeightMatrix g = build_xor_graph(s, profile);
  EXPECT_EQ(g.weight(0, 0), mu(7));  // 10 - 3: the slot-2 option wins
}

TEST(XorBids, HidingOptionsOrInflatingCostsNeverHelps) {
  const model::Scenario s = model::ScenarioBuilder(6)
                                .value(15)
                                .phone(1, 1, 0)
                                .phone(1, 1, 0)
                                .task(1)
                                .task(5)
                                .build();
  XorBidProfile truthful(2);
  truthful[0] = {BidOption{SlotInterval::of(1, 2), mu(4)},
                 BidOption{SlotInterval::of(4, 6), mu(6)}};
  truthful[1] = {BidOption{SlotInterval::of(1, 2), mu(5)},
                 BidOption{SlotInterval::of(4, 6), mu(9)}};
  const Money honest0 = run_xor_vcg(s, truthful).utility(truthful, PhoneId{0});

  // Hiding an option: utility can only drop.
  for (const std::size_t hidden : {0u, 1u}) {
    XorBidProfile lied = truthful;
    lied[0].erase(lied[0].begin() + static_cast<std::ptrdiff_t>(hidden));
    const XorOutcome outcome = run_xor_vcg(s, lied);
    // Utility must be measured against TRUE costs; the hidden-option
    // profile's exercised cost equals its true cost (costs unchanged).
    EXPECT_LE(outcome.utility(lied, PhoneId{0}), honest0) << hidden;
  }
  // Inflating a cost: same.
  for (const std::int64_t inflated : {6, 9, 30}) {
    XorBidProfile lied = truthful;
    lied[0][0].cost = mu(inflated);
    const XorOutcome outcome = run_xor_vcg(s, lied);
    // True cost of option 0 is 4; adjust utility to true costs.
    Money utility = outcome.payments[0];
    for (const auto& a : outcome.assignments) {
      if (a && a->phone == PhoneId{0}) {
        utility -= truthful[0][static_cast<std::size_t>(a->option)].cost;
      }
    }
    EXPECT_LE(utility, honest0) << inflated;
  }
}

TEST(XorBids, RandomProfilesSatisfyVcgInvariants) {
  Rng rng(20260706);
  for (int trial = 0; trial < 25; ++trial) {
    model::ScenarioBuilder builder(5);
    builder.value(30);
    const int phones = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < phones; ++i) builder.phone(1, 1, 0);  // placeholders
    const int tasks = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
    }
    const model::Scenario s = builder.build();

    XorBidProfile profile(static_cast<std::size_t>(phones));
    for (auto& bid : profile) {
      const int options = static_cast<int>(rng.uniform_int(0, 3));
      for (int o = 0; o < options; ++o) {
        const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 5));
        const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 5));
        bid.push_back(BidOption{SlotInterval::of(a, d),
                                mu(rng.uniform_int(1, 25))});
      }
    }

    const XorOutcome outcome = run_xor_vcg(s, profile);
    outcome.validate(s, profile);
    EXPECT_EQ(outcome.claimed_welfare(s, profile),
              optimal_xor_welfare(s, profile))
        << "trial " << trial;
    for (int i = 0; i < phones; ++i) {
      EXPECT_GE(outcome.utility(profile, PhoneId{i}), Money{})
          << "trial " << trial << " phone " << i;
    }
  }
}

TEST(XorBids, MalformedProfilesRejected) {
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 2, 3).task(1).build();
  EXPECT_THROW(std::ignore = run_xor_vcg(s, XorBidProfile{}),
               InvalidScenarioError);
  XorBidProfile bad(1);
  bad[0] = {BidOption{SlotInterval::of(1, 5), mu(3)}};  // beyond the round
  EXPECT_THROW(std::ignore = run_xor_vcg(s, bad), InvalidScenarioError);
}

}  // namespace
}  // namespace mcs::auction
