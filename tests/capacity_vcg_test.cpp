// Tests for the capacitated offline VCG extension: the flow formulation's
// per-slot and capacity constraints, equivalence with the matching-based
// mechanism at capacity 1, a brute-force oracle cross-check, VCG payment
// properties, and truthfulness spot checks (cost, window, capacity
// understatement).
#include "auction/capacity_vcg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "auction/offline_vcg.hpp"
#include "common/rng.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

/// Exponential oracle: best claimed welfare by trying every assignment of
/// tasks to (phone or unserved), respecting windows, per-slot uniqueness,
/// and capacities. Tiny instances only.
Money oracle_welfare(const model::Scenario& s, const model::BidProfile& bids,
                     const CapacityProfile& caps) {
  const int gamma = s.task_count();
  const int n = s.phone_count();
  std::vector<int> remaining(caps.begin(), caps.end());
  std::vector<std::vector<char>> slot_used(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(s.num_slots) + 1, 0));

  Money best = Money::from_units(-1'000'000);
  Money current;
  const auto recurse = [&](auto&& self, int t) -> void {
    if (t == gamma) {
      best = std::max(best, current);
      return;
    }
    self(self, t + 1);  // leave task t unserved
    const Slot slot = s.tasks[static_cast<std::size_t>(t)].slot;
    for (int i = 0; i < n; ++i) {
      if (remaining[static_cast<std::size_t>(i)] <= 0) continue;
      if (slot_used[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(slot.value())]) {
        continue;
      }
      if (!bids[static_cast<std::size_t>(i)].window.contains(slot)) continue;
      const Money w = s.value_of(TaskId{t}) -
                      bids[static_cast<std::size_t>(i)].claimed_cost;
      --remaining[static_cast<std::size_t>(i)];
      slot_used[static_cast<std::size_t>(i)]
               [static_cast<std::size_t>(slot.value())] = 1;
      current += w;
      self(self, t + 1);
      current -= w;
      slot_used[static_cast<std::size_t>(i)]
               [static_cast<std::size_t>(slot.value())] = 0;
      ++remaining[static_cast<std::size_t>(i)];
    }
  };
  recurse(recurse, 0);
  return best;
}

TEST(CapacityVcg, UniformCapacityHelper) {
  const CapacityProfile caps = uniform_capacity(3, 2);
  EXPECT_EQ(caps, (CapacityProfile{2, 2, 2}));
  EXPECT_THROW(uniform_capacity(-1, 1), ContractViolation);
  EXPECT_THROW(uniform_capacity(1, -1), ContractViolation);
}

TEST(CapacityVcg, CapacityTwoServesTwoTasksInDifferentSlots) {
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(10)
                                .phone(1, 2, 3)
                                .task(1)
                                .task(2)
                                .build();
  const CapacityOutcome outcome =
      run_capacity_vcg(s, s.truthful_bids(), uniform_capacity(1, 2));
  EXPECT_EQ(outcome.allocated_count(), 2);
  EXPECT_EQ(outcome.tasks_served_by(PhoneId{0}), 2);
  EXPECT_EQ(outcome.social_welfare(s), mu(14));
}

TEST(CapacityVcg, NeverTwoTasksInTheSameSlot) {
  // Two tasks in one slot, one capacity-2 phone: only one can be served.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 3)
                                .tasks(1, 2)
                                .build();
  const CapacityOutcome outcome =
      run_capacity_vcg(s, s.truthful_bids(), uniform_capacity(1, 2));
  EXPECT_EQ(outcome.allocated_count(), 1);
  EXPECT_EQ(outcome.tasks_served_by(PhoneId{0}), 1);
}

TEST(CapacityVcg, ZeroCapacityPhoneAbstains) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 1)
                                .phone(1, 1, 5)
                                .task(1)
                                .build();
  const CapacityOutcome outcome =
      run_capacity_vcg(s, s.truthful_bids(), CapacityProfile{0, 1});
  EXPECT_EQ(outcome.tasks_served_by(PhoneId{0}), 0);
  EXPECT_EQ(outcome.tasks_served_by(PhoneId{1}), 1);
}

TEST(CapacityVcg, CapacityOneMatchesMatchingMechanism) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    model::ScenarioBuilder builder(4);
    builder.value(20);
    const int phones = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 4));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 4));
      builder.phone(a, d, rng.uniform_int(1, 25));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();

    const Money flow_welfare =
        optimal_capacity_welfare(s, bids, uniform_capacity(phones, 1));
    const Money matching_welfare =
        OfflineVcgMechanism::optimal_claimed_welfare(s, bids);
    ASSERT_EQ(flow_welfare, matching_welfare) << "trial " << trial;

    // And the VCG utilities coincide phone by phone. (Utilities, not raw
    // payments: with tied optima the two exact solvers may pick different
    // zero-marginal winners, but every phone's marginal contribution --
    // and hence its utility -- is allocation-independent.)
    const CapacityOutcome cap =
        run_capacity_vcg(s, bids, uniform_capacity(phones, 1));
    const Outcome plain = OfflineVcgMechanism{}.run(s, bids);
    for (int i = 0; i < phones; ++i) {
      ASSERT_EQ(cap.utility(s, PhoneId{i}), plain.utility(s, PhoneId{i}))
          << "trial " << trial << " phone " << i;
    }
  }
}

TEST(CapacityVcg, WelfareMatchesOracleOnRandomCapacitatedInstances) {
  Rng rng(5151);
  for (int trial = 0; trial < 25; ++trial) {
    model::ScenarioBuilder builder(3);
    builder.value(15);
    const int phones = static_cast<int>(rng.uniform_int(1, 3));
    CapacityProfile caps;
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 3));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 3));
      builder.phone(a, d, rng.uniform_int(1, 20));
      caps.push_back(static_cast<int>(rng.uniform_int(0, 3)));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 3)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    ASSERT_EQ(optimal_capacity_welfare(s, bids, caps),
              oracle_welfare(s, bids, caps))
        << "trial " << trial;
  }
}

TEST(CapacityVcg, PaymentsCoverClaimedCostsAndUtilitiesAreMarginals) {
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(10)
                                .phone(1, 2, 2)   // capacity 2
                                .phone(1, 2, 6)   // rival
                                .task(1)
                                .task(2)
                                .build();
  const model::BidProfile bids = s.truthful_bids();
  const CapacityOutcome outcome =
      run_capacity_vcg(s, bids, CapacityProfile{2, 1});
  // Phone 0 serves both slots (cost 2 < 6 everywhere).
  EXPECT_EQ(outcome.tasks_served_by(PhoneId{0}), 2);
  // omega = 16; without phone 0: phone 1 serves one task -> omega_-0 = 4;
  // payment = 2*2 + (16 - 4) = 16; utility = 16 - 4 = 12.
  EXPECT_EQ(outcome.payments[0], mu(16));
  EXPECT_EQ(outcome.utility(s, PhoneId{0}), mu(12));
  EXPECT_EQ(outcome.payments[1], Money{});
  EXPECT_GE(outcome.utility(s, PhoneId{1}), Money{});
}

TEST(CapacityVcg, CostMisreportsNeverHelp) {
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(12)
                                .phone(1, 2, 4)
                                .phone(1, 1, 6)
                                .phone(2, 2, 7)
                                .task(1)
                                .task(2)
                                .build();
  const CapacityProfile caps{2, 1, 1};
  const model::BidProfile truthful = s.truthful_bids();
  for (int i = 0; i < s.phone_count(); ++i) {
    const PhoneId phone{i};
    const Money honest =
        run_capacity_vcg(s, truthful, caps).utility(s, phone);
    for (const std::int64_t lie : {1, 2, 3, 5, 8, 11, 20}) {
      const model::BidProfile deviant = model::with_bid(
          truthful, phone,
          model::Bid{s.phone(phone).active, mu(lie)});
      const Money gamed = run_capacity_vcg(s, deviant, caps).utility(s, phone);
      EXPECT_LE(gamed, honest) << "phone " << i << " lying cost " << lie;
    }
  }
}

TEST(CapacityVcg, WindowAndCapacityUnderstatementNeverHelp) {
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(12)
                                .phone(1, 3, 4)
                                .phone(1, 3, 6)
                                .task(1)
                                .task(2)
                                .task(3)
                                .build();
  const CapacityProfile caps{2, 2};
  const model::BidProfile truthful = s.truthful_bids();
  const Money honest = run_capacity_vcg(s, truthful, caps).utility(s, PhoneId{0});

  // Tighter windows.
  for (const auto& window :
       {SlotInterval::of(2, 3), SlotInterval::of(1, 2), SlotInterval::of(2, 2)}) {
    const model::BidProfile deviant = model::with_bid(
        truthful, PhoneId{0}, model::Bid{window, s.phone(PhoneId{0}).cost});
    EXPECT_LE(run_capacity_vcg(s, deviant, caps).utility(s, PhoneId{0}),
              honest)
        << window;
  }
  // Understated capacity.
  for (const int understated : {0, 1}) {
    CapacityProfile lied = caps;
    lied[0] = understated;
    EXPECT_LE(run_capacity_vcg(s, truthful, lied).utility(s, PhoneId{0}),
              honest)
        << "capacity " << understated;
  }
}

TEST(CapacityVcg, RejectsMalformedInputs) {
  const model::Scenario s =
      model::ScenarioBuilder(1).value(10).phone(1, 1, 1).task(1).build();
  EXPECT_THROW(run_capacity_vcg(s, s.truthful_bids(), CapacityProfile{}),
               ContractViolation);
  EXPECT_THROW(run_capacity_vcg(s, s.truthful_bids(), CapacityProfile{-1}),
               ContractViolation);
}

TEST(CapacityVcg, HigherCapacityNeverHurtsWelfare) {
  Rng rng(6161);
  for (int trial = 0; trial < 10; ++trial) {
    model::ScenarioBuilder builder(4);
    builder.value(25);
    const int phones = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < phones; ++i) {
      builder.phone(1, 4, rng.uniform_int(1, 20));
    }
    const int tasks = static_cast<int>(rng.uniform_int(2, 6));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    Money previous = Money::from_units(-1);
    for (int capacity = 1; capacity <= 4; ++capacity) {
      const Money welfare = optimal_capacity_welfare(
          s, bids, uniform_capacity(phones, capacity));
      EXPECT_GE(welfare, previous) << "trial " << trial << " cap " << capacity;
      previous = welfare;
    }
  }
}

}  // namespace
}  // namespace mcs::auction
