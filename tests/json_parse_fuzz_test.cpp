// Malformed-input hardening for io::parse_json. The serving path feeds it
// untrusted bytes line by line, so every corruption -- truncation, invalid
// escapes, pathological nesting, overflowing numbers, random mutations --
// must surface as a clean InvalidArgumentError, never a crash, hang, or
// stack overflow. Property/fuzz style: seeded, deterministic, no corpus.
#include "io/json_parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mcs::io {
namespace {

// A representative document exercising every syntactic construct.
const std::string kValidDoc =
    R"({"schema":"mcs.serve.v1","n":-12.5e-3,"flags":[true,false,null],)"
    R"("nested":{"deep":[1,2,{"x":"ué\n\t\"\\"}]},"empty":{},"e":[]})";

/// Either parses or throws InvalidArgumentError; anything else (other
/// exception types, UB caught by sanitizers) fails the test.
bool parses_cleanly(std::string_view text) {
  try {
    (void)parse_json(text);
    return true;
  } catch (const InvalidArgumentError&) {
    return false;
  }
}

TEST(JsonParseFuzz, TheProbeDocumentItselfParses) {
  EXPECT_TRUE(parses_cleanly(kValidDoc));
}

TEST(JsonParseFuzz, EveryTruncationFailsCleanly) {
  // No strict prefix of the document is valid JSON (the document ends the
  // moment its top-level object closes), so every truncation must throw --
  // and none may read past the buffer or crash.
  for (std::size_t len = 0; len < kValidDoc.size(); ++len) {
    EXPECT_FALSE(parses_cleanly(kValidDoc.substr(0, len)))
        << "prefix of length " << len;
  }
}

TEST(JsonParseFuzz, DeepNestingHitsTheDepthCapNotTheStack) {
  // 100k unclosed brackets: without the recursion cap this overflows the
  // parser's call stack long before it notices the truncation.
  const std::string deep_arrays(100000, '[');
  EXPECT_THROW((void)parse_json(deep_arrays), InvalidArgumentError);

  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) deep_objects += "{\"k\":";
  EXPECT_THROW((void)parse_json(deep_objects), InvalidArgumentError);

  // Properly closed but still too deep: the cap, not the close, decides.
  std::string closed = std::string(500, '[') + std::string(500, ']');
  EXPECT_THROW((void)parse_json(closed), InvalidArgumentError);

  // Just under the cap parses fine.
  std::string shallow = std::string(100, '[') + std::string(100, ']');
  EXPECT_TRUE(parses_cleanly(shallow));
}

TEST(JsonParseFuzz, InvalidEscapesFailCleanly) {
  const std::vector<std::string> bad = {
      R"("\q")",       // unknown escape
      R"("\u")",       // truncated unicode escape
      R"("\u12")",     // short unicode escape
      R"("\u12G4")",   // non-hex digit
      R"("\)",         // escape at end of input
      "\"abc",         // unterminated string
      "\"tab\tchar\"", // raw control character
  };
  for (const std::string& doc : bad) {
    EXPECT_FALSE(parses_cleanly(doc)) << doc;
  }
}

TEST(JsonParseFuzz, MalformedNumbersFailCleanly) {
  const std::vector<std::string> bad = {
      "1e999",    // overflows to infinity; non-finite values are rejected
      "-1e999", "1e", "1e+", "--1", "0x10", "NaN", "Infinity",
  };
  for (const std::string& doc : bad) {
    EXPECT_FALSE(parses_cleanly(doc)) << doc;
  }
  // The number grammar is strtod-lenient ("01", ".5" parse); what matters
  // for hardening is that nothing non-finite or trailing ever gets through.
  EXPECT_TRUE(parses_cleanly("01"));
  EXPECT_TRUE(parses_cleanly(".5"));
}

TEST(JsonParseFuzz, AsIntRejectsOutOfRangeDoubles) {
  // INT64_MAX in JSON text parses to the double 2^63 exactly; casting that
  // back to int64 is UB, so as_int must throw instead.
  for (const std::string doc :
       {"9223372036854775807", "9223372036854775808", "1e19", "-1e19",
        "18446744073709551616"}) {
    EXPECT_THROW((void)parse_json(doc).as_int(), InvalidArgumentError) << doc;
  }
  // -2^63 is exactly representable and exactly INT64_MIN: still admissible.
  EXPECT_EQ(parse_json("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_json("9007199254740992").as_int(),
            std::int64_t{1} << 53);
}

TEST(JsonParseFuzz, StructuralGarbageFailsCleanly) {
  const std::vector<std::string> bad = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "[1 2]",
      "{\"a\":1}garbage",   // trailing bytes after the document
      "{'a':1}",            // single quotes
      "{a:1}",              // unquoted key
      "true false",
      "nul",
      "tru",
      R"({"a":1,"a":2})",  // duplicate keys are ambiguous -> rejected
  };
  for (const std::string& doc : bad) {
    EXPECT_FALSE(parses_cleanly(doc)) << doc;
  }
}

TEST(JsonParseFuzz, SeededByteMutationsNeverCrash) {
  // Classic mutation fuzzing, deterministic: flip/insert/delete bytes of
  // the valid document and require a clean verdict either way.
  Rng rng(0xF00DULL);
  int still_valid = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string doc = kValidDoc;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.next_below(doc.size()));
      switch (rng.next_below(3)) {
        case 0:  // flip to an arbitrary byte (NUL and high bytes included)
          doc[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:  // delete
          doc.erase(pos, 1);
          break;
        default:  // duplicate-insert
          doc.insert(pos, 1, doc[pos]);
          break;
      }
      if (doc.empty()) break;
    }
    if (parses_cleanly(doc)) ++still_valid;  // some mutations stay valid
  }
  // Sanity: the loop genuinely exercised the failure path.
  EXPECT_LT(still_valid, 2000);
}

TEST(JsonParseFuzz, SeededRandomByteSoupNeverCrashes) {
  Rng rng(0xBEEFULL);
  for (int trial = 0; trial < 500; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::string doc(len, '\0');
    for (char& c : doc) c = static_cast<char>(rng.next_below(256));
    (void)parses_cleanly(doc);  // verdict irrelevant; must not crash
  }
}

TEST(JsonParseFuzz, ErrorsNameTheOffset) {
  try {
    (void)parse_json("{\"a\":tru}");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace mcs::io
