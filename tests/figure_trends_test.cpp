// The evaluation figures' qualitative claims, as tests.
//
// EXPERIMENTS.md argues the reproduction matches the paper's *shapes*;
// these tests pin the shapes down so a regression that flips a trend
// (e.g., a welfare computation bug that inverts the cost sweep) fails CI
// rather than silently producing wrong-but-plausible figures. Downscaled
// sweeps, several seeds, endpoint comparisons with healthy margins -- all
// deterministic, so no flakes.
#include <gtest/gtest.h>

#include "sim/experiments.hpp"

namespace mcs::sim {
namespace {

SimulationConfig small_base(std::uint64_t seed) {
  SimulationConfig base;
  base.workload.num_slots = 12;
  base.workload.phone_arrival_rate = 5.0;
  base.workload.task_arrival_rate = 2.5;
  base.workload.mean_cost = 20.0;
  base.workload.task_value = Money::from_units(45);
  base.repetitions = 12;
  base.base_seed = seed;
  return base;
}

class FigureTrends : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FigureTrends, WelfareIncreasesWithTheHorizon) {  // Fig. 6
  FigureSpec spec = figure("fig6");
  spec.xs = {6, 24};
  const FigureSeries series = run_figure(spec, small_base(GetParam()));
  EXPECT_GT(series.online_means.back(), 2.0 * series.online_means.front());
  EXPECT_GT(series.offline_means.back(), 2.0 * series.offline_means.front());
}

TEST_P(FigureTrends, WelfareIncreasesWithSupply) {  // Fig. 7
  FigureSpec spec = figure("fig7");
  spec.xs = {1.5, 8};
  const FigureSeries series = run_figure(spec, small_base(GetParam()));
  EXPECT_GT(series.online_means.back(), series.online_means.front());
  EXPECT_GT(series.offline_means.back(), series.offline_means.front());
}

TEST_P(FigureTrends, WelfareDecreasesWithCosts) {  // Fig. 8
  FigureSpec spec = figure("fig8");
  spec.xs = {5, 40};
  const FigureSeries series = run_figure(spec, small_base(GetParam()));
  EXPECT_LT(series.online_means.back(), series.online_means.front());
  EXPECT_LT(series.offline_means.back(), series.offline_means.front());
}

TEST_P(FigureTrends, OfflineDominatesOnlineEverywhere) {  // all figures
  for (const char* id : {"fig6", "fig7", "fig8"}) {
    FigureSpec spec = figure(id);
    spec.xs = {spec.xs.front() / 4.0, spec.xs.back() / 4.0};
    const FigureSeries series = run_figure(spec, small_base(GetParam()));
    for (std::size_t k = 0; k < series.xs.size(); ++k) {
      EXPECT_GE(series.offline_means[k] + 1e-9, series.online_means[k])
          << id << " x=" << series.xs[k];
    }
  }
}

TEST_P(FigureTrends, OverpaymentRatioStaysInABand) {  // Figs. 9-11
  for (const char* id : {"fig9", "fig10", "fig11"}) {
    FigureSpec spec = figure(id);
    spec.xs = {spec.xs.front() / 2.0, spec.xs.back() / 2.0};
    const FigureSeries series = run_figure(spec, small_base(GetParam()));
    for (std::size_t k = 0; k < series.xs.size(); ++k) {
      EXPECT_GE(series.online_means[k], 0.0) << id;
      EXPECT_LT(series.online_means[k], 5.0) << id << " (sigma exploded)";
      EXPECT_GE(series.offline_means[k], 0.0) << id;
      EXPECT_LT(series.offline_means[k], 5.0) << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FigureTrends,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace mcs::sim
