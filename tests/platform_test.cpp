// Tests for the incremental platform: protocol-level behavior (message
// ordering, payment timing at reported departure), and the headline
// equivalence -- the slot-by-slot platform and the batch
// OnlineGreedyMechanism must produce identical allocations and payments on
// the same inputs, across config variants and randomized rounds.
#include "platform/round_driver.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/truthfulness.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

namespace mcs::platform {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// -------------------------------------------------------------- protocol

TEST(Platform, Fig4TranscriptHighlights) {
  const model::Scenario s = model::fig4_scenario();
  const RoundResult result = run_round(s, s.truthful_bids());

  // One announcement per task, one accepted bid per phone.
  EXPECT_EQ(result.events_of(EventKind::kTaskAnnounced).size(), 5u);
  EXPECT_EQ(result.events_of(EventKind::kBidSubmitted).size(), 7u);
  // Five assignments, each followed by a sensing report.
  EXPECT_EQ(result.events_of(EventKind::kTaskAssigned).size(), 5u);
  EXPECT_EQ(result.events_of(EventKind::kSensingReported).size(), 5u);
  // Five winners paid, two losers depart unpaid.
  EXPECT_EQ(result.events_of(EventKind::kPaymentIssued).size(), 5u);
  EXPECT_EQ(result.events_of(EventKind::kDeparted).size(), 2u);
  EXPECT_TRUE(result.events_of(EventKind::kTaskUnserved).empty());
}

TEST(Platform, PaymentsLandInTheReportedDepartureSlot) {
  // Section V-C: "each smartphone receives its payment in its reported
  // departure slot."
  const model::Scenario s = model::fig4_scenario();
  const RoundResult result = run_round(s, s.truthful_bids());
  for (const RoundEvent& event : result.events_of(EventKind::kPaymentIssued)) {
    const model::TrueProfile& profile = s.phone(event.agent);
    EXPECT_EQ(event.slot, profile.active.end()) << "phone " << event.agent;
  }
  // Phone 0 (wins slot 2, departs slot 5) is the paper's worked example.
  const auto payments = result.events_of(EventKind::kPaymentIssued);
  bool found = false;
  for (const RoundEvent& event : payments) {
    if (event.agent == AgentId{0}) {
      EXPECT_EQ(event.slot, Slot{5});
      EXPECT_EQ(event.amount, mu(9));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Platform, BidSubmissionRules) {
  OnlinePlatform platform(5, mu(20));
  // Arrival must match the current slot.
  EXPECT_THROW(platform.submit_bid(
                   AgentId{0}, model::Bid{SlotInterval::of(2, 4), mu(3)}),
               ContractViolation);
  EXPECT_TRUE(platform.submit_bid(
      AgentId{0}, model::Bid{SlotInterval::of(1, 4), mu(3)}));
  // One bid per agent per round.
  EXPECT_THROW(platform.submit_bid(
                   AgentId{0}, model::Bid{SlotInterval::of(1, 2), mu(5)}),
               ContractViolation);
}

TEST(Platform, ReserveRejectsAtTheDoor) {
  auction::OnlineGreedyConfig config;
  config.reserve_price = mu(10);
  OnlinePlatform platform(3, mu(20), config);
  EXPECT_FALSE(platform.submit_bid(
      AgentId{0}, model::Bid{SlotInterval::of(1, 3), mu(11)}));
  EXPECT_TRUE(platform.submit_bid(
      AgentId{1}, model::Bid{SlotInterval::of(1, 3), mu(10)}));
}

TEST(Platform, TaskIdsMustBeDense) {
  OnlinePlatform platform(3, mu(20));
  platform.announce_task(TaskId{0});
  EXPECT_THROW(platform.announce_task(TaskId{2}), ContractViolation);
}

TEST(Platform, FinishedRoundRejectsFurtherInput) {
  OnlinePlatform platform(1, mu(20));
  platform.advance_slot();
  EXPECT_TRUE(platform.finished());
  EXPECT_THROW(platform.announce_task(TaskId{0}), ContractViolation);
  EXPECT_THROW(platform.advance_slot(), ContractViolation);
}

TEST(Platform, UnservedTaskExpires) {
  OnlinePlatform platform(2, mu(20));
  platform.announce_task(TaskId{0});
  const SlotReport report = platform.advance_slot();
  ASSERT_EQ(report.unserved_tasks.size(), 1u);
  EXPECT_EQ(report.unserved_tasks[0], TaskId{0});
  EXPECT_TRUE(report.assignments.empty());
}

TEST(Platform, TotalPaidAccumulates) {
  const model::Scenario s = model::fig4_scenario();
  OnlinePlatform platform(5, s.task_value);
  std::size_t cursor = 0;
  Money total;
  for (Slot::rep_type t = 1; t <= 5; ++t) {
    while (cursor < s.tasks.size() && s.tasks[cursor].slot.value() == t) {
      platform.announce_task(s.tasks[cursor].id);
      ++cursor;
    }
    for (int i = 0; i < s.phone_count(); ++i) {
      if (s.phone(PhoneId{i}).active.begin().value() == t) {
        platform.submit_bid(AgentId{i},
                            model::truthful_bid(s.phone(PhoneId{i})));
      }
    }
    for (const auto& [agent, payment] : platform.advance_slot().payments) {
      total += payment;
    }
  }
  EXPECT_EQ(platform.total_paid(), total);
  EXPECT_EQ(total, mu(50));  // the hand-computed Fig. 4 total
}

// ------------------------------------------------------------ equivalence

using EquivalenceParam = std::tuple<std::uint64_t, int>;  // (seed, config id)

class PlatformEquivalence : public ::testing::TestWithParam<EquivalenceParam> {
 protected:
  static auction::OnlineGreedyConfig config_for(int id) {
    auction::OnlineGreedyConfig config;
    switch (id) {
      case 0:
        break;  // paper-faithful
      case 1:
        config.allocate_only_profitable = true;
        break;
      case 2:
        config.reserve_price = Money::from_units(20);
        break;
      default:
        config.allocate_only_profitable = true;
        config.reserve_price = Money::from_units(20);
        config.scarce_payment =
            auction::OnlineGreedyConfig::ScarcePayment::kOwnBid;
    }
    return config;
  }
};

TEST_P(PlatformEquivalence, MatchesBatchMechanismExactly) {
  const auto [seed, config_id] = GetParam();
  const auction::OnlineGreedyConfig config = config_for(config_id);

  Rng rng(seed);
  model::WorkloadConfig workload;
  workload.num_slots = 12;
  workload.phone_arrival_rate = 3.0;
  workload.task_arrival_rate = 2.0;
  workload.mean_cost = 15.0;
  workload.task_value = Money::from_units(30);
  const model::Scenario scenario = model::generate_scenario(workload, rng);
  const model::BidProfile bids = scenario.truthful_bids();

  const auction::Outcome batch =
      auction::OnlineGreedyMechanism(config).run(scenario, bids);
  const RoundResult incremental = run_round(scenario, bids, config);

  for (int t = 0; t < scenario.task_count(); ++t) {
    ASSERT_EQ(incremental.outcome.allocation.phone_for(TaskId{t}),
              batch.allocation.phone_for(TaskId{t}))
        << "task " << t << " config " << config_id;
  }
  ASSERT_EQ(incremental.outcome.payments, batch.payments)
      << "config " << config_id;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConfigs, PlatformEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(9000, 9010),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Platform, EquivalenceOnWeightedTasks) {
  Rng rng(88);
  model::ScenarioBuilder builder(6);
  builder.value(25);
  for (int i = 0; i < 8; ++i) {
    const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 6));
    const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 6));
    builder.phone(a, d, rng.uniform_int(1, 20));
  }
  for (int k = 0; k < 6; ++k) {
    builder.valued_task(static_cast<Slot::rep_type>(rng.uniform_int(1, 6)),
                        rng.uniform_int(10, 60));
  }
  const model::Scenario scenario = builder.build();
  const model::BidProfile bids = scenario.truthful_bids();

  const auction::Outcome batch =
      auction::OnlineGreedyMechanism{}.run(scenario, bids);
  const RoundResult incremental = run_round(scenario, bids);
  EXPECT_EQ(incremental.outcome.payments, batch.payments);
  for (int t = 0; t < scenario.task_count(); ++t) {
    EXPECT_EQ(incremental.outcome.allocation.phone_for(TaskId{t}),
              batch.allocation.phone_for(TaskId{t}));
  }
}

TEST(Platform, EquivalenceUnderMisreports) {
  // The equivalence must hold on arbitrary bid profiles, not just truthful
  // ones (the platform never sees true profiles anyway).
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = model::with_bid(
      s.truthful_bids(), PhoneId{0}, model::fig5_delayed_bid_phone1());
  const auction::Outcome batch =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const RoundResult incremental = run_round(s, bids);
  EXPECT_EQ(incremental.outcome.payments, batch.payments);
}

TEST(Platform, DeployablePathIsItselfTruthful) {
  // Belt and braces: run the exhaustive deviation audit THROUGH the
  // incremental platform (not the batch mechanism it is equivalent to), by
  // adapting run_round to the Mechanism interface. Catches any future
  // drift between the two implementations at the incentive level.
  class PlatformAdapter final : public auction::Mechanism {
   public:
    [[nodiscard]] auction::Outcome run(
        const model::Scenario& scenario,
        const model::BidProfile& bids) const override {
      return run_round(scenario, bids).outcome;
    }
    [[nodiscard]] std::string name() const override {
      return "online-platform";
    }
  };

  const model::Scenario s = model::fig4_scenario();
  const PlatformAdapter platform_mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(platform_mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();
}

TEST(Platform, EventStreamOrderingWithinSlot) {
  // Within a slot: announcements, then bids, then assignments/reports,
  // then settlements.
  const model::Scenario s = model::fig4_scenario();
  const RoundResult result = run_round(s, s.truthful_bids());
  const auto rank = [](EventKind kind) {
    switch (kind) {
      case EventKind::kTaskAnnounced:
        return 0;
      case EventKind::kBidSubmitted:
        return 1;
      case EventKind::kTaskAssigned:
      case EventKind::kSensingReported:
      case EventKind::kTaskUnserved:
        return 2;
      default:
        return 3;
    }
  };
  for (std::size_t k = 1; k < result.transcript.size(); ++k) {
    const RoundEvent& prev = result.transcript[k - 1];
    const RoundEvent& cur = result.transcript[k];
    ASSERT_LE(prev.slot.value(), cur.slot.value());
    if (prev.slot == cur.slot) {
      ASSERT_LE(rank(prev.kind), rank(cur.kind))
          << prev << " before " << cur;
    }
  }
}

// ---------------------------------------------------- events_of view

TEST(RoundEventView, BorrowsTheTranscriptInsteadOfCopying) {
  const model::Scenario s = model::fig4_scenario();
  const RoundResult result = run_round(s, s.truthful_bids());
  // Every element the view yields lives inside result.transcript -- the
  // view filters in place, it does not materialize a copy.
  const RoundEvent* const first = result.transcript.data();
  const RoundEvent* const last = first + result.transcript.size();
  std::size_t seen = 0;
  for (const RoundEvent& event : result.events_of(EventKind::kPaymentIssued)) {
    EXPECT_GE(&event, first);
    EXPECT_LT(&event, last);
    ++seen;
  }
  EXPECT_EQ(seen, result.events_of(EventKind::kPaymentIssued).size());
}

TEST(RoundEventView, MatchesAManualFilterInOrder) {
  const model::Scenario s = model::fig4_scenario();
  const RoundResult result = run_round(s, s.truthful_bids());
  for (const EventKind kind :
       {EventKind::kTaskAnnounced, EventKind::kBidSubmitted,
        EventKind::kTaskAssigned, EventKind::kTaskUnserved,
        EventKind::kPaymentIssued, EventKind::kDeparted}) {
    std::vector<const RoundEvent*> manual;
    for (const RoundEvent& event : result.transcript) {
      if (event.kind == kind) manual.push_back(&event);
    }
    const RoundEventView view = result.events_of(kind);
    EXPECT_EQ(view.size(), manual.size());
    EXPECT_EQ(view.empty(), manual.empty());
    std::size_t k = 0;
    for (const RoundEvent& event : view) {
      ASSERT_LT(k, manual.size());
      EXPECT_EQ(&event, manual[k]) << "kind mismatch or order broken";
      ++k;
    }
    EXPECT_EQ(k, manual.size());
    if (!manual.empty()) {
      EXPECT_EQ(&view.front(), manual.front());
    }
  }
}

TEST(RoundEventView, EmptyViewIteratesZeroTimes) {
  const RoundResult result;  // empty transcript
  const RoundEventView view = result.events_of(EventKind::kTaskAssigned);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.begin(), view.end());
}

}  // namespace
}  // namespace mcs::platform
