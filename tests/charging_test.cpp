// Tests for the mechanized Theorem 6 proof: certificates build and verify
// on the paper instance, the tight adversarial family, and hundreds of
// randomized instances; the verifier rejects tampered certificates; and
// the preconditions are shown to be necessary (weighted values genuinely
// break the bound).
#include "analysis/charging.hpp"

#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/strategy.hpp"
#include "model/workload.hpp"

namespace mcs::analysis {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(Charging, Fig4CertificateBuildsAndVerifies) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const ChargingCertificate certificate =
      build_half_competitive_certificate(s, bids);
  EXPECT_EQ(certificate.optimal_welfare, mu(74));
  EXPECT_EQ(certificate.greedy_welfare, mu(69));
  EXPECT_EQ(certificate.charges.size(), 5u);  // one per OPT edge
  EXPECT_NO_THROW(verify_half_competitive_certificate(certificate, s, bids));
}

TEST(Charging, TightFamilyCertificateIsExactlyHalf) {
  // The adversarial gadgets sit right at the bound; the proof must still
  // go through (the inequalities hold with near-equality).
  const model::Scenario s = tight_competitive_scenario(4, 1000);
  const model::BidProfile bids = s.truthful_bids();
  const ChargingCertificate certificate =
      build_half_competitive_certificate(s, bids);
  EXPECT_NO_THROW(verify_half_competitive_certificate(certificate, s, bids));
  EXPECT_LE(certificate.optimal_welfare, certificate.greedy_welfare * 2);
  // And it is genuinely tight: 2*greedy - opt is tiny relative to opt.
  const Money slack = certificate.greedy_welfare * 2 -
                      certificate.optimal_welfare;
  EXPECT_LT(slack.ratio_to(certificate.optimal_welfare), 0.01);
}

class ChargingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChargingProperty, RandomInstancesAdmitVerifiedCertificates) {
  Rng rng(GetParam());
  model::ScenarioBuilder builder(6);
  builder.value(50);
  const int phones = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < phones; ++i) {
    const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 6));
    const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 6));
    builder.phone(a, d, rng.uniform_int(1, 50));  // costs <= nu
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 8));
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 6)));
  }
  const model::Scenario s = builder.build();
  const model::BidProfile bids = s.truthful_bids();

  const ChargingCertificate certificate =
      build_half_competitive_certificate(s, bids);
  EXPECT_NO_THROW(verify_half_competitive_certificate(certificate, s, bids));
  // The bound the certificate proves matches the direct measurement.
  const CompetitiveResult direct = competitive_ratio(s, bids);
  EXPECT_EQ(direct.online_welfare, certificate.greedy_welfare);
  EXPECT_EQ(direct.offline_welfare, certificate.optimal_welfare);
  if (!certificate.optimal_welfare.is_zero()) {
    EXPECT_GE(direct.ratio, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChargingProperty,
                         ::testing::Range<std::uint64_t>(7000, 7100));

TEST(Charging, VerifierRejectsTamperedCertificates) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const ChargingCertificate good =
      build_half_competitive_certificate(s, bids);

  {
    ChargingCertificate bad = good;
    bad.optimal_welfare += mu(1);
    EXPECT_THROW(verify_half_competitive_certificate(bad, s, bids),
                 ContractViolation);
  }
  {
    ChargingCertificate bad = good;
    bad.charges.pop_back();  // an OPT edge goes uncharged
    EXPECT_THROW(verify_half_competitive_certificate(bad, s, bids),
                 ContractViolation);
  }
  {
    ChargingCertificate bad = good;
    bad.charges.push_back(bad.charges.front());  // double charge
    EXPECT_THROW(verify_half_competitive_certificate(bad, s, bids),
                 ContractViolation);
  }
  {
    ChargingCertificate bad = good;
    // Point a charge at a phone that is not part of the claimed edge.
    bad.charges.front().greedy_phone = PhoneId{2};  // a greedy loser
    EXPECT_THROW(verify_half_competitive_certificate(bad, s, bids),
                 ContractViolation);
  }
}

TEST(Charging, WeightedValuesBreakTheorem6) {
  // A worthless early task burns the only phone; a priceless later task
  // starves. Greedy-by-cost earns 1 of 100 -- far below 1/2 -- which is
  // exactly why the certificate refuses weighted instances.
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(50)
                                .valued_task(1, 1)
                                .valued_task(2, 100)
                                .phone(1, 2, 0)
                                .build();
  const model::BidProfile bids = s.truthful_bids();
  const CompetitiveResult result = competitive_ratio(s, bids);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0 / 100.0);
  EXPECT_THROW(std::ignore = build_half_competitive_certificate(s, bids),
               InvalidArgumentError);
}

TEST(Charging, PreconditionsAreEnforced) {
  // Costs above nu.
  const model::Scenario pricey =
      model::ScenarioBuilder(1).value(5).phone(1, 1, 9).task(1).build();
  EXPECT_THROW(std::ignore = build_half_competitive_certificate(
                   pricey, pricey.truthful_bids()),
               InvalidArgumentError);

  // Reserve-priced configs are out of scope.
  const model::Scenario s = model::fig4_scenario();
  auction::OnlineGreedyConfig reserved;
  reserved.reserve_price = mu(10);
  EXPECT_THROW(std::ignore = build_half_competitive_certificate(
                   s, s.truthful_bids(), reserved),
               InvalidArgumentError);
}

TEST(Charging, ScalesToTableOneSizedInstances) {
  // The proof object stays checkable at evaluation scale, not just on toy
  // graphs: a Table-I round (hundreds of phones) certifies in one go.
  Rng rng(7777);
  model::WorkloadConfig workload;  // Table-I defaults; costs <= 49 < nu = 50
  workload.num_slots = 30;
  const model::Scenario s = model::generate_scenario(workload, rng);
  ASSERT_GT(s.phone_count(), 100);
  const model::BidProfile bids = s.truthful_bids();
  const ChargingCertificate certificate =
      build_half_competitive_certificate(s, bids);
  EXPECT_EQ(certificate.charges.size(),
            static_cast<std::size_t>(s.task_count()) -
                0u)  // every task served at this supply level
      << "supply-rich rounds serve every task";
  EXPECT_NO_THROW(verify_half_competitive_certificate(certificate, s, bids));
}

TEST(Charging, HoldsUnderMisreportsToo) {
  // Theorem 6 is about the allocation, not incentives: the certificate
  // must also build on strategic bid profiles (claimed costs <= nu).
  const model::Scenario s = model::fig4_scenario();
  Rng rng(9);
  const model::BidProfile bids =
      model::apply_strategy(s, model::CostMarkupStrategy(1.4), rng);
  const ChargingCertificate certificate =
      build_half_competitive_certificate(s, bids);
  EXPECT_NO_THROW(verify_half_competitive_certificate(certificate, s, bids));
}

}  // namespace
}  // namespace mcs::analysis
