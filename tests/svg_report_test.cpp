// Tests for the SVG chart renderer and the HTML figure report.
#include "io/svg_chart.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "sim/html_report.hpp"

namespace mcs {
namespace {

io::SvgSeries series(const std::string& name, std::vector<double> ys,
                     const std::string& color) {
  return io::SvgSeries{name, std::move(ys), color};
}

TEST(SvgChart, RendersAWellFormedSvgElement) {
  const io::SvgChart chart;
  const std::string svg = chart.render(
      "Welfare vs m", "m", "welfare", {30, 50, 80},
      {series("online", {100, 200, 300}, "#1f77b4"),
       series("offline", {120, 220, 330}, "#d62728")});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polyline per series, one marker per point.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = svg.find(needle); pos != std::string::npos;
         pos = svg.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("<polyline"), 2u);
  EXPECT_EQ(count("<circle"), 6u);
  // Title, axis labels, legend names.
  EXPECT_NE(svg.find("Welfare vs m"), std::string::npos);
  EXPECT_NE(svg.find(">welfare<"), std::string::npos);
  EXPECT_NE(svg.find(">online<"), std::string::npos);
  EXPECT_NE(svg.find(">offline<"), std::string::npos);
}

TEST(SvgChart, EscapesMarkupInText) {
  const io::SvgChart chart;
  const std::string svg = chart.render("a < b & c", "x", "y", {1, 2},
                                       {series("s<1>", {1, 2}, "black")});
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(SvgChart, DeterministicOutput) {
  const io::SvgChart chart;
  const auto input = std::vector<double>{1, 2, 3};
  const auto s = series("s", {5, 7, 6}, "green");
  EXPECT_EQ(chart.render("t", "x", "y", input, {s}),
            chart.render("t", "x", "y", input, {s}));
}

TEST(SvgChart, RejectsMalformedInput) {
  const io::SvgChart chart;
  EXPECT_THROW(std::ignore = chart.render("t", "x", "y", {},
                                          {series("s", {}, "red")}),
               ContractViolation);
  EXPECT_THROW(std::ignore = chart.render("t", "x", "y", {2, 1},
                                          {series("s", {1, 2}, "red")}),
               ContractViolation);
  EXPECT_THROW(std::ignore = chart.render("t", "x", "y", {1, 2},
                                          {series("s", {1}, "red")}),
               ContractViolation);
  EXPECT_THROW(io::SvgChart(10, 10), ContractViolation);
}

TEST(HtmlReport, RendersEveryFigureWithChartAndTable) {
  sim::SimulationConfig base;
  base.workload.num_slots = 6;
  base.workload.phone_arrival_rate = 3.0;
  base.workload.task_arrival_rate = 1.5;
  base.repetitions = 2;

  std::vector<sim::FigureSeries> figures;
  for (const char* id : {"fig6", "fig9"}) {
    sim::FigureSpec spec = sim::figure(id);
    spec.xs = {4, 8};  // downscaled
    figures.push_back(sim::run_figure(spec, base));
  }
  const std::string html =
      sim::figures_html_report(figures, "unit test & <subtitle>");
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("fig6"), std::string::npos);
  EXPECT_NE(html.find("fig9"), std::string::npos);
  EXPECT_NE(html.find("unit test &amp; &lt;subtitle&gt;"), std::string::npos);
  // One chart and one data table per figure.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = html.find(needle); pos != std::string::npos;
         pos = html.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("<svg"), 2u);
  EXPECT_EQ(count("<table>"), 2u);
  // The sigma figure is labeled as a ratio chart.
  EXPECT_NE(html.find(">overpayment ratio<"), std::string::npos);
}

TEST(HtmlReport, WriteToFileAndErrorPaths) {
  sim::SimulationConfig base;
  base.workload.num_slots = 5;
  base.workload.phone_arrival_rate = 2.0;
  base.workload.task_arrival_rate = 1.0;
  base.repetitions = 1;
  // NOTE: uses the real figure registry (full x grids) at 1 repetition;
  // small rounds keep this fast.
  base.workload.num_slots = 5;  // overridden per point by the m-sweeps

  const std::string path = ::testing::TempDir() + "/mcs_report_test.html";
  const int figures = sim::write_html_report(path, base);
  EXPECT_EQ(figures, 6);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "<!DOCTYPE html>");
  std::remove(path.c_str());

  EXPECT_THROW(sim::write_html_report("/nonexistent-dir/r.html", base),
               IoError);
}

}  // namespace
}  // namespace mcs
