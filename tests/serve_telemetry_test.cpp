// Tests for the live serve telemetry plane: golden mcs.serve_stats.v1
// snapshots under a fake clock, monotone snapshot windows, Prometheus
// rendering, the open-loop pacer, and -- the plane-separation contract --
// proof that turning live recording on never perturbs the deterministic
// counter plane the bench gate compares bit for bit.
#include "serve/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/wallclock.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"

namespace mcs::serve {
namespace {

LoadGenConfig small_load(std::int64_t rounds = 6) {
  LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 2026;
  load.workload.num_slots = 12;
  return load;
}

std::vector<ServeEvent> events_of(const LoadGenConfig& load) {
  std::vector<ServeEvent> events;
  generate_events(load, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

// ------------------------------------------------------- golden snapshots

TEST(ServeTelemetry, GoldenSnapshotUnderFakeClock) {
  // Hand-driven hooks with ns values small enough to sit in the sketch's
  // exact range, so every quantile in the golden line is exact and the
  // whole JSONL line is reproducible byte for byte.
  obs::FakeClock clock;
  LiveTelemetryConfig config;
  config.clock = &clock;
  LiveTelemetry live(config);
  live.attach(1, 8);

  live.on_submit(0, 1);
  live.on_submit(0, 2);
  live.on_process(0, 5, 1);
  live.on_process(0, 5, 0);
  live.on_round_close(0, 10);
  live.on_reject(0);
  clock.advance_ms(1000);

  std::ostringstream os;
  write_serve_snapshot(os, live.take_snapshot());
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"mcs.serve_stats.v1\",\"window\":0,\"at_ms\":1000,"
      "\"span_ms\":1000,\"state\":\"shedding\",\"submitted\":2,"
      "\"processed\":2,\"rejected\":1,\"reject_rate\":0.333333333333,"
      "\"rounds_closed\":1,\"events_per_sec\":2,\"rounds_per_sec\":1,"
      "\"round_close_p50_us\":0.01,\"round_close_p95_us\":0.01,"
      "\"round_close_p99_us\":0.01,\"round_close_max_us\":0.01,"
      "\"queue_wait_p50_us\":0.005,\"queue_wait_p95_us\":0.005,"
      "\"queue_wait_p99_us\":0.005,\"queue_wait_max_us\":0.005,"
      "\"queue_depth\":0,\"queue_watermark\":2,\"shards\":[{\"shard\":0,"
      "\"state\":\"shedding\",\"processed\":2,\"rejected\":1,"
      "\"events_per_sec\":2,\"queue_depth\":0,\"queue_watermark\":2,"
      "\"round_close_p99_us\":0.01}]}\n");

  // A quiet second window: zero deltas, null quantiles, healthy again.
  clock.advance_ms(1000);
  std::ostringstream quiet;
  write_serve_snapshot(quiet, live.take_snapshot());
  EXPECT_EQ(
      quiet.str(),
      "{\"schema\":\"mcs.serve_stats.v1\",\"window\":1,\"at_ms\":2000,"
      "\"span_ms\":1000,\"state\":\"healthy\",\"submitted\":0,"
      "\"processed\":0,\"rejected\":0,\"reject_rate\":0,"
      "\"rounds_closed\":0,\"events_per_sec\":0,\"rounds_per_sec\":0,"
      "\"round_close_p50_us\":null,\"round_close_p95_us\":null,"
      "\"round_close_p99_us\":null,\"round_close_max_us\":null,"
      "\"queue_wait_p50_us\":null,\"queue_wait_p95_us\":null,"
      "\"queue_wait_p99_us\":null,\"queue_wait_max_us\":null,"
      "\"queue_depth\":0,\"queue_watermark\":0,\"shards\":[{\"shard\":0,"
      "\"state\":\"healthy\",\"processed\":0,\"rejected\":0,"
      "\"events_per_sec\":0,\"queue_depth\":0,\"queue_watermark\":0,"
      "\"round_close_p99_us\":null}]}\n");
}

TEST(ServeTelemetry, SnapshotWindowsAreMonotoneAndRatesDeterministic) {
  obs::FakeClock clock;
  LiveTelemetryConfig config;
  config.clock = &clock;
  LiveTelemetry live(config);
  live.attach(2, 16);

  for (std::int64_t expected = 0; expected < 5; ++expected) {
    live.on_submit(0, 1);
    live.on_process(0, 4, 0);
    clock.advance_ms(500);
    const ServeSnapshot snapshot = live.take_snapshot();
    EXPECT_EQ(snapshot.window, expected);
    EXPECT_EQ(snapshot.total.processed, 1);
    EXPECT_DOUBLE_EQ(snapshot.total.events_per_sec, 2.0);
    ASSERT_EQ(snapshot.shards.size(), 2u);
    EXPECT_EQ(snapshot.shards[0].window.index, expected);
    EXPECT_EQ(snapshot.shards[1].window.processed, 0);
  }
}

TEST(ServeTelemetry, StalledShardDetectedUnderFakeClock) {
  obs::FakeClock clock;
  LiveTelemetryConfig config;
  config.clock = &clock;
  LiveTelemetry live(config);
  live.attach(1, 8);

  live.on_submit(0, 3);  // backlog builds, nothing ever processed
  clock.advance_ms(1000);
  EXPECT_EQ(live.take_snapshot().state, obs::HealthState::kHealthy)
      << "one stalled window is within dwell";
  clock.advance_ms(1000);
  const ServeSnapshot snapshot = live.take_snapshot();
  EXPECT_EQ(snapshot.state, obs::HealthState::kStalled);
  EXPECT_EQ(snapshot.total.queue_depth, 3);
}

TEST(ServeTelemetry, SummaryAggregatesAcrossShards) {
  obs::FakeClock clock;
  LiveTelemetryConfig config;
  config.clock = &clock;
  LiveTelemetry live(config);
  live.attach(2, 8);

  live.on_submit(0, 5);
  live.on_process(0, 7, 0);
  live.on_round_close(0, 9);
  live.on_submit(1, 2);
  live.on_process(1, 3, 0);
  live.on_reject(1);
  clock.advance_ms(2000);

  const LiveSummary summary = live.summary();
  EXPECT_EQ(summary.submitted, 2);
  EXPECT_EQ(summary.processed, 2);
  EXPECT_EQ(summary.rejected, 1);
  EXPECT_EQ(summary.rounds_closed, 1);
  EXPECT_EQ(summary.queue_high_watermark, 5);
  EXPECT_EQ(summary.queue_wait.count, 2u);
  EXPECT_EQ(summary.queue_wait.min_ns, 3u);
  EXPECT_EQ(summary.queue_wait.max_ns, 7u);
  EXPECT_DOUBLE_EQ(summary.events_per_sec(), 1.0);
}

// ------------------------------------------------------------- Prometheus

TEST(ServeTelemetry, PrometheusRenderingExposesLiveGauges) {
  obs::FakeClock clock;
  LiveTelemetryConfig config;
  config.clock = &clock;
  LiveTelemetry live(config);
  live.attach(2, 8);
  live.on_submit(0, 1);
  live.on_process(0, 5, 0);
  clock.advance_ms(1000);

  std::ostringstream os;
  render_live_prometheus(os, live.take_snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("mcs_serve_live_state 0"), std::string::npos) << text;
  EXPECT_NE(text.find("mcs_serve_live_events_per_sec 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcs_serve_live_shard_0_queue_watermark 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcs_serve_live_shard_1_state 0"), std::string::npos)
      << text;
  // Empty-window quantiles are NaN and must be skipped, not emitted.
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
}

// ----------------------------------------------- plane-separation contract

std::map<std::string, std::int64_t> counters_for(
    const std::vector<ServeEvent>& events, int shards, bool with_live) {
  obs::MetricsRegistry registry;
  LiveTelemetry live;
  {
    const obs::ScopedRegistry guard(&registry);
    ServeConfig config;
    config.shards = shards;
    if (with_live) config.live = &live;
    ServeEngine engine(config);

    std::ostringstream sink;
    std::unique_ptr<StatsPublisher> publisher;
    if (with_live) {
      // A live publisher racing the workers is exactly the production
      // topology; under TSan this doubles as the no-data-race proof.
      publisher = std::make_unique<StatsPublisher>(
          live, sink, std::chrono::milliseconds(1));
    }
    for (const ServeEvent& event : events) engine.submit(event);
    engine.drain();
    if (publisher) publisher->stop();
  }
  return registry.snapshot().counters;
}

TEST(ServeTelemetry, LiveRecordingNeverPerturbsDeterministicCounters) {
  // The acceptance contract of the whole plane: identical merged counters
  // with live telemetry off and on, for 1 and 8 shards.
  const std::vector<ServeEvent> events = events_of(small_load());
  const std::map<std::string, std::int64_t> baseline =
      counters_for(events, 1, false);
  ASSERT_GT(baseline.at("serve.events.round_open"), 0);
  EXPECT_EQ(baseline, counters_for(events, 1, true));
  EXPECT_EQ(baseline, counters_for(events, 8, false));
  EXPECT_EQ(baseline, counters_for(events, 8, true));
}

TEST(ServeTelemetry, EngineFeedsTheLivePlaneWhileServing) {
  const LoadGenConfig load = small_load(4);
  const std::vector<ServeEvent> events = events_of(load);
  LiveTelemetry live;
  ServeConfig config;
  config.shards = 2;
  config.live = &live;
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();

  const LiveSummary summary = live.summary();
  EXPECT_EQ(summary.submitted, static_cast<std::int64_t>(events.size()));
  EXPECT_EQ(summary.processed, summary.submitted);
  EXPECT_EQ(summary.rounds_closed, load.rounds);
  EXPECT_EQ(summary.queue_wait.count,
            static_cast<std::uint64_t>(summary.processed));
  EXPECT_EQ(summary.round_latency.count,
            static_cast<std::uint64_t>(load.rounds));
  EXPECT_GT(summary.queue_high_watermark, 0);

  // The deterministic plane captured the cumulative watermark too (its
  // value is scheduling-dependent; only its presence is asserted).
  EXPECT_GT(engine.stats().queue_high_watermark, 0);
  EXPECT_GE(engine.stats().queue_high_watermark,
            summary.queue_high_watermark);
}

TEST(ServeTelemetry, StatsPublisherEmitsParsableLinesAndFinalTail) {
  const std::vector<ServeEvent> events = events_of(small_load(3));
  LiveTelemetry live;
  ServeConfig config;
  config.live = &live;
  std::ostringstream sink;
  {
    ServeEngine engine(config);
    StatsPublisher publisher(live, sink, std::chrono::milliseconds(2));
    for (const ServeEvent& event : events) engine.submit(event);
    engine.drain();
    publisher.stop();
    publisher.stop();  // idempotent
    EXPECT_GE(publisher.snapshots_written(), 1);
  }
  std::istringstream lines(sink.str());
  std::string line;
  std::int64_t expected_window = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"schema\":\"mcs.serve_stats.v1\",\"window\":" +
                             std::to_string(expected_window) + ",",
                         0),
              0u)
        << line;
    EXPECT_EQ(line.back(), '}');
    ++expected_window;
  }
  EXPECT_GE(expected_window, 1);
}

// ------------------------------------------------------- open-loop pacing

TEST(ServePacing, KeepsScheduleWithAnObedientConsumer) {
  // The sleep hook advances the fake clock, so the producer lands exactly
  // on every deadline: zero lag, zero late sends, deterministic duration.
  const LoadGenConfig load = small_load(2);
  const std::int64_t total = static_cast<std::int64_t>(events_of(load).size());

  obs::FakeClock clock;
  PaceConfig pace;
  pace.target_eps = 1000.0;  // 1 ms gap
  pace.clock = &clock;
  pace.sleep_ns = [&clock](std::uint64_t ns) { clock.advance_ns(ns); };

  std::int64_t seen = 0;
  const PaceReport report =
      run_paced_load(load, pace, [&](const ServeEvent&) {
        ++seen;
        return true;
      });
  EXPECT_EQ(report.offered, total);
  EXPECT_EQ(report.accepted, total);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.late_events, 0);
  EXPECT_EQ(report.max_lag_ns, 0u);
  EXPECT_EQ(seen, total);
  EXPECT_EQ(report.duration_ns,
            static_cast<std::uint64_t>(total - 1) * 1'000'000ULL);
}

TEST(ServePacing, AccountsLatenessWhenTheConsumerDragsTheClock) {
  // Each submit burns 2.5 gaps of "wall" time (a blocking engine under
  // overload): every subsequent event is late and the lag keeps growing.
  const LoadGenConfig load = small_load(1);
  const std::int64_t total = static_cast<std::int64_t>(events_of(load).size());

  obs::FakeClock clock;
  PaceConfig pace;
  pace.target_eps = 1000.0;
  pace.clock = &clock;
  pace.sleep_ns = [&clock](std::uint64_t ns) { clock.advance_ns(ns); };

  bool accept = true;
  const PaceReport report =
      run_paced_load(load, pace, [&](const ServeEvent&) {
        clock.advance_ns(2'500'000);
        accept = !accept;
        return accept;
      });
  EXPECT_EQ(report.offered, total);
  EXPECT_EQ(report.accepted + report.shed, total);
  EXPECT_GT(report.shed, 0);
  EXPECT_EQ(report.late_events, total - 1);
  EXPECT_EQ(report.max_lag_ns,
            static_cast<std::uint64_t>(total - 1) * 1'500'000ULL);
}

TEST(ServePacing, RejectsNonPositiveTarget) {
  PaceConfig pace;
  pace.target_eps = 0.0;
  EXPECT_THROW(
      run_paced_load(small_load(1), pace, [](const ServeEvent&) {
        return true;
      }),
      InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::serve
