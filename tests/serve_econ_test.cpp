// Tests for the live economic telemetry plane and its invariant sentinel:
// golden mcs.serve_econ.v1 snapshots under a fake clock, sentinel
// detection of tampered payments (cheap accounting and deep
// counterfactual probes), zero violations on truthful traffic, and -- the
// acceptance contract -- proof that attaching the econ plane never
// perturbs the deterministic counter plane the bench gate compares bit
// for bit.
#include "serve/econ_telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/wallclock.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/round_machine.hpp"
#include "serve/telemetry.hpp"

namespace mcs::serve {
namespace {

LoadGenConfig small_load(std::int64_t rounds = 4) {
  LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 2026;
  load.workload.num_slots = 6;
  return load;
}

std::vector<ServeEvent> events_of(const LoadGenConfig& load) {
  std::vector<ServeEvent> events;
  generate_events(load, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

/// Drives one loadgen round through a capture-mode RoundMachine exactly as
/// a shard worker would and returns the machine still holding its capture.
struct DrivenRound {
  std::unique_ptr<RoundMachine> machine;
  RoundOutcome outcome;
};

DrivenRound drive_round(std::int64_t round, const LoadGenConfig& load) {
  const model::Scenario scenario = loadgen_scenario(load, round);
  const std::vector<ServeEvent> events =
      round_events(round, scenario, scenario.truthful_bids());
  DrivenRound driven;
  driven.machine = std::make_unique<RoundMachine>(
      events.front(), auction::OnlineGreedyConfig{}, /*capture=*/true);
  for (std::size_t i = 1; i < events.size(); ++i) {
    driven.machine->apply(events[i]);
  }
  driven.outcome = driven.machine->take_outcome();
  return driven;
}

// ------------------------------------------------------------ the sampler

TEST(EconSentinel, ProbeSamplerIsDeterministicAndSeeded) {
  EXPECT_FALSE(econ_probe_sampled(7, 0, 0)) << "0 disables deep probes";
  EXPECT_FALSE(econ_probe_sampled(7, -3, 0));
  std::int64_t sampled = 0;
  for (std::int64_t round = 0; round < 4096; ++round) {
    const bool hit = econ_probe_sampled(round, 16, 1);
    EXPECT_EQ(hit, econ_probe_sampled(round, 16, 1)) << "pure function";
    EXPECT_TRUE(econ_probe_sampled(round, 1, 1)) << "1 samples every round";
    sampled += hit ? 1 : 0;
  }
  // ~1/16 of 4096 = 256; the hash keeps it in a loose band.
  EXPECT_GT(sampled, 128);
  EXPECT_LT(sampled, 512);
  // A different seed picks a different (but still deterministic) set.
  std::int64_t agree = 0;
  for (std::int64_t round = 0; round < 4096; ++round) {
    agree += econ_probe_sampled(round, 16, 1) == econ_probe_sampled(round, 16, 2)
                 ? 1
                 : 0;
  }
  EXPECT_LT(agree, 4096);
}

// --------------------------------------------------------------- sentinel

TEST(EconSentinel, CleanRoundProducesNoViolations) {
  EconTelemetryConfig config;
  config.probe_every = 1;  // deep-probe everything
  EconTelemetry econ(config);
  econ.attach(1);
  DrivenRound driven = drive_round(0, small_load());
  econ.observe_round(0, *driven.machine, driven.outcome);
  EXPECT_EQ(econ.violations(), 0);
  const EconSnapshot snapshot = econ.take_snapshot();
  EXPECT_EQ(snapshot.state, obs::HealthState::kHealthy);
  EXPECT_EQ(snapshot.cumulative.rounds, 1);
  EXPECT_EQ(snapshot.cumulative.probe_rounds, 1);
  EXPECT_GT(snapshot.cumulative.probe_checks, 0);
}

TEST(EconSentinel, TamperedTotalTripsAccountingInvariant) {
  std::ostringstream sink;
  obs::JsonlEventSink jsonl(sink);
  obs::EventLog log(&jsonl);

  EconTelemetryConfig config;
  config.probe_every = 0;  // cheap invariants only
  config.events = &log;
  EconTelemetry econ(config);
  econ.attach(1);

  DrivenRound driven = drive_round(0, small_load());
  driven.outcome.total_paid =
      Money::from_micros(driven.outcome.total_paid.micros() + 1);

  obs::MetricsRegistry registry;
  {
    const obs::ScopedRegistry guard(&registry);
    econ.observe_round(0, *driven.machine, driven.outcome);
  }

  EXPECT_EQ(econ.violations(), 1);
  EXPECT_EQ(registry.snapshot().counters.at("econ.violations"), 1);
  const EconSnapshot snapshot = econ.take_snapshot();
  EXPECT_EQ(snapshot.state, obs::HealthState::kDegradedEconomics);
  EXPECT_EQ(snapshot.cumulative.violations, 1);
  EXPECT_NE(sink.str().find("\"type\":\"econ_violation\""), std::string::npos)
      << sink.str();
  EXPECT_NE(sink.str().find("payment-mismatch"), std::string::npos)
      << sink.str();
}

TEST(EconSentinel, DeepProbeCatchesInflatedWinnerPayment) {
  std::ostringstream sink;
  obs::JsonlEventSink jsonl(sink);
  obs::EventLog log(&jsonl);

  EconTelemetryConfig config;
  config.probe_every = 1;
  config.events = &log;
  EconTelemetry econ(config);
  econ.attach(1);

  DrivenRound driven = drive_round(0, small_load());
  const std::vector<PhoneId> winners =
      driven.outcome.outcome.allocation.winners();
  ASSERT_FALSE(winners.empty()) << "test round must allocate something";
  // Overpay one winner by 5 units and keep the streamed total consistent,
  // so the cheap accounting invariant passes and only the counterfactual
  // probe (payment == critical value) can catch it.
  const auto index = static_cast<std::size_t>(winners.front().value());
  const std::int64_t bump = Money::from_units(5).micros();
  driven.outcome.outcome.payments[index] = Money::from_micros(
      driven.outcome.outcome.payments[index].micros() + bump);
  driven.outcome.total_paid =
      Money::from_micros(driven.outcome.total_paid.micros() + bump);

  obs::MetricsRegistry registry;
  {
    const obs::ScopedRegistry guard(&registry);
    econ.observe_round(0, *driven.machine, driven.outcome);
  }

  EXPECT_GE(econ.violations(), 1);
  EXPECT_GE(registry.snapshot().counters.at("econ.violations"), 1);
  EXPECT_EQ(econ.take_snapshot().state, obs::HealthState::kDegradedEconomics);
  EXPECT_NE(sink.str().find("probe-payment-not-critical"), std::string::npos)
      << sink.str();
}

TEST(EconSentinel, CapturelessRoundIsSkippedNotAudited) {
  EconTelemetry econ;
  econ.attach(1);
  const model::Scenario scenario = loadgen_scenario(small_load(), 0);
  const std::vector<ServeEvent> events =
      round_events(0, scenario, scenario.truthful_bids());
  RoundMachine machine(events.front(), auction::OnlineGreedyConfig{},
                       /*capture=*/false);
  for (std::size_t i = 1; i < events.size(); ++i) machine.apply(events[i]);
  const RoundOutcome outcome = machine.take_outcome();
  econ.observe_round(0, machine, outcome);
  const EconSnapshot snapshot = econ.take_snapshot();
  EXPECT_EQ(snapshot.cumulative.rounds, 0);
  EXPECT_EQ(snapshot.cumulative.rounds_skipped, 1);
  EXPECT_EQ(snapshot.state, obs::HealthState::kHealthy);
}

// ----------------------------------------------- agreement with analysis/

TEST(EconTelemetry, SnapshotTotalsMatchOfflineMetricsExactly) {
  EconTelemetryConfig config;
  config.probe_every = 0;
  EconTelemetry econ(config);
  econ.attach(1);

  const LoadGenConfig load = small_load();
  std::int64_t payment_micros = 0;
  std::int64_t claimed_micros = 0;
  std::int64_t tasks = 0;
  std::int64_t allocated = 0;
  for (std::int64_t round = 0; round < 3; ++round) {
    DrivenRound driven = drive_round(round, load);
    const model::Scenario scenario = loadgen_scenario(load, round);
    const analysis::RoundMetrics metrics = analysis::compute_metrics(
        scenario, scenario.truthful_bids(), driven.outcome.outcome);
    payment_micros += metrics.total_payment.micros();
    claimed_micros += metrics.total_true_cost.micros();
    tasks += metrics.tasks_total;
    allocated += metrics.tasks_allocated;
    econ.observe_round(0, *driven.machine, driven.outcome);
  }

  const EconSnapshot snapshot = econ.take_snapshot();
  EXPECT_EQ(snapshot.cumulative.rounds, 3);
  EXPECT_EQ(snapshot.cumulative.payment_micros, payment_micros);
  EXPECT_EQ(snapshot.cumulative.claimed_cost_micros, claimed_micros);
  EXPECT_EQ(snapshot.cumulative.tasks, tasks);
  EXPECT_EQ(snapshot.cumulative.tasks_allocated, allocated);
  EXPECT_EQ(snapshot.total.payment_micros, payment_micros)
      << "first window covers everything";
}

// ------------------------------------------------------- golden snapshots

TEST(EconTelemetry, GoldenEmptySnapshotUnderFakeClock) {
  obs::FakeClock clock;
  EconTelemetryConfig config;
  config.clock = &clock;
  EconTelemetry econ(config);
  econ.attach(1);
  clock.advance_ms(1000);

  std::ostringstream os;
  write_econ_snapshot(os, econ.take_snapshot());
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"mcs.serve_econ.v1\",\"window\":0,\"at_ms\":1000,"
      "\"span_ms\":1000,\"econ_state\":\"healthy\",\"rounds\":0,"
      "\"rounds_skipped\":0,\"rounds_per_sec\":0,\"tasks\":0,"
      "\"tasks_allocated\":0,\"coverage\":1,\"winners\":0,\"payment\":\"0\","
      "\"claimed_cost\":\"0\",\"overpayment_ratio\":0,"
      "\"second_price_payment\":\"0\",\"vcg_payment\":\"0\",\"vcg_rounds\":0,"
      "\"fairness_p50\":null,\"fairness_p95\":null,\"overpayment_p50\":null,"
      "\"overpayment_p95\":null,\"probe_rounds\":0,\"probe_checks\":0,"
      "\"violations\":0,\"cumulative\":{\"rounds\":0,\"rounds_skipped\":0,"
      "\"tasks\":0,\"tasks_allocated\":0,\"winners\":0,\"payment\":\"0\","
      "\"claimed_cost\":\"0\",\"second_price_payment\":\"0\","
      "\"vcg_payment\":\"0\",\"vcg_rounds\":0,\"probe_rounds\":0,"
      "\"probe_checks\":0,\"violations\":0},\"shards\":[{\"shard\":0,"
      "\"rounds\":0,\"payment\":\"0\",\"violations\":0}]}\n");
}

TEST(EconTelemetry, GoldenOneRoundSnapshotUnderFakeClock) {
  // One deterministic loadgen round: every field of the line -- money,
  // ratios, quantiles -- is a pure function of the seed, so the whole
  // JSONL line is reproducible byte for byte.
  obs::FakeClock clock;
  EconTelemetryConfig config;
  config.clock = &clock;
  config.probe_every = 1;
  EconTelemetry econ(config);
  econ.attach(1);

  DrivenRound driven = drive_round(0, small_load());
  econ.observe_round(0, *driven.machine, driven.outcome);
  clock.advance_ms(2000);

  std::ostringstream os;
  write_econ_snapshot(os, econ.take_snapshot());
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"mcs.serve_econ.v1\",\"window\":0,\"at_ms\":2000,"
      "\"span_ms\":2000,\"econ_state\":\"healthy\",\"rounds\":1,"
      "\"rounds_skipped\":0,\"rounds_per_sec\":0.5,\"tasks\":16,"
      "\"tasks_allocated\":16,\"coverage\":1,\"winners\":16,"
      "\"payment\":\"263\",\"claimed_cost\":\"143\","
      "\"overpayment_ratio\":0.839160839161,"
      "\"second_price_payment\":\"217\",\"vcg_payment\":\"0\","
      "\"vcg_rounds\":0,\"fairness_p50\":0.950272,\"fairness_p95\":0.950272,"
      "\"overpayment_p50\":0.8192,\"overpayment_p95\":0.8192,"
      "\"probe_rounds\":1,\"probe_checks\":16,\"violations\":0,"
      "\"cumulative\":{\"rounds\":1,\"rounds_skipped\":0,\"tasks\":16,"
      "\"tasks_allocated\":16,\"winners\":16,\"payment\":\"263\","
      "\"claimed_cost\":\"143\",\"second_price_payment\":\"217\","
      "\"vcg_payment\":\"0\",\"vcg_rounds\":0,\"probe_rounds\":1,"
      "\"probe_checks\":16,\"violations\":0},\"shards\":[{\"shard\":0,"
      "\"rounds\":1,\"payment\":\"263\",\"violations\":0}]}\n");
}

// ------------------------------------------------------------- Prometheus

TEST(EconTelemetry, PrometheusRenderingExposesEconGauges) {
  obs::FakeClock clock;
  EconTelemetryConfig config;
  config.clock = &clock;
  EconTelemetry econ(config);
  econ.attach(2);
  clock.advance_ms(1000);

  std::ostringstream os;
  render_econ_prometheus(os, econ.take_snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("mcs_serve_econ_state 0"), std::string::npos) << text;
  EXPECT_NE(text.find("mcs_serve_econ_violations 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcs_serve_econ_coverage 1"), std::string::npos) << text;
  EXPECT_NE(text.find("mcs_serve_econ_shard_1_rounds 0"), std::string::npos)
      << text;
  // Empty-window quantiles are NaN and must be skipped, not emitted.
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
}

// ------------------------------------------------------ engine integration

TEST(EconTelemetry, TruthfulTrafficIsViolationFreeOverManyRounds) {
  // The acceptance bar: >= 200 truthful rounds through the real engine
  // with the sentinel sampling, zero violations, healthy state.
  const LoadGenConfig load = small_load(200);
  EconTelemetryConfig econ_config;
  econ_config.probe_every = 8;
  EconTelemetry econ(econ_config);

  ServeConfig config;
  config.shards = 2;
  config.econ = &econ;
  ServeEngine engine(config);
  for (const ServeEvent& event : events_of(load)) engine.submit(event);
  engine.drain();

  EXPECT_EQ(econ.violations(), 0);
  const EconSnapshot snapshot = econ.take_snapshot();
  EXPECT_EQ(snapshot.state, obs::HealthState::kHealthy);
  EXPECT_EQ(snapshot.cumulative.rounds, 200);
  EXPECT_EQ(snapshot.cumulative.rounds_skipped, 0);
  EXPECT_GT(snapshot.cumulative.probe_rounds, 0);
  EXPECT_GT(snapshot.cumulative.payment_micros, 0);
  EXPECT_GT(snapshot.cumulative.second_price_payment_micros, 0)
      << "the per-slot second-price reference priced the stream";
}

TEST(EconTelemetry, PublisherEmitsEconStreamAlongsideStats) {
  const LoadGenConfig load = small_load(3);
  LiveTelemetry live;
  EconTelemetry econ;
  ServeConfig config;
  config.live = &live;
  config.econ = &econ;
  std::ostringstream stats;
  std::ostringstream econ_sink;
  {
    ServeEngine engine(config);
    StatsPublisher publisher(live, stats, std::chrono::milliseconds(2), &econ,
                             &econ_sink);
    for (const ServeEvent& event : events_of(load)) engine.submit(event);
    engine.drain();
    publisher.stop();
  }
  std::istringstream lines(econ_sink.str());
  std::string line;
  std::int64_t expected_window = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"schema\":\"mcs.serve_econ.v1\",\"window\":" +
                             std::to_string(expected_window) + ",",
                         0),
              0u)
        << line;
    ++expected_window;
  }
  EXPECT_GE(expected_window, 1);
}

// ----------------------------------------------- plane-separation contract

std::map<std::string, std::int64_t> counters_for(
    const std::vector<ServeEvent>& events, int shards, bool with_econ) {
  obs::MetricsRegistry registry;
  EconTelemetry econ;
  {
    const obs::ScopedRegistry guard(&registry);
    ServeConfig config;
    config.shards = shards;
    if (with_econ) config.econ = &econ;
    ServeEngine engine(config);
    for (const ServeEvent& event : events) engine.submit(event);
    engine.drain();
  }
  return registry.snapshot().counters;
}

TEST(EconTelemetry, EconPlaneNeverPerturbsDeterministicCounters) {
  // Identical merged counters with the econ plane off and on, for 1 and 8
  // shards: all reference pricing and probing runs quarantined, and the
  // one sanctioned counter (econ.violations) stays silent on truthful
  // traffic.
  const std::vector<ServeEvent> events = events_of(small_load(6));
  const std::map<std::string, std::int64_t> baseline =
      counters_for(events, 1, false);
  ASSERT_GT(baseline.at("serve.events.round_open"), 0);
  EXPECT_EQ(baseline, counters_for(events, 1, true));
  EXPECT_EQ(baseline, counters_for(events, 8, false));
  EXPECT_EQ(baseline, counters_for(events, 8, true));
}

}  // namespace
}  // namespace mcs::serve
