// Tests for the wall-clock timing plane's building blocks: the
// log-bucketed latency sketch (bucket math, quantile error bound, merge
// associativity, window deltas), the estimate_quantile edge cases both
// planes share, the rolling-window aggregator, and the overload health
// classifier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "obs/latency_sketch.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling_window.hpp"
#include "obs/wallclock.hpp"

namespace mcs::obs {
namespace {

// ------------------------------------------------------------ bucket math

TEST(LatencySketchBuckets, SmallValuesAreExact) {
  for (std::uint64_t ns = 0; ns < 16; ++ns) {
    const std::size_t bucket = sketch_detail::bucket_of(ns);
    EXPECT_EQ(bucket, ns);
    EXPECT_EQ(sketch_detail::bucket_lower_edge(bucket), ns);
    EXPECT_EQ(sketch_detail::bucket_upper_edge(bucket), ns);
  }
}

TEST(LatencySketchBuckets, EdgesBracketTheValueEverywhere) {
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 1; v != 0 && v <= (1ULL << 62); v <<= 1) {
    probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + 1);
    probes.push_back(v + v / 3);
  }
  probes.push_back(~0ULL);
  std::sort(probes.begin(), probes.end());
  std::size_t last_bucket = 0;
  for (const std::uint64_t ns : probes) {
    const std::size_t bucket = sketch_detail::bucket_of(ns);
    ASSERT_LT(bucket, sketch_detail::kBucketCount) << "ns=" << ns;
    EXPECT_LE(sketch_detail::bucket_lower_edge(bucket), ns) << "ns=" << ns;
    EXPECT_GE(sketch_detail::bucket_upper_edge(bucket), ns) << "ns=" << ns;
    EXPECT_GE(bucket, last_bucket) << "bucket_of not monotone at ns=" << ns;
    last_bucket = bucket;
  }
}

TEST(LatencySketchBuckets, RelativeWidthIsBounded) {
  // Above the exact range every bucket spans < 1/16 of its lower edge --
  // the advertised 6.25% quantile resolution.
  for (std::size_t bucket = 16; bucket < sketch_detail::kBucketCount - 16;
       bucket += 7) {
    const double lower =
        static_cast<double>(sketch_detail::bucket_lower_edge(bucket));
    const double upper =
        static_cast<double>(sketch_detail::bucket_upper_edge(bucket));
    EXPECT_LE((upper - lower) / lower, 1.0 / 16.0) << "bucket=" << bucket;
  }
}

// -------------------------------------------------------------- recording

TEST(LatencySketch, SingleSampleQuantilesAreExact) {
  LatencySketch sketch;
  sketch.record_ns(777);
  const LatencySketchSnapshot snap = sketch.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min_ns, 777u);
  EXPECT_EQ(snap.max_ns, 777u);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile_ns(q), 777.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.quantile_us(0.5), 0.777);
}

TEST(LatencySketch, EmptySketchHasNaNQuantiles) {
  LatencySketch sketch;
  const LatencySketchSnapshot snap = sketch.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_TRUE(std::isnan(snap.quantile_ns(0.5)));
  EXPECT_EQ(snap.counts.size(), 0u);
}

TEST(LatencySketch, QuantileErrorStaysWithinTheBucketBound) {
  LatencySketch sketch;
  for (std::uint64_t ns = 1; ns <= 10'000; ++ns) sketch.record_ns(ns);
  const LatencySketchSnapshot snap = sketch.snapshot();
  EXPECT_EQ(snap.count, 10'000u);
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = q * 10'000.0;
    const double estimate = snap.quantile_ns(q);
    EXPECT_NEAR(estimate, exact, exact / 16.0 + 1.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.quantile_ns(1.0), 10'000.0);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 5000.5);
}

TEST(LatencySketch, IdenticalSamplesCollapseToTheirValue) {
  // min == max clamps the interpolation: every quantile is the value.
  LatencySketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.record_ns(123'456);
  const LatencySketchSnapshot snap = sketch.snapshot();
  for (const double q : {0.01, 0.5, 0.999}) {
    EXPECT_DOUBLE_EQ(snap.quantile_ns(q), 123'456.0) << "q=" << q;
  }
}

// ------------------------------------------------------- merge and deltas

LatencySketchSnapshot sketch_of(const std::vector<std::uint64_t>& values) {
  LatencySketch sketch;
  for (const std::uint64_t v : values) sketch.record_ns(v);
  return sketch.snapshot();
}

void expect_same(const LatencySketchSnapshot& a,
                 const LatencySketchSnapshot& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.min_ns, b.min_ns);
  EXPECT_EQ(a.max_ns, b.max_ns);
}

TEST(LatencySketch, MergeIsAssociativeAndCommutative) {
  const LatencySketchSnapshot a = sketch_of({3, 900, 70'000});
  const LatencySketchSnapshot b = sketch_of({1'000'000});
  const LatencySketchSnapshot c = sketch_of({12, 12, 5'000'000'000ULL});

  LatencySketchSnapshot ab_c = a;  // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  LatencySketchSnapshot bc = b;  // a + (b + c)
  bc.merge(c);
  LatencySketchSnapshot a_bc = a;
  a_bc.merge(bc);
  expect_same(ab_c, a_bc);

  LatencySketchSnapshot cba = c;  // reversed order
  cba.merge(b);
  cba.merge(a);
  expect_same(ab_c, cba);

  EXPECT_EQ(ab_c.count, 7u);
  EXPECT_EQ(ab_c.min_ns, 3u);
  EXPECT_EQ(ab_c.max_ns, 5'000'000'000ULL);
}

TEST(LatencySketch, MergeWithEmptyIsIdentity) {
  const LatencySketchSnapshot a = sketch_of({42, 99});
  LatencySketchSnapshot merged = a;
  merged.merge(LatencySketchSnapshot{});
  expect_same(merged, a);
  LatencySketchSnapshot onto_empty;
  onto_empty.merge(a);
  expect_same(onto_empty, a);
}

TEST(LatencySketch, DeltaSinceIsolatesTheWindow) {
  LatencySketch sketch;
  sketch.record_ns(5);
  sketch.record_ns(10);
  const LatencySketchSnapshot earlier = sketch.snapshot();
  sketch.record_ns(7);
  sketch.record_ns(7);
  sketch.record_ns(2'000);
  const LatencySketchSnapshot later = sketch.snapshot();

  const LatencySketchSnapshot delta = later.delta_since(earlier);
  EXPECT_EQ(delta.count, 3u);
  EXPECT_DOUBLE_EQ(delta.sum_ns, 2'014.0);
  // Delta extrema come from occupied bucket edges; 7 is exact, 2000 is
  // bracketed by its bucket.
  EXPECT_EQ(delta.min_ns, 7u);
  EXPECT_LE(delta.max_ns, sketch_detail::bucket_upper_edge(
                              sketch_detail::bucket_of(2'000)));
  EXPECT_GE(delta.max_ns, 2'000u);
}

TEST(LatencySketch, DeltaOfIdenticalSnapshotsIsEmpty) {
  const LatencySketchSnapshot snap = sketch_of({50, 60});
  const LatencySketchSnapshot delta = snap.delta_since(snap);
  EXPECT_TRUE(delta.empty());
  EXPECT_TRUE(std::isnan(delta.quantile_ns(0.5)));
}

// --------------------------------------- estimate_quantile edge hardening

TEST(EstimateQuantile, EmptyHistogramIsNaN) {
  MetricsSnapshot::HistogramData data;
  data.boundaries = {10.0, 20.0};
  data.bucket_counts = {0, 0, 0};
  data.count = 0;
  EXPECT_TRUE(std::isnan(estimate_quantile(data, 0.5)));
}

TEST(EstimateQuantile, SingleSampleReturnsItForEveryQ) {
  MetricsSnapshot::HistogramData data;
  data.boundaries = {10.0, 20.0};
  data.bucket_counts = {0, 1, 0};
  data.count = 1;
  data.min = 17.0;
  data.max = 17.0;
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(estimate_quantile(data, q), 17.0) << "q=" << q;
  }
}

TEST(EstimateQuantile, AllOverflowBucketStaysWithinObservedRange) {
  // Every sample beyond the last boundary: the overflow bucket has no
  // upper edge, so the estimate must be closed by the tracked extrema.
  MetricsSnapshot::HistogramData data;
  data.boundaries = {10.0, 20.0};
  data.bucket_counts = {0, 0, 8};
  data.count = 8;
  data.min = 25.0;
  data.max = 30.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double estimate = estimate_quantile(data, q);
    EXPECT_GE(estimate, 25.0) << "q=" << q;
    EXPECT_LE(estimate, 30.0) << "q=" << q;
  }
}

TEST(EstimateQuantile, DegenerateBucketEdgesDoNotInventValues) {
  // min == max collapses the only occupied bucket to a point.
  MetricsSnapshot::HistogramData data;
  data.boundaries = {10.0};
  data.bucket_counts = {0, 4};
  data.count = 4;
  data.min = 15.0;
  data.max = 15.0;
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 0.5), 15.0);
}

// ---------------------------------------------------------------- windows

LiveCumulative cumulative_at(std::uint64_t at_ns, std::int64_t submitted,
                             std::int64_t processed, std::int64_t rejected) {
  LiveCumulative sample;
  sample.at_ns = at_ns;
  sample.submitted = submitted;
  sample.processed = processed;
  sample.rejected = rejected;
  return sample;
}

TEST(RollingWindow, DeltasRatesAndMonotoneIndices) {
  RollingWindowAggregator agg(0, 8);
  EXPECT_EQ(agg.next_index(), 0);

  const WindowStats w0 = agg.roll(cumulative_at(1'000'000'000ULL, 100, 90, 0));
  EXPECT_EQ(w0.index, 0);
  EXPECT_EQ(w0.begin_ns, 0u);
  EXPECT_EQ(w0.end_ns, 1'000'000'000ULL);
  EXPECT_EQ(w0.processed, 90);
  EXPECT_DOUBLE_EQ(w0.events_per_sec, 90.0);
  EXPECT_DOUBLE_EQ(w0.reject_rate, 0.0);

  const WindowStats w1 =
      agg.roll(cumulative_at(3'000'000'000ULL, 200, 150, 25));
  EXPECT_EQ(w1.index, 1);
  EXPECT_EQ(w1.submitted, 100);
  EXPECT_EQ(w1.processed, 60);
  EXPECT_EQ(w1.rejected, 25);
  EXPECT_DOUBLE_EQ(w1.events_per_sec, 30.0);  // 60 over 2 s
  EXPECT_DOUBLE_EQ(w1.reject_rate, 0.2);      // 25 / 125 offered
  EXPECT_EQ(agg.next_index(), 2);
}

TEST(RollingWindow, SameInputsSameWindows) {
  const auto run = [] {
    RollingWindowAggregator agg(0, 4);
    std::vector<WindowStats> out;
    for (int i = 1; i <= 5; ++i) {
      out.push_back(agg.roll(cumulative_at(
          static_cast<std::uint64_t>(i) * 500'000'000ULL, 20 * i, 18 * i,
          i)));
    }
    return out;
  };
  const std::vector<WindowStats> a = run();
  const std::vector<WindowStats> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].processed, b[i].processed);
    EXPECT_DOUBLE_EQ(a[i].events_per_sec, b[i].events_per_sec);
    EXPECT_DOUBLE_EQ(a[i].reject_rate, b[i].reject_rate);
  }
}

TEST(RollingWindow, CapacityTrimsOldestButIndicesKeepCounting) {
  RollingWindowAggregator agg(0, 2);
  for (int i = 1; i <= 5; ++i) {
    agg.roll(cumulative_at(static_cast<std::uint64_t>(i), i, i, 0));
  }
  ASSERT_EQ(agg.windows().size(), 2u);
  EXPECT_EQ(agg.windows().front().index, 3);
  EXPECT_EQ(agg.windows().back().index, 4);
  EXPECT_EQ(agg.next_index(), 5);
}

TEST(RollingWindow, ZeroSpanWindowHasZeroRates) {
  RollingWindowAggregator agg(0, 4);
  const WindowStats w = agg.roll(cumulative_at(0, 10, 10, 0));
  EXPECT_DOUBLE_EQ(w.events_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(w.rounds_per_sec, 0.0);
}

// ----------------------------------------------------------------- health

WindowStats window_with(std::int64_t processed, std::int64_t queue_depth,
                        std::int64_t watermark, double reject_rate) {
  WindowStats w;
  w.processed = processed;
  w.queue_depth = queue_depth;
  w.queue_watermark = watermark;
  w.reject_rate = reject_rate;
  return w;
}

TEST(HealthClassifier, EmptyAndQuietWindowsAreHealthy) {
  EXPECT_EQ(classify_health({}, 100), HealthState::kHealthy);
  std::deque<WindowStats> windows;
  windows.push_back(window_with(50, 0, 3, 0.0));
  windows.push_back(window_with(40, 1, 2, 0.0));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kHealthy);
}

TEST(HealthClassifier, SheddingFiresOnTheLastWindowAlone) {
  std::deque<WindowStats> windows;
  windows.push_back(window_with(50, 0, 3, 0.2));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kShedding);
  // A recovered window clears it even with shedding history behind it.
  windows.push_back(window_with(50, 0, 3, 0.0));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kHealthy);
}

TEST(HealthClassifier, SaturationNeedsDwell) {
  std::deque<WindowStats> windows;
  windows.push_back(window_with(50, 10, 80, 0.0));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kHealthy)
      << "one hot window is not an incident";
  windows.push_back(window_with(50, 10, 90, 0.0));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kSaturated);
  // Capacity matters: the same watermarks against a huge queue are fine.
  EXPECT_EQ(classify_health(windows, 1'000'000), HealthState::kHealthy);
}

TEST(HealthClassifier, StalledNeedsBacklogAndNoProgress) {
  std::deque<WindowStats> windows;
  windows.push_back(window_with(0, 5, 5, 0.0));
  windows.push_back(window_with(0, 5, 5, 0.0));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kStalled);
  // Any forward progress in the dwell breaks the stall.
  windows.back().processed = 1;
  EXPECT_NE(classify_health(windows, 100), HealthState::kStalled);
  // An empty queue that processes nothing is idle, not stalled.
  std::deque<WindowStats> idle;
  idle.push_back(window_with(0, 0, 0, 0.0));
  idle.push_back(window_with(0, 0, 0, 0.0));
  EXPECT_EQ(classify_health(idle, 100), HealthState::kHealthy);
}

TEST(HealthClassifier, StalledOutranksSheddingOutranksSaturated) {
  std::deque<WindowStats> windows;
  windows.push_back(window_with(0, 90, 95, 0.5));
  windows.push_back(window_with(0, 90, 95, 0.5));
  EXPECT_EQ(classify_health(windows, 100), HealthState::kStalled);
  windows.back().processed = 1;  // not stalled; still shedding + saturated
  EXPECT_EQ(classify_health(windows, 100), HealthState::kShedding);
  windows.back().reject_rate = 0.0;  // saturation remains
  EXPECT_EQ(classify_health(windows, 100), HealthState::kSaturated);

  EXPECT_EQ(worse(HealthState::kHealthy, HealthState::kSaturated),
            HealthState::kSaturated);
  EXPECT_EQ(worse(HealthState::kStalled, HealthState::kShedding),
            HealthState::kStalled);
  EXPECT_EQ(to_string(HealthState::kStalled), "stalled");
}

// ------------------------------------------------------------- fake clock

TEST(FakeClock, AdvancesMonotonically) {
  FakeClock clock(100);
  EXPECT_EQ(clock.now_ns(), 100u);
  clock.advance_ns(5);
  EXPECT_EQ(clock.now_ns(), 105u);
  clock.advance_ms(2);
  EXPECT_EQ(clock.now_ns(), 2'000'105u);
}

}  // namespace
}  // namespace mcs::obs
