// Direct unit tests for the outcome layer (Allocation/Outcome) and the
// generic critical-value bisection -- pieces exercised everywhere but
// pinned down here at the edges.
#include "auction/outcome.hpp"

#include <gtest/gtest.h>

#include "auction/critical_value.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

model::Scenario two_phone_scenario() {
  return model::ScenarioBuilder(2)
      .value(10)
      .phone(1, 2, 3)
      .phone(1, 1, 5)
      .task(1)
      .task(2)
      .build();
}

TEST(Allocation, EmptyShape) {
  const Allocation a(0, 0);
  EXPECT_EQ(a.task_count(), 0);
  EXPECT_EQ(a.phone_count(), 0);
  EXPECT_EQ(a.allocated_count(), 0);
  EXPECT_TRUE(a.winners().empty());
}

TEST(Allocation, AssignAndQuery) {
  Allocation a(2, 3);
  a.assign(TaskId{1}, PhoneId{2});
  EXPECT_EQ(a.phone_for(TaskId{1}), PhoneId{2});
  EXPECT_FALSE(a.phone_for(TaskId{0}).has_value());
  EXPECT_EQ(a.task_for(PhoneId{2}), TaskId{1});
  EXPECT_TRUE(a.is_winner(PhoneId{2}));
  EXPECT_FALSE(a.is_winner(PhoneId{0}));
  EXPECT_EQ(a.allocated_count(), 1);
  EXPECT_EQ(a.winners(), std::vector<PhoneId>{PhoneId{2}});
}

TEST(Allocation, RejectsDoubleAssignment) {
  Allocation a(2, 2);
  a.assign(TaskId{0}, PhoneId{0});
  EXPECT_THROW(a.assign(TaskId{0}, PhoneId{1}), ContractViolation);
  EXPECT_THROW(a.assign(TaskId{1}, PhoneId{0}), ContractViolation);
}

TEST(Allocation, RejectsOutOfRangeIds) {
  Allocation a(1, 1);
  EXPECT_THROW(a.assign(TaskId{1}, PhoneId{0}), ContractViolation);
  EXPECT_THROW(a.assign(TaskId{0}, PhoneId{-1}), ContractViolation);
  EXPECT_THROW(std::ignore = a.phone_for(TaskId{5}), ContractViolation);
}

TEST(Allocation, ValidateCatchesWindowViolation) {
  const model::Scenario s = two_phone_scenario();
  const model::BidProfile bids = s.truthful_bids();
  Allocation a(2, 2);
  a.assign(TaskId{1}, PhoneId{1});  // task 1 is slot 2; phone 1 window [1,1]
  EXPECT_THROW(a.validate(s, bids), ContractViolation);
}

TEST(Outcome, ValidateCatchesPaidLoser) {
  const model::Scenario s = two_phone_scenario();
  const model::BidProfile bids = s.truthful_bids();
  Outcome outcome;
  outcome.allocation = Allocation(2, 2);
  outcome.allocation.assign(TaskId{0}, PhoneId{0});
  outcome.payments = {mu(5), mu(1)};  // phone 1 lost but is paid
  EXPECT_THROW(outcome.validate(s, bids), ContractViolation);
}

TEST(Outcome, DerivedQuantities) {
  const model::Scenario s = two_phone_scenario();
  const model::BidProfile bids = s.truthful_bids();
  Outcome outcome;
  outcome.allocation = Allocation(2, 2);
  outcome.allocation.assign(TaskId{0}, PhoneId{1});  // slot 1, cost 5
  outcome.allocation.assign(TaskId{1}, PhoneId{0});  // slot 2, cost 3
  outcome.payments = {mu(7), mu(6)};
  outcome.validate(s, bids);

  EXPECT_EQ(outcome.social_welfare(s), mu(12));        // (10-5)+(10-3)
  EXPECT_EQ(outcome.claimed_welfare(s, bids), mu(12));
  EXPECT_EQ(outcome.total_payment(), mu(13));
  EXPECT_EQ(outcome.total_true_cost(s), mu(8));
  EXPECT_EQ(outcome.utility(s, PhoneId{0}), mu(4));    // 7 - 3
  EXPECT_EQ(outcome.utility(s, PhoneId{1}), mu(1));    // 6 - 5
}

TEST(Allocation, ServiceSlotDefaultsToArrival) {
  const model::Scenario s = two_phone_scenario();
  Allocation a(2, 2);
  a.assign(TaskId{0}, PhoneId{0});
  EXPECT_EQ(a.service_slot_for(TaskId{0}, s), Slot{1});
  EXPECT_THROW(std::ignore = a.service_slot_for(TaskId{1}, s),
               ContractViolation);  // unallocated task
}

TEST(Allocation, ExplicitServiceSlotIsValidated) {
  const model::Scenario s = two_phone_scenario();
  const model::BidProfile bids = s.truthful_bids();
  {
    // Phone 0 ([1,2]) serves the slot-1 task late, in slot 2: legal.
    Allocation a(2, 2);
    a.assign(TaskId{0}, PhoneId{0}, Slot{2});
    EXPECT_EQ(a.service_slot_for(TaskId{0}, s), Slot{2});
    EXPECT_NO_THROW(a.validate(s, bids));
  }
  {
    // Serving before arrival is rejected.
    Allocation a(2, 2);
    a.assign(TaskId{1}, PhoneId{0}, Slot{1});  // task 1 arrives in slot 2
    EXPECT_THROW(a.validate(s, bids), ContractViolation);
  }
  {
    // Serving outside the phone's reported window is rejected.
    Allocation a(2, 2);
    a.assign(TaskId{0}, PhoneId{1}, Slot{2});  // phone 1 window is [1,1]
    EXPECT_THROW(a.validate(s, bids), ContractViolation);
  }
}

// ------------------------------------------------------ bisection utility

TEST(CriticalValueBisect, FindsExactThreshold) {
  // wins(c) iff c < 7 exactly.
  const WinsWithCost wins = [](Money c) { return c < mu(7); };
  const auto critical = bisect_critical_value(wins, mu(100));
  ASSERT_TRUE(critical.has_value());
  EXPECT_EQ(*critical, mu(7));
}

TEST(CriticalValueBisect, ClosedThresholdWithinOneMicro) {
  // wins(c) iff c <= 7 (winning at the threshold itself).
  const WinsWithCost wins = [](Money c) { return c <= mu(7); };
  const auto critical = bisect_critical_value(wins, mu(100));
  ASSERT_TRUE(critical.has_value());
  EXPECT_LE((*critical - mu(7)).micros(), 1);
  EXPECT_GE(*critical, mu(7));
}

TEST(CriticalValueBisect, UnboundedReturnsNullopt) {
  const WinsWithCost wins = [](Money) { return true; };
  EXPECT_FALSE(bisect_critical_value(wins, mu(50)).has_value());
}

TEST(CriticalValueBisect, GuardsPreconditions) {
  const WinsWithCost never = [](Money) { return false; };
  EXPECT_THROW(std::ignore = bisect_critical_value(never, mu(10)),
               ContractViolation);
  const WinsWithCost wins = [](Money c) { return c < mu(5); };
  EXPECT_THROW(std::ignore = bisect_critical_value(wins, mu(10), 0),
               ContractViolation);
  EXPECT_THROW(
      std::ignore = bisect_critical_value(wins, Money::from_units(-1)),
      ContractViolation);
}

TEST(CriticalValueBisect, RespectsCustomTolerance) {
  const WinsWithCost wins = [](Money c) { return c < mu(7); };
  const auto coarse =
      bisect_critical_value(wins, mu(100), Money::from_units(1).micros());
  ASSERT_TRUE(coarse.has_value());
  const std::int64_t gap = (*coarse - mu(7)).micros() < 0
                               ? (mu(7) - *coarse).micros()
                               : (*coarse - mu(7)).micros();
  EXPECT_LE(gap, Money::from_units(1).micros());
}

}  // namespace
}  // namespace mcs::auction
