// Tests for the deterministic RNG and the workload distributions. The
// statistical checks use wide tolerances (5+ sigma) so they are effectively
// deterministic for the fixed seeds used here.
#include "common/distributions.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mcs {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkStreamsAreDeterministicAndDistinct) {
  const Rng parent(99);
  Rng child_a = parent.fork(0);
  Rng child_a2 = parent.fork(0);
  Rng child_b = parent.fork(1);
  EXPECT_EQ(child_a.next(), child_a2.next());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a.next() == child_b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[rng.next_below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, samples / 10, 600);  // ~6 sigma of binomial(1e5, .1)
  }
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsOutOfRangeP) {
  Rng rng(13);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.1), ContractViolation);
}

// ---------------------------------------------------------- distributions

TEST(Poisson, ZeroLambdaAlwaysZero) {
  const PoissonSampler sampler(0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0);
}

TEST(Poisson, RejectsNegativeLambda) {
  EXPECT_THROW(PoissonSampler(-1.0), ContractViolation);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  const PoissonSampler sampler(lambda);
  Rng rng(42);
  RunningStats stats;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const std::int64_t k = sampler.sample(rng);
    ASSERT_GE(k, 0);
    stats.add(static_cast<double>(k));
  }
  const double tolerance = 6.0 * std::sqrt(lambda / samples) + 0.01;
  EXPECT_NEAR(stats.mean(), lambda, tolerance) << "lambda=" << lambda;
  EXPECT_NEAR(stats.variance(), lambda, 0.05 * lambda + 0.05)
      << "lambda=" << lambda;
}

// Covers both the Knuth (< 10) and PTRS (>= 10) code paths, including the
// paper's arrival rates 3 and 6.
INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMoments,
                         ::testing::Values(0.5, 3.0, 6.0, 9.9, 10.0, 25.0,
                                           100.0));

TEST(UniformIntSampler, MeanMatches) {
  const UniformIntSampler sampler(1, 49);  // the default cost distribution
  EXPECT_DOUBLE_EQ(sampler.mean(), 25.0);
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const std::int64_t v = sampler.sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 49);
    stats.add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.mean(), 25.0, 0.3);
}

TEST(ExponentialSampler, MeanIsInverseRate) {
  const ExponentialSampler sampler(0.25);
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = sampler.sample(rng);
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(ExponentialSampler, RejectsNonPositiveRate) {
  EXPECT_THROW(ExponentialSampler(0.0), ContractViolation);
  EXPECT_THROW(ExponentialSampler(-1.0), ContractViolation);
}

TEST(NormalSampler, MomentsMatch) {
  NormalSampler sampler(25.0, 6.25);
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sampler.sample(rng));
  EXPECT_NEAR(stats.mean(), 25.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 6.25, 0.15);
}

TEST(NormalSampler, TruncationRespectsBounds) {
  NormalSampler sampler(25.0, 10.0);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double x = sampler.sample_truncated(rng, 0.5, 50.0);
    ASSERT_GE(x, 0.5);
    ASSERT_LE(x, 50.0);
  }
}

TEST(DiscreteSampler, FrequenciesMatchWeights) {
  const DiscreteSampler sampler({1.0, 2.0, 7.0});
  Rng rng(12);
  std::vector<int> counts(3, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0], 0.1 * samples, 0.01 * samples);
  EXPECT_NEAR(counts[1], 0.2 * samples, 0.01 * samples);
  EXPECT_NEAR(counts[2], 0.7 * samples, 0.01 * samples);
}

TEST(DiscreteSampler, SingleOutcome) {
  const DiscreteSampler sampler({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverDrawn) {
  const DiscreteSampler sampler({0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  EXPECT_THROW(DiscreteSampler({}), ContractViolation);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(DiscreteSampler({-1.0, 2.0}), ContractViolation);
}

}  // namespace
}  // namespace mcs
