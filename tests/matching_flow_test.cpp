// Tests for the min-cost-flow solver and the flow-based matching
// front-end, plus the three-way cross-validation Hungarian vs flow vs
// brute force on randomized graphs.
#include "matching/min_cost_flow.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matching/brute_force.hpp"
#include "matching/hungarian.hpp"
#include "matching/validation.hpp"

namespace mcs::matching {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow flow(2);
  const int e = flow.add_edge(0, 1, 5, 3);
  const auto result = flow.solve(0, 1);
  EXPECT_EQ(result.flow, 5);
  EXPECT_EQ(result.cost, 15);
  EXPECT_EQ(flow.flow_on(e), 5);
}

TEST(MinCostFlow, PrefersCheapPath) {
  // Two parallel 0->1 edges; cheap one saturates first.
  MinCostFlow flow(2);
  const int cheap = flow.add_edge(0, 1, 1, 1);
  const int pricey = flow.add_edge(0, 1, 1, 10);
  const auto result = flow.solve(0, 1, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, 1);
  EXPECT_EQ(flow.flow_on(cheap), 1);
  EXPECT_EQ(flow.flow_on(pricey), 0);
}

TEST(MinCostFlow, RespectsFlowLimit) {
  MinCostFlow flow(2);
  flow.add_edge(0, 1, 10, 2);
  const auto result = flow.solve(0, 1, 4);
  EXPECT_EQ(result.flow, 4);
  EXPECT_EQ(result.cost, 8);
}

TEST(MinCostFlow, DisconnectedMeansZeroFlow) {
  MinCostFlow flow(3);
  flow.add_edge(0, 1, 1, 1);
  const auto result = flow.solve(0, 2);
  EXPECT_EQ(result.flow, 0);
  EXPECT_EQ(result.cost, 0);
}

TEST(MinCostFlow, NegativeCostsViaResidualRerouting) {
  // Diamond: 0->1 (cost 1), 0->2 (cost 4), 1->3 (cost 4), 2->3 (cost 1),
  // 1->2 (cost -3). Two units: first path 0-1-2-3 (cost -1), then 0-2-3? no,
  // residuals allow the SPFA to find the true min-cost routing.
  MinCostFlow flow(4);
  flow.add_edge(0, 1, 1, 1);
  flow.add_edge(0, 2, 1, 4);
  flow.add_edge(1, 3, 1, 4);
  flow.add_edge(2, 3, 1, 1);
  flow.add_edge(1, 2, 1, -3);
  const auto result = flow.solve(0, 3);
  EXPECT_EQ(result.flow, 2);
  // Optimal: 0-1-2-3 = 1 - 3 + 1 = -1 and 0-2...2 full -> 0-2 reroute:
  // second unit 0-2 (4), 2->... 2-3 used; residual 2->1 (+3), 1-3 (4):
  // 4 + 3 + 4 = 11? Min total = cheapest two-unit routing = -1 + 9 = 8
  // (unit 2: 0-2 (4), residual 2-1 (3)? no: direct check below).
  // The assertion pins the solver's exact optimum for this fixed graph.
  EXPECT_EQ(result.cost, 10);
}

TEST(MinCostFlow, RejectsBadArguments) {
  MinCostFlow flow(2);
  EXPECT_THROW(flow.add_edge(0, 5, 1, 1), ContractViolation);
  EXPECT_THROW(flow.add_edge(0, 1, -1, 1), ContractViolation);
  EXPECT_THROW(flow.solve(0, 0), ContractViolation);
  EXPECT_THROW(flow.solve(0, 9), ContractViolation);
}

TEST(FlowMatching, SimpleInstance) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(10));
  g.set(0, 1, mu(1));
  g.set(1, 0, mu(9));
  g.set(1, 1, mu(2));
  const Matching m = max_weight_matching_via_flow(g);
  EXPECT_EQ(m.total_weight, mu(12));
  validate_matching(g, m);
}

TEST(FlowMatching, SkipsNegativeEdges) {
  WeightMatrix g(1, 1);
  g.set(0, 0, mu(-4));
  const Matching m = max_weight_matching_via_flow(g);
  EXPECT_EQ(m.total_weight, Money{});
  EXPECT_FALSE(m.row_to_col[0].has_value());
}

TEST(FlowMatching, EmptyGraph) {
  const Matching m = max_weight_matching_via_flow(WeightMatrix(0, 3));
  EXPECT_EQ(m.total_weight, Money{});
  EXPECT_TRUE(m.row_to_col.empty());
}

using RandomGraphParam = std::tuple<int, int, std::int64_t, int>;

class ThreeWayCrossCheck : public ::testing::TestWithParam<RandomGraphParam> {};

TEST_P(ThreeWayCrossCheck, AllSolversAgreeOnTotalWeight) {
  const auto [rows, cols, range, density] = GetParam();
  Rng rng(515);
  for (int trial = 0; trial < 40; ++trial) {
    WeightMatrix g(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (rng.uniform_int(0, 99) < density) {
          g.set(r, c, Money::from_units(rng.uniform_int(-range, range)));
        }
      }
    }
    MaxWeightMatcher hungarian(g);
    const Matching via_flow = max_weight_matching_via_flow(g);
    const Matching oracle = brute_force_max_weight(g);
    validate_matching(g, via_flow);
    ASSERT_EQ(hungarian.total_weight(), oracle.total_weight)
        << "hungarian vs oracle, trial " << trial;
    ASSERT_EQ(via_flow.total_weight, oracle.total_weight)
        << "flow vs oracle, trial " << trial;
    ASSERT_EQ(recompute_weight(g, via_flow), via_flow.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreeWayCrossCheck,
    ::testing::Values(RandomGraphParam{4, 4, 25, 100},
                      RandomGraphParam{5, 7, 25, 60},
                      RandomGraphParam{7, 5, 25, 60},
                      RandomGraphParam{6, 6, 3, 80},
                      RandomGraphParam{2, 10, 50, 50}));

}  // namespace
}  // namespace mcs::matching
