// Tests for the WeightMatrix representation and the Hungarian solver --
// including the randomized cross-validation against the brute-force oracle
// and the incremental column-removal query against full re-solves (the two
// properties the offline VCG mechanism depends on).
#include "matching/hungarian.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matching/brute_force.hpp"
#include "matching/validation.hpp"

namespace mcs::matching {
namespace {

using money_literals::operator""_mu;

Money mu(std::int64_t units) { return Money::from_units(units); }

// ------------------------------------------------------------ WeightMatrix

TEST(WeightMatrix, StartsEmpty) {
  const WeightMatrix g(2, 3);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.cols(), 3);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.get(1, 2).has_value());
}

TEST(WeightMatrix, SetGetClear) {
  WeightMatrix g(2, 2);
  g.set(0, 1, mu(5));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.weight(0, 1), mu(5));
  EXPECT_EQ(g.edge_count(), 1u);
  g.set(0, 1, mu(-2));  // overwrite, negative weights allowed
  EXPECT_EQ(g.weight(0, 1), mu(-2));
  g.clear(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_THROW(std::ignore = g.weight(0, 1), ContractViolation);
}

TEST(WeightMatrix, BoundsChecked) {
  WeightMatrix g(2, 2);
  EXPECT_THROW(g.set(2, 0, mu(1)), ContractViolation);
  EXPECT_THROW(g.set(0, -1, mu(1)), ContractViolation);
  EXPECT_THROW(std::ignore = g.get(0, 2), ContractViolation);
}

TEST(WeightMatrix, WithoutColumnRemovesAllItsEdges) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(1));
  g.set(0, 1, mu(2));
  g.set(1, 1, mu(3));
  const WeightMatrix reduced = g.without_column(1);
  EXPECT_TRUE(reduced.has_edge(0, 0));
  EXPECT_FALSE(reduced.has_edge(0, 1));
  EXPECT_FALSE(reduced.has_edge(1, 1));
  // Original untouched.
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(Matching, SizeAndInverse) {
  Matching m;
  m.row_to_col = {std::nullopt, 2, 0};
  EXPECT_EQ(m.size(), 2u);
  const auto inverse = m.col_to_row(3);
  EXPECT_FALSE(inverse[1].has_value());
  EXPECT_EQ(inverse[2], 1);
  EXPECT_EQ(inverse[0], 2);
}

// --------------------------------------------------------- MinCostAssigner

TEST(MinCostAssigner, TwoByTwoKnownOptimum) {
  // cost = [[4, 1], [2, 3]]: optimal is (0,1) + (1,0) = 3.
  MinCostAssigner solver(2, 2, {4, 1, 2, 3});
  solver.solve();
  EXPECT_EQ(solver.total_cost(), 3);
  EXPECT_EQ(solver.row_to_col()[0], 1);
  EXPECT_EQ(solver.row_to_col()[1], 0);
}

TEST(MinCostAssigner, RectangularUsesCheapColumns) {
  // 1 row, 3 cols.
  MinCostAssigner solver(1, 3, {7, 2, 9});
  solver.solve();
  EXPECT_EQ(solver.total_cost(), 2);
  EXPECT_EQ(solver.row_to_col()[0], 1);
}

TEST(MinCostAssigner, HandlesNegativeCosts) {
  MinCostAssigner solver(2, 2, {-5, 0, 0, -5});
  solver.solve();
  EXPECT_EQ(solver.total_cost(), -10);
}

TEST(MinCostAssigner, ForbiddenEdgesAvoided) {
  const std::int64_t F = MinCostAssigner::kForbidden;
  // Row 0 can only take col 1.
  MinCostAssigner solver(2, 2, {F, 3, 1, 2});
  solver.solve();
  EXPECT_EQ(solver.row_to_col()[0], 1);
  EXPECT_EQ(solver.row_to_col()[1], 0);
  EXPECT_EQ(solver.total_cost(), 4);
}

TEST(MinCostAssigner, InfeasibleThrows) {
  const std::int64_t F = MinCostAssigner::kForbidden;
  MinCostAssigner solver(2, 2, {F, 3, F, 2});  // both rows need col 1
  EXPECT_THROW(solver.solve(), SolverError);
}

TEST(MinCostAssigner, RejectsBadShape) {
  EXPECT_THROW(MinCostAssigner(3, 2, std::vector<std::int64_t>(6, 0)),
               ContractViolation);
  EXPECT_THROW(MinCostAssigner(2, 2, std::vector<std::int64_t>(3, 0)),
               ContractViolation);
}

TEST(MinCostAssigner, EmptyInstance) {
  MinCostAssigner solver(0, 0, {});
  solver.solve();
  EXPECT_EQ(solver.total_cost(), 0);
}

TEST(MinCostAssigner, AccessorsRequireSolve) {
  MinCostAssigner solver(1, 1, {1});
  EXPECT_THROW(std::ignore = solver.total_cost(), ContractViolation);
  EXPECT_THROW(std::ignore = solver.row_to_col(), ContractViolation);
}

TEST(MinCostAssigner, DualCertificateHolds) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int rows = static_cast<int>(rng.uniform_int(1, 6));
    const int cols = rows + static_cast<int>(rng.uniform_int(0, 4));
    std::vector<std::int64_t> cost(
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
    for (auto& c : cost) c = rng.uniform_int(-50, 50);
    MinCostAssigner solver(rows, cols, cost);
    solver.solve();
    const auto& u = solver.row_potentials();
    const auto& v = solver.col_potentials();
    // Feasibility: cost(i,j) >= u[i+1] + v[j+1] for all pairs; tight on
    // matched pairs. This is the LP optimality certificate.
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        const std::int64_t c =
            cost[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(j)];
        const std::int64_t reduced = c - u[static_cast<std::size_t>(i + 1)] -
                                     v[static_cast<std::size_t>(j + 1)];
        ASSERT_GE(reduced, 0) << "trial " << trial;
        if (solver.row_to_col()[static_cast<std::size_t>(i)] == j) {
          ASSERT_EQ(reduced, 0) << "trial " << trial;
        }
      }
    }
  }
}

// --------------------------------------------------------- MaxWeightMatcher

TEST(MaxWeightMatcher, PrefersHeavyEdges) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(10));
  g.set(0, 1, mu(1));
  g.set(1, 0, mu(9));
  g.set(1, 1, mu(2));
  MaxWeightMatcher matcher(g);
  const Matching& m = matcher.solve();
  EXPECT_EQ(m.total_weight, mu(12));  // 10 + 2 beats 9 + 1
  EXPECT_EQ(m.row_to_col[0], 0);
  EXPECT_EQ(m.row_to_col[1], 1);
  validate_matching(g, m);
}

TEST(MaxWeightMatcher, LeavesRowsUnmatchedInsteadOfNegative) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(5));
  g.set(1, 1, mu(-3));  // taking this edge would reduce welfare
  MaxWeightMatcher matcher(g);
  const Matching& m = matcher.solve();
  EXPECT_EQ(m.total_weight, mu(5));
  EXPECT_EQ(m.row_to_col[0], 0);
  EXPECT_FALSE(m.row_to_col[1].has_value());
}

TEST(MaxWeightMatcher, EmptyGraph) {
  WeightMatrix g(0, 0);
  MaxWeightMatcher matcher(g);
  EXPECT_EQ(matcher.total_weight(), Money{});
}

TEST(MaxWeightMatcher, NoEdgesMeansEmptyMatching) {
  WeightMatrix g(3, 2);
  MaxWeightMatcher matcher(g);
  const Matching& m = matcher.solve();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.total_weight, Money{});
}

TEST(MaxWeightMatcher, MoreRowsThanColumns) {
  WeightMatrix g(3, 1);
  g.set(0, 0, mu(1));
  g.set(1, 0, mu(5));
  g.set(2, 0, mu(3));
  MaxWeightMatcher matcher(g);
  const Matching& m = matcher.solve();
  EXPECT_EQ(m.total_weight, mu(5));
  EXPECT_EQ(m.row_to_col[1], 0);
  EXPECT_EQ(m.size(), 1u);
}

TEST(MaxWeightMatcher, WithoutColumnOnUnmatchedColumnIsNoop) {
  WeightMatrix g(1, 2);
  g.set(0, 0, mu(5));
  g.set(0, 1, mu(2));
  MaxWeightMatcher matcher(g);
  EXPECT_EQ(matcher.total_weight(), mu(5));
  EXPECT_EQ(matcher.total_weight_without_column(1), mu(5));
}

TEST(MaxWeightMatcher, WithoutColumnReroutesDisplacedRow) {
  WeightMatrix g(1, 2);
  g.set(0, 0, mu(5));
  g.set(0, 1, mu(2));
  MaxWeightMatcher matcher(g);
  EXPECT_EQ(matcher.total_weight_without_column(0), mu(2));
}

TEST(MaxWeightMatcher, WithoutColumnOutOfRange) {
  WeightMatrix g(1, 1);
  g.set(0, 0, mu(1));
  MaxWeightMatcher matcher(g);
  EXPECT_THROW(std::ignore = matcher.total_weight_without_column(1),
               ContractViolation);
  EXPECT_THROW(std::ignore = matcher.total_weight_without_column(-1),
               ContractViolation);
}

// ------------------------------------------------- randomized property tests

/// Parameter: (rows, cols, weight range, edge density percent).
using RandomGraphParam = std::tuple<int, int, std::int64_t, int>;

class HungarianVsOracle : public ::testing::TestWithParam<RandomGraphParam> {
 protected:
  static WeightMatrix random_graph(Rng& rng, const RandomGraphParam& param) {
    const auto [rows, cols, range, density] = param;
    WeightMatrix g(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (rng.uniform_int(0, 99) < density) {
          g.set(r, c, Money::from_units(rng.uniform_int(-range, range)));
        }
      }
    }
    return g;
  }
};

TEST_P(HungarianVsOracle, TotalWeightMatchesBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const WeightMatrix g = random_graph(rng, GetParam());
    MaxWeightMatcher matcher(g);
    const Matching& fast = matcher.solve();
    const Matching slow = brute_force_max_weight(g);
    validate_matching(g, fast);
    ASSERT_EQ(fast.total_weight, slow.total_weight) << "trial " << trial;
    // The fast matching's recomputed weight must equal its claimed total.
    ASSERT_EQ(recompute_weight(g, fast), fast.total_weight);
  }
}

TEST_P(HungarianVsOracle, IncrementalRemovalMatchesFullResolve) {
  Rng rng(4048);
  for (int trial = 0; trial < 40; ++trial) {
    const WeightMatrix g = random_graph(rng, GetParam());
    MaxWeightMatcher matcher(g);
    matcher.solve();
    for (int c = 0; c < g.cols(); ++c) {
      MaxWeightMatcher fresh(g.without_column(c));
      ASSERT_EQ(matcher.total_weight_without_column(c), fresh.total_weight())
          << "trial " << trial << " column " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HungarianVsOracle,
    ::testing::Values(RandomGraphParam{3, 3, 20, 100},
                      RandomGraphParam{4, 6, 20, 70},
                      RandomGraphParam{6, 4, 15, 70},
                      RandomGraphParam{5, 5, 5, 50},   // many weight ties
                      RandomGraphParam{7, 9, 30, 40},  // sparse
                      RandomGraphParam{1, 8, 10, 60},
                      RandomGraphParam{8, 1, 10, 60},
                      RandomGraphParam{6, 6, 1, 80}));  // heavy tie pressure

}  // namespace
}  // namespace mcs::matching
