// Tests for the analysis layer: metric derivations (Definition 11), the
// deviation enumerator, the competitive-ratio machinery including the
// adversarial tight family of Theorem 6, and report plumbing.
#include "analysis/competitive.hpp"

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "analysis/monotonicity.hpp"
#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "model/paper_examples.hpp"

namespace mcs::analysis {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ----------------------------------------------------------------- metrics

TEST(Metrics, Fig4OnlineRoundMetricsHandComputed) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const RoundMetrics m = compute_metrics(s, bids, outcome);

  EXPECT_EQ(m.social_welfare, mu(69));       // 5*20 - 31
  EXPECT_EQ(m.claimed_welfare, mu(69));      // truthful bids
  EXPECT_EQ(m.total_payment, mu(50));        // 11+9+8+11+11
  EXPECT_EQ(m.total_true_cost, mu(31));
  EXPECT_EQ(m.overpayment, mu(19));
  EXPECT_DOUBLE_EQ(m.overpayment_ratio, 19.0 / 31.0);
  EXPECT_EQ(m.tasks_total, 5);
  EXPECT_EQ(m.tasks_allocated, 5);
  EXPECT_DOUBLE_EQ(m.completion_rate, 1.0);
  EXPECT_EQ(m.platform_utility, mu(50));     // 100 - 50
}

TEST(Metrics, Fig4OfflineOverpaymentExceedsOnline) {
  // The trend the paper reports in Figs. 9-11, already visible on the
  // worked example: VCG pays 45 on true costs 26 (0.73) vs the online
  // mechanism's 50 on 31 (0.61).
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const RoundMetrics offline = compute_metrics(
      s, bids, auction::OfflineVcgMechanism{}.run(s, bids));
  const RoundMetrics online = compute_metrics(
      s, bids, auction::OnlineGreedyMechanism{}.run(s, bids));
  EXPECT_DOUBLE_EQ(offline.overpayment_ratio, 19.0 / 26.0);
  EXPECT_GT(offline.overpayment_ratio, online.overpayment_ratio);
  EXPECT_GT(offline.social_welfare, online.social_welfare);
}

TEST(Metrics, EmptyRoundIsAllZeros) {
  const model::Scenario s = model::ScenarioBuilder(3).value(10).build();
  const model::BidProfile bids;
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const RoundMetrics m = compute_metrics(s, bids, outcome);
  EXPECT_EQ(m.social_welfare, Money{});
  EXPECT_DOUBLE_EQ(m.overpayment_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.completion_rate, 1.0);  // vacuous
  EXPECT_EQ(m.platform_utility, Money{});
}

TEST(Metrics, DescribeMentionsAllFigures) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const RoundMetrics m = compute_metrics(
      s, bids, auction::OnlineGreedyMechanism{}.run(s, bids));
  const std::string text = describe(m);
  EXPECT_NE(text.find("social welfare"), std::string::npos);
  EXPECT_NE(text.find("overpayment"), std::string::npos);
  EXPECT_NE(text.find("5 / 5"), std::string::npos);
}

// ----------------------------------------------------- deviation enumerator

TEST(Deviations, AllEnumeratedBidsAreLegalAndDistinctFromTruthful) {
  const model::TrueProfile profile{SlotInterval::of(2, 5), mu(10)};
  const std::vector<model::Bid> deviations =
      enumerate_deviations(profile, DeviationOptions{});
  EXPECT_GT(deviations.size(), 50u);
  const model::Bid truthful = model::truthful_bid(profile);
  for (const model::Bid& bid : deviations) {
    EXPECT_TRUE(model::is_legal_report(profile, bid));
    EXPECT_NE(bid, truthful);
  }
}

TEST(Deviations, SingleSlotWindowOnlyVariesCost) {
  const model::TrueProfile profile{SlotInterval::of(3, 3), mu(4)};
  for (const model::Bid& bid :
       enumerate_deviations(profile, DeviationOptions{})) {
    EXPECT_EQ(bid.window, SlotInterval::of(3, 3));
  }
}

TEST(Deviations, GridRespectsConfiguredLimits) {
  DeviationOptions options;
  options.max_arrival_delay = 1;
  options.max_departure_advance = 0;
  options.cost_factors = {1.0};
  options.cost_offsets_units = {};
  const model::TrueProfile profile{SlotInterval::of(2, 5), mu(10)};
  const std::vector<model::Bid> deviations =
      enumerate_deviations(profile, options);
  // Only the delayed window with the truthful cost remains.
  ASSERT_EQ(deviations.size(), 1u);
  EXPECT_EQ(deviations[0].window, SlotInterval::of(3, 5));
  EXPECT_EQ(deviations[0].claimed_cost, mu(10));
}

TEST(Reports, TruthfulnessSummaryAndMaxGain) {
  TruthfulnessReport report;
  report.phones_audited = 2;
  report.deviations_tested = 10;
  EXPECT_TRUE(report.truthful());
  EXPECT_EQ(report.max_gain(), Money{});
  EXPECT_NE(report.summary().find("truthful"), std::string::npos);

  report.violations.push_back(DeviationViolation{
      PhoneId{0}, model::Bid{SlotInterval::of(1, 1), mu(1)}, mu(1), mu(5)});
  report.violations.push_back(DeviationViolation{
      PhoneId{1}, model::Bid{SlotInterval::of(1, 1), mu(1)}, mu(0), mu(2)});
  EXPECT_FALSE(report.truthful());
  EXPECT_EQ(report.max_gain(), mu(4));
  EXPECT_NE(report.summary().find("2 profitable"), std::string::npos);
}

TEST(Reports, RationalitySummary) {
  RationalityReport report;
  report.phones_checked = 3;
  EXPECT_TRUE(report.individually_rational());
  EXPECT_NE(report.summary().find("nonnegative"), std::string::npos);
  report.violations.push_back(
      RationalityViolation{PhoneId{0}, mu(-1), true});
  EXPECT_FALSE(report.individually_rational());
}

TEST(Reports, MonotonicitySummary) {
  MonotonicityReport report;
  report.winners_checked = 4;
  report.improvements_tested = 40;
  EXPECT_TRUE(report.monotone());
  EXPECT_NE(report.summary().find("monotone"), std::string::npos);
}

// -------------------------------------------------------- competitive ratio

TEST(Competitive, Fig4RatioIsSixtyNineOverSeventyFour) {
  const model::Scenario s = model::fig4_scenario();
  const CompetitiveResult result =
      competitive_ratio(s, s.truthful_bids());
  EXPECT_EQ(result.online_welfare, mu(69));
  EXPECT_EQ(result.offline_welfare, mu(74));
  EXPECT_DOUBLE_EQ(result.ratio, 69.0 / 74.0);
}

TEST(Competitive, EmptyInstanceRatioIsOne) {
  const model::Scenario s = model::ScenarioBuilder(2).value(10).build();
  const CompetitiveResult result = competitive_ratio(s, {});
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
}

TEST(Competitive, TightFamilyMatchesClosedForm) {
  for (const std::int64_t nu : {10LL, 100LL, 1000LL}) {
    const model::Scenario s = tight_competitive_scenario(3, nu);
    const CompetitiveResult result =
        competitive_ratio(s, s.truthful_bids());
    const double nu_d = static_cast<double>(nu);
    EXPECT_DOUBLE_EQ(result.ratio, (nu_d - 1.0) / (2.0 * nu_d - 3.0))
        << "nu=" << nu;
    EXPECT_GE(result.ratio, 0.5);  // Theorem 6 bound, approached from above
  }
}

TEST(Competitive, TightFamilyApproachesOneHalf) {
  const model::Scenario s = tight_competitive_scenario(2, 100000);
  const CompetitiveResult result = competitive_ratio(s, s.truthful_bids());
  EXPECT_NEAR(result.ratio, 0.5, 1e-4);
  EXPECT_GE(result.ratio, 0.5);
}

TEST(Competitive, StudyOverRandomWorkloadsRespectsTheorem6) {
  model::WorkloadConfig workload;
  workload.num_slots = 15;
  workload.phone_arrival_rate = 4.0;
  workload.task_arrival_rate = 2.0;
  workload.task_value = mu(50);  // > max uniform cost 49: positive weights
  const CompetitiveStudy study =
      study_competitive_ratio(workload, 30, /*base_seed=*/7);
  EXPECT_EQ(study.instances, 30u);
  EXPECT_EQ(study.below_half, 0u) << "Theorem 6 violated";
  EXPECT_GE(study.min_ratio(), 0.5);
  EXPECT_LE(study.mean_ratio(), 1.0 + 1e-12);
}

TEST(Competitive, GadgetBuilderValidatesArguments) {
  EXPECT_THROW(tight_competitive_scenario(0, 10), ContractViolation);
  EXPECT_THROW(tight_competitive_scenario(2, 2), ContractViolation);
}

}  // namespace
}  // namespace mcs::analysis
