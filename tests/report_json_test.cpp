// Tests for the JSON round report: structural completeness, exact money
// rendering, allocation/phone entries, and null handling for unserved
// tasks.
#include "analysis/report_json.hpp"

#include <gtest/gtest.h>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "model/paper_examples.hpp"

namespace mcs::analysis {
namespace {

TEST(ReportJson, Fig4OnlineReportContainsTheHeadlineNumbers) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const std::string json =
      round_report_json(s, bids, outcome, "online-greedy");

  EXPECT_NE(json.find(R"("mechanism":"online-greedy")"), std::string::npos);
  EXPECT_NE(json.find(R"("slots":5)"), std::string::npos);
  EXPECT_NE(json.find(R"("phones":7)"), std::string::npos);
  EXPECT_NE(json.find(R"("social_welfare":"69")"), std::string::npos);
  EXPECT_NE(json.find(R"("total_payment":"50")"), std::string::npos);
  // The paper's worked payment: phone 0 paid 9.
  EXPECT_NE(json.find(R"("id":0,"window":[2,5],"claimed_cost":"3","winner":true,"payment":"9")"),
            std::string::npos);
  // Exactly one line, ending in newline (stream-friendly).
  EXPECT_EQ(json.find('\n'), json.size() - 1);
}

TEST(ReportJson, UnservedTaskHasNullPhone) {
  const model::Scenario s =
      model::ScenarioBuilder(2).value(10).phone(1, 1, 3).tasks(2, 1).build();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const std::string json = round_report_json(s, bids, outcome, "x");
  EXPECT_NE(json.find(R"("phone":null)"), std::string::npos);
  EXPECT_NE(json.find(R"("tasks_allocated":0)"), std::string::npos);
}

TEST(ReportJson, FractionalMoneyStaysExact) {
  model::Scenario s =
      model::ScenarioBuilder(1).value(10).phone(1, 1, 4).task(1).build();
  s.phones[0].cost = Money::from_micros(4'250'000);  // 4.25
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OfflineVcgMechanism{}.run(s, bids);
  const std::string json = round_report_json(s, bids, outcome, "offline-vcg");
  EXPECT_NE(json.find(R"("claimed_cost":"4.25")"), std::string::npos);
}

TEST(ReportJson, WeightedTaskValuesAppearPerTask) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .valued_task(1, 35)
                                .phone(1, 1, 4)
                                .build();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism{}.run(s, bids);
  const std::string json = round_report_json(s, bids, outcome, "x");
  EXPECT_NE(json.find(R"("value":"35")"), std::string::npos);
  EXPECT_NE(json.find(R"("task_value":"10")"), std::string::npos);
}

TEST(ReportJson, BalancedBracesAndBrackets) {
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const auction::Outcome outcome =
      auction::OfflineVcgMechanism{}.run(s, bids);
  const std::string json = round_report_json(s, bids, outcome, "offline-vcg");
  // No string values in this document contain braces, so plain counting is
  // a valid well-formedness smoke check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

}  // namespace
}  // namespace mcs::analysis
