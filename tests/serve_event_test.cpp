// Wire-format tests for the mcs.serve.v1 JSONL event stream: golden
// encodings, lossless encode/decode round-trips (Money travels as exact
// decimal strings), and strict rejection of malformed or out-of-domain
// lines -- the stream is untrusted input.
#include "serve/event.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "model/bid.hpp"

namespace mcs::serve {
namespace {

model::Bid bid(int from, int to, double cost) {
  return model::Bid{SlotInterval::of(from, to), Money::from_double(cost)};
}

// ----------------------------------------------------------- golden lines

TEST(ServeWire, GoldenEncodings) {
  EXPECT_EQ(encode_serve_event(round_open(0, 12, Money::from_units(30))),
            R"({"ev":"round_open","round":0,"slots":12,"value":"30"})");
  EXPECT_EQ(encode_serve_event(task_arrived(0, Slot{1}, TaskId{0})),
            R"({"ev":"task_arrived","round":0,"slot":1,"task":0})");
  EXPECT_EQ(
      encode_serve_event(task_arrived(2, Slot{3}, TaskId{4},
                                      Money::from_double(2.5))),
      R"({"ev":"task_arrived","round":2,"slot":3,"task":4,"value":"2.5"})");
  EXPECT_EQ(
      encode_serve_event(bid_submitted(0, PhoneId{3}, bid(1, 4, 7.5))),
      R"({"ev":"bid_submitted","round":0,"agent":3,"from":1,"to":4,"cost":"7.5"})");
  EXPECT_EQ(encode_serve_event(slot_tick(0, Slot{1})),
            R"({"ev":"slot_tick","round":0,"slot":1})");
  EXPECT_EQ(encode_serve_event(round_close(7)),
            R"({"ev":"round_close","round":7})");
}

TEST(ServeWire, HeaderLine) {
  std::ostringstream os;
  write_stream_header(os);
  EXPECT_EQ(os.str(), "{\"schema\":\"mcs.serve.v1\"}\n");
  // Decoding the header yields "no event" rather than an error.
  EXPECT_EQ(decode_serve_line(R"({"schema":"mcs.serve.v1"})"), std::nullopt);
}

// ------------------------------------------------------------- round trip

TEST(ServeWire, EncodeDecodeRoundTripsEveryKind) {
  const std::vector<ServeEvent> events = {
      round_open(5, 50, Money::from_double(12.25)),
      task_arrived(5, Slot{2}, TaskId{1}),
      task_arrived(5, Slot{2}, TaskId{2}, Money::from_double(0.75)),
      bid_submitted(5, PhoneId{0}, bid(2, 9, 3.141592)),
      slot_tick(5, Slot{2}),
      round_close(5),
  };
  for (const ServeEvent& event : events) {
    const auto decoded = decode_serve_line(encode_serve_event(event));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, event) << encode_serve_event(event);
    // And the re-encoding is byte-identical (replay determinism).
    EXPECT_EQ(encode_serve_event(*decoded), encode_serve_event(event));
  }
}

TEST(ServeWire, MoneyTravelsExactly) {
  // Sub-cent micro amounts survive: no doubles on the wire.
  const Money cost = Money::from_micros(1234567);
  const ServeEvent event =
      bid_submitted(0, PhoneId{1}, model::Bid{SlotInterval::of(1, 2), cost});
  const auto decoded = decode_serve_line(encode_serve_event(event));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->claimed_cost.micros(), cost.micros());
  EXPECT_EQ(bid_of(*decoded).claimed_cost, cost);
}

TEST(ServeWire, WriteEventStreamStartsWithHeader) {
  std::ostringstream os;
  write_stream_header(os);
  write_serve_event(os, round_open(0, 3, Money::from_units(10)));
  write_serve_event(os, round_close(0));
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(decode_serve_line(line), std::nullopt);  // header
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(decode_serve_line(line), round_open(0, 3, Money::from_units(10)));
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(decode_serve_line(line), round_close(0));
  EXPECT_FALSE(std::getline(is, line));
}

// -------------------------------------------------------- malformed input

TEST(ServeWire, RejectsMalformedLines) {
  const std::vector<std::string> bad = {
      // not JSON at all
      "round_open 0",
      // truncated JSON
      R"({"ev":"round_open","round":0,)",
      // unknown discriminator
      R"({"ev":"round_reopen","round":0})",
      // missing discriminator
      R"({"round":0,"slots":3,"value":"1"})",
      // missing required field (round)
      R"({"ev":"slot_tick","slot":1})",
      // mistyped field (string where integer expected)
      R"({"ev":"slot_tick","round":"zero","slot":1})",
      // fractional integer field
      R"({"ev":"slot_tick","round":0,"slot":1.5})",
      // malformed money string
      R"({"ev":"round_open","round":0,"slots":3,"value":"ten"})",
      // money as JSON number instead of exact string
      R"({"ev":"round_open","round":0,"slots":3,"value":10})",
      // out of domain: non-positive horizon
      R"({"ev":"round_open","round":0,"slots":0,"value":"1"})",
      // out of domain: negative ids
      R"({"ev":"task_arrived","round":0,"slot":1,"task":-1})",
      R"({"ev":"bid_submitted","round":0,"agent":-2,"from":1,"to":2,"cost":"1"})",
      // out of domain: inverted bid window
      R"({"ev":"bid_submitted","round":0,"agent":0,"from":4,"to":2,"cost":"1"})",
      // wrong schema header
      R"({"schema":"mcs.serve.v2"})",
      // int32 overflow: 2^32+1 would silently truncate to 1 if narrowed
      R"({"ev":"round_open","round":0,"slots":4294967297,"value":"1"})",
      R"({"ev":"slot_tick","round":0,"slot":4294967297})",
      R"({"ev":"task_arrived","round":0,"slot":1,"task":4294967297})",
      R"({"ev":"bid_submitted","round":0,"agent":4294967297,"from":1,"to":2,"cost":"1"})",
      R"({"ev":"bid_submitted","round":0,"agent":0,"from":1,"to":4294967297,"cost":"1"})",
      // round id beyond exact-double range (2^53): both codecs reject
      R"({"ev":"round_close","round":9007199254740992})",
      // negative cost
      R"({"ev":"bid_submitted","round":0,"agent":0,"from":1,"to":2,"cost":"-1"})",
      // Money beyond the max() envelope (fraction pushes past the cap)
      R"({"ev":"round_open","round":0,"slots":3,"value":"2305843009213.999999"})",
      // duplicate field (the JSON layer rejects; binary frames must too)
      R"({"ev":"slot_tick","round":0,"round":1,"slot":1})",
      // truncated mid-string
      R"({"ev":"slot_tick","round":0,"slot)",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)decode_serve_line(line), InvalidArgumentError) << line;
  }
}

TEST(ServeWire, KindNamesRoundTripThroughToString) {
  for (const ServeEventKind kind :
       {ServeEventKind::kRoundOpen, ServeEventKind::kTaskArrived,
        ServeEventKind::kBidSubmitted, ServeEventKind::kSlotTick,
        ServeEventKind::kRoundClose}) {
    EXPECT_FALSE(to_string(kind).empty());
  }
}

}  // namespace
}  // namespace mcs::serve
