// Tests for the output layer: tables, CSV, JSON, CLI flags.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/table.hpp"

namespace mcs::io {
namespace {

TEST(TextTable, AlignsColumnsToContent) {
  TextTable table({"m", "online"});
  table.add_row({"30", "201.5"});
  table.add_row({"100", "7.0"});
  const std::string out = table.to_string();
  std::istringstream is(out);
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header, "  m  online");
  EXPECT_EQ(rule, "---  ------");
  EXPECT_EQ(row1, " 30   201.5");
  EXPECT_EQ(row2, "100     7.0");
}

TEST(TextTable, RowBuilderFormatsCells) {
  TextTable table({"a", "b", "c"});
  { table.row().cell("x").cell(1.2345, 2).cell(std::int64_t{42}); }
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.to_string().find("1.23"), std::string::npos);
  EXPECT_NE(table.to_string().find("42"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(2.345, 1), "2.3");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, WriterEmitsHeaderOnce) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.set_header({"x", "y"});
  writer.write_row({"1", "2"});
  writer.write_row({"3", "4"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(Csv, WriterWithoutHeaderEmitsBareRecords) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"1", "2"});
  writer.write_row({"3"});  // no header: widths unconstrained
  EXPECT_EQ(os.str(), "1,2\n3\n");
  EXPECT_EQ(writer.rows_written(), 2u);
  // Header registration after rows is a misuse.
  EXPECT_THROW(writer.set_header({"x"}), ContractViolation);
}

TEST(Csv, WriterChecksWidthAgainstHeader) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.set_header({"x", "y"});
  EXPECT_THROW(writer.write_row({"1"}), ContractViolation);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mcs_csv_test.csv";
  write_csv_file(path, {"a", "b"}, {{"1", "two,2"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"two,2\"");
  std::remove(path.c_str());
}

TEST(Csv, FileOpenFailureThrowsIoError) {
  EXPECT_THROW(write_csv_file("/nonexistent-dir/x.csv", {"a"}, {}), IoError);
}

TEST(Json, ObjectWithAllScalarTypes) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object()
      .field("s", "text")
      .field("d", 1.5)
      .field("i", std::int64_t{-3})
      .field("b", true);
  json.key("n").null();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(), R"({"s":"text","d":1.5,"i":-3,"b":true,"n":null})");
}

TEST(Json, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object().key("rows").begin_array();
  json.begin_object().field("x", std::int64_t{1}).end_object();
  json.begin_object().field("x", std::int64_t{2}).end_object();
  json.end_array().end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(), R"({"rows":[{"x":1},{"x":2}]})");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(Json, MisuseIsRejected) {
  {
    std::ostringstream os;
    JsonWriter json(os);
    EXPECT_THROW(json.key("k"), ContractViolation);  // key outside object
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    EXPECT_THROW(json.value("v"), ContractViolation);  // value without key
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_array();
    EXPECT_THROW(json.end_object(), ContractViolation);  // mismatched end
    EXPECT_FALSE(json.complete());
  }
}

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("test");
  cli.add_int("reps", 30, "repetitions");
  cli.add_double("rate", 6.0, "rate");
  cli.add_string("csv", "", "csv path");
  cli.add_switch("verbose", "chatty");

  const char* argv[] = {"prog",       "--reps", "50",       "--rate=2.5",
                        "--verbose", "--csv",  "/tmp/x.csv"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("reps"), 50);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
  EXPECT_EQ(cli.get_string("csv"), "/tmp/x.csv");
  EXPECT_TRUE(cli.get_switch("verbose"));
}

TEST(Cli, DefaultsWhenAbsent) {
  CliParser cli("test");
  cli.add_int("reps", 30, "repetitions");
  cli.add_switch("verbose", "chatty");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("reps"), 30);
  EXPECT_FALSE(cli.get_switch("verbose"));
}

TEST(Cli, RejectsMalformedInput) {
  CliParser cli("test");
  cli.add_int("reps", 30, "repetitions");
  {
    const char* argv[] = {"prog", "--unknown", "1"};
    EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
  }
  {
    const char* argv[] = {"prog", "--reps", "abc"};
    EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
  }
  {
    const char* argv[] = {"prog", "--reps"};
    EXPECT_THROW(cli.parse(2, argv), InvalidArgumentError);
  }
  {
    const char* argv[] = {"prog", "positional"};
    EXPECT_THROW(cli.parse(2, argv), InvalidArgumentError);
  }
}

TEST(Cli, HelpReturnsFalseAndPrintsUsage) {
  CliParser cli("my summary");
  cli.add_int("reps", 30, "repetitions");
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("my summary"), std::string::npos);
  EXPECT_NE(out.find("--reps"), std::string::npos);
}

}  // namespace
}  // namespace mcs::io
