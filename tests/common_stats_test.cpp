// Tests for the streaming statistics used to aggregate experiment runs.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mcs {
namespace {

TEST(RunningStats, EmptyStateAndGuards) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_THROW(std::ignore = stats.mean(), ContractViolation);
  EXPECT_THROW(std::ignore = stats.min(), ContractViolation);
  EXPECT_THROW(std::ignore = stats.max(), ContractViolation);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats stats;
  stats.add(7.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 7.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.5, -2.0, 8.25, 0.0, 4.5};
  RunningStats stats;
  double sum = 0.0;
  for (const double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double variance = ss / static_cast<double>(xs.size() - 1);

  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), variance, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.25);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(4);
  RunningStats sequential;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-5.0, 5.0);
    sequential.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(6);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real(0.0, 1.0);
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  // ~1.96 * sd/sqrt(n) for uniform: sd ~ 0.2887.
  EXPECT_NEAR(large.ci95_half_width(), 1.96 * 0.2887 / 100.0, 0.001);
}

TEST(Summary, QuantilesOnKnownData) {
  Summary summary;
  for (int i = 10; i >= 1; --i) summary.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(summary.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(summary.median(), 5.5);
  EXPECT_DOUBLE_EQ(summary.quantile(0.25), 3.25);
}

TEST(Summary, SingleSampleQuantiles) {
  Summary summary;
  summary.add(3.0);
  EXPECT_DOUBLE_EQ(summary.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(summary.quantile(0.7), 3.0);
  EXPECT_DOUBLE_EQ(summary.quantile(1.0), 3.0);
}

TEST(Summary, GuardsAndStatsPassThrough) {
  Summary summary;
  EXPECT_THROW(std::ignore = summary.quantile(0.5), ContractViolation);
  summary.add(1.0);
  EXPECT_THROW(std::ignore = summary.quantile(-0.1), ContractViolation);
  EXPECT_THROW(std::ignore = summary.quantile(1.1), ContractViolation);
  summary.add(3.0);
  EXPECT_DOUBLE_EQ(summary.stats().mean(), 2.0);
}

TEST(Summary, InterleavedAddAndQuantile) {
  Summary summary;
  summary.add(5.0);
  EXPECT_DOUBLE_EQ(summary.median(), 5.0);
  summary.add(1.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(summary.median(), 3.0);
  summary.add(9.0);
  EXPECT_DOUBLE_EQ(summary.median(), 5.0);
}

}  // namespace
}  // namespace mcs
