// Tests for the per-round tracing primitives: deterministic trace ids,
// bounded span timelines, the pinned-priority TraceRing (retained traces
// survive wraparound, healthy context is evicted first), sketch
// exemplars, and the multi-lane Chrome Trace Event exporter.
#include "obs/round_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace mcs::obs {
namespace {

// ------------------------------------------------------------- trace ids

TEST(RoundTraceId, DeterministicAndDistinct) {
  EXPECT_EQ(trace_id_of(7), trace_id_of(7));
  EXPECT_NE(trace_id_of(7), trace_id_of(8));
  EXPECT_NE(trace_id_of(0), 0u) << "round 0 must still get a non-zero id";
}

TEST(RoundTraceId, FormatsAsFixedWidthLowercaseHex) {
  EXPECT_EQ(format_trace_id(0), "0000000000000000");
  EXPECT_EQ(format_trace_id(0xabcULL), "0000000000000abc");
  EXPECT_EQ(format_trace_id(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
  EXPECT_EQ(format_trace_id(trace_id_of(3)).size(), 16u);
}

TEST(RoundTracePhase, NamesRoundTrip) {
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    const auto phase = static_cast<TracePhase>(p);
    TracePhase back{};
    ASSERT_TRUE(trace_phase_from_string(to_string(phase), back));
    EXPECT_EQ(back, phase);
  }
  TracePhase ignored{};
  EXPECT_FALSE(trace_phase_from_string("warp_drive", ignored));
}

// ------------------------------------------------------------- span cap

TEST(RoundTrace, SpanCapDropsAndCounts) {
  RoundTrace trace;
  trace.add_span(TracePhase::kQueueWait, -1, 0, 10, 2);
  trace.add_span(TracePhase::kSlotTick, 1, 10, 20, 2);
  trace.add_span(TracePhase::kSlotTick, 2, 20, 30, 2);
  trace.add_span(TracePhase::kPayment, -1, 30, 40, 2);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans_dropped, 2u);
  EXPECT_EQ(trace.spans[1].slot, 1);
  EXPECT_EQ(trace.spans[1].duration_ns(), 10u);
}

// ------------------------------------------------------------ trace ring

RoundTrace trace_of_round(std::int64_t round) {
  RoundTrace trace;
  trace.round = round;
  trace.trace_id = trace_id_of(round);
  return trace;
}

std::vector<std::int64_t> rounds_in(const TraceRing& ring) {
  std::vector<std::int64_t> rounds;
  for (const TraceRing::Entry& entry : ring.entries()) {
    rounds.push_back(entry.trace.round);
  }
  return rounds;
}

TEST(TraceRing, EvictsOldestUnpinnedFirst) {
  TraceRing ring(2);
  EXPECT_FALSE(ring.push(trace_of_round(0), false).evicted);
  EXPECT_FALSE(ring.push(trace_of_round(1), true).evicted);

  // Full: the unpinned round 0 is the victim, the pinned round 1 stays.
  const TraceRing::PushResult third = ring.push(trace_of_round(2), false);
  EXPECT_TRUE(third.evicted);
  EXPECT_FALSE(third.evicted_pinned);
  EXPECT_EQ(rounds_in(ring), (std::vector<std::int64_t>{2, 1}));

  // Again: round 2 (unpinned) goes, not the older pinned round 1.
  const TraceRing::PushResult fourth = ring.push(trace_of_round(3), true);
  EXPECT_TRUE(fourth.evicted);
  EXPECT_FALSE(fourth.evicted_pinned);
  EXPECT_EQ(rounds_in(ring), (std::vector<std::int64_t>{3, 1}));
}

TEST(TraceRing, AllPinnedFallsBackToOldestPinned) {
  TraceRing ring(2);
  ring.push(trace_of_round(0), true);
  ring.push(trace_of_round(1), true);
  const TraceRing::PushResult push = ring.push(trace_of_round(2), true);
  EXPECT_TRUE(push.evicted);
  EXPECT_TRUE(push.evicted_pinned) << "losing a retained trace is reported";
  EXPECT_EQ(rounds_in(ring), (std::vector<std::int64_t>{2, 1}));
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(trace_of_round(0), false);
  EXPECT_TRUE(ring.push(trace_of_round(1), true).evicted);
  EXPECT_EQ(rounds_in(ring), (std::vector<std::int64_t>{1}));
}

// ------------------------------------------------------------- exemplars

TEST(SketchExemplars, KeepsWorstRoundPerBucketAboveThreshold) {
  SketchExemplars exemplars(100);
  EXPECT_EQ(exemplars.threshold_ns(), 100u);

  exemplars.offer(50, trace_id_of(1), 1);  // below threshold: ignored
  EXPECT_TRUE(exemplars.snapshot().empty());

  // 145 and 150 share a sub-bucket; the worst (150) wins it.
  exemplars.offer(145, trace_id_of(2), 2);
  exemplars.offer(150, trace_id_of(3), 3);
  exemplars.offer(148, trace_id_of(4), 4);  // not worse: ignored
  // A much slower round occupies a higher bucket.
  exemplars.offer(5000, trace_id_of(5), 5);

  const std::vector<SketchExemplars::Exemplar> snapshot =
      exemplars.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].value_ns, 150u);
  EXPECT_EQ(snapshot[0].round, 3);
  EXPECT_EQ(snapshot[0].trace_id, trace_id_of(3));
  EXPECT_GE(snapshot[0].bucket_le_ns, 150u);
  EXPECT_EQ(snapshot[1].value_ns, 5000u);
  EXPECT_EQ(snapshot[1].round, 5);
  EXPECT_LT(snapshot[0].bucket_le_ns, snapshot[1].bucket_le_ns)
      << "snapshot is in ascending bucket order";
}

// ------------------------------------------- multi-lane Chrome exporter

TEST(ChromeTraceEvents, GoldenMultiLaneOutputWithFlows) {
  const std::vector<ChromeLane> lanes = {{1, 1, "producer"},
                                         {1, 2, "shard 0"}};
  std::vector<ChromeEvent> events;
  ChromeEvent queue;
  queue.name = "queue_wait";
  queue.tid = 1;
  queue.ts_us = 10;
  queue.dur_us = 5;
  queue.flow_out = 7;
  events.push_back(queue);
  ChromeEvent round;
  round.name = "round 7";
  round.tid = 2;
  round.ts_us = 15;
  round.dur_us = 20;
  round.flow_in = 7;
  events.push_back(round);

  std::ostringstream os;
  write_chrome_trace_events(os, lanes, events, {{"schema", "mcs.trace.v1"}});
  EXPECT_EQ(
      os.str(),
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"mcs\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"producer\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"shard 0\"}},"
      "{\"name\":\"queue_wait\",\"cat\":\"mcs\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":5,\"pid\":1,\"tid\":1},"
      "{\"name\":\"round\",\"cat\":\"mcs\",\"ph\":\"s\",\"id\":7,\"ts\":15,"
      "\"pid\":1,\"tid\":1},"
      "{\"name\":\"round 7\",\"cat\":\"mcs\",\"ph\":\"X\",\"ts\":15,"
      "\"dur\":20,\"pid\":1,\"tid\":2},"
      "{\"name\":\"round\",\"cat\":\"mcs\",\"ph\":\"f\",\"bp\":\"e\","
      "\"id\":7,\"ts\":15,\"pid\":1,\"tid\":2}"
      "],\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"schema\":\"mcs.trace.v1\"}}\n");
}

TEST(ChromeTraceEvents, NoFlowsWhenIdsAreNegative) {
  ChromeEvent event;
  event.name = "payment";
  std::ostringstream os;
  write_chrome_trace_events(os, {}, {event});
  const std::string text = os.str();
  EXPECT_EQ(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"payment\""), std::string::npos);
}

}  // namespace
}  // namespace mcs::obs
