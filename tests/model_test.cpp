// Tests for the model layer: bids and legality, scenarios and their
// validation, the reconstructed paper examples, and the misreport
// strategies.
#include "model/scenario.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/strategy.hpp"

namespace mcs::model {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ----------------------------------------------------------------- bids

TEST(Bid, TruthfulBidCopiesProfile) {
  const TrueProfile profile{SlotInterval::of(2, 5), mu(3)};
  const Bid bid = truthful_bid(profile);
  EXPECT_EQ(bid.window, profile.active);
  EXPECT_EQ(bid.claimed_cost, profile.cost);
}

TEST(Bid, LegalityEnforcesNoEarlyArrivalNoLateDeparture) {
  const TrueProfile profile{SlotInterval::of(2, 5), mu(3)};
  EXPECT_TRUE(is_legal_report(profile, truthful_bid(profile)));
  EXPECT_TRUE(is_legal_report(profile, Bid{SlotInterval::of(3, 4), mu(100)}));
  EXPECT_TRUE(is_legal_report(profile, Bid{SlotInterval::of(2, 5), Money{}}));
  // Early arrival.
  EXPECT_FALSE(is_legal_report(profile, Bid{SlotInterval::of(1, 5), mu(3)}));
  // Late departure.
  EXPECT_FALSE(is_legal_report(profile, Bid{SlotInterval::of(2, 6), mu(3)}));
  // Negative cost is malformed.
  EXPECT_FALSE(is_legal_report(profile, Bid{SlotInterval::of(2, 5), mu(-1)}));
}

// ------------------------------------------------------------- scenarios

TEST(Scenario, BuilderProducesValidScenario) {
  const Scenario s = ScenarioBuilder(5)
                         .value(20)
                         .phone(1, 3, 4)
                         .phone(2, 5, 7)
                         .task(1)
                         .tasks(3, 2)
                         .build();
  EXPECT_EQ(s.num_slots, 5);
  EXPECT_EQ(s.task_value, mu(20));
  EXPECT_EQ(s.phone_count(), 2);
  EXPECT_EQ(s.task_count(), 3);
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, BuilderSortsTasksBySlot) {
  const Scenario s =
      ScenarioBuilder(5).value(1).task(4).task(1).task(2).build();
  EXPECT_EQ(s.tasks[0].slot, Slot{1});
  EXPECT_EQ(s.tasks[1].slot, Slot{2});
  EXPECT_EQ(s.tasks[2].slot, Slot{4});
  EXPECT_EQ(s.tasks[0].id, TaskId{0});
  EXPECT_EQ(s.tasks[2].id, TaskId{2});
}

TEST(Scenario, TasksPerSlot) {
  const Scenario s =
      ScenarioBuilder(4).value(1).tasks(2, 3).task(4).build();
  const std::vector<int> r = s.tasks_per_slot();
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[2], 3);
  EXPECT_EQ(r[3], 0);
  EXPECT_EQ(r[4], 1);
}

TEST(Scenario, TruthfulBidsMatchProfiles) {
  const Scenario s = fig4_scenario();
  const BidProfile bids = s.truthful_bids();
  ASSERT_EQ(bids.size(), 7u);
  for (int i = 0; i < s.phone_count(); ++i) {
    EXPECT_EQ(bids[static_cast<std::size_t>(i)],
              truthful_bid(s.phone(PhoneId{i})));
  }
}

TEST(Scenario, ValidationRejectsMalformedInstances) {
  {
    Scenario s;
    s.num_slots = 0;
    EXPECT_THROW(s.validate(), InvalidScenarioError);
  }
  {
    Scenario s = ScenarioBuilder(3).value(1).task(1).build();
    s.tasks[0].slot = Slot{9};  // outside round
    EXPECT_THROW(s.validate(), InvalidScenarioError);
  }
  {
    Scenario s = ScenarioBuilder(3).value(1).task(2).task(2).build();
    std::swap(s.tasks[0].id, s.tasks[1].id);  // ids not dense-in-order
    EXPECT_THROW(s.validate(), InvalidScenarioError);
  }
  {
    Scenario s = ScenarioBuilder(3).value(1).phone(1, 3, 5).build();
    s.phones[0].active = SlotInterval::of(1, 4);  // beyond round
    EXPECT_THROW(s.validate(), InvalidScenarioError);
  }
  {
    Scenario s = ScenarioBuilder(3).value(1).phone(1, 3, 5).build();
    s.phones[0].cost = mu(-2);
    EXPECT_THROW(s.validate(), InvalidScenarioError);
  }
}

TEST(Scenario, WithBidReplacesOnlyTarget) {
  const Scenario s = fig4_scenario();
  const BidProfile bids = s.truthful_bids();
  const Bid replacement{SlotInterval::of(3, 5), mu(99)};
  const BidProfile changed = with_bid(bids, PhoneId{2}, replacement);
  EXPECT_EQ(changed[2], replacement);
  EXPECT_EQ(changed[0], bids[0]);
  EXPECT_EQ(changed.size(), bids.size());
}

TEST(Scenario, ValidateBidsCatchesMalformedProfiles) {
  const Scenario s = fig4_scenario();
  BidProfile bids = s.truthful_bids();
  bids.pop_back();
  EXPECT_THROW(validate_bids(s, bids), InvalidScenarioError);

  BidProfile out_of_round = s.truthful_bids();
  out_of_round[0].window = SlotInterval::of(1, 6);  // round has 5 slots
  EXPECT_THROW(validate_bids(s, out_of_round), InvalidScenarioError);
}

TEST(Scenario, DescribeMentionsKeyFacts) {
  const std::string text = describe(fig4_scenario());
  EXPECT_NE(text.find("m=5"), std::string::npos);
  EXPECT_NE(text.find("7 phones"), std::string::npos);
  EXPECT_NE(text.find("5 tasks"), std::string::npos);
}

// --------------------------------------------------------- paper examples

TEST(PaperExamples, Fig4MatchesReconstruction) {
  const Scenario s = fig4_scenario();
  ASSERT_EQ(s.phone_count(), 7);
  ASSERT_EQ(s.task_count(), 5);
  EXPECT_EQ(s.num_slots, 5);
  // One task per slot.
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(s.tasks[static_cast<std::size_t>(t)].slot, Slot{t + 1});
  }
  // The prose-pinned row: Smartphone 2 = [1,4] cost 5.
  EXPECT_EQ(s.phone(PhoneId{1}).active, SlotInterval::of(1, 4));
  EXPECT_EQ(s.phone(PhoneId{1}).cost, mu(5));
  // Phone 1 (paper's Smartphone 1): [2,5] cost 3.
  EXPECT_EQ(s.phone(PhoneId{0}).active, SlotInterval::of(2, 5));
  EXPECT_EQ(s.phone(PhoneId{0}).cost, mu(3));
}

TEST(PaperExamples, Fig5DelayedBidIsLegalForPhone1) {
  const Scenario s = fig4_scenario();
  const Bid delayed = fig5_delayed_bid_phone1();
  EXPECT_EQ(delayed.window, SlotInterval::of(4, 5));
  EXPECT_TRUE(is_legal_report(s.phone(PhoneId{0}), delayed));
}

TEST(PaperExamples, Fig3ShapeMatchesProse) {
  const Scenario s = fig3_scenario();
  EXPECT_EQ(s.num_slots, 2);
  EXPECT_EQ(s.task_count(), 5);  // 2 in slot 1, 3 in slot 2
  const std::vector<int> r = s.tasks_per_slot();
  EXPECT_EQ(r[1], 2);
  EXPECT_EQ(r[2], 3);
  // Smartphone 1 arrives in the first slot.
  EXPECT_EQ(s.phone(PhoneId{0}).active.begin(), Slot{1});
}

// ------------------------------------------------------------- strategies

TEST(Strategies, TruthfulReportsProfile) {
  Rng rng(1);
  const TrueProfile profile{SlotInterval::of(2, 5), mu(3)};
  EXPECT_EQ(TruthfulStrategy{}.report(profile, rng), truthful_bid(profile));
}

TEST(Strategies, CostMarkupScalesCost) {
  Rng rng(1);
  const TrueProfile profile{SlotInterval::of(2, 5), mu(4)};
  const Bid bid = CostMarkupStrategy(1.5).report(profile, rng);
  EXPECT_EQ(bid.claimed_cost, mu(6));
  EXPECT_EQ(bid.window, profile.active);
  EXPECT_TRUE(is_legal_report(profile, bid));
}

TEST(Strategies, CostMarkupRejectsNegativeFactor) {
  EXPECT_THROW(CostMarkupStrategy(-0.5), ContractViolation);
}

TEST(Strategies, DelayedArrivalClampsToWindow) {
  Rng rng(1);
  const TrueProfile profile{SlotInterval::of(2, 4), mu(3)};
  EXPECT_EQ(DelayedArrivalStrategy(1).report(profile, rng).window,
            SlotInterval::of(3, 4));
  // Delay beyond the window collapses to the last active slot.
  EXPECT_EQ(DelayedArrivalStrategy(10).report(profile, rng).window,
            SlotInterval::of(4, 4));
}

TEST(Strategies, EarlyDepartureClampsToWindow) {
  Rng rng(1);
  const TrueProfile profile{SlotInterval::of(2, 4), mu(3)};
  EXPECT_EQ(EarlyDepartureStrategy(1).report(profile, rng).window,
            SlotInterval::of(2, 3));
  EXPECT_EQ(EarlyDepartureStrategy(10).report(profile, rng).window,
            SlotInterval::of(2, 2));
}

TEST(Strategies, RandomMisreportAlwaysLegal) {
  Rng rng(7);
  const RandomMisreportStrategy strategy;
  const TrueProfile profile{SlotInterval::of(3, 9), mu(10)};
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(is_legal_report(profile, strategy.report(profile, rng)));
  }
}

TEST(Strategies, ApplyStrategyCoversAllPhones) {
  Rng rng(2);
  const Scenario s = fig4_scenario();
  const BidProfile bids = apply_strategy(s, CostMarkupStrategy(2.0), rng);
  ASSERT_EQ(bids.size(), 7u);
  for (int i = 0; i < s.phone_count(); ++i) {
    EXPECT_EQ(bids[static_cast<std::size_t>(i)].claimed_cost,
              s.phone(PhoneId{i}).cost * 2);
  }
}

TEST(Strategies, ApplySingleDeviationKeepsOthersTruthful) {
  Rng rng(2);
  const Scenario s = fig4_scenario();
  const BidProfile bids =
      apply_single_deviation(s, PhoneId{3}, CostMarkupStrategy(3.0), rng);
  EXPECT_EQ(bids[3].claimed_cost, s.phone(PhoneId{3}).cost * 3);
  for (int i = 0; i < s.phone_count(); ++i) {
    if (i == 3) continue;
    EXPECT_EQ(bids[static_cast<std::size_t>(i)],
              truthful_bid(s.phone(PhoneId{i})));
  }
}

TEST(Strategies, NamesAreDescriptive) {
  EXPECT_EQ(TruthfulStrategy{}.name(), "truthful");
  EXPECT_NE(CostMarkupStrategy(2.0).name().find("cost-markup"),
            std::string::npos);
  EXPECT_NE(DelayedArrivalStrategy(2).name().find("delayed"),
            std::string::npos);
  EXPECT_NE(EarlyDepartureStrategy(1).name().find("early"),
            std::string::npos);
}

}  // namespace
}  // namespace mcs::model
