// Unit tests for the economic metrics primitives: the pure ratio math
// (overpayment sigma, Jain fairness, coverage), the micro-ratio sketch
// encoding, the EconWindowAggregator delta machinery, and the sticky
// degraded-economics health classification.
#include "obs/econ_metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/money.hpp"

namespace mcs::obs {
namespace {

// ------------------------------------------------------------- ratio math

TEST(EconMath, OverpaymentRatioIsSigma) {
  EXPECT_DOUBLE_EQ(
      overpayment_ratio(Money::from_units(15), Money::from_units(10)), 0.5);
  EXPECT_DOUBLE_EQ(
      overpayment_ratio(Money::from_units(10), Money::from_units(10)), 0.0);
  EXPECT_DOUBLE_EQ(overpayment_ratio(Money::from_units(3), Money{}), 0.0)
      << "no winners, no sigma";
}

TEST(EconMath, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({Money{}, Money{}}), 1.0)
      << "all-zero payments are not uneven";
  EXPECT_DOUBLE_EQ(
      jain_fairness({Money::from_units(4), Money::from_units(4)}), 1.0);
  // One phone takes everything out of 4: index collapses to 1/4.
  EXPECT_DOUBLE_EQ(
      jain_fairness({Money::from_units(8), Money{}, Money{}, Money{}}), 0.25);
}

TEST(EconMath, CoverageRate) {
  EXPECT_DOUBLE_EQ(coverage_rate(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(coverage_rate(0, 0), 1.0) << "no tasks, full coverage";
  EXPECT_DOUBLE_EQ(coverage_rate(0, 5), 0.0);
}

TEST(EconMath, RatioSketchUnitsRoundTrip) {
  EXPECT_EQ(ratio_to_sketch_units(0.0), 0u);
  EXPECT_EQ(ratio_to_sketch_units(1.0), 1'000'000u);
  EXPECT_EQ(ratio_to_sketch_units(-0.5), 0u) << "negative ratios clamp";
  EXPECT_DOUBLE_EQ(sketch_units_to_ratio(500'000.0), 0.5);
  EXPECT_DOUBLE_EQ(
      sketch_units_to_ratio(static_cast<double>(ratio_to_sketch_units(0.75))),
      0.75);
}

// --------------------------------------------------------------- windows

EconCumulative cumulative_at(std::uint64_t at_ns, std::int64_t rounds,
                             std::int64_t payment_micros) {
  EconCumulative sample;
  sample.at_ns = at_ns;
  sample.rounds = rounds;
  sample.payment_micros = payment_micros;
  sample.tasks = rounds * 4;
  sample.tasks_allocated = rounds * 3;
  return sample;
}

TEST(EconWindows, AggregatorProducesExactDeltas) {
  EconWindowAggregator aggregator(0, 8);
  const EconWindowStats& first =
      aggregator.roll(cumulative_at(1'000'000'000ULL, 5, 700));
  EXPECT_EQ(first.index, 0);
  EXPECT_EQ(first.rounds, 5);
  EXPECT_EQ(first.payment_micros, 700);
  EXPECT_DOUBLE_EQ(first.rounds_per_sec, 5.0);
  EXPECT_DOUBLE_EQ(first.coverage, 0.75);

  const EconWindowStats& second =
      aggregator.roll(cumulative_at(3'000'000'000ULL, 6, 1000));
  EXPECT_EQ(second.index, 1);
  EXPECT_EQ(second.rounds, 1) << "delta, not cumulative";
  EXPECT_EQ(second.payment_micros, 300);
  EXPECT_DOUBLE_EQ(second.rounds_per_sec, 0.5);
  EXPECT_EQ(second.begin_ns, first.end_ns) << "windows chain";
}

TEST(EconWindows, AggregatorTrimsToCapacity) {
  EconWindowAggregator aggregator(0, 2);
  for (int i = 1; i <= 5; ++i) {
    aggregator.roll(cumulative_at(static_cast<std::uint64_t>(i) * 1'000'000ULL,
                                  i, i * 10));
  }
  EXPECT_EQ(aggregator.windows().size(), 2u);
  EXPECT_EQ(aggregator.windows().back().index, 4);
  EXPECT_EQ(aggregator.next_index(), 5);
}

TEST(EconWindows, OverpaymentRatioDerivesFromWindowDeltas) {
  EconWindowAggregator aggregator;
  EconCumulative sample;
  sample.at_ns = 1'000'000'000ULL;
  sample.payment_micros = Money::from_units(15).micros();
  sample.claimed_cost_micros = Money::from_units(10).micros();
  const EconWindowStats& window = aggregator.roll(sample);
  EXPECT_DOUBLE_EQ(window.overpayment_ratio, 0.5);
}

// ---------------------------------------------------------------- health

TEST(EconHealth, AnyViolationIsDegradedEconomics) {
  EXPECT_EQ(classify_econ_health(0), HealthState::kHealthy);
  EXPECT_EQ(classify_econ_health(1), HealthState::kDegradedEconomics);
  EXPECT_EQ(classify_econ_health(40), HealthState::kDegradedEconomics);
}

TEST(EconHealth, DegradedEconomicsOutranksEverySystemsState) {
  EXPECT_EQ(to_string(HealthState::kDegradedEconomics), "degraded-economics");
  EXPECT_EQ(worse(HealthState::kStalled, HealthState::kDegradedEconomics),
            HealthState::kDegradedEconomics);
  EXPECT_EQ(worse(HealthState::kDegradedEconomics, HealthState::kHealthy),
            HealthState::kDegradedEconomics);
}

}  // namespace
}  // namespace mcs::obs
