// EventRing and batched-handoff tests. The ring's depth reporting and
// high watermark are audited exactly (all-or-nothing batch pushes make
// the depth-after-push the true instantaneous occupancy), and the
// ShardBatcher path is pinned to produce byte-identical outcomes and
// deterministic counters to the event-at-a-time path -- batching may only
// change handoff granularity, never results.
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"

namespace mcs::serve {
namespace {

std::vector<ServeEvent> ticks(int count) {
  std::vector<ServeEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    events.push_back(slot_tick(i, Slot{1}));
  }
  return events;
}

// ------------------------------------------------------------- EventRing

TEST(EventRing, BatchPushReportsExactDepthAndWatermark) {
  EventRing ring(8);
  const std::vector<ServeEvent> five = ticks(5);
  EXPECT_EQ(ring.push_block(five.data(), 5, 0), 5);
  EXPECT_EQ(ring.high_watermark(), 5);

  std::vector<PoppedEvent> out;
  EXPECT_EQ(ring.pop_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 3u);
  // Per-event depth_left matches what one-at-a-time pops would have seen.
  EXPECT_EQ(out[0].depth_left, 4);
  EXPECT_EQ(out[1].depth_left, 3);
  EXPECT_EQ(out[2].depth_left, 2);

  const std::vector<ServeEvent> four = ticks(4);
  EXPECT_EQ(ring.push_block(four.data(), 4, 0), 6);  // 2 remained + 4
  EXPECT_EQ(ring.high_watermark(), 6);

  // All-or-nothing: a batch of 3 would need 9 slots; nothing is enqueued
  // and the watermark is untouched.
  const std::vector<ServeEvent> three = ticks(3);
  EXPECT_EQ(ring.try_push(three.data(), 3, 0), -1);
  EXPECT_EQ(ring.high_watermark(), 6);

  const std::vector<ServeEvent> two = ticks(2);
  EXPECT_EQ(ring.try_push(two.data(), 2, 0), 8);
  EXPECT_EQ(ring.high_watermark(), 8);
}

TEST(EventRing, FifoOrderSurvivesWraparound) {
  EventRing ring(4);
  std::vector<PoppedEvent> out;
  std::int64_t next_expected = 0;
  std::int64_t next_pushed = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::vector<ServeEvent> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(round_close(next_pushed++));
    }
    ASSERT_GT(ring.push_block(batch.data(), batch.size(), 0), 0);
    out.clear();
    ASSERT_EQ(ring.pop_batch(out, 3), 3u);
    for (const PoppedEvent& popped : out) {
      EXPECT_EQ(popped.event.round, next_expected++);
    }
  }
}

TEST(EventRing, OversizedBatchThrowsInsteadOfDeadlocking) {
  EventRing ring(4);
  const std::vector<ServeEvent> five = ticks(5);
  EXPECT_THROW((void)ring.push_block(five.data(), 5, 0),
               InvalidArgumentError);
  EXPECT_THROW((void)EventRing(0), InvalidArgumentError);
}

TEST(EventRing, CloseFailsPushesAndDrainsPops) {
  EventRing ring(4);
  const std::vector<ServeEvent> two = ticks(2);
  EXPECT_EQ(ring.push_block(two.data(), 2, 0), 2);
  ring.close();
  EXPECT_EQ(ring.push_block(two.data(), 2, 0), -1);
  EXPECT_EQ(ring.try_push(two.data(), 2, 0), -1);
  std::vector<PoppedEvent> out;
  EXPECT_EQ(ring.pop_batch(out, 8), 2u);  // the queued tail still drains
  EXPECT_EQ(ring.pop_batch(out, 8), 0u);  // closed and empty
}

// ----------------------------------------------------- batched engine path

std::vector<ServeEvent> load_events() {
  LoadGenConfig config;
  config.rounds = 10;
  config.seed = 11;
  std::vector<ServeEvent> events;
  generate_events(config, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

void expect_same_outcomes(const std::vector<RoundOutcome>& a,
                          const std::vector<RoundOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].total_paid, b[i].total_paid);
    EXPECT_EQ(a[i].tasks_announced, b[i].tasks_announced);
    EXPECT_EQ(a[i].bids_admitted, b[i].bids_admitted);
    EXPECT_EQ(a[i].outcome.payments, b[i].outcome.payments);
  }
}

TEST(ShardBatcherTest, BatchedFeedMatchesPerEventFeedForAnyGeometry) {
  const std::vector<ServeEvent> events = load_events();
  ServeConfig reference_config;
  reference_config.shards = 1;
  ServeEngine reference(reference_config);
  for (const ServeEvent& event : events) reference.submit(event);
  reference.drain();
  const std::vector<RoundOutcome> baseline = reference.take_outcomes();
  const std::int64_t expected = static_cast<std::int64_t>(events.size());

  for (const int shards : {1, 2, 8}) {
    for (const std::size_t batch : {std::size_t{2}, std::size_t{16},
                                    std::size_t{64}}) {
      ServeConfig config;
      config.shards = shards;
      config.batch_size = batch;
      ServeEngine engine(config);
      ShardBatcher batcher(engine);
      for (const ServeEvent& event : events) {
        EXPECT_EQ(batcher.add(event), SubmitStatus::kAccepted);
      }
      EXPECT_EQ(batcher.flush(), SubmitStatus::kAccepted);
      EXPECT_EQ(batcher.buffered(), 0);
      engine.drain();
      EXPECT_EQ(engine.stats().submitted, expected)
          << "shards=" << shards << " batch=" << batch;
      expect_same_outcomes(baseline, engine.take_outcomes());
    }
  }
}

TEST(ShardBatcherTest, DeterministicCountersSurviveBatchingAndSharding) {
  // The 1-shard/8-shard counter identity is the serving plane's core
  // invariant; the batched handoff must preserve it bit for bit.
  const std::vector<ServeEvent> events = load_events();
  const auto counters_for = [&](int shards, std::size_t batch) {
    obs::MetricsRegistry registry;
    {
      const obs::ScopedRegistry guard(&registry);
      ServeConfig config;
      config.shards = shards;
      config.batch_size = batch;
      ServeEngine engine(config);
      ShardBatcher batcher(engine);
      for (const ServeEvent& event : events) batcher.add(event);
      batcher.flush();
      engine.drain();
    }
    return registry.snapshot().counters;
  };

  const std::map<std::string, std::int64_t> baseline = counters_for(1, 1);
  EXPECT_GT(baseline.at("serve.events.round_open"), 0);
  for (const int shards : {1, 8}) {
    for (const std::size_t batch : {std::size_t{16}, std::size_t{64}}) {
      EXPECT_EQ(baseline, counters_for(shards, batch))
          << "shards=" << shards << " batch=" << batch;
    }
  }
}

TEST(ShardBatcherTest, WatermarkNeverExceedsCapacityUnderBatching) {
  const std::vector<ServeEvent> events = load_events();
  ServeConfig config;
  config.shards = 2;
  config.queue_capacity = 64;
  config.batch_size = 64;
  ServeEngine engine(config);
  ShardBatcher batcher(engine);
  for (const ServeEvent& event : events) batcher.add(event);
  batcher.flush();
  engine.drain();
  EXPECT_GT(engine.stats().queue_high_watermark, 0);
  EXPECT_LE(engine.stats().queue_high_watermark, 64);
}

TEST(ServeEngineBatch, MisroutedBatchIsRejectedLoudly) {
  ServeConfig config;
  config.shards = 8;
  ServeEngine engine(config);
  // Find a round that does NOT hash to shard 0 and submit it there.
  std::int64_t round = 0;
  while (shard_of_round(round, 8) == 0) ++round;
  const ServeEvent event = round_open(round, 3, Money::from_units(1));
  EXPECT_THROW((void)engine.submit_batch(0, &event, 1),
               InvalidArgumentError);
  EXPECT_THROW((void)engine.submit_batch(8, &event, 1),
               InvalidArgumentError);
  engine.drain();
}

TEST(ServeEngineBatch, ValidateRejectsBadBatchSize) {
  ServeConfig zero;
  zero.batch_size = 0;
  EXPECT_THROW(zero.validate(), InvalidArgumentError);
  ServeConfig oversized;
  oversized.queue_capacity = 16;
  oversized.batch_size = 17;
  EXPECT_THROW(oversized.validate(), InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::serve
