// Tests for the task-patience extension: exact reduction to the paper's
// mechanism at P = 0, deadline semantics (EDF service, expiry), welfare
// recovery with patience, and the empirical incentive properties of the
// generalized Algorithm 2 payments.
#include "auction/patience_greedy.hpp"

#include <gtest/gtest.h>

#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/critical_value.hpp"
#include "auction/offline_vcg.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// --------------------------------------------------- reduction at P = 0

class PatienceZeroEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PatienceZeroEquivalence, MatchesOnlineGreedyExactly) {
  Rng rng(GetParam());
  model::WorkloadConfig workload;
  workload.num_slots = 10;
  workload.phone_arrival_rate = 3.0;
  workload.task_arrival_rate = 2.0;
  workload.mean_cost = 12.0;
  workload.task_value = Money::from_units(30);
  const model::Scenario s = model::generate_scenario(workload, rng);
  const model::BidProfile bids = s.truthful_bids();

  const Outcome paper = OnlineGreedyMechanism{}.run(s, bids);
  const Outcome patience =
      PatienceGreedyMechanism(PatienceConfig{0, {}}).run(s, bids);
  for (int t = 0; t < s.task_count(); ++t) {
    ASSERT_EQ(patience.allocation.phone_for(TaskId{t}),
              paper.allocation.phone_for(TaskId{t}))
        << "task " << t;
  }
  ASSERT_EQ(patience.payments, paper.payments);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatienceZeroEquivalence,
                         ::testing::Range<std::uint64_t>(5200, 5215));

TEST(Patience, Fig4AtPZeroReproducesThePaperNumbers) {
  const model::Scenario s = model::fig4_scenario();
  const Outcome outcome =
      PatienceGreedyMechanism(PatienceConfig{0, {}}).run_truthful(s);
  EXPECT_EQ(outcome.payments[0], mu(9));
  EXPECT_EQ(outcome.total_payment(), mu(50));
}

// ------------------------------------------------------ deadline semantics

TEST(Patience, TaskWaitsForALatePhone) {
  // No phone in slot 1; with patience 2 the task is served in slot 2.
  const model::Scenario s =
      model::ScenarioBuilder(3).value(10).phone(2, 3, 4).task(1).build();
  const PatienceRun run =
      run_patience_allocation(s, s.truthful_bids(), PatienceConfig{2, {}});
  EXPECT_EQ(run.allocation.phone_for(TaskId{0}), PhoneId{0});
  EXPECT_EQ(run.allocation.service_slot_for(TaskId{0}, s), Slot{2});
  EXPECT_TRUE(run.slots[0].served.empty());
  EXPECT_EQ(run.slots[1].served.size(), 1u);
}

TEST(Patience, TaskExpiresAfterItsDeadline) {
  const model::Scenario s =
      model::ScenarioBuilder(4).value(10).phone(4, 4, 4).task(1).build();
  const PatienceRun run =
      run_patience_allocation(s, s.truthful_bids(), PatienceConfig{1, {}});
  EXPECT_FALSE(run.allocation.phone_for(TaskId{0}).has_value());
  // Deadline is slot 2: the expiry is recorded there.
  ASSERT_EQ(run.slots[1].expired.size(), 1u);
  EXPECT_EQ(run.slots[1].expired[0], TaskId{0});
}

TEST(Patience, EdfServesTheMostUrgentTaskFirst) {
  // Two pending tasks, one phone in slot 2: the slot-2 arrival with the
  // tighter deadline loses to the slot-1 task whose deadline is now.
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(10)
                                .phone(2, 2, 3)
                                .task(1)   // deadline 2 with P=1
                                .task(2)   // deadline 3 with P=1
                                .build();
  const PatienceRun run =
      run_patience_allocation(s, s.truthful_bids(), PatienceConfig{1, {}});
  EXPECT_EQ(run.allocation.phone_for(TaskId{0}), PhoneId{0});
  EXPECT_FALSE(run.allocation.phone_for(TaskId{1}).has_value());
}

TEST(Patience, ServiceSlotRespectsTheReportedWindow) {
  // Outcome::validate must accept late service inside the phone's window.
  const model::Scenario s =
      model::ScenarioBuilder(5).value(10).phone(3, 5, 2).task(2).build();
  const Outcome outcome =
      PatienceGreedyMechanism(PatienceConfig{3, {}}).run_truthful(s);
  EXPECT_NO_THROW(outcome.validate(s, s.truthful_bids()));
  EXPECT_EQ(outcome.allocation.service_slot_for(TaskId{0}, s), Slot{3});
}

// ----------------------------------------------------------- welfare value

TEST(Patience, PatienceRecoversWelfareOnSupplyGaps) {
  // Phones arrive late relative to tasks: P=0 loses everything, patience
  // recovers it.
  const model::Scenario s = model::ScenarioBuilder(6)
                                .value(20)
                                .phone(4, 6, 3)
                                .phone(5, 6, 5)
                                .task(1)
                                .task(2)
                                .build();
  const model::BidProfile bids = s.truthful_bids();
  EXPECT_EQ(PatienceGreedyMechanism(PatienceConfig{0, {}})
                .run(s, bids)
                .social_welfare(s),
            Money{});
  EXPECT_EQ(PatienceGreedyMechanism(PatienceConfig{4, {}})
                .run(s, bids)
                .social_welfare(s),
            mu(32));  // (20-3) + (20-5)
}

TEST(Patience, OfflineOptimumIsMonotoneInPatience) {
  Rng rng(611);
  model::WorkloadConfig workload;
  workload.num_slots = 12;
  workload.phone_arrival_rate = 2.0;
  workload.task_arrival_rate = 2.0;  // tight supply: patience matters
  workload.task_value = Money::from_units(40);
  workload.mean_cost = 15.0;
  for (int trial = 0; trial < 5; ++trial) {
    const model::Scenario s = model::generate_scenario(workload, rng);
    const model::BidProfile bids = s.truthful_bids();
    Money previous = Money::from_units(-1);
    for (const Slot::rep_type patience : {0, 1, 2, 4, 8}) {
      const Money welfare = optimal_patience_welfare(s, bids, patience);
      EXPECT_GE(welfare, previous) << "trial " << trial << " P " << patience;
      previous = welfare;
    }
  }
}

TEST(Patience, GreedyNeverBeatsTheMatchingOptimum) {
  Rng rng(613);
  model::WorkloadConfig workload;
  workload.num_slots = 10;
  workload.phone_arrival_rate = 2.5;
  workload.task_arrival_rate = 2.0;
  workload.task_value = Money::from_units(40);
  for (int trial = 0; trial < 8; ++trial) {
    const model::Scenario s = model::generate_scenario(workload, rng);
    const model::BidProfile bids = s.truthful_bids();
    for (const Slot::rep_type patience : {0, 2, 5}) {
      const Outcome greedy =
          PatienceGreedyMechanism(PatienceConfig{patience, {}}).run(s, bids);
      EXPECT_LE(greedy.claimed_welfare(s, bids),
                optimal_patience_welfare(s, bids, patience))
          << "trial " << trial << " P " << patience;
    }
  }
}

// ------------------------------------------------------ incentive checks

TEST(Patience, PaymentsCoverClaimsAndIrHolds) {
  Rng rng(617);
  model::WorkloadConfig workload;
  workload.num_slots = 10;
  workload.task_value = Money::from_units(50);
  const model::Scenario s = model::generate_scenario(workload, rng);
  const model::BidProfile bids = s.truthful_bids();
  const PatienceGreedyMechanism mechanism(PatienceConfig{3, {}});
  const Outcome outcome = mechanism.run(s, bids);
  for (const PhoneId winner : outcome.allocation.winners()) {
    EXPECT_GE(outcome.payments[static_cast<std::size_t>(winner.value())],
              bids[static_cast<std::size_t>(winner.value())].claimed_cost);
  }
  EXPECT_TRUE(analysis::check_individual_rationality(s, bids, outcome)
                  .individually_rational());
}

class PatienceAudit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatienceAudit, TruthfulOnScarcityFreeInstances) {
  // The same supply regime in which Algorithm 2's critical-value proof
  // operates: full-round phones, more phones than tasks. The audit passing
  // here is the empirical basis for the header's truthfulness claim.
  Rng rng(GetParam());
  const int tasks = static_cast<int>(rng.uniform_int(1, 4));
  const int phones = tasks + 2 + static_cast<int>(rng.uniform_int(0, 3));
  model::ScenarioBuilder builder(5);
  builder.value(80);
  for (int i = 0; i < phones; ++i) {
    builder.phone(1, 5, rng.uniform_int(1, 50));
  }
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
  }
  const model::Scenario s = builder.build();
  const PatienceGreedyMechanism mechanism(PatienceConfig{2, {}});
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  EXPECT_TRUE(report.truthful()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatienceAudit,
                         ::testing::Range<std::uint64_t>(5300, 5315));

TEST(Patience, PaymentEqualsBisectedCriticalValue) {
  Rng rng(619);
  for (int trial = 0; trial < 8; ++trial) {
    const int tasks = static_cast<int>(rng.uniform_int(1, 4));
    const int phones = tasks + 2;
    model::ScenarioBuilder builder(4);
    builder.value(100);
    for (int i = 0; i < phones; ++i) {
      builder.phone(1, 4, rng.uniform_int(1, 60));
    }
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 4)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    const PatienceConfig config{2, {}};
    const Outcome outcome = PatienceGreedyMechanism(config).run(s, bids);

    for (const PhoneId winner : outcome.allocation.winners()) {
      const model::Bid& own = bids[static_cast<std::size_t>(winner.value())];
      const WinsWithCost wins = [&](Money cost) {
        const model::BidProfile probe =
            model::with_bid(bids, winner, model::Bid{own.window, cost});
        return run_patience_allocation(s, probe, config)
            .allocation.is_winner(winner);
      };
      const auto critical =
          bisect_critical_value(wins, mu(200));
      ASSERT_TRUE(critical.has_value());
      const Money payment =
          outcome.payments[static_cast<std::size_t>(winner.value())];
      const std::int64_t gap = payment >= *critical
                                   ? (payment - *critical).micros()
                                   : (*critical - payment).micros();
      EXPECT_LE(gap, 1) << "trial " << trial << " phone " << winner;
    }
  }
}

TEST(Patience, AllocationIsMonotoneInBidImprovements) {
  // Definition 10 analog for the patience rule: a winner that arrives
  // earlier, stays longer, or bids less must keep winning.
  Rng rng(701);
  for (int trial = 0; trial < 10; ++trial) {
    model::ScenarioBuilder builder(5);
    builder.value(60);
    const int phones = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 5));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, 5));
      builder.phone(a, d, rng.uniform_int(1, 40));
    }
    const int tasks = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < tasks; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 5)));
    }
    const model::Scenario s = builder.build();
    const model::BidProfile bids = s.truthful_bids();
    const PatienceConfig config{2, {}};
    const PatienceRun base = run_patience_allocation(s, bids, config);

    for (int i = 0; i < phones; ++i) {
      const PhoneId phone{i};
      if (!base.allocation.is_winner(phone)) continue;
      const model::Bid& original = bids[static_cast<std::size_t>(i)];
      for (int improvement = 0; improvement < 3; ++improvement) {
        model::Bid improved = original;
        if (improvement == 0 && improved.window.begin().value() > 1) {
          improved.window = SlotInterval{prev(improved.window.begin()),
                                         improved.window.end()};
        } else if (improvement == 1 &&
                   improved.window.end().value() < s.num_slots) {
          improved.window = SlotInterval{improved.window.begin(),
                                         next(improved.window.end())};
        } else {
          improved.claimed_cost = Money{};  // bid zero
        }
        const PatienceRun probe = run_patience_allocation(
            s, model::with_bid(bids, phone, improved), config);
        EXPECT_TRUE(probe.allocation.is_winner(phone))
            << "trial " << trial << " phone " << i << " improvement "
            << improvement;
      }
    }
  }
}

TEST(Patience, NameCarriesThePatience) {
  EXPECT_EQ(PatienceGreedyMechanism(PatienceConfig{3, {}}).name(),
            "patience-greedy(P=3)");
}

}  // namespace
}  // namespace mcs::auction
