// Tests for the baseline mechanisms: the per-slot second-price scheme whose
// manipulability motivates the paper's Algorithm 2 (Fig. 5 is reproduced
// exactly), and the random/FIFO welfare baselines.
#include "auction/second_price.hpp"

#include <gtest/gtest.h>

#include "analysis/truthfulness.hpp"
#include "auction/naive_baselines.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ----------------------------------------------------------- second price

TEST(SecondPrice, Fig5TruthfulPaymentsMatchPaper) {
  // Fig. 5(a): Smartphone 2 (phone 1) wins slot 1 and is paid 6; Smartphone
  // 1 (phone 0) wins slot 2 and is paid 4.
  const model::Scenario s = model::fig4_scenario();
  const SecondPriceBaseline mechanism;
  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_EQ(outcome.payments[1], mu(6));
  EXPECT_EQ(outcome.payments[0], mu(4));
  // Same allocation as the online greedy rule.
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{6}));
  EXPECT_EQ(outcome.payments[6], mu(8));  // runner-up in slot 3 is phone 5
}

TEST(SecondPrice, Fig5DelayedArrivalRaisesPaymentFourToEight) {
  // Fig. 5(b): phone 0 delays its reported arrival to slot 4 and its
  // payment jumps from 4 to 8 -- utility 1 -> 5, a strict gain.
  const model::Scenario s = model::fig4_scenario();
  const SecondPriceBaseline mechanism;

  const Outcome truthful = mechanism.run_truthful(s);
  EXPECT_EQ(truthful.payments[0], mu(4));
  EXPECT_EQ(truthful.utility(s, PhoneId{0}), mu(1));

  const model::BidProfile delayed = model::with_bid(
      s.truthful_bids(), PhoneId{0}, model::fig5_delayed_bid_phone1());
  const Outcome deviant = mechanism.run(s, delayed);
  ASSERT_TRUE(deviant.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(deviant.payments[0], mu(8));
  EXPECT_EQ(deviant.utility(s, PhoneId{0}), mu(5));
}

TEST(SecondPrice, AuditFindsTheFig5Manipulation) {
  const model::Scenario s = model::fig4_scenario();
  const SecondPriceBaseline mechanism;
  const analysis::TruthfulnessReport report =
      analysis::audit_truthfulness(mechanism, s);
  ASSERT_FALSE(report.truthful()) << "the baseline must be manipulable";
  // The audit must discover a violation for phone 0 with the delayed
  // window [4,5] and a gain of at least 4 (the paper's example).
  bool found_paper_manipulation = false;
  for (const analysis::DeviationViolation& v : report.violations) {
    if (v.phone == PhoneId{0} &&
        v.deviant_bid.window == SlotInterval::of(4, 5) &&
        v.gain() >= mu(4)) {
      found_paper_manipulation = true;
    }
  }
  EXPECT_TRUE(found_paper_manipulation) << report.summary();
}

TEST(SecondPrice, WhileOurMechanismsPassTheSameAudit) {
  // The contrast the paper draws: same instance, same deviation grid --
  // the proposed mechanisms are truthful where the baseline is not.
  const model::Scenario s = model::fig4_scenario();
  EXPECT_TRUE(
      analysis::audit_truthfulness(OnlineGreedyMechanism{}, s).truthful());
  EXPECT_TRUE(
      analysis::audit_truthfulness(OfflineVcgMechanism{}, s).truthful());
}

TEST(SecondPrice, NoRunnerUpFallbacks) {
  const model::Scenario s =
      model::ScenarioBuilder(1).value(10).phone(1, 1, 3).task(1).build();
  {
    const SecondPriceBaseline own_bid;  // default kOwnBid
    EXPECT_EQ(own_bid.run_truthful(s).payments[0], mu(3));
  }
  {
    SecondPriceConfig config;
    config.no_runner_up = SecondPriceConfig::NoRunnerUp::kTaskValue;
    const SecondPriceBaseline value_fallback(config);
    EXPECT_EQ(value_fallback.run_truthful(s).payments[0], mu(10));
  }
}

TEST(SecondPrice, UniformPriceWithMultipleTasksPerSlot) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .phone(1, 1, 2)
                                .phone(1, 1, 5)
                                .phone(1, 1, 9)
                                .tasks(1, 2)
                                .build();
  const Outcome outcome = SecondPriceBaseline{}.run_truthful(s);
  // Both winners are paid the best losing bid (9).
  EXPECT_EQ(outcome.payments[0], mu(9));
  EXPECT_EQ(outcome.payments[1], mu(9));
  EXPECT_EQ(outcome.payments[2], Money{});
}

TEST(SecondPrice, EqualBidsTieBreakByPhoneId) {
  // Two phones claim the same cost for one task: the allocation tie goes
  // to the lower id (the fixed order Algorithm 1 requires), and the winner
  // is paid the runner-up's -- equal -- claim, so the tie is paid fairly.
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .phone(1, 1, 7)
                                .phone(1, 1, 7)
                                .task(1)
                                .build();
  const Outcome outcome = SecondPriceBaseline{}.run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_FALSE(outcome.allocation.is_winner(PhoneId{1}));
  EXPECT_EQ(outcome.payments[0], mu(7));
  EXPECT_EQ(outcome.payments[1], Money{});
}

TEST(SecondPrice, EqualBidsAcrossSlotsWinInIdOrder) {
  // Three equal claims, two single-task slots, distinct windows: slot 1
  // takes the lowest id available there, slot 2 the next. The phone whose
  // window closed without a win gets nothing.
  const model::Scenario s = model::ScenarioBuilder(2)
                                .value(20)
                                .phone(1, 2, 5)
                                .phone(1, 1, 5)  // slot 1 only
                                .phone(2, 2, 5)
                                .task(1)
                                .task(2)
                                .build();
  const Outcome outcome = SecondPriceBaseline{}.run_truthful(s);
  // Slot 1: phones {0, 1} tie at 5 -> phone 0 wins, runner-up pays 5.
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(outcome.payments[0], mu(5));
  // Slot 2: phones {1 gone, 2} -> phone 2 wins; no loser left in the
  // pool, so the kOwnBid default pays its own claim.
  EXPECT_FALSE(outcome.allocation.is_winner(PhoneId{1}));
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{2}));
  EXPECT_EQ(outcome.payments[2], mu(5));
}

TEST(SecondPrice, EmptySlotLeavesItsTaskUnserved) {
  // A task arrives in a slot where no phone is active: it goes unserved
  // and the outcome stays structurally valid (no payment materializes).
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(20)
                                .phone(3, 3, 4)
                                .task(1)  // nobody active in slot 1
                                .task(3)
                                .build();
  const Outcome outcome = SecondPriceBaseline{}.run_truthful(s);
  outcome.validate(s, s.truthful_bids());
  EXPECT_EQ(outcome.allocation.winners().size(), 1u);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_EQ(outcome.total_payment(), outcome.payments[0]);
}

TEST(SecondPrice, ManipulableSystematicallyAcrossRandomInstances) {
  // Fig. 5 is not a fluke of the worked example: over randomized windowed
  // instances the audit keeps finding profitable misreports against the
  // per-slot second-price rule, while the online mechanism stays clean on
  // the very same instances (restricted to its scarcity-free regime the
  // audits elsewhere cover; here we only claim the baseline's failures).
  Rng rng(8442);
  int violations_total = 0;
  int instances_with_violation = 0;
  const SecondPriceBaseline baseline;
  for (int trial = 0; trial < 12; ++trial) {
    model::ScenarioBuilder builder(5);
    builder.value(40);
    const int phones = 4 + static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < phones; ++i) {
      const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, 4));
      const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a + 1, 5));
      builder.phone(a, d, rng.uniform_int(1, 30));
    }
    for (Slot::rep_type t = 1; t <= 5; ++t) builder.task(t);
    const model::Scenario s = builder.build();
    const analysis::TruthfulnessReport report =
        analysis::audit_truthfulness(baseline, s);
    violations_total += static_cast<int>(report.violations.size());
    if (!report.truthful()) ++instances_with_violation;
  }
  EXPECT_GT(violations_total, 0);
  EXPECT_GE(instances_with_violation, 3)
      << "the baseline should be manipulable on a healthy fraction of "
         "random instances";
}

// -------------------------------------------------------- naive baselines

TEST(NaiveBaselines, FifoPicksEarliestArrival) {
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(10)
                                .phone(2, 3, 1)  // cheap but late
                                .phone(1, 3, 9)  // early and expensive
                                .task(3)
                                .build();
  const Outcome outcome = FifoAllocationMechanism{}.run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{1}));
  EXPECT_EQ(outcome.payments[1], mu(9));  // first price
}

TEST(NaiveBaselines, FifoBreaksArrivalTiesById) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(10)
                                .phone(1, 1, 5)
                                .phone(1, 1, 5)
                                .task(1)
                                .build();
  const Outcome outcome = FifoAllocationMechanism{}.run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
}

TEST(NaiveBaselines, RandomIsDeterministicPerSeed) {
  const model::Scenario s = model::fig4_scenario();
  const RandomAllocationMechanism a(7);
  const RandomAllocationMechanism b(7);
  const RandomAllocationMechanism c(8);
  const Outcome oa = a.run_truthful(s);
  const Outcome ob = b.run_truthful(s);
  EXPECT_EQ(oa.payments, ob.payments);
  // A different seed is allowed to differ (and does on this instance for
  // at least one of a few probes).
  bool any_difference = false;
  for (std::uint64_t seed = 8; seed < 16 && !any_difference; ++seed) {
    any_difference =
        RandomAllocationMechanism(seed).run_truthful(s).payments !=
        oa.payments;
  }
  EXPECT_TRUE(any_difference);
}

TEST(NaiveBaselines, OutcomesAreStructurallyValid) {
  Rng rng(99);
  model::WorkloadConfig workload;
  workload.num_slots = 12;
  const model::Scenario s = model::generate_scenario(workload, rng);
  const model::BidProfile bids = s.truthful_bids();
  EXPECT_NO_THROW(RandomAllocationMechanism{}.run(s, bids));
  EXPECT_NO_THROW(FifoAllocationMechanism{}.run(s, bids));
}

TEST(NaiveBaselines, GreedyWelfareDominatesNaiveOnAverage) {
  // Statistical, not per-instance: the cost-aware greedy rule must beat
  // cost-blind allocation in aggregate welfare over random rounds.
  Rng rng(123);
  model::WorkloadConfig workload;
  workload.num_slots = 15;
  workload.task_value = mu(50);
  double greedy_total = 0.0;
  double random_total = 0.0;
  double fifo_total = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    const model::Scenario s = model::generate_scenario(workload, rng);
    const model::BidProfile bids = s.truthful_bids();
    greedy_total += OnlineGreedyMechanism{}
                        .run(s, bids)
                        .social_welfare(s)
                        .to_double();
    random_total += RandomAllocationMechanism{static_cast<std::uint64_t>(rep)}
                        .run(s, bids)
                        .social_welfare(s)
                        .to_double();
    fifo_total +=
        FifoAllocationMechanism{}.run(s, bids).social_welfare(s).to_double();
  }
  EXPECT_GT(greedy_total, random_total);
  EXPECT_GT(greedy_total, fifo_total);
}

}  // namespace
}  // namespace mcs::auction
