// End-to-end integration tests: generated workloads driven through both
// mechanisms with every cross-cutting invariant checked at once. These are
// the "whole pipeline" guarantees a downstream user relies on.
#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "analysis/metrics.hpp"
#include "analysis/rationality.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "common/rng.hpp"
#include "matching/brute_force.hpp"
#include "model/workload.hpp"

namespace mcs {
namespace {

model::WorkloadConfig small_workload() {
  model::WorkloadConfig workload;
  workload.num_slots = 12;
  workload.phone_arrival_rate = 4.0;
  workload.task_arrival_rate = 2.0;
  workload.mean_cost = 12.0;
  workload.mean_active_length = 3.0;
  workload.task_value = Money::from_units(30);
  return workload;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, CrossMechanismInvariantsOnGeneratedRound) {
  Rng rng(GetParam());
  const model::Scenario scenario =
      model::generate_scenario(small_workload(), rng);
  const model::BidProfile bids = scenario.truthful_bids();

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;
  const auction::Outcome online_outcome = online.run(scenario, bids);
  const auction::Outcome offline_outcome = offline.run(scenario, bids);

  // Outcomes are structurally valid (validated inside run; re-check here).
  online_outcome.validate(scenario, bids);
  offline_outcome.validate(scenario, bids);

  // Offline is optimal: it weakly dominates the greedy allocation.
  EXPECT_GE(offline_outcome.claimed_welfare(scenario, bids),
            online_outcome.claimed_welfare(scenario, bids));

  // Theorem 6: the greedy allocation is 1/2-competitive (claimed welfare;
  // all edge weights positive since nu = 30 > max cost 23).
  const analysis::CompetitiveResult ratio =
      analysis::competitive_ratio(scenario, bids);
  EXPECT_GE(ratio.ratio, 0.5) << "online " << ratio.online_welfare
                              << " offline " << ratio.offline_welfare;

  // Theorems 2 and 5: individual rationality under truthful reporting.
  EXPECT_TRUE(analysis::check_individual_rationality(scenario, bids,
                                                     online_outcome)
                  .individually_rational());
  EXPECT_TRUE(analysis::check_individual_rationality(scenario, bids,
                                                     offline_outcome)
                  .individually_rational());

  // Winners are always paid at least their claimed cost; losers zero.
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    for (const auction::Outcome* outcome :
         {&online_outcome, &offline_outcome}) {
      if (outcome->allocation.is_winner(phone)) {
        EXPECT_GE(outcome->payments[static_cast<std::size_t>(i)],
                  bids[static_cast<std::size_t>(i)].claimed_cost);
      } else {
        EXPECT_TRUE(outcome->payments[static_cast<std::size_t>(i)].is_zero());
      }
    }
  }

  // Metrics derive consistently for both mechanisms.
  const analysis::RoundMetrics online_metrics =
      analysis::compute_metrics(scenario, bids, online_outcome);
  const analysis::RoundMetrics offline_metrics =
      analysis::compute_metrics(scenario, bids, offline_outcome);
  EXPECT_GE(online_metrics.overpayment, Money{});
  EXPECT_GE(offline_metrics.overpayment, Money{});
  EXPECT_LE(online_metrics.tasks_allocated, online_metrics.tasks_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1000, 1025));

TEST(Pipeline, OfflineOptimalityAgainstOracleOnGeneratedRounds) {
  // Small generated rounds cross-checked against the exponential oracle.
  Rng rng(31);
  model::WorkloadConfig workload = small_workload();
  workload.num_slots = 5;
  workload.phone_arrival_rate = 1.5;
  workload.task_arrival_rate = 0.8;
  for (int trial = 0; trial < 10; ++trial) {
    const model::Scenario scenario = model::generate_scenario(workload, rng);
    if (scenario.phone_count() > matching::kBruteForceMaxCols ||
        scenario.task_count() > 8) {
      continue;  // keep the oracle tractable
    }
    const model::BidProfile bids = scenario.truthful_bids();
    const Money optimal =
        auction::OfflineVcgMechanism::optimal_claimed_welfare(scenario, bids);
    const matching::Matching oracle = matching::brute_force_max_weight(
        auction::OfflineVcgMechanism::build_graph(scenario, bids));
    EXPECT_EQ(optimal, oracle.total_weight) << "trial " << trial;
  }
}

TEST(Pipeline, MisreportingCostsNeverHelpAcrossMechanismsStatistically) {
  // Every phone inflates its cost by 50% against each truthful mechanism:
  // no phone's utility may exceed its truthful-run utility. (This is a
  // one-profile spot check; the exhaustive audits live in the unit tests.)
  //
  // Generated windowed workloads can contain supply scarcity, where the
  // paper's implicit adequate-supply assumption fails; the online mechanism
  // therefore runs with the allocate_only_profitable guard, which restores
  // exact truthfulness even under scarcity (see
  // OnlineGreedy.ScarcityManipulationAndTheProfitableGuard).
  Rng rng(77);
  const model::Scenario scenario =
      model::generate_scenario(small_workload(), rng);
  const model::BidProfile truthful = scenario.truthful_bids();

  auction::OnlineGreedyConfig guarded;
  guarded.allocate_only_profitable = true;

  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    model::BidProfile deviant = truthful;
    deviant[static_cast<std::size_t>(i)].claimed_cost =
        Money::from_double(scenario.phone(phone).cost.to_double() * 1.5);

    const auction::OnlineGreedyMechanism online(guarded);
    EXPECT_LE(online.run(scenario, deviant).utility(scenario, phone),
              online.run(scenario, truthful).utility(scenario, phone))
        << "online, phone " << i;

    const auction::OfflineVcgMechanism offline;
    EXPECT_LE(offline.run(scenario, deviant).utility(scenario, phone),
              offline.run(scenario, truthful).utility(scenario, phone))
        << "offline, phone " << i;
  }
}

TEST(Pipeline, SecondPriceBaselineLeaksMoneyOnFig4ButMechanismsDoNot) {
  // Cross-mechanism contrast on the same generated instance family: the
  // audits are in the unit tests; here we just confirm all three run
  // end-to-end on the same inputs and produce valid outcomes.
  Rng rng(55);
  const model::Scenario scenario =
      model::generate_scenario(small_workload(), rng);
  const model::BidProfile bids = scenario.truthful_bids();
  EXPECT_NO_THROW(auction::SecondPriceBaseline{}.run(scenario, bids));
  EXPECT_NO_THROW(auction::OnlineGreedyMechanism{}.run(scenario, bids));
  EXPECT_NO_THROW(auction::OfflineVcgMechanism{}.run(scenario, bids));
}

TEST(Pipeline, LargeRoundSmoke) {
  // A Table-I-scale round at double the default horizon: both mechanisms
  // complete, agree on the invariants, and stay fast enough for CI.
  Rng rng(4711);
  model::WorkloadConfig workload;  // Table-I defaults
  workload.num_slots = 100;
  const model::Scenario scenario = model::generate_scenario(workload, rng);
  EXPECT_GT(scenario.phone_count(), 400);
  EXPECT_GT(scenario.task_count(), 200);

  const model::BidProfile bids = scenario.truthful_bids();
  const auction::Outcome online =
      auction::OnlineGreedyMechanism{}.run(scenario, bids);
  const auction::Outcome offline =
      auction::OfflineVcgMechanism{}.run(scenario, bids);
  EXPECT_GE(offline.claimed_welfare(scenario, bids),
            online.claimed_welfare(scenario, bids));
  EXPECT_TRUE(analysis::check_individual_rationality(scenario, bids, online)
                  .individually_rational());
  EXPECT_TRUE(analysis::check_individual_rationality(scenario, bids, offline)
                  .individually_rational());
}

TEST(Pipeline, MultiRoundStability) {
  // The paper's auction runs round by round; chain 20 rounds and verify the
  // per-round overpayment ratio stays bounded (the "stable in the long run"
  // remark under Fig. 9).
  Rng rng(2025);
  const model::WorkloadConfig workload = small_workload();
  const auction::OnlineGreedyMechanism online;
  for (int round = 0; round < 20; ++round) {
    const model::Scenario scenario = model::generate_scenario(workload, rng);
    const model::BidProfile bids = scenario.truthful_bids();
    const analysis::RoundMetrics metrics = analysis::compute_metrics(
        scenario, bids, online.run(scenario, bids));
    EXPECT_GE(metrics.overpayment_ratio, 0.0) << "round " << round;
    EXPECT_LE(metrics.overpayment_ratio, 30.0) << "round " << round;
  }
}

}  // namespace
}  // namespace mcs
