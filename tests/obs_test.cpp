// Tests for the telemetry subsystem: instrument semantics, deterministic
// registry merging (the simulate_parallel reduction identity), span
// nesting, scoped installation, and exporter golden output.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/json_parse.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mcs::obs {
namespace {

// ------------------------------------------------------------ instruments

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, TracksLastValueAndSetFlag) {
  Gauge g;
  EXPECT_FALSE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.0);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, LeBucketPlacement) {
  // Prometheus semantics: bucket i counts samples <= boundaries[i].
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (boundary is inclusive)
  h.observe(1.001);  // <= 10
  h.observe(100.0);  // <= 100
  h.observe(100.5);  // overflow
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 100.0 + 100.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.5);
}

TEST(Histogram, RejectsUnsortedBoundaries) {
  EXPECT_THROW(Histogram({2.0, 1.0}), ContractViolation);
  EXPECT_THROW(Histogram({1.0, 1.0}), ContractViolation);
}

TEST(Histogram, ExponentialBoundaries) {
  const std::vector<double> edges = Histogram::exponential_boundaries(1.0, 2.0, 4);
  EXPECT_EQ(edges, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(Histogram::default_latency_boundaries_us().size(), 24u);
}

TEST(Histogram, MergeSumsBucketsAndExtrema) {
  Histogram a({10.0, 20.0});
  Histogram b({10.0, 20.0});
  a.observe(5.0);
  b.observe(15.0);
  b.observe(25.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.bucket_counts(), (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 25.0);
  EXPECT_DOUBLE_EQ(a.sum(), 45.0);
}

TEST(Histogram, MergeOfEmptyKeepsExtrema) {
  Histogram a({10.0});
  Histogram empty({10.0});
  a.observe(4.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.min(), 4.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Histogram, MergeRequiresIdenticalBoundaries) {
  Histogram a({10.0});
  Histogram b({20.0});
  EXPECT_THROW(a.merge(b), ContractViolation);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, InstrumentsAreStableByName) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("x.count");
  Counter& c2 = registry.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = registry.histogram("x.latency_us");
  Histogram& h2 = registry.histogram("x.latency_us");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.boundaries(), Histogram::default_latency_boundaries_us());
}

TEST(MetricsRegistry, HistogramReRegistrationMustAgreeOnBoundaries) {
  MetricsRegistry registry;
  const std::vector<double> edges{1.0, 2.0};
  registry.histogram("h", &edges);
  const std::vector<double> other{3.0};
  EXPECT_THROW(registry.histogram("h", &other), ContractViolation);
}

TEST(MetricsRegistry, SnapshotSkipsUnsetGauges) {
  MetricsRegistry registry;
  registry.gauge("unset");
  registry.gauge("set").set(7.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("set"), 7.0);
}

TEST(MetricsRegistry, MergeIsAssociativeOnCountersAndHistograms) {
  // merge(merge(a, b), c) == merge(a, merge(b, c)) -- the property that
  // makes the simulate_parallel reduction order-independent.
  MetricsRegistry left_a, left_b, left_c;
  left_a.counter("work.items").add(1);
  left_b.counter("work.items").add(2);
  left_c.counter("work.items").add(4);
  left_a.histogram("work.size").observe(3.0);
  left_b.histogram("work.size").observe(30.0);
  left_c.histogram("work.size").observe(300.0);

  MetricsRegistry right_a, right_b, right_c;
  right_a.counter("work.items").add(1);
  right_b.counter("work.items").add(2);
  right_c.counter("work.items").add(4);
  right_a.histogram("work.size").observe(3.0);
  right_b.histogram("work.size").observe(30.0);
  right_c.histogram("work.size").observe(300.0);

  left_a.merge(left_b);   // (a+b)
  left_a.merge(left_c);   // (a+b)+c
  right_b.merge(right_c); // (b+c)
  right_a.merge(right_b); // a+(b+c)

  const MetricsSnapshot left = left_a.snapshot();
  const MetricsSnapshot right = right_a.snapshot();
  EXPECT_EQ(left.counters, right.counters);
  ASSERT_EQ(left.histograms.size(), right.histograms.size());
  const auto& lh = left.histograms.at("work.size");
  const auto& rh = right.histograms.at("work.size");
  EXPECT_EQ(lh.bucket_counts, rh.bucket_counts);
  EXPECT_EQ(lh.count, rh.count);
  EXPECT_DOUBLE_EQ(lh.sum, rh.sum);
  EXPECT_DOUBLE_EQ(lh.min, rh.min);
  EXPECT_DOUBLE_EQ(lh.max, rh.max);
}

TEST(MetricsRegistry, MergeKeepsAlreadySetGauges) {
  MetricsRegistry dst, src;
  dst.gauge("knob").set(1.0);
  src.gauge("knob").set(2.0);
  src.gauge("other").set(9.0);
  dst.merge(src);
  const MetricsSnapshot snap = dst.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("knob"), 1.0);   // destination wins
  EXPECT_DOUBLE_EQ(snap.gauges.at("other"), 9.0);  // adopted from source
}

TEST(MetricsRegistry, MergeIntoSelfIsRejected) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.merge(registry), ContractViolation);
}

// ------------------------------------------------------ scoped installation

TEST(ScopedRegistry, InstallsNestsAndRestores) {
  EXPECT_EQ(current_registry(), nullptr);
  MetricsRegistry outer, inner;
  {
    const ScopedRegistry outer_guard(&outer);
    EXPECT_EQ(current_registry(), &outer);
    count("hits");
    {
      const ScopedRegistry inner_guard(&inner);
      EXPECT_EQ(current_registry(), &inner);
      count("hits", 10);
      // nullptr disables telemetry within the scope.
      const ScopedRegistry off_guard(nullptr);
      EXPECT_EQ(current_registry(), nullptr);
      count("hits", 100);  // dropped
    }
    EXPECT_EQ(current_registry(), &outer);
    count("hits");
  }
  EXPECT_EQ(current_registry(), nullptr);
  count("hits", 1000);  // dropped
  EXPECT_EQ(outer.counter("hits").value(), 2);
  EXPECT_EQ(inner.counter("hits").value(), 10);
}

TEST(ScopedRegistry, HelpersAreNoOpsWhenUninstalled) {
  ASSERT_EQ(current_registry(), nullptr);
  count("free.counter");
  observe("free.histogram", 1.0);
  set_gauge("free.gauge", 1.0);
  // Nothing to assert beyond "does not crash": there is no registry.
}

// ------------------------------------------------------------------ spans

TEST(TraceSpan, RecordsNestingDepthAndParent) {
  TraceCollector trace;
  MetricsRegistry registry;
  {
    const ScopedTrace trace_guard(&trace);
    const ScopedRegistry registry_guard(&registry);
    const TraceSpan root("run");
    {
      const TraceSpan child("allocation");
      const TraceSpan grandchild("probe");
      (void)grandchild;
    }
    const TraceSpan sibling("payments");
    (void)sibling;
  }
  const std::vector<SpanRecord>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "run");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "allocation");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "probe");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[3].name, "payments");
  EXPECT_EQ(spans[3].depth, 1);
  EXPECT_EQ(spans[3].parent, 0);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.duration_us, 0) << span.name;
    EXPECT_GE(span.start_us, 0) << span.name;
  }
  // The root cannot be shorter than any of its children.
  EXPECT_GE(spans[0].duration_us, spans[1].duration_us);
  // Each closed span also landed in the registry's span histogram.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.histograms.at("span.run_us").count, 1);
  EXPECT_EQ(snap.histograms.at("span.allocation_us").count, 1);
}

TEST(TraceSpan, NoOpWithoutCollectorOrRegistry) {
  ASSERT_EQ(current_trace(), nullptr);
  ASSERT_EQ(current_registry(), nullptr);
  const TraceSpan span("orphan");
  (void)span;
}

TEST(ScopedTimer, RecordsIntoRegistryOnly) {
  TraceCollector trace;
  MetricsRegistry registry;
  {
    const ScopedTrace trace_guard(&trace);
    const ScopedRegistry registry_guard(&registry);
    const ScopedTimer timer("phase.duration_us");
    (void)timer;
  }
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(registry.histogram("phase.duration_us").count(), 1);
}

// -------------------------------------------------------------- exporters

void fill_golden_registry(MetricsRegistry& registry) {
  registry.counter("b.counter", "events of kind b").add(7);
  registry.counter("a.counter").add(3);  // no help: no # HELP line
  registry.gauge("g.level", "configured level knob").set(2.5);
  const std::vector<double> edges{1.0, 10.0};
  Histogram& h = registry.histogram("h.sizes", &edges, "observed sizes");
  h.observe(1.0);
  h.observe(4.0);
  h.observe(40.0);
}

TEST(Exporters, JsonGolden) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  std::ostringstream out;
  write_metrics_json(out, registry, nullptr, {{"tool", "obs_test"}});
  EXPECT_EQ(out.str(),
            "{\"schema\":\"mcs.telemetry.v1\",\"meta\":{\"tool\":\"obs_test\"},"
            "\"counters\":{\"a.counter\":3,\"b.counter\":7},"
            "\"gauges\":{\"g.level\":2.5},"
            "\"histograms\":{\"h.sizes\":{\"count\":3,\"sum\":45,\"min\":1,"
            "\"max\":40,\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":10,\"count\":1},{\"le\":\"+Inf\",\"count\":1}]}}}\n");
}

TEST(Exporters, JsonIncludesTraceWhenGiven) {
  MetricsRegistry registry;
  TraceCollector trace;
  {
    const ScopedTrace guard(&trace);
    const TraceSpan span("root");
    (void)span;
  }
  std::ostringstream out;
  write_metrics_json(out, registry, &trace);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"trace\":[{\"name\":\"root\",\"depth\":0,"
                      "\"parent\":-1,"),
            std::string::npos)
      << text;
}

TEST(Exporters, CsvGolden) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  std::ostringstream out;
  write_metrics_csv(out, registry);
  EXPECT_EQ(out.str(),
            "kind,name,field,value\n"
            "counter,a.counter,value,3\n"
            "counter,b.counter,value,7\n"
            "gauge,g.level,value,2.5\n"
            "histogram,h.sizes,count,3\n"
            "histogram,h.sizes,sum,45\n"
            "histogram,h.sizes,min,1\n"
            "histogram,h.sizes,max,40\n"
            "histogram,h.sizes,le=1,1\n"
            "histogram,h.sizes,le=10,1\n"
            "histogram,h.sizes,le=+Inf,1\n");
}

TEST(Exporters, PrometheusGolden) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  std::ostringstream out;
  write_prometheus(out, registry);
  EXPECT_EQ(out.str(),
            "# TYPE mcs_a_counter counter\n"
            "mcs_a_counter 3\n"
            "# HELP mcs_b_counter events of kind b\n"
            "# TYPE mcs_b_counter counter\n"
            "mcs_b_counter 7\n"
            "# HELP mcs_g_level configured level knob\n"
            "# TYPE mcs_g_level gauge\n"
            "mcs_g_level 2.5\n"
            "# HELP mcs_h_sizes observed sizes\n"
            "# TYPE mcs_h_sizes histogram\n"
            "mcs_h_sizes_bucket{le=\"1\"} 1\n"
            "mcs_h_sizes_bucket{le=\"10\"} 2\n"
            "mcs_h_sizes_bucket{le=\"+Inf\"} 3\n"
            "mcs_h_sizes_sum 45\n"
            "mcs_h_sizes_count 3\n");
}

TEST(Exporters, PrometheusNameSanitizationGolden) {
  // Exposition-format grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. Arbitrary input
  // -- dots, dashes, spaces, user-influenced mechanism strings -- must
  // always come out scrapable.
  EXPECT_EQ(prometheus_name("serve.econ.shard.0.rounds"),
            "mcs_serve_econ_shard_0_rounds");
  EXPECT_EQ(prometheus_name("a-b c/d"), "mcs_a_b_c_d");
  EXPECT_EQ(prometheus_name("colon:kept_underscore_kept"),
            "mcs_colon:kept_underscore_kept");
  EXPECT_EQ(prometheus_name("9starts.with.digit"), "mcs_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "mcs_");
  EXPECT_EQ(prometheus_name("na\xc3\xafve"), "mcs_na__ve")
      << "every non-ASCII byte maps to _";
}

TEST(Exporters, PrometheusLabelValueEscapingGolden) {
  EXPECT_EQ(prometheus_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_value("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(prometheus_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Exporters, PrometheusRenderingSanitizesHostileMetricNames) {
  // A name carrying every class of illegal byte still renders as a legal,
  // stable exposition line.
  MetricsRegistry registry;
  registry.counter("serve.econ.shard-0/weird name").add(2);
  std::ostringstream out;
  write_prometheus(out, registry);
  EXPECT_EQ(out.str(),
            "# TYPE mcs_serve_econ_shard_0_weird_name counter\n"
            "mcs_serve_econ_shard_0_weird_name 2\n");
}

TEST(MetricsRegistry, FirstNonEmptyHelpWins) {
  MetricsRegistry registry;
  registry.counter("c");                   // no help yet
  registry.counter("c", "first");          // adopted
  registry.counter("c", "second");         // ignored
  registry.gauge("g", "gauge help");
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.help.at("c"), "first");
  EXPECT_EQ(snap.help.at("g"), "gauge help");
  EXPECT_EQ(snap.help.size(), 2u);
}

TEST(MetricsRegistry, MergeAdoptsMissingHelp) {
  MetricsRegistry dst, src;
  dst.counter("shared", "dst text").add(1);
  src.counter("shared", "src text").add(1);
  src.counter("only.src", "src only").add(1);
  dst.merge(src);
  const MetricsSnapshot snap = dst.snapshot();
  EXPECT_EQ(snap.help.at("shared"), "dst text");   // destination wins
  EXPECT_EQ(snap.help.at("only.src"), "src only"); // adopted
}

// -------------------------------------------------------------- quantiles

MetricsSnapshot::HistogramData snapshot_histogram(const Histogram& h) {
  MetricsSnapshot::HistogramData data;
  data.boundaries = h.boundaries();
  data.bucket_counts = h.bucket_counts();
  data.count = h.count();
  data.sum = h.sum();
  data.min = h.min();
  data.max = h.max();
  return data;
}

TEST(EstimateQuantile, ExactBucketBoundaryAndExtrema) {
  Histogram h({10.0, 20.0, 30.0});
  for (const double v : {2.0, 4.0, 6.0, 8.0, 10.0}) h.observe(v);    // <= 10
  for (const double v : {12.0, 14.0, 16.0, 18.0, 20.0}) h.observe(v);  // <= 20
  const MetricsSnapshot::HistogramData data = snapshot_histogram(h);
  // The p50 rank (5 of 10) lands exactly on the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 0.50), 10.0);
  // q <= 0 / q >= 1 return the tracked extrema, not bucket edges.
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 1.0), 20.0);
}

TEST(EstimateQuantile, InterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  for (const double v : {2.0, 4.0, 6.0, 8.0, 10.0}) h.observe(v);
  for (const double v : {12.0, 14.0, 16.0, 18.0, 20.0}) h.observe(v);
  const MetricsSnapshot::HistogramData data = snapshot_histogram(h);
  // Rank 7.5 of 10: halfway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 0.75), 15.0);
  // The first bucket interpolates from the observed min, not from zero.
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 0.25), 2.0 + (10.0 - 2.0) * 0.5);
}

TEST(EstimateQuantile, OverflowBucketInterpolatesTowardMax) {
  Histogram h({10.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(25.0);
  h.observe(35.0);
  const MetricsSnapshot::HistogramData data = snapshot_histogram(h);
  // Rank 3.96 of 4 lies in the +Inf bucket: interpolate between the last
  // finite edge (10) and the observed max (35).
  const double p99 = estimate_quantile(data, 0.99);
  EXPECT_NEAR(p99, 10.0 + (35.0 - 10.0) * ((3.96 - 1.0) / 3.0), 1e-9);
  EXPECT_LE(p99, data.max);
  EXPECT_DOUBLE_EQ(estimate_quantile(data, 1.0), 35.0);
}

TEST(EstimateQuantile, EmptyHistogramIsNaN) {
  Histogram h({10.0});
  const MetricsSnapshot::HistogramData data = snapshot_histogram(h);
  EXPECT_TRUE(std::isnan(estimate_quantile(data, 0.5)));
}

// ----------------------------------------------------------- chrome trace

TEST(ChromeTrace, GoldenOutput) {
  const std::vector<SpanRecord> spans{
      {"run", 0, -1, 0, 100},
      {"allocation", 1, 0, 10, 40},
      {"payments", 1, 0, 60, 30},
  };
  std::ostringstream out;
  write_chrome_trace(out, spans, {{"tool", "obs_test"}});
  EXPECT_EQ(
      out.str(),
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"mcs\"}},"
      "{\"name\":\"run\",\"cat\":\"mcs\",\"ph\":\"X\",\"ts\":0,\"dur\":100,"
      "\"pid\":1,\"tid\":1,\"args\":{\"depth\":0,\"parent\":-1}},"
      "{\"name\":\"allocation\",\"cat\":\"mcs\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":40,\"pid\":1,\"tid\":1,\"args\":{\"depth\":1,\"parent\":0}},"
      "{\"name\":\"payments\",\"cat\":\"mcs\",\"ph\":\"X\",\"ts\":60,"
      "\"dur\":30,\"pid\":1,\"tid\":1,\"args\":{\"depth\":1,\"parent\":0}}"
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"obs_test\"}}\n");
}

TEST(ChromeTrace, LiveCollectorMatchesRenderTraceText) {
  TraceCollector trace;
  {
    const ScopedTrace guard(&trace);
    const TraceSpan root("run");
    {
      const TraceSpan child("allocation");
      (void)child;
    }
    const TraceSpan sibling("payments");
    (void)sibling;
  }
  std::ostringstream chrome;
  write_chrome_trace(chrome, trace);
  const io::JsonValue doc = io::parse_json(chrome.str());  // valid JSON
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u + trace.spans().size());
  EXPECT_EQ(events[0].at("ph").as_string(), "M");

  // The event sequence is the same preorder render_trace_text walks, with
  // identical names, depths, and parent links.
  std::ostringstream text;
  render_trace_text(text, trace);
  std::istringstream lines(text.str());
  std::string line;
  std::int64_t previous_ts = 0;
  for (std::size_t i = 0; i < trace.spans().size(); ++i) {
    const io::JsonValue& event = events[i + 1];
    ASSERT_TRUE(std::getline(lines, line));
    const std::size_t indent = line.find_first_not_of(' ');
    EXPECT_EQ(static_cast<std::int64_t>(indent) / 2,
              event.at("args").at("depth").as_int())
        << line;
    EXPECT_EQ(line.substr(indent, line.find("  ", indent) - indent),
              event.at("name").as_string());
    EXPECT_EQ(event.at("args").at("parent").as_int(),
              trace.spans()[i].parent);
    // Complete events arrive in open order: timestamps never go backwards.
    EXPECT_GE(event.at("ts").as_int(), previous_ts);
    previous_ts = event.at("ts").as_int();
  }
  EXPECT_FALSE(std::getline(lines, line));  // text had no extra spans
}

// ------------------------------------------------- headline preregistration

TEST(PreregisterHeadlineCounters, StableKeySetWithHelp) {
  MetricsRegistry registry;
  preregister_headline_counters(registry);
  const MetricsSnapshot snap = registry.snapshot();
  for (const char* name :
       {"matching.hungarian.iterations", "matching.hungarian.augmenting_paths",
        "matching.flow.augmenting_paths", "auction.critical_value.probes",
        "auction.greedy.allocation_runs",
        "auction.counterfactual.payment_forks",
        "auction.counterfactual.probe_forks",
        "auction.counterfactual.slots_replayed",
        "auction.counterfactual.slots_skipped"}) {
    ASSERT_TRUE(snap.counters.count(name) == 1) << name;
    EXPECT_EQ(snap.counters.at(name), 0) << name;
    EXPECT_FALSE(snap.help.at(name).empty()) << name;
  }
}

TEST(Exporters, TraceTextIndentsByDepth) {
  TraceCollector trace;
  {
    const ScopedTrace guard(&trace);
    const TraceSpan root("run");
    const TraceSpan child("allocation");
    (void)child;
  }
  std::ostringstream out;
  render_trace_text(out, trace);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("run  ", 0), 0u) << text;
  EXPECT_NE(text.find("\n  allocation  "), std::string::npos) << text;
}

}  // namespace
}  // namespace mcs::obs
