// Tests for the adaptive reserve-price learner: determinism, convergence
// toward the best fixed reserve on stationary workloads, sane regret, and
// config validation.
#include "sim/adaptive_reserve.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mcs::sim {
namespace {

AdaptiveReserveConfig small_config() {
  AdaptiveReserveConfig config;
  config.workload.num_slots = 15;
  config.workload.phone_arrival_rate = 3.0;
  config.workload.task_arrival_rate = 1.5;
  config.workload.mean_cost = 15.0;
  config.workload.task_value = Money::from_units(40);
  config.reserve_grid = {Money::from_units(5), Money::from_units(15),
                         Money::from_units(25), Money::from_units(35)};
  config.rounds = 40;
  config.seed = 99;
  return config;
}

TEST(AdaptiveReserve, ProducesOneRecordPerRound) {
  const AdaptiveReserveResult result = run_adaptive_reserve(small_config());
  ASSERT_EQ(result.rounds.size(), 40u);
  EXPECT_EQ(result.final_weights.size(), 4u);
  EXPECT_EQ(result.cumulative_by_arm.size(), 4u);
  double weight_sum = 0.0;
  for (const double w : result.final_weights) {
    EXPECT_GE(w, 0.0);
    weight_sum += w;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(AdaptiveReserve, DeterministicPerSeed) {
  const AdaptiveReserveResult a = run_adaptive_reserve(small_config());
  const AdaptiveReserveResult b = run_adaptive_reserve(small_config());
  EXPECT_EQ(a.cumulative_played, b.cumulative_played);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].played_arm, b.rounds[r].played_arm);
  }
}

TEST(AdaptiveReserve, ConcentratesOnTheBestFixedArm) {
  AdaptiveReserveConfig config = small_config();
  config.rounds = 80;
  const AdaptiveReserveResult result = run_adaptive_reserve(config);
  const std::size_t best = result.best_fixed_arm();
  // The heaviest final weight sits on the hindsight-best arm, and the
  // learner ends up playing it.
  const std::size_t heaviest = static_cast<std::size_t>(
      std::max_element(result.final_weights.begin(),
                       result.final_weights.end()) -
      result.final_weights.begin());
  EXPECT_EQ(heaviest, best);
  EXPECT_EQ(result.rounds.back().played_arm, best);
}

TEST(AdaptiveReserve, RegretIsSmallRelativeToTheObjective) {
  AdaptiveReserveConfig config = small_config();
  config.rounds = 80;
  const AdaptiveReserveResult result = run_adaptive_reserve(config);
  EXPECT_GE(result.total_regret(), -1e-9);  // best fixed arm dominates
  // The played sequence captures most of the best fixed arm's objective.
  const double best_total = result.cumulative_by_arm[result.best_fixed_arm()];
  ASSERT_GT(best_total, 0.0);
  EXPECT_GE(result.cumulative_played, 0.80 * best_total);
}

TEST(AdaptiveReserve, AverageRegretShrinksWithHorizon) {
  AdaptiveReserveConfig config = small_config();
  config.rounds = 20;
  const double early =
      run_adaptive_reserve(config).average_regret(config.rounds);
  config.rounds = 120;
  const double late =
      run_adaptive_reserve(config).average_regret(config.rounds);
  EXPECT_LE(late, early + 1e-9);
}

TEST(AdaptiveReserve, WelfareObjectiveFavorsGenerousReserves) {
  // With social welfare as the objective and ample value, larger reserves
  // (more tasks served) should win the weights.
  AdaptiveReserveConfig config = small_config();
  config.objective = AdaptiveReserveConfig::Objective::kSocialWelfare;
  config.rounds = 60;
  const AdaptiveReserveResult result = run_adaptive_reserve(config);
  // The best arm under welfare is the largest reserve in the grid (it
  // serves every profitable task).
  EXPECT_EQ(result.best_fixed_arm(), 3u);
}

TEST(AdaptiveReserve, ValidatesConfig) {
  AdaptiveReserveConfig config = small_config();
  config.reserve_grid.clear();
  EXPECT_THROW(run_adaptive_reserve(config), InvalidArgumentError);

  config = small_config();
  config.rounds = 0;
  EXPECT_THROW(run_adaptive_reserve(config), InvalidArgumentError);

  config = small_config();
  config.learning_rate = 0.0;
  EXPECT_THROW(run_adaptive_reserve(config), InvalidArgumentError);

  config = small_config();
  config.reserve_grid[0] = Money::from_units(-1);
  EXPECT_THROW(run_adaptive_reserve(config), InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::sim
