// Tests for the strategic-agent arena: the policy catalog and mix grammar,
// the pure-hash population assignment, the incentive-to-deviate probes
// (truthful mechanisms hold, the second-price baseline leaks), and the
// headline determinism contract -- identical leaderboard bytes at 1 and N
// worker threads.
#include "arena/arena.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arena/leaderboard.hpp"
#include "arena/match.hpp"
#include "arena/policy.hpp"
#include "arena/population.hpp"
#include "auction/counterfactual.hpp"
#include "common/error.hpp"
#include "model/paper_examples.hpp"
#include "obs/metrics.hpp"

namespace mcs::arena {
namespace {

model::TrueProfile profile(Slot::rep_type begin, Slot::rep_type end,
                           std::int64_t cost_units) {
  return model::TrueProfile{SlotInterval{Slot{begin}, Slot{end}},
                            Money::from_units(cost_units)};
}

// ------------------------------------------------------------- policies

TEST(ArenaPolicy, CatalogSpecsRoundTripThroughName) {
  for (const char* spec :
       {"truthful", "shade(1.5)", "delay(2)", "early(1)", "best-response"}) {
    EXPECT_EQ(make_policy(spec)->name(), spec) << spec;
  }
}

TEST(ArenaPolicy, ReportsFollowTheirStrategies) {
  Rng rng(7);
  const model::TrueProfile phone = profile(2, 6, 40);

  const model::Bid truthful = make_policy("truthful")->report(phone, rng);
  EXPECT_EQ(truthful, model::truthful_bid(phone));

  const model::Bid shaded = make_policy("shade(1.5)")->report(phone, rng);
  EXPECT_EQ(shaded.window, phone.active);
  EXPECT_EQ(shaded.claimed_cost, Money::from_units(60));

  const model::Bid delayed = make_policy("delay(2)")->report(phone, rng);
  EXPECT_EQ(delayed.window.begin(), Slot{4});
  EXPECT_EQ(delayed.window.end(), Slot{6});
  EXPECT_EQ(delayed.claimed_cost, phone.cost);

  // The delay clamps so the window stays nonempty (and legal).
  const model::Bid clamped = make_policy("delay(9)")->report(phone, rng);
  EXPECT_EQ(clamped.window.begin(), Slot{6});
  EXPECT_TRUE(model::is_legal_report(phone, clamped));
}

TEST(ArenaPolicy, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_policy("collude"), InvalidArgumentError);
  EXPECT_THROW((void)make_policy("shade"), InvalidArgumentError);
  EXPECT_THROW((void)make_policy("truthful(2)"), InvalidArgumentError);
  EXPECT_THROW((void)make_policy("shade(-1)"), InvalidArgumentError);
  EXPECT_THROW((void)make_policy("delay(-2)"), InvalidArgumentError);
  EXPECT_THROW((void)make_policy("shade(1.5"), InvalidArgumentError);
}

TEST(ArenaPolicy, BestResponderShadesToJustBelowItsCriticalValue) {
  // Fig. 4 round: phone 1 wins slot 1 truthfully (cost 5) with a bounded
  // critical value above its cost, so the informed attacker raises its
  // claim to one micro below that threshold -- and must still win.
  const model::Scenario s = model::fig4_scenario();
  const model::BidProfile bids = s.truthful_bids();
  const auction::CounterfactualEngine engine(s, bids,
                                             auction::OnlineGreedyConfig{});
  const PhoneId self{1};

  const auto probe = engine.critical_value_of(self);
  ASSERT_TRUE(probe.winnable);
  ASSERT_TRUE(probe.critical.has_value());
  ASSERT_GT(*probe.critical, bids[1].claimed_cost);

  const BestResponsePolicy best;
  const model::Bid response = best.respond(engine, self);
  EXPECT_EQ(response.window, bids[1].window);
  EXPECT_EQ(response.claimed_cost,
            Money::from_micros(probe.critical->micros() - 1));
  EXPECT_TRUE(engine.wins_with_cost(self, response.claimed_cost));
  EXPECT_FALSE(engine.wins_with_cost(self, *probe.critical));
}

// ------------------------------------------------------------ mix grammar

TEST(ArenaMix, ParsesNamesWeightsAndDefaults) {
  const PolicyMix mix = PolicyMix::parse("shaded=truthful:3,shade(1.5):1");
  EXPECT_EQ(mix.name(), "shaded");
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix.entries()[0].policy->name(), "truthful");
  EXPECT_DOUBLE_EQ(mix.entries()[0].weight, 3.0);
  EXPECT_EQ(mix.entries()[1].policy->name(), "shade(1.5)");
  EXPECT_DOUBLE_EQ(mix.entries()[1].weight, 1.0);
  EXPECT_EQ(mix.describe(), "truthful:3,shade(1.5):1");

  // No '=' name: the spec itself is the display name; weights default to 1.
  const PolicyMix bare = PolicyMix::parse("shade(1.5)");
  EXPECT_EQ(bare.name(), "shade(1.5)");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_DOUBLE_EQ(bare.entries()[0].weight, 1.0);
}

TEST(ArenaMix, RejectsMalformedMixes) {
  EXPECT_THROW((void)PolicyMix::parse(""), InvalidArgumentError);
  EXPECT_THROW((void)PolicyMix::parse("crew="), InvalidArgumentError);
  EXPECT_THROW((void)PolicyMix::parse("truthful,,shade(1.5)"),
               InvalidArgumentError);
  EXPECT_THROW((void)PolicyMix::parse("truthful:0"), InvalidArgumentError);
  EXPECT_THROW((void)PolicyMix::parse("truthful:-1"), InvalidArgumentError);
  EXPECT_THROW((void)PolicyMix::parse("truthful:nope"), InvalidArgumentError);
}

TEST(ArenaMix, AssignmentIsAPureFunctionOfSeedRoundAndPhone) {
  const PolicyMix mix = PolicyMix::parse("truthful:3,shade(1.5):1");
  std::int64_t shaded = 0;
  constexpr std::int64_t kPhones = 4000;
  for (std::int64_t i = 0; i < kPhones; ++i) {
    const PhoneId phone{static_cast<PhoneId::rep_type>(i)};
    const std::size_t first = mix.assign(99, 7, phone);
    EXPECT_EQ(first, mix.assign(99, 7, phone));  // replayable
    EXPECT_LT(first, mix.size());
    if (first == 1) ++shaded;
  }
  // 3:1 weights => ~25% shaded; allow a generous band for one fixed seed.
  EXPECT_GT(shaded, kPhones / 5);
  EXPECT_LT(shaded, kPhones / 3);
}

// --------------------------------------------------------------- matches

ArenaConfig small_config() {
  ArenaConfig config;
  config.rounds = 24;
  config.match.seed = 42;
  config.match.probes_per_policy = 3;
  config.match.workload.num_slots = 8;
  config.match.workload.phone_arrival_rate = 3.0;
  config.match.workload.task_arrival_rate = 1.5;
  // Reserve at the task value: the documented configuration under which
  // the online mechanism stays exactly truthful even through scarcity.
  config.match.greedy.reserve_price = config.match.workload.task_value;
  config.mechanisms = {"online", "offline", "second-price"};
  config.mixes = {"truthful", "shaded=truthful:3,shade(1.5):1"};
  return config;
}

TEST(Arena, GridShapeAndSharedVcgReference) {
  const ArenaResult result = run_arena(small_config());
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_EQ(result.cells[0].mechanism, "online-greedy");
  EXPECT_EQ(result.cells[0].mix, "truthful");
  EXPECT_EQ(result.cells[1].mix, "shaded");
  EXPECT_EQ(result.cells[2].mechanism, "offline-vcg");
  EXPECT_GT(result.vcg_reference_payment, Money{});
  // Every cell sees the same round stream, so the number of assigned agents
  // (= phones summed over rounds) is identical across the grid.
  std::int64_t expected_agents = 0;
  for (const CellResult::PolicySummary& policy : result.cells[0].policies) {
    expected_agents += policy.agents;
  }
  EXPECT_GT(expected_agents, 0);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.rounds, 24);
    EXPECT_EQ(cell.vcg_payment, result.vcg_reference_payment);
    EXPECT_GT(cell.payment_vs_vcg, 0.0);
    std::int64_t agents = 0;
    for (const CellResult::PolicySummary& policy : cell.policies) {
      agents += policy.agents;
      EXPECT_GE(policy.winners, 0);
      EXPECT_LE(policy.winners, policy.agents);
    }
    EXPECT_EQ(agents, expected_agents)
        << "every phone of every round is assigned exactly one policy";
  }
  // The same rounds under the same mix allocate identically across
  // mechanisms sharing the greedy allocation rule.
  EXPECT_EQ(result.cells[0].social_welfare, result.cells[4].social_welfare);
}

TEST(Arena, TruthfulMechanismsKeepDeviationGainsNonpositive) {
  const ArenaResult result = run_arena(small_config());
  constexpr std::int64_t kToleranceMicros = 1;
  bool second_price_leaks = false;
  for (const CellResult& cell : result.cells) {
    for (const CellResult::PolicySummary& policy : cell.policies) {
      if (policy.probes == 0) continue;
      if (cell.mechanism == "online-greedy" ||
          cell.mechanism == "offline-vcg") {
        EXPECT_LE(policy.max_deviation_gain.micros(), kToleranceMicros)
            << cell.mechanism << " | " << cell.mix << " | " << policy.policy;
      } else if (policy.max_deviation_gain.micros() > kToleranceMicros) {
        second_price_leaks = true;
      }
    }
  }
  EXPECT_TRUE(second_price_leaks)
      << "the Fig. 5 manipulation must show up as a positive "
         "incentive-to-deviate for the second-price baseline";
}

TEST(Arena, LeaderboardBytesAreIdenticalAcrossThreadCounts) {
  ArenaConfig config = small_config();
  config.mixes.push_back("br=truthful:2,best-response:1");

  const auto render = [](const ArenaResult& result) {
    std::ostringstream json;
    write_arena_json(json, result);
    std::ostringstream markdown;
    render_arena_markdown(markdown, result);
    return std::make_pair(json.str(), markdown.str());
  };

  config.threads = 1;
  obs::MetricsRegistry serial_metrics;
  std::optional<ArenaResult> serial;
  {
    const obs::ScopedRegistry telemetry(&serial_metrics);
    serial.emplace(run_arena(config));
  }
  const auto [serial_json, serial_md] = render(*serial);
  EXPECT_NE(serial_json.find("\"schema\":\"mcs.arena.v1\""), std::string::npos);

  for (const int threads : {2, 8}) {
    config.threads = threads;
    obs::MetricsRegistry parallel_metrics;
    std::optional<ArenaResult> parallel;
    {
      const obs::ScopedRegistry telemetry(&parallel_metrics);
      parallel.emplace(run_arena(config));
    }
    const auto [parallel_json, parallel_md] = render(*parallel);
    EXPECT_EQ(serial_json, parallel_json) << "threads=" << threads;
    EXPECT_EQ(serial_md, parallel_md) << "threads=" << threads;
    // Worker-local registries merge to the serial counters exactly.
    EXPECT_EQ(serial_metrics.snapshot().counters,
              parallel_metrics.snapshot().counters)
        << "threads=" << threads;
  }
}

TEST(Arena, RejectsEmptyGridsAndUnknownSpecs) {
  ArenaConfig config = small_config();
  config.mechanisms.clear();
  EXPECT_THROW((void)run_arena(config), InvalidArgumentError);

  config = small_config();
  config.mechanisms = {"fifth-price"};
  EXPECT_THROW((void)run_arena(config), InvalidArgumentError);

  config = small_config();
  config.mixes = {"truthful:0"};
  EXPECT_THROW((void)run_arena(config), InvalidArgumentError);
}

TEST(Arena, MechanismSpecsCoverTheInTreeCatalog) {
  const MatchConfig match;
  EXPECT_EQ(make_arena_mechanism("online", match)->name(), "online-greedy");
  EXPECT_EQ(make_arena_mechanism("offline", match)->name(), "offline-vcg");
  EXPECT_EQ(make_arena_mechanism("second-price", match)->name(),
            "per-slot-second-price");
  EXPECT_EQ(make_arena_mechanism("posted(30)", match)->name(),
            "posted-price(30)");
  EXPECT_EQ(make_arena_mechanism("patience(2)", match)->name(),
            "patience-greedy(P=2)");
  EXPECT_THROW((void)make_arena_mechanism("posted", match),
               InvalidArgumentError);
  EXPECT_THROW((void)make_arena_mechanism("online(3)", match),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mcs::arena
