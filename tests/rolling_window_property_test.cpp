// Property test for RollingWindowAggregator: under randomized increment
// sizes, randomized (including zero-span) sample timings, and capacities
// small enough to force ring trims, the per-window deltas must always sum
// back to the cumulative totals -- no event is ever lost or double-counted
// by the windowing, and the windows chain gaplessly in time.
#include "obs/rolling_window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "obs/econ_metrics.hpp"
#include "obs/latency_sketch.hpp"

namespace mcs::obs {
namespace {

struct FoldedTotals {
  std::int64_t submitted{0};
  std::int64_t processed{0};
  std::int64_t rejected{0};
  std::int64_t rounds_closed{0};
  std::uint64_t wait_samples{0};
  std::uint64_t latency_samples{0};
};

TEST(RollingWindowProperty, WindowDeltasSumToCumulativeTotals) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> small(0, 7);
  std::uniform_int_distribution<std::uint64_t> advance(0, 2'000'000'000ULL);
  std::uniform_int_distribution<std::uint64_t> sample_ns(1, 5'000'000ULL);
  std::uniform_int_distribution<std::size_t> capacity_of(1, 5);

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t capacity = capacity_of(rng);
    RollingWindowAggregator aggregator(0, capacity);
    LatencySketch wait;
    LatencySketch latency;
    LiveCumulative cumulative;
    FoldedTotals folded;
    std::uint64_t previous_end = 0;
    const int rolls = 40;  // >> capacity: every trial trims the ring

    for (int roll = 0; roll < rolls; ++roll) {
      // Monotone counters grow by random amounts; sketches get a random
      // number of samples; time advances by a random (possibly zero) span.
      const int new_processed = small(rng);
      cumulative.submitted += small(rng);
      cumulative.processed += new_processed;
      cumulative.rejected += small(rng);
      cumulative.rounds_closed += small(rng);
      cumulative.queue_depth = small(rng);
      cumulative.window_watermark = cumulative.queue_depth + small(rng);
      for (int s = 0; s < new_processed; ++s) wait.record_ns(sample_ns(rng));
      for (int s = 0; s < small(rng); ++s) latency.record_ns(sample_ns(rng));
      cumulative.queue_wait = wait.snapshot();
      cumulative.round_latency = latency.snapshot();
      cumulative.at_ns += advance(rng);

      const WindowStats& window = aggregator.roll(cumulative);
      EXPECT_EQ(window.index, roll);
      EXPECT_EQ(window.begin_ns, previous_end) << "windows chain gaplessly";
      EXPECT_EQ(window.end_ns, cumulative.at_ns);
      EXPECT_GE(window.submitted, 0);
      EXPECT_GE(window.processed, 0);
      if (window.seconds() > 0.0) {
        EXPECT_NEAR(window.events_per_sec * window.seconds(),
                    static_cast<double>(window.processed), 1e-6);
      } else {
        EXPECT_DOUBLE_EQ(window.events_per_sec, 0.0)
            << "zero-span windows must not divide by zero";
      }
      previous_end = window.end_ns;

      folded.submitted += window.submitted;
      folded.processed += window.processed;
      folded.rejected += window.rejected;
      folded.rounds_closed += window.rounds_closed;
      folded.wait_samples += window.queue_wait.count;
      folded.latency_samples += window.round_latency.count;
    }

    // The conservation law: folding every window delta reproduces the
    // cumulative totals exactly, trims notwithstanding (the ring only
    // bounds *retention*, never the deltas handed back by roll()).
    EXPECT_EQ(folded.submitted, cumulative.submitted);
    EXPECT_EQ(folded.processed, cumulative.processed);
    EXPECT_EQ(folded.rejected, cumulative.rejected);
    EXPECT_EQ(folded.rounds_closed, cumulative.rounds_closed);
    EXPECT_EQ(folded.wait_samples, cumulative.queue_wait.count);
    EXPECT_EQ(folded.latency_samples, cumulative.round_latency.count);
    EXPECT_LE(aggregator.windows().size(), capacity);
    EXPECT_EQ(aggregator.next_index(), rolls);
  }
}

TEST(RollingWindowProperty, EconAggregatorObeysTheSameConservationLaw) {
  // The economic twin must satisfy the identical fold-back property for
  // its Money counters (exact micros) and ratio sketches.
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> small(0, 6);
  std::uniform_int_distribution<std::int64_t> micros(0, 9'000'000);
  std::uniform_int_distribution<std::uint64_t> advance(0, 3'000'000'000ULL);

  for (int trial = 0; trial < 10; ++trial) {
    EconWindowAggregator aggregator(0, 3);
    LatencySketch fairness;
    EconCumulative cumulative;
    std::int64_t folded_rounds = 0;
    std::int64_t folded_payment = 0;
    std::int64_t folded_violations = 0;
    std::uint64_t folded_fairness = 0;

    for (int roll = 0; roll < 25; ++roll) {
      cumulative.rounds += small(rng);
      cumulative.payment_micros += micros(rng);
      cumulative.claimed_cost_micros += micros(rng);
      cumulative.violations += small(rng) == 0 ? 1 : 0;
      for (int s = 0; s < small(rng); ++s) {
        fairness.record_ns(ratio_to_sketch_units(0.5));
      }
      cumulative.fairness = fairness.snapshot();
      cumulative.at_ns += advance(rng);

      const EconWindowStats& window = aggregator.roll(cumulative);
      folded_rounds += window.rounds;
      folded_payment += window.payment_micros;
      folded_violations += window.violations;
      folded_fairness += window.fairness.count;
    }

    EXPECT_EQ(folded_rounds, cumulative.rounds);
    EXPECT_EQ(folded_payment, cumulative.payment_micros);
    EXPECT_EQ(folded_violations, cumulative.violations);
    EXPECT_EQ(folded_fairness, cumulative.fairness.count);
    EXPECT_LE(aggregator.windows().size(), 3u);
  }
}

}  // namespace
}  // namespace mcs::obs
