// Tests for the Bertsekas auction solver, completing the four-way solver
// cross-validation (auction vs Hungarian vs min-cost flow vs brute force).
#include "matching/auction_algorithm.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "matching/brute_force.hpp"
#include "matching/hungarian.hpp"
#include "matching/min_cost_flow.hpp"
#include "matching/validation.hpp"

namespace mcs::matching {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(AuctionAlgorithm, SimpleInstance) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(10));
  g.set(0, 1, mu(1));
  g.set(1, 0, mu(9));
  g.set(1, 1, mu(2));
  const Matching m = auction_max_weight_matching(g);
  EXPECT_EQ(m.total_weight, mu(12));
  EXPECT_EQ(m.row_to_col[0], 0);
  EXPECT_EQ(m.row_to_col[1], 1);
  validate_matching(g, m);
}

TEST(AuctionAlgorithm, SkipsNegativeEdges) {
  WeightMatrix g(2, 2);
  g.set(0, 0, mu(5));
  g.set(1, 1, mu(-3));
  const Matching m = auction_max_weight_matching(g);
  EXPECT_EQ(m.total_weight, mu(5));
  EXPECT_FALSE(m.row_to_col[1].has_value());
}

TEST(AuctionAlgorithm, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(auction_max_weight_matching(WeightMatrix(0, 5)).total_weight,
            Money{});
  const Matching m = auction_max_weight_matching(WeightMatrix(3, 2));
  EXPECT_EQ(m.size(), 0u);
}

TEST(AuctionAlgorithm, ContestedColumnGoesToTheHeavierRow) {
  WeightMatrix g(2, 1);
  g.set(0, 0, mu(3));
  g.set(1, 0, mu(8));
  const Matching m = auction_max_weight_matching(g);
  EXPECT_EQ(m.row_to_col[1], 0);
  EXPECT_FALSE(m.row_to_col[0].has_value());
  EXPECT_EQ(m.total_weight, mu(8));
}

TEST(AuctionAlgorithm, FractionalMicroWeights) {
  // Optimality must hold at micro granularity, not just whole units.
  WeightMatrix g(2, 2);
  g.set(0, 0, Money::from_micros(1'000'001));
  g.set(0, 1, Money::from_micros(1'000'000));
  g.set(1, 0, Money::from_micros(1'000'000));
  g.set(1, 1, Money::from_micros(999'998));
  const Matching m = auction_max_weight_matching(g);
  // (0,0)+(1,1) = 2000 -1? : 1000001+999998 = 1999999 vs (0,1)+(1,0) =
  // 2000000 -- the cross pairing wins by one micro.
  EXPECT_EQ(m.total_weight, Money::from_micros(2'000'000));
}

using Shape = std::tuple<int, int, std::int64_t, int>;

class AuctionCrossCheck : public ::testing::TestWithParam<Shape> {};

TEST_P(AuctionCrossCheck, AgreesWithAllOtherSolvers) {
  const auto [rows, cols, range, density] = GetParam();
  Rng rng(31007);
  for (int trial = 0; trial < 30; ++trial) {
    WeightMatrix g(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (rng.uniform_int(0, 99) < density) {
          g.set(r, c, Money::from_units(rng.uniform_int(-range, range)));
        }
      }
    }
    const Matching via_auction = auction_max_weight_matching(g);
    validate_matching(g, via_auction);
    ASSERT_EQ(recompute_weight(g, via_auction), via_auction.total_weight);

    MaxWeightMatcher hungarian(g);
    const Matching oracle = brute_force_max_weight(g);
    ASSERT_EQ(via_auction.total_weight, oracle.total_weight)
        << "auction vs oracle, trial " << trial;
    ASSERT_EQ(hungarian.total_weight(), oracle.total_weight);
    ASSERT_EQ(max_weight_matching_via_flow(g).total_weight,
              oracle.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AuctionCrossCheck,
                         ::testing::Values(Shape{4, 4, 20, 100},
                                           Shape{5, 7, 25, 60},
                                           Shape{7, 5, 25, 60},
                                           Shape{6, 6, 2, 90},
                                           Shape{3, 9, 40, 50},
                                           Shape{8, 8, 15, 30}));

}  // namespace
}  // namespace mcs::matching
