// Unit tests for the exact fixed-point Money type. Auction properties are
// knife-edge on exact arithmetic, so these tests pin down representation,
// rounding, and formatting behavior precisely.
#include "common/money.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <sstream>

namespace mcs {
namespace {

using money_literals::operator""_mu;

TEST(Money, DefaultIsZero) {
  const Money m;
  EXPECT_TRUE(m.is_zero());
  EXPECT_FALSE(m.is_negative());
  EXPECT_EQ(m.micros(), 0);
}

TEST(Money, FromUnitsScalesByAMillion) {
  EXPECT_EQ(Money::from_units(25).micros(), 25'000'000);
  EXPECT_EQ(Money::from_units(-3).micros(), -3'000'000);
}

TEST(Money, LiteralMatchesFromUnits) {
  EXPECT_EQ(25_mu, Money::from_units(25));
  EXPECT_EQ(0_mu, Money{});
}

TEST(Money, FromMicrosRoundTrips) {
  const Money m = Money::from_micros(123'456'789);
  EXPECT_EQ(m.micros(), 123'456'789);
}

TEST(Money, AdditionAndSubtraction) {
  EXPECT_EQ(3_mu + 4_mu, 7_mu);
  EXPECT_EQ(3_mu - 4_mu, Money::from_units(-1));
  Money m = 10_mu;
  m += 5_mu;
  EXPECT_EQ(m, 15_mu);
  m -= 20_mu;
  EXPECT_EQ(m, Money::from_units(-5));
}

TEST(Money, UnaryNegation) {
  EXPECT_EQ(-(3_mu), Money::from_units(-3));
  EXPECT_EQ(-Money{}, Money{});
}

TEST(Money, ScalarMultiplication) {
  EXPECT_EQ(3_mu * 4, 12_mu);
  EXPECT_EQ(4 * (3_mu), 12_mu);
  EXPECT_EQ(3_mu * 0, Money{});
  EXPECT_EQ(3_mu * -2, Money::from_units(-6));
}

TEST(Money, ComparisonsAreExact) {
  EXPECT_LT(Money::from_micros(1), Money::from_micros(2));
  EXPECT_LE(3_mu, 3_mu);
  EXPECT_GT(3_mu + Money::from_micros(1), 3_mu);
  EXPECT_NE(3_mu, Money::from_micros(3'000'001));
}

TEST(Money, FromDoubleRoundsToNearestMicro) {
  EXPECT_EQ(Money::from_double(1.5).micros(), 1'500'000);
  EXPECT_EQ(Money::from_double(0.0000005).micros(), 1);  // round half up
  EXPECT_EQ(Money::from_double(-2.25).micros(), -2'250'000);
}

TEST(Money, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(std::ignore = Money::from_double(std::numeric_limits<double>::infinity()),
               ContractViolation);
  EXPECT_THROW(std::ignore = Money::from_double(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
}

TEST(Money, FromDoubleRejectsOutOfRange) {
  EXPECT_THROW(std::ignore = Money::from_double(1e18), ContractViolation);
}

TEST(Money, ToDoubleInverseOfFromUnits) {
  EXPECT_DOUBLE_EQ((25_mu).to_double(), 25.0);
  EXPECT_DOUBLE_EQ(Money::from_micros(1'500'000).to_double(), 1.5);
}

TEST(Money, RatioToComputesExactQuotient) {
  EXPECT_DOUBLE_EQ((3_mu).ratio_to(4_mu), 0.75);
  EXPECT_DOUBLE_EQ((Money::from_units(-1)).ratio_to(2_mu), -0.5);
}

TEST(Money, RatioToRejectsZeroDenominator) {
  EXPECT_THROW(std::ignore = (3_mu).ratio_to(Money{}), ContractViolation);
}

TEST(Money, ToStringWholeUnits) {
  EXPECT_EQ((25_mu).to_string(), "25");
  EXPECT_EQ(Money{}.to_string(), "0");
  EXPECT_EQ(Money::from_units(-7).to_string(), "-7");
}

TEST(Money, ToStringTrimsTrailingZeros) {
  EXPECT_EQ(Money::from_micros(1'500'000).to_string(), "1.5");
  EXPECT_EQ(Money::from_micros(1'230'000).to_string(), "1.23");
  EXPECT_EQ(Money::from_micros(1).to_string(), "0.000001");
  EXPECT_EQ(Money::from_micros(-2'000'001).to_string(), "-2.000001");
}

TEST(Money, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Money::from_micros(1'500'000);
  EXPECT_EQ(os.str(), "1.5");
}

TEST(Money, MaxLeavesSummationHeadroom) {
  // A couple of max() sentinels may be added without signed overflow.
  const Money m = Money::max();
  EXPECT_NO_THROW({
    const Money sum = m + m;
    EXPECT_GT(sum, m);
  });
}

TEST(Money, IsNegative) {
  EXPECT_TRUE(Money::from_units(-1).is_negative());
  EXPECT_FALSE(Money{}.is_negative());
  EXPECT_FALSE((1_mu).is_negative());
}

}  // namespace
}  // namespace mcs
