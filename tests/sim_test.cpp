// Tests for the simulation layer: determinism, aggregate sanity, sweeps,
#include <tuple>
// and the figure registry that drives the bench binaries.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

namespace mcs::sim {
namespace {

SimulationConfig small_config() {
  SimulationConfig config;
  config.workload.num_slots = 10;
  config.workload.phone_arrival_rate = 4.0;
  config.workload.task_arrival_rate = 2.0;
  config.workload.mean_cost = 10.0;
  config.workload.task_value = Money::from_units(25);
  config.repetitions = 5;
  config.base_seed = 11;
  return config;
}

TEST(Simulator, DeterministicForFixedSeed) {
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const SimulationResult a = simulate(config, mechanisms.pointers());
  const SimulationResult b = simulate(config, mechanisms.pointers());
  ASSERT_EQ(a.mechanisms.size(), 2u);
  EXPECT_DOUBLE_EQ(a.mechanisms[0].social_welfare.mean(),
                   b.mechanisms[0].social_welfare.mean());
  EXPECT_DOUBLE_EQ(a.mechanisms[1].overpayment_ratio.mean(),
                   b.mechanisms[1].overpayment_ratio.mean());
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const SimulationResult a = simulate(config, mechanisms.pointers());
  config.base_seed = 12;
  const SimulationResult b = simulate(config, mechanisms.pointers());
  EXPECT_NE(a.mechanisms[0].social_welfare.mean(),
            b.mechanisms[0].social_welfare.mean());
}

TEST(Simulator, OfflineWelfareDominatesOnline) {
  // Per-round the offline optimum is >= the greedy welfare; so are means.
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const SimulationResult result = simulate(config, mechanisms.pointers());
  const MechanismAggregate& online = result.by_name("online-greedy");
  const MechanismAggregate& offline = result.by_name("offline-vcg");
  EXPECT_GE(offline.social_welfare.mean(), online.social_welfare.mean());
  EXPECT_EQ(online.social_welfare.count(), 5u);
}

TEST(Simulator, TracksWorkloadShape) {
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const SimulationResult result = simulate(config, mechanisms.pointers());
  // E[phones] = 40, E[tasks] = 20 for this config; loose sanity bounds.
  EXPECT_GT(result.phones_per_round.mean(), 10.0);
  EXPECT_LT(result.phones_per_round.mean(), 100.0);
  EXPECT_GT(result.tasks_per_round.mean(), 4.0);
  EXPECT_LT(result.tasks_per_round.mean(), 60.0);
}

TEST(Simulator, ByNameThrowsForUnknownMechanism) {
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const SimulationResult result = simulate(config, mechanisms.pointers());
  EXPECT_THROW(std::ignore = result.by_name("nonexistent"), InvalidArgumentError);
}

TEST(Simulator, RejectsBadArguments) {
  SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  config.repetitions = 0;
  EXPECT_THROW(simulate(config, mechanisms.pointers()), ContractViolation);
  config = small_config();
  EXPECT_THROW(simulate(config, {}), ContractViolation);
  EXPECT_THROW(simulate(config, {nullptr}), ContractViolation);
}

TEST(Sweep, OnePointPerXValue) {
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  const std::vector<SweepPoint> points = run_sweep(
      config, {5, 10, 15},
      [](model::WorkloadConfig& w, double x) {
        w.num_slots = static_cast<Slot::rep_type>(x);
      },
      mechanisms.pointers());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 5.0);
  EXPECT_DOUBLE_EQ(points[2].x, 15.0);
  // Welfare grows with the horizon (Fig. 6 trend).
  EXPECT_LT(points[0].result.mechanisms[1].social_welfare.mean(),
            points[2].result.mechanisms[1].social_welfare.mean());
}

TEST(Sweep, RejectsEmptyInputs) {
  const SimulationConfig config = small_config();
  const StandardMechanisms mechanisms;
  EXPECT_THROW(
      run_sweep(config, {}, [](model::WorkloadConfig&, double) {},
                mechanisms.pointers()),
      ContractViolation);
  EXPECT_THROW(run_sweep(config, {1.0}, nullptr, mechanisms.pointers()),
               ContractViolation);
}

TEST(Figures, RegistryHasAllSixEvaluationFigures) {
  const std::vector<FigureSpec>& figures = all_figures();
  ASSERT_EQ(figures.size(), 6u);
  for (const char* id : {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}) {
    EXPECT_NO_THROW(std::ignore = figure(id)) << id;
  }
  EXPECT_THROW(std::ignore = figure("fig99"), InvalidArgumentError);
  // Paper x-axes.
  EXPECT_EQ(figure("fig6").xs, (std::vector<double>{30, 40, 50, 60, 70, 80}));
  EXPECT_EQ(figure("fig7").xs, (std::vector<double>{4, 5, 6, 7, 8}));
  EXPECT_EQ(figure("fig8").xs, (std::vector<double>{10, 20, 30, 40, 50}));
  EXPECT_EQ(figure("fig9").metric, FigureMetric::kOverpaymentRatio);
  EXPECT_EQ(figure("fig6").metric, FigureMetric::kSocialWelfare);
}

TEST(Figures, MutatorsTouchTheRightField) {
  model::WorkloadConfig w;
  figure("fig6").mutate(w, 70);
  EXPECT_EQ(w.num_slots, 70);
  figure("fig7").mutate(w, 7.5);
  EXPECT_DOUBLE_EQ(w.phone_arrival_rate, 7.5);
  figure("fig11").mutate(w, 40);
  EXPECT_DOUBLE_EQ(w.mean_cost, 40.0);
}

TEST(Figures, RunFigureOverpaymentMetric) {
  // The sigma figures flow through the other branch of run_figure.
  FigureSpec spec = figure("fig9");
  spec.xs = {5, 8};
  SimulationConfig base = small_config();
  base.repetitions = 3;
  const FigureSeries series = run_figure(spec, base);
  ASSERT_EQ(series.rows.size(), 2u);
  EXPECT_EQ(series.header[1], "online_overpayment_ratio");
  EXPECT_EQ(series.header[2], "offline_overpayment_ratio");
  for (const auto& row : series.rows) {
    EXPECT_GE(std::stod(row[1]), 0.0);
    EXPECT_NE(row[1].find('.'), std::string::npos);
  }
  // Numeric series are filled alongside the textual rows, and the chart
  // renders from them.
  ASSERT_EQ(series.xs.size(), 2u);
  ASSERT_EQ(series.online_means.size(), 2u);
  ASSERT_EQ(series.offline_means.size(), 2u);
  EXPECT_FALSE(series.to_chart().empty());
}

TEST(Figures, RunFigureProducesSeriesWithCis) {
  // A downscaled fig6: tiny rounds, few reps -- checks plumbing, not the
  // paper's numbers (the bench binaries run the real settings).
  FigureSpec spec = figure("fig6");
  spec.xs = {4, 8};
  SimulationConfig base = small_config();
  base.repetitions = 3;
  const FigureSeries series = run_figure(spec, base);
  EXPECT_EQ(series.id, "fig6");
  ASSERT_EQ(series.rows.size(), 2u);
  ASSERT_EQ(series.header.size(), 5u);
  EXPECT_EQ(series.header[0], "m");
  for (const auto& row : series.rows) {
    EXPECT_EQ(row.size(), 5u);
  }
  // Table rendering holds the same data.
  const io::TextTable table = series.to_table();
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 5u);
}

}  // namespace
}  // namespace mcs::sim
