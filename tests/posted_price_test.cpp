// Tests for the posted-price baseline and the hindsight-optimal price.
#include "auction/posted_price.hpp"

#include <gtest/gtest.h>

#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/offline_vcg.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

namespace mcs::auction {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

TEST(PostedPrice, OnlyWillingPhonesServe) {
  const model::Scenario s = model::ScenarioBuilder(1)
                                .value(20)
                                .phone(1, 1, 4)
                                .phone(1, 1, 9)
                                .tasks(1, 2)
                                .build();
  const PostedPriceMechanism mechanism(mu(6));
  const Outcome outcome = mechanism.run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  EXPECT_FALSE(outcome.allocation.is_winner(PhoneId{1}));  // cost 9 > 6
  EXPECT_EQ(outcome.payments[0], mu(6));
  EXPECT_EQ(outcome.allocation.allocated_count(), 1);
}

TEST(PostedPrice, QueueDisciplineIsArrivalThenId) {
  const model::Scenario s = model::ScenarioBuilder(3)
                                .value(20)
                                .phone(2, 3, 1)  // cheap but arrives later
                                .phone(1, 3, 5)  // first in queue
                                .task(3)
                                .build();
  const Outcome outcome = PostedPriceMechanism(mu(10)).run_truthful(s);
  EXPECT_TRUE(outcome.allocation.is_winner(PhoneId{1}));
  EXPECT_FALSE(outcome.allocation.is_winner(PhoneId{0}));
}

TEST(PostedPrice, RejectsNegativePrice) {
  EXPECT_THROW(PostedPriceMechanism(Money::from_units(-1)),
               ContractViolation);
}

TEST(PostedPrice, NameCarriesThePrice) {
  EXPECT_EQ(PostedPriceMechanism(mu(7)).name(), "posted-price(7)");
}

TEST(PostedPrice, TruthfulAndRationalOnFig4) {
  const model::Scenario s = model::fig4_scenario();
  for (const std::int64_t price : {2, 6, 9, 12}) {
    const PostedPriceMechanism mechanism(mu(price));
    EXPECT_TRUE(analysis::audit_truthfulness(mechanism, s).truthful())
        << "price " << price;
    EXPECT_TRUE(analysis::audit_individual_rationality(mechanism, s)
                    .individually_rational())
        << "price " << price;
  }
}

TEST(PostedPrice, BestPriceIsOptimalAmongCandidates) {
  const model::Scenario s = model::fig4_scenario();
  const Money best = best_posted_price(s);
  const Money best_welfare =
      PostedPriceMechanism(best).run_truthful(s).social_welfare(s);
  for (const model::TrueProfile& phone : s.phones) {
    const Money welfare = PostedPriceMechanism(phone.cost)
                              .run_truthful(s)
                              .social_welfare(s);
    EXPECT_LE(welfare, best_welfare) << "price " << phone.cost;
  }
  // And between candidate prices nothing changes (allocation is a step
  // function of the price at cost values), so `best` is globally optimal.
}

TEST(PostedPrice, BestPriceOfEmptyScenarioIsZero) {
  const model::Scenario s = model::ScenarioBuilder(2).value(10).task(1).build();
  EXPECT_EQ(best_posted_price(s), Money{});
}

TEST(PostedPrice, EvenBestFixedPriceTrailsTheAdaptiveMechanisms) {
  // The calibration claim: on generated rounds, the hindsight-best posted
  // price still loses welfare to the offline optimum (and the gap is the
  // value of adaptive pricing).
  Rng rng(505);
  model::WorkloadConfig workload;
  workload.num_slots = 15;
  workload.task_value = mu(50);
  double posted_total = 0.0;
  double offline_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const model::Scenario s = model::generate_scenario(workload, rng);
    const Money best = best_posted_price(s);
    posted_total += PostedPriceMechanism(best)
                        .run_truthful(s)
                        .social_welfare(s)
                        .to_double();
    offline_total += OfflineVcgMechanism{}
                         .run_truthful(s)
                         .social_welfare(s)
                         .to_double();
  }
  EXPECT_LT(posted_total, offline_total);
  EXPECT_GT(posted_total, 0.0);
}

}  // namespace
}  // namespace mcs::auction
