// Tests for the terminal chart renderer used by the figure benches.
#include "io/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace mcs::io {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(AsciiChart, DimensionsMatchConfiguration) {
  const AsciiChart chart(40, 8);
  const std::string out =
      chart.to_string({1, 2, 3}, {ChartSeries{"s", {1.0, 2.0, 3.0}, 'o'}});
  const std::vector<std::string> lines = lines_of(out);
  // 8 plot rows + x axis rule + x labels + legend.
  ASSERT_EQ(lines.size(), 11u);
  // Every plot row: 10 label chars + " |" + width.
  EXPECT_EQ(lines[0].size(), 10u + 2u + 40u);
}

TEST(AsciiChart, ExtremesLandOnTopAndBottomRows) {
  const AsciiChart chart(20, 5);
  const std::string out =
      chart.to_string({0, 1}, {ChartSeries{"s", {0.0, 10.0}, 'o'}});
  const std::vector<std::string> lines = lines_of(out);
  // Max (10.0) on the first plot row, rightmost column; min on the last
  // plot row, leftmost column.
  EXPECT_EQ(lines[0].back(), 'o');
  EXPECT_EQ(lines[4][12], 'o');
}

TEST(AsciiChart, CollisionsBecomeHash) {
  const AsciiChart chart(20, 5);
  const std::string out = chart.to_string(
      {0, 1}, {ChartSeries{"a", {5.0, 1.0}, 'o'},
               ChartSeries{"b", {5.0, 9.0}, 'x'}});
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("(# = overlap)"), std::string::npos);
}

TEST(AsciiChart, LegendNamesAllSeries) {
  const AsciiChart chart;
  const std::string out = chart.to_string(
      {1, 2}, {ChartSeries{"online", {1, 2}, 'o'},
               ChartSeries{"offline", {2, 3}, 'x'}});
  EXPECT_NE(out.find("o = online"), std::string::npos);
  EXPECT_NE(out.find("x = offline"), std::string::npos);
}

TEST(AsciiChart, FlatSeriesRendersMidBand) {
  const AsciiChart chart(20, 5);
  const std::string out =
      chart.to_string({0, 1, 2}, {ChartSeries{"s", {4.0, 4.0, 4.0}, 'o'}});
  const std::vector<std::string> lines = lines_of(out);
  // All markers on the middle row.
  EXPECT_NE(lines[2].find('o'), std::string::npos);
  EXPECT_EQ(lines[0].find('o'), std::string::npos);
  EXPECT_EQ(lines[4].find('o'), std::string::npos);
}

TEST(AsciiChart, AxisLabelsShowRange) {
  const AsciiChart chart(30, 6);
  const std::string out =
      chart.to_string({10, 80}, {ChartSeries{"s", {100.0, 900.0}, 'o'}});
  EXPECT_NE(out.find("900.00"), std::string::npos);
  EXPECT_NE(out.find("100.00"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("80"), std::string::npos);
}

TEST(AsciiChart, RejectsMalformedInput) {
  const AsciiChart chart;
  std::ostringstream os;
  EXPECT_THROW(chart.render(os, {}, {ChartSeries{"s", {}, 'o'}}),
               ContractViolation);
  EXPECT_THROW(chart.render(os, {1, 2}, {}), ContractViolation);
  EXPECT_THROW(chart.render(os, {1, 2}, {ChartSeries{"s", {1.0}, 'o'}}),
               ContractViolation);
  EXPECT_THROW(chart.render(os, {2, 1}, {ChartSeries{"s", {1.0, 2.0}, 'o'}}),
               ContractViolation);
  EXPECT_THROW(AsciiChart(3, 2), ContractViolation);
}

}  // namespace
}  // namespace mcs::io
