// Equivalence suite for the shared-prefix counterfactual engine.
//
// The engine's claim is exactness, not approximation: forking Algorithm
// 2's counterfactuals from the factual per-slot checkpoints must produce
// *Money-equal* payments to re-running Algorithm 1 from slot 1 (the
// kFullReplay oracle), on every configuration corner -- reserve prices,
// profitable-only allocation, weighted tasks, supply scarcity -- and the
// parallel per-winner fan-out must be invisible: identical payments and
// identical merged telemetry at every thread count.
#include "auction/counterfactual.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "auction/critical_value.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "model/strategy.hpp"
#include "obs/metrics.hpp"
#include "support/generators.hpp"

namespace mcs::auction {
namespace {

using model::Scenario;

OnlineGreedyConfig with_engine(OnlineGreedyConfig config,
                               OnlineGreedyConfig::PaymentEngine engine) {
  config.payment_engine = engine;
  return config;
}

/// Every configuration corner the payment derivation branches on.
std::vector<std::pair<std::string, OnlineGreedyConfig>> config_families() {
  std::vector<std::pair<std::string, OnlineGreedyConfig>> families;
  families.emplace_back("paper_default", OnlineGreedyConfig{});

  OnlineGreedyConfig reserve;
  reserve.reserve_price = Money::from_units(20);
  families.emplace_back("reserve_20", reserve);

  OnlineGreedyConfig profitable;
  profitable.allocate_only_profitable = true;
  families.emplace_back("profitable_only", profitable);

  OnlineGreedyConfig own_bid;
  own_bid.scarce_payment = OnlineGreedyConfig::ScarcePayment::kOwnBid;
  families.emplace_back("scarce_own_bid", own_bid);

  OnlineGreedyConfig both;
  both.allocate_only_profitable = true;
  both.reserve_price = Money::from_units(25);
  families.emplace_back("reserve_and_profitable", both);
  return families;
}

/// Weighted-query extension: per-task values around the cost range, so
/// profitable-only decisions and scarce caps differ task by task.
Scenario weighted_tasks(Rng& rng) {
  const Slot::rep_type slots = 6;
  model::ScenarioBuilder builder(slots);
  builder.value(30);
  const int phones = static_cast<int>(rng.uniform_int(2, 9));
  for (int i = 0; i < phones; ++i) {
    const auto a = static_cast<Slot::rep_type>(rng.uniform_int(1, slots));
    const auto d = static_cast<Slot::rep_type>(rng.uniform_int(a, slots));
    builder.phone(a, d, rng.uniform_int(1, 40));
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 7));
  for (int k = 0; k < tasks; ++k) {
    builder.valued_task(static_cast<Slot::rep_type>(rng.uniform_int(1, slots)),
                        rng.uniform_int(1, 80));
  }
  return builder.build();
}

/// Core oracle: the shared-prefix run of `config` must equal the
/// full-replay run outcome-for-outcome, payment-for-payment.
void expect_engines_agree(const Scenario& scenario,
                          const model::BidProfile& bids,
                          const OnlineGreedyConfig& config,
                          const std::string& label) {
  const OnlineGreedyMechanism fast(
      with_engine(config, OnlineGreedyConfig::PaymentEngine::kSharedPrefix));
  const OnlineGreedyMechanism naive(
      with_engine(config, OnlineGreedyConfig::PaymentEngine::kFullReplay));
  const Outcome a = fast.run(scenario, bids);
  const Outcome b = naive.run(scenario, bids);

  ASSERT_EQ(a.payments.size(), b.payments.size()) << label;
  for (std::size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i], b.payments[i])
        << label << ": phone " << i << " fast=" << a.payments[i]
        << " naive=" << b.payments[i];
  }
  for (int k = 0; k < scenario.task_count(); ++k) {
    EXPECT_EQ(a.allocation.phone_for(TaskId{k}),
              b.allocation.phone_for(TaskId{k}))
        << label << ": task " << k;
  }
}

// ------------------------------------------------ fast == naive property

TEST(PaymentEquivalence, SharedPrefixEqualsFullReplayAcrossConfigCorners) {
  // 5 config families x 2 supply regimes x 20 scenarios = 200 cases,
  // plus 40 weighted-task cases below: every payment Money-equal.
  Rng rng(20260807);
  for (const auto& [name, config] : config_families()) {
    for (int i = 0; i < 20; ++i) {
      const Scenario scarce = test_support::windowed(rng);
      expect_engines_agree(scarce, scarce.truthful_bids(), config,
                           name + "/windowed#" + std::to_string(i));
      const Scenario free = test_support::scarcity_free(rng);
      expect_engines_agree(free, free.truthful_bids(), config,
                           name + "/scarcity_free#" + std::to_string(i));
    }
  }
}

TEST(PaymentEquivalence, SharedPrefixEqualsFullReplayOnWeightedTasks) {
  Rng rng(424242);
  for (const auto& [name, config] : config_families()) {
    for (int i = 0; i < 8; ++i) {
      const Scenario scenario = weighted_tasks(rng);
      expect_engines_agree(scenario, scenario.truthful_bids(), config,
                           name + "/weighted#" + std::to_string(i));
    }
  }
}

TEST(PaymentEquivalence, Fig4WorkedExamplePaysTheSameOnBothEngines) {
  const Scenario scenario = model::fig4_scenario();
  expect_engines_agree(scenario, scenario.truthful_bids(),
                       OnlineGreedyConfig{}, "fig4");
  // And both match the paper's hand-computed numbers (phones 1, 0, 6, 5, 3
  // paid 11, 9, 8, 11, 11).
  const OnlineGreedyMechanism fast;
  const Outcome outcome = fast.run(scenario, scenario.truthful_bids());
  EXPECT_EQ(outcome.payments[1], Money::from_units(11));
  EXPECT_EQ(outcome.payments[0], Money::from_units(9));
  EXPECT_EQ(outcome.payments[6], Money::from_units(8));
  EXPECT_EQ(outcome.payments[5], Money::from_units(11));
  EXPECT_EQ(outcome.payments[3], Money::from_units(11));
}

// -------------------------------------------- probe-level equivalence

TEST(PaymentEquivalence, WinsWithCostMatchesFullRerunOnRandomProbes) {
  Rng rng(777);
  for (int i = 0; i < 40; ++i) {
    const Scenario scenario = test_support::windowed(rng);
    const model::BidProfile bids = scenario.truthful_bids();
    const OnlineGreedyConfig config;
    const CounterfactualEngine engine(scenario, bids, config);
    for (int p = 0; p < scenario.phone_count(); ++p) {
      const PhoneId phone{p};
      for (int probe = 0; probe < 4; ++probe) {
        const Money cost = Money::from_micros(rng.uniform_int(0, 45'000'000));
        const model::BidProfile probed = model::with_bid(
            bids, phone,
            model::Bid{bids[static_cast<std::size_t>(p)].window, cost});
        const GreedyRun full = run_greedy_allocation(scenario, probed, config);
        EXPECT_EQ(engine.wins_with_cost(phone, cost),
                  full.allocation.is_winner(phone))
            << "scenario#" << i << " phone " << p << " cost " << cost;
      }
    }
  }
}

/// The pre-engine bisection predicate: a full Algorithm-1 re-run per
/// probe. Kept in-test as the independent oracle for the engine-backed
/// greedy_critical_value.
std::optional<Money> full_rerun_critical_value(const Scenario& scenario,
                                               const model::BidProfile& bids,
                                               PhoneId phone,
                                               const OnlineGreedyConfig& config) {
  Money max_cost;
  for (const model::Bid& bid : bids) {
    max_cost = std::max(max_cost, bid.claimed_cost);
  }
  Money max_value = scenario.task_value;
  for (const model::Task& task : scenario.tasks) {
    max_value = std::max(max_value, scenario.value_of(task.id));
  }
  const Money upper_bound = Money::saturating_add(
      Money::saturating_add(max_value, max_cost), Money::from_units(1));
  const model::Bid& own = bids[static_cast<std::size_t>(phone.value())];
  const WinsWithCost wins = [&](Money cost) {
    const model::BidProfile probe =
        model::with_bid(bids, phone, model::Bid{own.window, cost});
    return run_greedy_allocation(scenario, probe, config)
        .allocation.is_winner(phone);
  };
  return bisect_critical_value(wins, upper_bound, 1, phone.value());
}

TEST(PaymentEquivalence, FastPaymentsEqualBisectedCriticalValues) {
  // In the scarcity-free regime every winner's payment is its critical
  // value (Theorem 4): the fast path must land within one micro of the
  // engine-backed bisection, and that bisection must agree *exactly* with
  // the full-rerun bisection oracle.
  Rng rng(90210);
  for (int i = 0; i < 25; ++i) {
    const Scenario scenario = test_support::scarcity_free(rng);
    const model::BidProfile bids = scenario.truthful_bids();
    const OnlineGreedyConfig config;
    const OnlineGreedyMechanism mechanism(config);
    const Outcome outcome = mechanism.run(scenario, bids);
    const CounterfactualEngine engine(scenario, bids, config);
    for (const PhoneId winner : outcome.allocation.winners()) {
      const std::optional<Money> fast_critical =
          greedy_critical_value(engine, winner);
      const std::optional<Money> oracle_critical =
          full_rerun_critical_value(scenario, bids, winner, config);
      EXPECT_EQ(fast_critical, oracle_critical)
          << "scenario#" << i << " phone " << winner.value();
      ASSERT_TRUE(fast_critical.has_value())
          << "scarcity-free winners have bounded critical values";
      const Money payment =
          outcome.payments[static_cast<std::size_t>(winner.value())];
      const std::int64_t gap =
          std::abs(payment.micros() - fast_critical->micros());
      EXPECT_LE(gap, 1) << "scenario#" << i << " phone " << winner.value()
                        << " payment " << payment << " vs critical "
                        << *fast_critical;
    }
  }
}

TEST(PaymentEquivalence, PublicCriticalValueProbeMatchesTheBisection) {
  // critical_value_of is the read-only seam strategic-agent code uses: it
  // must agree with greedy_critical_value on winnable phones, classify
  // unwinnable phones instead of tripping the bisection's precondition,
  // and bracket the win/lose boundary it reports.
  Rng rng(4242);
  int winnable = 0;
  int unwinnable = 0;
  for (int i = 0; i < 25; ++i) {
    const Scenario scenario = test_support::windowed(rng);
    const model::BidProfile bids = scenario.truthful_bids();
    const OnlineGreedyConfig config;
    const CounterfactualEngine engine(scenario, bids, config);
    for (int p = 0; p < scenario.phone_count(); ++p) {
      const PhoneId phone{p};
      const auto probe = engine.critical_value_of(phone);
      EXPECT_EQ(probe.winnable, engine.wins_with_cost(phone, Money{}))
          << "scenario#" << i << " phone " << p;
      if (!probe.winnable) {
        ++unwinnable;
        EXPECT_FALSE(probe.critical.has_value());
        continue;
      }
      ++winnable;
      EXPECT_EQ(probe.critical, greedy_critical_value(engine, phone))
          << "scenario#" << i << " phone " << p;
      if (probe.critical.has_value()) {
        // One micro below the threshold wins; at the threshold loses.
        EXPECT_TRUE(engine.wins_with_cost(
            phone, Money::from_micros(probe.critical->micros() - 1)));
        EXPECT_FALSE(engine.wins_with_cost(phone, *probe.critical));
      }
    }
  }
  EXPECT_GT(winnable, 0);
  EXPECT_GT(unwinnable, 0) << "windowed instances should produce some "
                              "phones that cannot win at any claim";
}

// ------------------------------------------- parallel fan-out determinism

TEST(PaymentEquivalence, ParallelPaymentsAreDeterministicAcrossThreadCounts) {
  // simulate_parallel-style contract: worker-local registries merged in
  // worker order make the fan-out invisible -- payments AND merged
  // counters identical at 1, 2, and 8 threads.
  Rng rng(5150);
  const test_support::GeneratorLimits big{.slots = 12,
                                          .max_phones = 24,
                                          .max_tasks = 16,
                                          .max_cost_units = 60,
                                          .value_units = 80};
  for (int i = 0; i < 6; ++i) {
    const Scenario scenario = test_support::windowed(rng, big);
    const model::BidProfile bids = scenario.truthful_bids();

    std::optional<Outcome> reference;
    std::optional<std::map<std::string, std::int64_t>> reference_counters;
    for (const int threads : {1, 2, 8}) {
      OnlineGreedyConfig config;
      config.payment_threads = threads;
      const OnlineGreedyMechanism mechanism(config);

      obs::MetricsRegistry registry;
      std::optional<Outcome> outcome;
      {
        const obs::ScopedRegistry guard(&registry);
        outcome = mechanism.run(scenario, bids);
      }
      const obs::MetricsSnapshot snapshot = registry.snapshot();
      std::map<std::string, std::int64_t> counters;
      for (const auto& [name, value] : snapshot.counters) {
        if (name.rfind("span.", 0) != 0) counters[name] = value;
      }

      if (!reference) {
        reference = outcome;
        reference_counters = counters;
        continue;
      }
      EXPECT_EQ(outcome->payments, reference->payments)
          << "scenario#" << i << " threads=" << threads;
      EXPECT_EQ(counters, *reference_counters)
          << "scenario#" << i << " threads=" << threads;
    }
  }
}

TEST(PaymentEquivalence, HardwareConcurrencyFanOutMatchesSerial) {
  const Scenario scenario = model::fig4_scenario();
  OnlineGreedyConfig config;
  config.payment_threads = 0;  // hardware concurrency
  const OnlineGreedyMechanism parallel(config);
  const OnlineGreedyMechanism serial;
  EXPECT_EQ(parallel.run(scenario, scenario.truthful_bids()).payments,
            serial.run(scenario, scenario.truthful_bids()).payments);
}

// ----------------------------------------------------- counter contract

TEST(PaymentEquivalence, SharedPrefixReplacesFullRunsWithForks) {
  // The whole point: counterfactual work stops being counted as full
  // allocation runs. The fast path performs exactly one Algorithm-1 pass
  // (the factual one) per run() and a fork per winner, while the oracle
  // path still re-runs per winner; forks skip the pre-arrival prefix.
  const Scenario scenario = model::fig4_scenario();
  const model::BidProfile bids = scenario.truthful_bids();
  const auto winners =
      static_cast<std::int64_t>(OnlineGreedyMechanism()
                                    .run(scenario, bids)
                                    .allocation.winners()
                                    .size());

  obs::MetricsRegistry fast_registry;
  {
    const obs::ScopedRegistry guard(&fast_registry);
    (void)OnlineGreedyMechanism().run(scenario, bids);
  }
  const obs::MetricsSnapshot fast = fast_registry.snapshot();
  EXPECT_EQ(fast.counters.at("auction.greedy.allocation_runs"), 1);
  EXPECT_EQ(fast.counters.at("auction.counterfactual.payment_forks"), winners);
  EXPECT_GT(fast.counters.at("auction.counterfactual.slots_skipped"), 0);

  obs::MetricsRegistry naive_registry;
  {
    const obs::ScopedRegistry guard(&naive_registry);
    const OnlineGreedyMechanism oracle(with_engine(
        OnlineGreedyConfig{}, OnlineGreedyConfig::PaymentEngine::kFullReplay));
    (void)oracle.run(scenario, bids);
  }
  const obs::MetricsSnapshot naive = naive_registry.snapshot();
  EXPECT_EQ(naive.counters.at("auction.greedy.allocation_runs"), 1 + winners);
  EXPECT_EQ(naive.counters.count("auction.counterfactual.payment_forks"), 0u);
}

}  // namespace
}  // namespace mcs::auction
