// Shared randomized-instance generators for the property-test suites.
//
// Two families, matching the two supply regimes the mechanism theory
// distinguishes:
//  * windowed(): arbitrary active windows -- the general case, where
//    supply scarcity is possible (use for allocation/welfare/IR
//    properties);
//  * scarcity_free(): full-round phones with strictly more phones than
//    tasks -- the regime of the critical-value and truthfulness proofs
//    (DESIGN.md §5).
// Both are deterministic in the Rng passed in.
#pragma once

#include "common/rng.hpp"
#include "model/scenario.hpp"

namespace mcs::test_support {

struct GeneratorLimits {
  Slot::rep_type slots = 5;
  int max_phones = 8;
  int max_tasks = 6;
  std::int64_t max_cost_units = 40;
  std::int64_t value_units = 60;
};

/// Arbitrary windows, arbitrary supply.
inline model::Scenario windowed(Rng& rng, const GeneratorLimits& limits = {}) {
  model::ScenarioBuilder builder(limits.slots);
  builder.value(limits.value_units);
  const int phones = static_cast<int>(rng.uniform_int(1, limits.max_phones));
  for (int i = 0; i < phones; ++i) {
    const auto a =
        static_cast<Slot::rep_type>(rng.uniform_int(1, limits.slots));
    const auto d =
        static_cast<Slot::rep_type>(rng.uniform_int(a, limits.slots));
    builder.phone(a, d, rng.uniform_int(1, limits.max_cost_units));
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, limits.max_tasks));
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, limits.slots)));
  }
  return builder.build();
}

/// Full-round phones, strictly more phones than tasks: no counterfactual
/// run can starve.
inline model::Scenario scarcity_free(Rng& rng,
                                     const GeneratorLimits& limits = {}) {
  model::ScenarioBuilder builder(limits.slots);
  builder.value(limits.value_units);
  const int tasks =
      static_cast<int>(rng.uniform_int(1, std::max(1, limits.max_tasks - 1)));
  const int phones =
      tasks + 2 + static_cast<int>(rng.uniform_int(
                      0, std::max<std::int64_t>(1, limits.max_phones - tasks)));
  for (int i = 0; i < phones; ++i) {
    builder.phone(1, limits.slots, rng.uniform_int(1, limits.max_cost_units));
  }
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, limits.slots)));
  }
  return builder.build();
}

}  // namespace mcs::test_support
