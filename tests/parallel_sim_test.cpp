// Tests for the multi-threaded simulator: identical sample sets to the
// sequential run, merge correctness, and argument handling.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mcs::sim {
namespace {

SimulationConfig config_for_test() {
  SimulationConfig config;
  config.workload.num_slots = 10;
  config.workload.phone_arrival_rate = 4.0;
  config.workload.task_arrival_rate = 2.0;
  config.workload.mean_cost = 10.0;
  config.workload.task_value = Money::from_units(25);
  config.repetitions = 12;
  config.base_seed = 77;
  return config;
}

TEST(ParallelSim, MatchesSequentialAggregates) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult sequential = simulate(config, mechanisms.pointers());
  for (const int threads : {2, 3, 4}) {
    const SimulationResult parallel =
        simulate_parallel(config, mechanisms.pointers(), threads);
    ASSERT_EQ(parallel.mechanisms.size(), sequential.mechanisms.size());
    for (std::size_t k = 0; k < sequential.mechanisms.size(); ++k) {
      const MechanismAggregate& a = sequential.mechanisms[k];
      const MechanismAggregate& b = parallel.mechanisms[k];
      EXPECT_EQ(a.name, b.name);
      ASSERT_EQ(a.social_welfare.count(), b.social_welfare.count())
          << "threads=" << threads;
      // Same sample set, possibly different accumulation order.
      EXPECT_NEAR(a.social_welfare.mean(), b.social_welfare.mean(), 1e-9);
      EXPECT_NEAR(a.overpayment_ratio.mean(), b.overpayment_ratio.mean(),
                  1e-12);
      EXPECT_DOUBLE_EQ(a.social_welfare.min(), b.social_welfare.min());
      EXPECT_DOUBLE_EQ(a.social_welfare.max(), b.social_welfare.max());
    }
    EXPECT_EQ(parallel.phones_per_round.count(),
              sequential.phones_per_round.count());
    EXPECT_NEAR(parallel.phones_per_round.mean(),
                sequential.phones_per_round.mean(), 1e-9);
  }
}

TEST(ParallelSim, SingleThreadDelegatesToSequential) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult a = simulate(config, mechanisms.pointers());
  const SimulationResult b =
      simulate_parallel(config, mechanisms.pointers(), 1);
  EXPECT_DOUBLE_EQ(a.mechanisms[0].social_welfare.mean(),
                   b.mechanisms[0].social_welfare.mean());
}

TEST(ParallelSim, MoreThreadsThanRepsIsFine) {
  SimulationConfig config = config_for_test();
  config.repetitions = 2;
  const StandardMechanisms mechanisms;
  const SimulationResult result =
      simulate_parallel(config, mechanisms.pointers(), 16);
  EXPECT_EQ(result.mechanisms[0].social_welfare.count(), 2u);
}

TEST(ParallelSim, DefaultThreadCountWorks) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult result =
      simulate_parallel(config, mechanisms.pointers(), 0);
  EXPECT_EQ(result.mechanisms[0].social_welfare.count(), 12u);
}

TEST(ParallelSim, SharesInputValidationWithSequential) {
  SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  config.repetitions = 0;
  EXPECT_THROW(simulate_parallel(config, mechanisms.pointers(), 4),
               ContractViolation);
  config = config_for_test();
  EXPECT_THROW(simulate_parallel(config, {}, 4), ContractViolation);
}

}  // namespace
}  // namespace mcs::sim
