// Tests for the multi-threaded simulator: identical sample sets to the
// sequential run, merge correctness, and argument handling.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mcs::sim {
namespace {

SimulationConfig config_for_test() {
  SimulationConfig config;
  config.workload.num_slots = 10;
  config.workload.phone_arrival_rate = 4.0;
  config.workload.task_arrival_rate = 2.0;
  config.workload.mean_cost = 10.0;
  config.workload.task_value = Money::from_units(25);
  config.repetitions = 12;
  config.base_seed = 77;
  return config;
}

TEST(ParallelSim, MatchesSequentialAggregates) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult sequential = simulate(config, mechanisms.pointers());
  for (const int threads : {2, 3, 4}) {
    const SimulationResult parallel =
        simulate_parallel(config, mechanisms.pointers(), threads);
    ASSERT_EQ(parallel.mechanisms.size(), sequential.mechanisms.size());
    for (std::size_t k = 0; k < sequential.mechanisms.size(); ++k) {
      const MechanismAggregate& a = sequential.mechanisms[k];
      const MechanismAggregate& b = parallel.mechanisms[k];
      EXPECT_EQ(a.name, b.name);
      ASSERT_EQ(a.social_welfare.count(), b.social_welfare.count())
          << "threads=" << threads;
      // Same sample set, possibly different accumulation order.
      EXPECT_NEAR(a.social_welfare.mean(), b.social_welfare.mean(), 1e-9);
      EXPECT_NEAR(a.overpayment_ratio.mean(), b.overpayment_ratio.mean(),
                  1e-12);
      EXPECT_DOUBLE_EQ(a.social_welfare.min(), b.social_welfare.min());
      EXPECT_DOUBLE_EQ(a.social_welfare.max(), b.social_welfare.max());
    }
    EXPECT_EQ(parallel.phones_per_round.count(),
              sequential.phones_per_round.count());
    EXPECT_NEAR(parallel.phones_per_round.mean(),
                sequential.phones_per_round.mean(), 1e-9);
  }
}

TEST(ParallelSim, SingleThreadDelegatesToSequential) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult a = simulate(config, mechanisms.pointers());
  const SimulationResult b =
      simulate_parallel(config, mechanisms.pointers(), 1);
  EXPECT_DOUBLE_EQ(a.mechanisms[0].social_welfare.mean(),
                   b.mechanisms[0].social_welfare.mean());
}

TEST(ParallelSim, MoreThreadsThanRepsIsFine) {
  SimulationConfig config = config_for_test();
  config.repetitions = 2;
  const StandardMechanisms mechanisms;
  const SimulationResult result =
      simulate_parallel(config, mechanisms.pointers(), 16);
  EXPECT_EQ(result.mechanisms[0].social_welfare.count(), 2u);
}

TEST(ParallelSim, DefaultThreadCountWorks) {
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  const SimulationResult result =
      simulate_parallel(config, mechanisms.pointers(), 0);
  EXPECT_EQ(result.mechanisms[0].social_welfare.count(), 12u);
}

TEST(ParallelSim, MergedTelemetryMatchesSequential) {
  // Worker-local registries reduced in worker order must produce exactly
  // the counters a single-threaded run records: the same repetitions run
  // with the same per-repetition seeds, so every work counter (Hungarian
  // iterations, SPFA pops, critical-value probes, greedy pool sizes) is
  // deterministic. Span histograms are excluded -- the sequential path
  // records span.sim.simulate_us while the parallel one records
  // span.sim.simulate_parallel_us -- so the comparison strips "span."
  // entries and skips wall-clock duration histograms.
  const SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;

  obs::MetricsRegistry sequential_metrics;
  {
    const obs::ScopedRegistry guard(&sequential_metrics);
    (void)simulate(config, mechanisms.pointers());
  }
  const obs::MetricsSnapshot sequential = sequential_metrics.snapshot();
  EXPECT_EQ(sequential.counters.at("sim.repetitions"),
            static_cast<std::int64_t>(config.repetitions));
  EXPECT_GT(sequential.counters.at("matching.hungarian.iterations"), 0);
  EXPECT_GT(sequential.counters.at("auction.critical_value.probes"), 0);

  for (const int threads : {2, 3, 4}) {
    obs::MetricsRegistry parallel_metrics;
    {
      const obs::ScopedRegistry guard(&parallel_metrics);
      (void)simulate_parallel(config, mechanisms.pointers(), threads);
    }
    const obs::MetricsSnapshot parallel = parallel_metrics.snapshot();

    auto strip_spans = [](const std::map<std::string, std::int64_t>& in) {
      std::map<std::string, std::int64_t> out;
      for (const auto& [name, value] : in) {
        if (name.rfind("span.", 0) != 0) out[name] = value;
      }
      return out;
    };
    EXPECT_EQ(strip_spans(parallel.counters), strip_spans(sequential.counters))
        << "threads=" << threads;

    // The greedy pool-size histogram records deterministic integer samples,
    // so even its bucket layout must reduce exactly.
    const auto& seq_pool = sequential.histograms.at("auction.greedy.pool_size");
    const auto& par_pool = parallel.histograms.at("auction.greedy.pool_size");
    EXPECT_EQ(par_pool.bucket_counts, seq_pool.bucket_counts)
        << "threads=" << threads;
    EXPECT_EQ(par_pool.count, seq_pool.count);
    EXPECT_DOUBLE_EQ(par_pool.sum, seq_pool.sum);

    // Wall-clock histograms vary in values but not in sample counts.
    EXPECT_EQ(parallel.histograms.at("sim.repetition_duration_us").count,
              static_cast<std::int64_t>(config.repetitions));
  }
}

TEST(ParallelSim, SharesInputValidationWithSequential) {
  SimulationConfig config = config_for_test();
  const StandardMechanisms mechanisms;
  config.repetitions = 0;
  EXPECT_THROW(simulate_parallel(config, mechanisms.pointers(), 4),
               ContractViolation);
  config = config_for_test();
  EXPECT_THROW(simulate_parallel(config, {}, 4), ContractViolation);
}

}  // namespace
}  // namespace mcs::sim
