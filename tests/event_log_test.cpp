// Flight-recorder tests: JSONL golden stability, ring-sink bounds, the
// allocation-free disabled path, probe/record consistency of the
// critical-value bisection, deterministic replay (clean + tamper
// detection), the per-bidder explain narrative on the paper's worked
// example, and the transcript/event-log payment agreement property.
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/flight.hpp"
#include "common/error.hpp"
#include "auction/critical_value.hpp"
#include "model/paper_examples.hpp"
#include "obs/event_log.hpp"
#include "platform/round_driver.hpp"
#include "sim/simulator.hpp"
#include "support/generators.hpp"

// ------------------------------------------------------ allocation probe
//
// Global operator new override counting every heap allocation in the test
// binary -- the instrument behind the disabled-path test. Counting is the
// only extra work, so every other test runs unchanged.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mcs {
namespace {

/// Attribute lookup helper; nullptr when absent.
const obs::Event::Value* attr(const obs::Event& event, std::string_view key) {
  for (const auto& [name, value] : event.attrs) {
    if (name == key) return &value;
  }
  return nullptr;
}

Money attr_money(const obs::Event& event, std::string_view key) {
  const obs::Event::Value* value = attr(event, key);
  EXPECT_NE(value, nullptr) << "missing attr " << key;
  return value != nullptr ? std::get<Money>(*value) : Money{};
}

// ------------------------------------------------------------- goldens

TEST(EventLogGolden, JsonlSerializationIsByteStable) {
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  obs::EventLog log(&sink);

  obs::Event assigned("task_assigned");
  assigned.slot = 2;
  assigned.phone = 1;
  assigned.task = 0;
  assigned.with("bid", Money::from_units(3)).with("profitable", true);
  log.append(std::move(assigned));

  obs::Event pool("slot_pool");
  pool.slot = 1;
  pool.with("pool", std::vector<std::int64_t>{2, 0, 1})
      .with("mean_cost", 2.5)
      .with("note", std::string("a\nb"))
      .with("count", std::int64_t{3});
  log.append(std::move(pool));

  EXPECT_EQ(os.str(),
            "{\"seq\":0,\"type\":\"log_header\",\"schema\":\"mcs.events.v1\"}\n"
            "{\"seq\":1,\"type\":\"task_assigned\",\"slot\":2,\"phone\":1,"
            "\"task\":0,\"bid\":\"3\",\"profitable\":true}\n"
            "{\"seq\":2,\"type\":\"slot_pool\",\"slot\":1,\"pool\":[2,0,1],"
            "\"mean_cost\":2.5,\"note\":\"a\\nb\",\"count\":3}\n");
  EXPECT_EQ(log.count(), 3u);
}

TEST(RingEventSink, KeepsMostRecentEventsOldestFirst) {
  obs::RingEventSink ring(3);
  obs::EventLog log(&ring);  // header is event 0
  for (int i = 0; i < 4; ++i) {
    log.append(obs::Event("e" + std::to_string(i)));
  }
  EXPECT_EQ(ring.total_appended(), 5u);
  const std::vector<obs::Event> events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, "e1");
  EXPECT_EQ(events[1].type, "e2");
  EXPECT_EQ(events[2].type, "e3");
}

// ------------------------------------------------------- disabled path

TEST(EventLogDisabled, NoAllocationsAndFactoryNeverRuns) {
  ASSERT_EQ(obs::current_event_log(), nullptr);
  bool factory_ran = false;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::log_event([&] {
      factory_ran = true;
      return obs::Event("expensive")
          .with("key", std::string("a string long enough to force a heap "
                                   "allocation either way"));
    });
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "disabled log_event must not allocate";
  EXPECT_FALSE(factory_ran);
}

TEST(EventLogDisabled, SuppressionScopeNestsAndRestores) {
  obs::RingEventSink ring(8);
  obs::EventLog log(&ring);
  const obs::ScopedEventLog install(&log);
  obs::log_event([] { return obs::Event("outer"); });
  {
    const obs::ScopedEventLog suppress(nullptr);
    EXPECT_EQ(obs::current_event_log(), nullptr);
    obs::log_event([] { return obs::Event("hidden"); });
  }
  EXPECT_EQ(obs::current_event_log(), &log);
  obs::log_event([] { return obs::Event("outer2"); });
  const std::vector<obs::Event> events = ring.events();
  ASSERT_EQ(events.size(), 3u);  // header + outer + outer2
  EXPECT_EQ(events[1].type, "outer");
  EXPECT_EQ(events[2].type, "outer2");
}

// --------------------------------------------- bisection probe records

TEST(CriticalValueEvents, ProbeTrailMatchesSummary) {
  const model::Scenario scenario = model::fig4_scenario();
  const model::BidProfile bids = scenario.truthful_bids();

  obs::RingEventSink ring(4096);
  obs::EventLog log(&ring);
  std::optional<Money> critical;
  {
    const obs::ScopedEventLog install(&log);
    critical = auction::greedy_critical_value(scenario, bids, PhoneId{0});
  }
  ASSERT_TRUE(critical.has_value());

  std::vector<obs::Event> probes;
  const obs::Event* found = nullptr;
  for (const obs::Event& event : ring.events()) {
    if (event.type == "critical_probe") probes.push_back(event);
    if (event.type == "critical_found") found = &event;
  }
  ASSERT_NE(found, nullptr);
  ASSERT_FALSE(probes.empty());

  // Every probe is tagged with the bidder and carries a coherent bracket.
  for (const obs::Event& probe : probes) {
    EXPECT_EQ(probe.phone, 0);
    EXPECT_LE(attr_money(probe, "lo"), attr_money(probe, "hi"));
    ASSERT_NE(attr(probe, "won"), nullptr);
  }
  // The summary's probe count is the number of probe records, and the
  // reported critical bid is the returned threshold -- the last bracket's
  // *upper* end (bisect_critical_value returns hi, and that is what the
  // payment path charges; reporting lo here once made explains drift one
  // micro below the money actually moved).
  EXPECT_EQ(std::get<std::int64_t>(*attr(*found, "probes")),
            static_cast<std::int64_t>(probes.size()));
  EXPECT_EQ(attr_money(*found, "critical_bid"),
            attr_money(probes.back(), "hi"));
  EXPECT_EQ(attr_money(*found, "critical_bid"), *critical);
  // Paper worked example: Algorithm 2 pays phone 0 (Smartphone 1)
  // exactly 9; the bisection brackets that threshold to one micro from
  // above, so the reported critical bid is 9.000001.
  EXPECT_EQ(attr_money(*found, "critical_bid"), Money::from_micros(9'000'001));
  EXPECT_EQ(attr_money(*found, "lo"), Money::from_units(9));
  // The inner counterfactual allocations stay out of the primary trail.
  for (const obs::Event& event : ring.events()) {
    EXPECT_NE(event.type, "task_assigned");
    EXPECT_NE(event.type, "slot_pool");
  }
}

// ------------------------------------------------------------- replay

analysis::ReplayReport record_and_replay(const analysis::RunSpec& spec,
                                         const model::Scenario& scenario) {
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  obs::EventLog log(&sink);
  (void)analysis::record_run(log, spec, scenario, scenario.truthful_bids());
  std::istringstream is(os.str());
  return analysis::replay_run(is);
}

TEST(Replay, OnlineRunReproducesByteForByte) {
  Rng rng(2024);
  for (int i = 0; i < 10; ++i) {
    const model::Scenario scenario = test_support::windowed(rng);
    const analysis::ReplayReport report =
        record_and_replay(analysis::RunSpec{}, scenario);
    EXPECT_TRUE(report.clean) << report.diff;
    EXPECT_EQ(report.mechanism, "online");
    EXPECT_EQ(report.recorded, report.reproduced);
  }
}

TEST(Replay, OfflineRunReproducesByteForByte) {
  Rng rng(2025);
  analysis::RunSpec spec;
  spec.mechanism = "offline";
  for (int i = 0; i < 10; ++i) {
    const model::Scenario scenario = test_support::windowed(rng);
    const analysis::ReplayReport report = record_and_replay(spec, scenario);
    EXPECT_TRUE(report.clean) << report.diff;
  }
}

TEST(Replay, ConfiguredOnlineRunRoundTrips) {
  analysis::RunSpec spec;
  spec.reserve = 8.0;
  spec.profitable_only = true;
  const analysis::ReplayReport report =
      record_and_replay(spec, model::fig4_scenario());
  EXPECT_TRUE(report.clean) << report.diff;
}

TEST(Replay, DetectsTamperedOutcome) {
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  obs::EventLog log(&sink);
  (void)analysis::record_run(log, analysis::RunSpec{}, model::fig4_scenario(),
                             model::fig4_scenario().truthful_bids());
  std::string text = os.str();
  // Corrupt the recorded outcome: the paper example pays phone 0 exactly
  // 9; claim it was 8.
  const std::size_t at = text.find("pay 9");
  ASSERT_NE(at, std::string::npos);
  text[at + 4] = '8';
  std::istringstream is(text);
  const analysis::ReplayReport report = analysis::replay_run(is);
  EXPECT_FALSE(report.clean);
  EXPECT_NE(report.diff.find("diverge"), std::string::npos);
}

TEST(Replay, RejectsForeignStreams) {
  std::istringstream empty("");
  EXPECT_THROW((void)analysis::replay_run(empty), InvalidArgumentError);
  std::istringstream foreign("{\"seq\":0,\"type\":\"something_else\"}\n");
  EXPECT_THROW((void)analysis::replay_run(foreign), InvalidArgumentError);
}

// ------------------------------------------------------------- explain

TEST(Explain, NamesTheCriticalBidOfTheWorkedExampleWinner) {
  const model::Scenario scenario = model::fig4_scenario();
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  obs::EventLog log(&sink);
  const auction::Outcome outcome =
      analysis::record_run(log, analysis::RunSpec{}, scenario,
                           scenario.truthful_bids(),
                           /*probe_critical_values=*/true);
  // Paper Section V-B: phone 0 (Smartphone 1) wins and is paid exactly 9.
  ASSERT_TRUE(outcome.allocation.is_winner(PhoneId{0}));
  ASSERT_EQ(outcome.payments[0], Money::from_units(9));

  std::istringstream is(os.str());
  const std::string story = analysis::explain_phone(is, 0);
  // The explain renders the returned threshold (one micro above the
  // bracketed bid of exactly 9), never a value below the payment charged.
  EXPECT_NE(story.find("critical bid 9.000001"), std::string::npos) << story;
  EXPECT_NE(story.find("paid 9"), std::string::npos) << story;
  EXPECT_NE(story.find("verdict: phone 0 won"), std::string::npos) << story;
}

TEST(Explain, ReportsAbsentPhones) {
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  obs::EventLog log(&sink);
  (void)analysis::record_run(log, analysis::RunSpec{}, model::fig4_scenario(),
                             model::fig4_scenario().truthful_bids());
  std::istringstream is(os.str());
  const std::string story = analysis::explain_phone(is, 99);
  EXPECT_NE(story.find("phone 99 does not appear"), std::string::npos);
}

// --------------------------- transcript / event-log payment agreement

TEST(TranscriptAgreement, EveryPaymentIssuedHasADerivationRecord) {
  Rng rng(77);
  for (int i = 0; i < 25; ++i) {
    const model::Scenario scenario = test_support::windowed(rng);
    const model::BidProfile bids = scenario.truthful_bids();

    obs::RingEventSink ring(65536);
    obs::EventLog log(&ring);
    platform::RoundResult result;
    {
      const obs::ScopedEventLog install(&log);
      result = platform::run_round(scenario, bids);
    }
    const std::vector<obs::Event> events = ring.events();
    ASSERT_EQ(ring.total_appended(), events.size()) << "ring overflowed";

    // The transcript (round_driver) and the derivation records (platform
    // payment rule) are produced by different layers; they must agree on
    // phone, slot, and amount for every issued payment.
    for (const platform::RoundEvent& issued :
         result.events_of(platform::EventKind::kPaymentIssued)) {
      bool matched = false;
      for (const obs::Event& event : events) {
        if (event.type != "payment_derivation") continue;
        if (event.phone != issued.agent.value()) continue;
        if (event.slot != static_cast<std::int32_t>(issued.slot.value())) {
          continue;
        }
        EXPECT_EQ(attr_money(event, "payment"), issued.amount);
        matched = true;
        break;
      }
      EXPECT_TRUE(matched) << "no payment_derivation record for phone "
                           << issued.agent.value() << " departing slot "
                           << issued.slot.value();
    }
  }
}

// --------------------------------------------------- simulator sampling

TEST(SimulatorSampling, LogEveryNRecordsOnlySampledRepetitions) {
  sim::StandardMechanisms mechanisms;
  sim::SimulationConfig config;
  config.repetitions = 10;
  config.workload.num_slots = 4;
  config.workload.phone_arrival_rate = 2.0;
  config.workload.task_arrival_rate = 1.0;
  config.log_every_n = 3;  // samples repetitions 0, 3, 6, 9

  obs::RingEventSink ring(65536);
  obs::EventLog log(&ring);
  {
    const obs::ScopedEventLog install(&log);
    (void)sim::simulate(config, mechanisms.pointers());
  }
  int sampled = 0;
  for (const obs::Event& event : ring.events()) {
    if (event.type == "repetition_started") ++sampled;
  }
  EXPECT_EQ(sampled, 4);

  // log_every_n = 0 (the default) suppresses everything.
  obs::RingEventSink quiet_ring(1024);
  obs::EventLog quiet_log(&quiet_ring);
  config.log_every_n = 0;
  {
    const obs::ScopedEventLog install(&quiet_log);
    (void)sim::simulate(config, mechanisms.pointers());
  }
  EXPECT_EQ(quiet_log.count(), 1u);  // header only
}

}  // namespace
}  // namespace mcs
