// Socket front-end smoke tests: an engine fed over the loopback TCP
// listener must produce byte-identical outcomes to one fed in-process, in
// both wire formats and across multiple concurrent connections; malformed
// input must poison exactly its own connection; and a truncated stream
// must be reported, not silently absorbed.
#include "serve/socket.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/wire.hpp"

namespace mcs::serve {
namespace {

LoadGenConfig small_load() {
  LoadGenConfig config;
  config.rounds = 8;
  config.seed = 7;
  return config;
}

std::vector<ServeEvent> load_events(const LoadGenConfig& config) {
  std::vector<ServeEvent> events;
  generate_events(config, [&](const ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

std::string binary_stream(const std::vector<ServeEvent>& events) {
  std::string bytes;
  append_wire_header(bytes);
  for (const ServeEvent& event : events) append_wire_frame(bytes, event);
  return bytes;
}

std::string jsonl_stream(const std::vector<ServeEvent>& events) {
  std::ostringstream os;
  write_stream_header(os);
  for (const ServeEvent& event : events) write_serve_event(os, event);
  return os.str();
}

void expect_same_outcomes(const std::vector<RoundOutcome>& a,
                          const std::vector<RoundOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].total_paid, b[i].total_paid);
    EXPECT_EQ(a[i].tasks_announced, b[i].tasks_announced);
    EXPECT_EQ(a[i].bids_admitted, b[i].bids_admitted);
    EXPECT_EQ(a[i].outcome.payments, b[i].outcome.payments);
  }
}

/// Runs an engine fed in-process over `events` (the reference run).
std::vector<RoundOutcome> reference_outcomes(
    const std::vector<ServeEvent>& events, int shards) {
  ServeConfig config;
  config.shards = shards;
  ServeEngine engine(config);
  for (const ServeEvent& event : events) engine.submit(event);
  engine.drain();
  return engine.take_outcomes();
}

/// Runs an engine fed the given raw bytes through the socket front-end.
struct SocketRun {
  std::vector<RoundOutcome> outcomes;
  SocketServerStats stats;
};

SocketRun socket_outcomes(const std::vector<std::string>& connections,
                          int shards) {
  ServeConfig config;
  config.shards = shards;
  ServeEngine engine(config);
  SocketServer server({}, [&engine](const ServeEvent& event) {
    (void)engine.submit(event);
  });
  server.start();
  for (const std::string& bytes : connections) {
    SocketClient client = SocketClient::connect("127.0.0.1", server.port());
    client.send(bytes);
    client.close();
  }
  // drain() accepts the pending backlog and joins the reader threads, so
  // every sent event is submitted before the engine drains.
  server.drain();
  engine.drain();
  SocketRun run;
  run.outcomes = engine.take_outcomes();
  run.stats = server.stats();
  return run;
}

TEST(ServeSocket, BinaryFeedMatchesInProcessFeed) {
  const std::vector<ServeEvent> events = load_events(small_load());
  ServeConfig config;
  config.shards = 2;
  ServeEngine reference(config);
  for (const ServeEvent& event : events) reference.submit(event);
  reference.drain();

  const SocketRun run = socket_outcomes({binary_stream(events)}, 2);
  EXPECT_EQ(run.stats.connections, 1);
  EXPECT_EQ(run.stats.decode_errors, 0);
  EXPECT_EQ(run.stats.events, static_cast<std::int64_t>(events.size()));
  expect_same_outcomes(run.outcomes, reference.take_outcomes());
}

TEST(ServeSocket, JsonlFeedMatchesBinaryFeed) {
  const std::vector<ServeEvent> events = load_events(small_load());
  const SocketRun binary = socket_outcomes({binary_stream(events)}, 1);
  const SocketRun jsonl = socket_outcomes({jsonl_stream(events)}, 1);
  EXPECT_EQ(jsonl.stats.decode_errors, 0);
  EXPECT_EQ(jsonl.stats.events, binary.stats.events);
  expect_same_outcomes(binary.outcomes, jsonl.outcomes);
}

TEST(ServeSocket, ConcurrentConnectionsPartitionTheRounds) {
  // Distinct rounds over distinct connections: arrival interleaving is
  // nondeterministic, but rounds are independent, so the merged outcomes
  // still match the single-feed reference.
  LoadGenConfig config = small_load();
  std::vector<ServeEvent> all;
  std::vector<std::string> streams;
  generate_events(config, [&](const ServeEvent& event) {
    all.push_back(event);
    return true;
  });
  std::vector<std::vector<ServeEvent>> per_round(
      static_cast<std::size_t>(config.rounds));
  for (const ServeEvent& event : all) {
    per_round[static_cast<std::size_t>(event.round)].push_back(event);
  }
  streams.reserve(per_round.size());
  for (const std::vector<ServeEvent>& round : per_round) {
    streams.push_back(binary_stream(round));
  }

  ServeConfig reference_config;
  reference_config.shards = 4;
  ServeEngine reference(reference_config);
  for (const ServeEvent& event : all) reference.submit(event);
  reference.drain();

  const SocketRun run = socket_outcomes(streams, 4);
  EXPECT_EQ(run.stats.connections, config.rounds);
  EXPECT_EQ(run.stats.decode_errors, 0);
  expect_same_outcomes(run.outcomes, reference.take_outcomes());
}

TEST(ServeSocket, MalformedConnectionIsContained) {
  const std::vector<ServeEvent> events = load_events(small_load());
  // One garbage connection (binary magic then junk) alongside one good one.
  std::string garbage = "MCSB";
  garbage += std::string(16, '\xff');
  const SocketRun run = socket_outcomes({garbage, binary_stream(events)}, 1);
  EXPECT_EQ(run.stats.connections, 2);
  EXPECT_EQ(run.stats.decode_errors, 1);
  EXPECT_EQ(run.stats.events, static_cast<std::int64_t>(events.size()));
  const std::vector<RoundOutcome> reference = reference_outcomes(events, 1);
  expect_same_outcomes(run.outcomes, reference);
}

TEST(ServeSocket, TruncatedStreamCountsAsDecodeError) {
  const std::vector<ServeEvent> events = load_events(small_load());
  std::string bytes = binary_stream(events);
  bytes.pop_back();  // the final frame now ends mid-field
  const SocketRun run = socket_outcomes({bytes}, 1);
  EXPECT_EQ(run.stats.decode_errors, 1);
  // All complete frames were still delivered.
  EXPECT_EQ(run.stats.events, static_cast<std::int64_t>(events.size()) - 1);
}

TEST(ServeSocket, StopIsIdempotentAndRestartForbidden) {
  SocketServer server({}, [](const ServeEvent&) {});
  server.start();
  const int port = server.port();
  EXPECT_GT(port, 0);
  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(SocketClient::connect("127.0.0.1", port), IoError);
}

}  // namespace
}  // namespace mcs::serve
