// Tests for the Table-I workload generator: structural validity,
// determinism, and statistical agreement with the configured rates.
#include "model/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mcs::model {
namespace {

TEST(WorkloadConfig, DefaultsAreTableOne) {
  const WorkloadConfig config;
  EXPECT_EQ(config.num_slots, 50);
  EXPECT_DOUBLE_EQ(config.phone_arrival_rate, 6.0);
  EXPECT_DOUBLE_EQ(config.task_arrival_rate, 3.0);
  EXPECT_DOUBLE_EQ(config.mean_cost, 25.0);
  EXPECT_DOUBLE_EQ(config.mean_active_length, 5.0);
  EXPECT_EQ(config.task_value, Money::from_units(50));
  EXPECT_NO_THROW(config.validate());
}

TEST(WorkloadConfig, ValidationRejectsBadFields) {
  WorkloadConfig config;
  config.num_slots = 0;
  EXPECT_THROW(config.validate(), InvalidArgumentError);

  config = WorkloadConfig{};
  config.phone_arrival_rate = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgumentError);

  config = WorkloadConfig{};
  config.mean_cost = 0.5;
  EXPECT_THROW(config.validate(), InvalidArgumentError);

  config = WorkloadConfig{};
  config.mean_active_length = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgumentError);
}

TEST(Workload, GeneratedScenarioIsStructurallyValid) {
  const WorkloadConfig config;
  Rng rng(1);
  const Scenario s = generate_scenario(config, rng);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.num_slots, config.num_slots);
  EXPECT_EQ(s.task_value, config.task_value);
  for (const TrueProfile& p : s.phones) {
    EXPECT_GE(p.active.begin().value(), 1);
    EXPECT_LE(p.active.end().value(), config.num_slots);
    EXPECT_GT(p.cost, Money{});
  }
}

TEST(Workload, DeterministicGivenRngState) {
  const WorkloadConfig config;
  Rng rng_a(99);
  Rng rng_b(99);
  const Scenario a = generate_scenario(config, rng_a);
  const Scenario b = generate_scenario(config, rng_b);
  ASSERT_EQ(a.phone_count(), b.phone_count());
  ASSERT_EQ(a.task_count(), b.task_count());
  for (int i = 0; i < a.phone_count(); ++i) {
    EXPECT_EQ(a.phone(PhoneId{i}), b.phone(PhoneId{i}));
  }
}

TEST(Workload, ArrivalCountsMatchRates) {
  WorkloadConfig config;
  config.num_slots = 200;
  Rng rng(7);
  RunningStats phones;
  RunningStats tasks;
  for (int rep = 0; rep < 50; ++rep) {
    const Scenario s = generate_scenario(config, rng);
    phones.add(static_cast<double>(s.phone_count()));
    tasks.add(static_cast<double>(s.task_count()));
  }
  // E[phones] = m * lambda = 1200, E[tasks] = m * lambda_t = 600.
  EXPECT_NEAR(phones.mean(), 1200.0, 30.0);
  EXPECT_NEAR(tasks.mean(), 600.0, 20.0);
}

TEST(Workload, UniformCostsHaveConfiguredMeanAndSupport) {
  WorkloadConfig config;
  config.num_slots = 100;
  config.mean_cost = 25.0;
  Rng rng(3);
  RunningStats costs;
  for (int rep = 0; rep < 30; ++rep) {
    const Scenario s = generate_scenario(config, rng);
    for (const TrueProfile& p : s.phones) {
      const double c = p.cost.to_double();
      ASSERT_GE(c, 1.0);
      ASSERT_LE(c, 49.0);  // Uniform[1, 2*25 - 1]
      costs.add(c);
    }
  }
  EXPECT_NEAR(costs.mean(), 25.0, 0.5);
}

TEST(Workload, ActiveLengthsHaveConfiguredMean) {
  WorkloadConfig config;
  config.num_slots = 500;  // long round so truncation at m is negligible
  config.mean_active_length = 5.0;
  Rng rng(11);
  RunningStats lengths;
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario s = generate_scenario(config, rng);
    for (const TrueProfile& p : s.phones) {
      const auto len = static_cast<double>(p.active.length());
      ASSERT_GE(len, 1.0);
      ASSERT_LE(len, 9.0);  // Uniform[1, 2*5 - 1]
      lengths.add(len);
    }
  }
  EXPECT_NEAR(lengths.mean(), 5.0, 0.15);
}

TEST(Workload, WindowsTruncatedAtRoundEnd) {
  WorkloadConfig config;
  config.num_slots = 5;
  config.mean_active_length = 10.0;  // long windows forced to truncate
  Rng rng(13);
  const Scenario s = generate_scenario(config, rng);
  for (const TrueProfile& p : s.phones) {
    EXPECT_LE(p.active.end().value(), 5);
  }
}

TEST(Workload, NormalCostsRespectTruncation) {
  WorkloadConfig config;
  config.cost_distribution = CostDistribution::kNormal;
  config.num_slots = 100;
  Rng rng(17);
  RunningStats costs;
  for (int rep = 0; rep < 20; ++rep) {
    const Scenario s = generate_scenario(config, rng);
    for (const TrueProfile& p : s.phones) {
      const double c = p.cost.to_double();
      ASSERT_GE(c, 0.5);
      ASSERT_LE(c, 50.0);
      costs.add(c);
    }
  }
  EXPECT_NEAR(costs.mean(), 25.0, 1.0);
}

TEST(Workload, ExponentialCostsPositiveAndCapped) {
  WorkloadConfig config;
  config.cost_distribution = CostDistribution::kExponential;
  config.num_slots = 100;
  Rng rng(19);
  const Scenario s = generate_scenario(config, rng);
  ASSERT_GT(s.phone_count(), 0);
  for (const TrueProfile& p : s.phones) {
    EXPECT_GT(p.cost.to_double(), 0.0);
    EXPECT_LE(p.cost.to_double(), 100.0);
  }
}

TEST(Workload, RateProfilesStretchAcrossTheRound) {
  WorkloadConfig config;
  config.num_slots = 10;
  config.phone_arrival_rate = 2.0;
  config.phone_rate_profile = {1.0, 3.0};  // first half x1, second half x3
  EXPECT_DOUBLE_EQ(config.phone_rate_at(1), 2.0);
  EXPECT_DOUBLE_EQ(config.phone_rate_at(5), 2.0);
  EXPECT_DOUBLE_EQ(config.phone_rate_at(6), 6.0);
  EXPECT_DOUBLE_EQ(config.phone_rate_at(10), 6.0);
  // Task profile independent; empty = homogeneous.
  EXPECT_DOUBLE_EQ(config.task_rate_at(7), config.task_arrival_rate);
}

TEST(Workload, ZeroMultiplierSilencesSlots) {
  WorkloadConfig config;
  config.num_slots = 12;
  config.phone_arrival_rate = 8.0;
  config.task_arrival_rate = 0.0;
  config.phone_rate_profile = {0.0, 1.0, 0.0};  // only the middle third
  Rng rng(29);
  const Scenario s = generate_scenario(config, rng);
  ASSERT_GT(s.phone_count(), 0);
  for (const TrueProfile& p : s.phones) {
    EXPECT_GE(p.active.begin().value(), 5);
    EXPECT_LE(p.active.begin().value(), 8);
  }
}

TEST(Workload, ProfiledArrivalCountsMatchExpectation) {
  WorkloadConfig config;
  config.num_slots = 100;
  config.phone_arrival_rate = 4.0;
  config.phone_rate_profile = {0.5, 1.5};  // mean multiplier 1.0
  Rng rng(31);
  RunningStats phones;
  for (int rep = 0; rep < 40; ++rep) {
    phones.add(static_cast<double>(generate_scenario(config, rng).phone_count()));
  }
  EXPECT_NEAR(phones.mean(), 400.0, 15.0);
}

TEST(Workload, ProfileValidation) {
  WorkloadConfig config;
  config.phone_rate_profile = {1.0, -0.5};
  EXPECT_THROW(config.validate(), InvalidArgumentError);
  config = WorkloadConfig{};
  config.task_rate_profile = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW(config.validate(), InvalidArgumentError);
}

TEST(Workload, ZeroRatesYieldEmptyScenario) {
  WorkloadConfig config;
  config.phone_arrival_rate = 0.0;
  config.task_arrival_rate = 0.0;
  Rng rng(23);
  const Scenario s = generate_scenario(config, rng);
  EXPECT_EQ(s.phone_count(), 0);
  EXPECT_EQ(s.task_count(), 0);
}

TEST(Workload, CostDistributionNames) {
  EXPECT_EQ(to_string(CostDistribution::kUniform), "uniform");
  EXPECT_EQ(to_string(CostDistribution::kNormal), "normal");
  EXPECT_EQ(to_string(CostDistribution::kExponential), "exponential");
}

}  // namespace
}  // namespace mcs::model
