// Tests for scenario persistence: exact round-trips, format tolerance
// (comments, ordering), and precise parse-error reporting. Also covers
// Money::parse, the format's number parser.
#include "model/scenario_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/paper_examples.hpp"
#include "common/rng.hpp"
#include "model/workload.hpp"

namespace mcs::model {
namespace {

Money mu(std::int64_t units) { return Money::from_units(units); }

// ------------------------------------------------------------ Money::parse

TEST(MoneyParse, RoundTripsToString) {
  for (const std::int64_t micros :
       {0LL, 1LL, 500000LL, 1000000LL, 25000000LL, -3500000LL, 123456789LL}) {
    const Money m = Money::from_micros(micros);
    EXPECT_EQ(Money::parse(m.to_string()), m) << m.to_string();
  }
}

TEST(MoneyParse, AcceptsCommonForms) {
  EXPECT_EQ(Money::parse("25"), mu(25));
  EXPECT_EQ(Money::parse("-3.5"), Money::from_micros(-3'500'000));
  EXPECT_EQ(Money::parse("+2"), mu(2));
  EXPECT_EQ(Money::parse("0.000001"), Money::from_micros(1));
}

TEST(MoneyParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "abc", "1.", ".5", "1.0000001", "1 2", "--1", "1e3", "12x",
        "+", "-", "+-1", "1.2.3"}) {
    EXPECT_THROW(std::ignore = Money::parse(bad), InvalidArgumentError) << bad;
  }
}

TEST(MoneyParse, EnforcesTheMaxEnvelopeExactly) {
  // max() is the solvers' +infinity sentinel; parse must never produce an
  // amount outside [-max(), max()]. The boundary is micro-exact: the
  // fractional digits used to leak past the whole-part overflow guard.
  const Money max = Money::max();
  EXPECT_EQ(Money::parse(max.to_string()), max);
  EXPECT_EQ(Money::parse((-max).to_string()), -max);
  const Money one_below = max - Money::from_micros(1);
  EXPECT_EQ(Money::parse(one_below.to_string()), one_below);
  // One micro past the cap, same digit count: must be rejected, not
  // silently accepted beyond the envelope (and never UB).
  const std::int64_t whole = max.micros() / Money::kScale;
  EXPECT_THROW(
      std::ignore = Money::parse(std::to_string(whole) + ".999999"),
      InvalidArgumentError);
  EXPECT_THROW(
      std::ignore = Money::parse("-" + std::to_string(whole) + ".999999"),
      InvalidArgumentError);
  // Far past the cap (INT64_MAX-scale whole parts).
  EXPECT_THROW(std::ignore = Money::parse("9223372036854775807"),
               InvalidArgumentError);
  EXPECT_THROW(std::ignore = Money::parse("-9223372036854775808"),
               InvalidArgumentError);
}

TEST(MoneyParse, SignEdgeCases) {
  // A leading '+' is accepted (human-written scenario files) but never
  // emitted: the canonical rendering strips it, so a canonical stream
  // re-encodes byte-identically.
  EXPECT_EQ(Money::parse("+0.5"), Money::from_micros(500'000));
  EXPECT_EQ(Money::parse("+0.5").to_string(), "0.5");
  // "-0" variants normalize to exact zero (no negative-zero state).
  EXPECT_EQ(Money::parse("-0"), Money{});
  EXPECT_EQ(Money::parse("-0.000000"), Money{});
  EXPECT_FALSE(Money::parse("-0").is_negative());
}

// ------------------------------------------------------------ round trips

TEST(ScenarioIo, RoundTripsFig4Exactly) {
  const Scenario original = fig4_scenario();
  std::stringstream buffer;
  write_scenario(buffer, original);
  const Scenario loaded = read_scenario(buffer);

  EXPECT_EQ(loaded.num_slots, original.num_slots);
  EXPECT_EQ(loaded.task_value, original.task_value);
  ASSERT_EQ(loaded.phones.size(), original.phones.size());
  for (std::size_t i = 0; i < original.phones.size(); ++i) {
    EXPECT_EQ(loaded.phones[i], original.phones[i]) << "phone " << i;
  }
  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  for (std::size_t t = 0; t < original.tasks.size(); ++t) {
    EXPECT_EQ(loaded.tasks[t], original.tasks[t]) << "task " << t;
  }
}

TEST(ScenarioIo, RoundTripsWeightedTasksAndFractionalCosts) {
  Scenario original = ScenarioBuilder(3)
                          .value(20)
                          .valued_task(2, 35)
                          .task(1)
                          .phone(1, 3, 4)
                          .build();
  original.phones[0].cost = Money::from_micros(4'250'000);  // 4.25
  original.validate();

  std::stringstream buffer;
  write_scenario(buffer, original);
  const Scenario loaded = read_scenario(buffer);
  EXPECT_EQ(loaded.phones[0].cost, Money::from_micros(4'250'000));
  EXPECT_EQ(loaded.value_of(TaskId{1}), mu(35));  // slot-2 task sorted second
  EXPECT_EQ(loaded.value_of(TaskId{0}), mu(20));
}

TEST(ScenarioIo, RoundTripsGeneratedWorkload) {
  Rng rng(12);
  WorkloadConfig workload;
  workload.num_slots = 15;
  const Scenario original = generate_scenario(workload, rng);
  std::stringstream buffer;
  write_scenario(buffer, original);
  const Scenario loaded = read_scenario(buffer);
  EXPECT_EQ(loaded.phone_count(), original.phone_count());
  EXPECT_EQ(loaded.task_count(), original.task_count());
  for (int i = 0; i < original.phone_count(); ++i) {
    EXPECT_EQ(loaded.phone(PhoneId{i}), original.phone(PhoneId{i}));
  }
}

TEST(ScenarioIo, FileSaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/mcs_scenario_test.mcs";
  const Scenario original = fig4_scenario();
  save_scenario(path, original);
  const Scenario loaded = load_scenario(path);
  EXPECT_EQ(loaded.phone_count(), 7);
  EXPECT_EQ(loaded.task_count(), 5);
  std::remove(path.c_str());
}

TEST(ScenarioIo, FileErrorsThrowIoError) {
  EXPECT_THROW(std::ignore = load_scenario("/nonexistent/path.mcs"), IoError);
  EXPECT_THROW(save_scenario("/nonexistent-dir/x.mcs", fig4_scenario()),
               IoError);
}

// ----------------------------------------------------------- format rules

TEST(ScenarioIo, ToleratesCommentsBlankLinesAndTaskOrder) {
  std::istringstream input(R"(
mcs-scenario v1
# a campaign
slots 4

value 10
task 3            # out of order on purpose
phone 1 4 2.5
task 1 value 12
)");
  const Scenario s = read_scenario(input);
  EXPECT_EQ(s.num_slots, 4);
  EXPECT_EQ(s.phone_count(), 1);
  ASSERT_EQ(s.task_count(), 2);
  // Sorted by slot with dense ids; the weighted one arrived in slot 1.
  EXPECT_EQ(s.tasks[0].slot, Slot{1});
  EXPECT_EQ(s.value_of(TaskId{0}), mu(12));
  EXPECT_EQ(s.tasks[1].slot, Slot{3});
}

TEST(ScenarioIo, ParseErrorsNameTheLine) {
  const auto expect_error_at = [](const std::string& text, const char* needle,
                                  int line) {
    std::istringstream input(text);
    try {
      std::ignore = read_scenario(input);
      FAIL() << "expected parse error for: " << text;
    } catch (const InvalidScenarioError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
          << what;
    }
  };

  expect_error_at("garbage\n", "header", 1);
  expect_error_at("mcs-scenario v1\nslots x\n", "expected integer", 2);
  expect_error_at("mcs-scenario v1\nslots 3\nphone 1 2\n", "phone takes", 3);
  expect_error_at("mcs-scenario v1\nslots 3\nphone 2 1 5\n", "inverted", 3);
  expect_error_at("mcs-scenario v1\nslots 3\ntask 1 value abc\n",
                  "expected amount", 3);
  expect_error_at("mcs-scenario v1\nslots 3\nfrobnicate 1\n",
                  "unknown keyword", 3);
}

TEST(ScenarioIo, MissingPiecesAreRejected) {
  {
    std::istringstream input("");
    EXPECT_THROW(std::ignore = read_scenario(input), InvalidScenarioError);
  }
  {
    std::istringstream input("mcs-scenario v1\nvalue 5\n");
    EXPECT_THROW(std::ignore = read_scenario(input), InvalidScenarioError);
  }
}

TEST(ScenarioIo, FuzzedInputNeverCrashes) {
  // Random byte soup and random mutations of a valid file: the parser must
  // either produce a valid scenario or throw a library error -- never
  // crash or accept garbage silently.
  Rng rng(424242);
  std::stringstream valid;
  write_scenario(valid, fig4_scenario());
  const std::string valid_text = valid.str();

  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    if (trial % 2 == 0) {
      // Pure noise.
      const auto length = static_cast<std::size_t>(rng.uniform_int(0, 120));
      for (std::size_t k = 0; k < length; ++k) {
        text.push_back(static_cast<char>(rng.uniform_int(9, 126)));
      }
    } else {
      // Mutate a valid file: flip a few characters.
      text = valid_text;
      const auto flips = static_cast<int>(rng.uniform_int(1, 6));
      for (int f = 0; f < flips && !text.empty(); ++f) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
        text[pos] = static_cast<char>(rng.uniform_int(32, 126));
      }
    }
    std::istringstream input(text);
    try {
      const Scenario s = read_scenario(input);
      EXPECT_NO_THROW(s.validate()) << "trial " << trial;
    } catch (const Error&) {
      // Expected for malformed input.
    }
  }
}

TEST(ScenarioIo, LoadedScenarioIsValidated) {
  // Structurally parseable but semantically invalid (task outside round).
  std::istringstream input("mcs-scenario v1\nslots 2\ntask 5\n");
  EXPECT_THROW(std::ignore = read_scenario(input), InvalidScenarioError);
}

}  // namespace
}  // namespace mcs::model
