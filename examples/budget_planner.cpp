// Planning a sensing campaign under a payout budget, using the reserve
// price as the control knob.
//
// The paper's mechanisms guarantee truthfulness but not a bounded payout;
// a deployment usually has a budget. This example sweeps the online
// mechanism's reserve price over a campaign workload and shows the
// operator's tradeoff curve: lower reserves cap spending (scarce payments
// are bounded by the reserve -- see DESIGN.md §5) at the cost of task
// coverage, and every point of the curve remains exactly truthful. The
// planner then picks the cheapest reserve whose expected payout fits the
// budget.
#include <iostream>
#include <optional>

#include "analysis/metrics.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main() {
  using namespace mcs;

  model::WorkloadConfig campaign;
  campaign.num_slots = 30;
  campaign.phone_arrival_rate = 4.0;
  campaign.task_arrival_rate = 2.0;
  campaign.mean_cost = 20.0;
  campaign.task_value = Money::from_units(45);

  const double budget = 1200.0;
  const int reps = 20;

  std::cout << "Campaign: 30 slots, ~120 phones, ~60 tasks per round; "
               "payout budget "
            << budget << " per round.\n\n";

  io::TextTable table(
      {"reserve", "payout (mean)", "within budget?", "coverage %", "welfare"});
  std::optional<std::int64_t> chosen;
  double chosen_welfare = 0.0;
  const Rng parent(2026);
  for (const std::int64_t reserve : {10, 15, 20, 25, 30, 35, 40}) {
    auction::OnlineGreedyConfig config;
    config.reserve_price = Money::from_units(reserve);
    const auction::OnlineGreedyMechanism mechanism(config);

    RunningStats payout;
    RunningStats coverage;
    RunningStats welfare;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(campaign, rng);
      const model::BidProfile bids = s.truthful_bids();
      const analysis::RoundMetrics m =
          analysis::compute_metrics(s, bids, mechanism.run(s, bids));
      payout.add(m.total_payment.to_double());
      coverage.add(100.0 * m.completion_rate);
      welfare.add(m.social_welfare.to_double());
    }
    const bool fits = payout.mean() <= budget;
    if (fits) {  // reserves are swept ascending: keep the most generous fit
      chosen = reserve;
      chosen_welfare = welfare.mean();
    }
    table.row()
        .cell(reserve)
        .cell(payout.mean(), 1)
        .cell(fits ? std::string("yes") : std::string("over"))
        .cell(coverage.mean(), 1)
        .cell(welfare.mean(), 1);
  }
  table.print(std::cout);

  if (chosen) {
    std::cout << "\nPlanner's pick: reserve " << *chosen
              << " -- the most generous reserve whose expected payout fits "
                 "the budget (expected welfare "
              << io::format_double(chosen_welfare, 1)
              << "). Every row is exactly truthful: with a reserve, even "
                 "scarce winners are paid at most the reserve.\n";
  } else {
    std::cout << "\nNo swept reserve fits the budget; lower the reserve "
                 "further or accept partial coverage.\n";
  }
  return 0;
}
