// The incentive story, from a strategic smartphone's point of view.
//
// A phone owner wonders: "should I lie to the platform?" This example
// replays the paper's Fig. 4/5 instance and lets phone 1 (the paper's
// Smartphone 1) try every strategy in the library -- cost inflation,
// undercutting, delayed arrival, early departure, random misreports --
// against three mechanisms. Under the per-slot second-price baseline the
// delayed arrival pays (the Fig. 5 manipulation); under the paper's two
// mechanisms no strategy beats honesty.
#include <iostream>
#include <memory>
#include <vector>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "common/rng.hpp"
#include "io/table.hpp"
#include "model/paper_examples.hpp"
#include "model/strategy.hpp"

int main() {
  using namespace mcs;

  const model::Scenario scenario = model::fig4_scenario();
  const PhoneId me{0};  // the paper's Smartphone 1: active [2,5], cost 3
  std::cout << "You are Smartphone 1: active slots [2,5], real cost 3.\n"
            << "Everyone else reports truthfully. Utility you'd earn under "
               "each strategy:\n\n";

  std::vector<std::unique_ptr<model::ReportStrategy>> strategies;
  strategies.push_back(std::make_unique<model::TruthfulStrategy>());
  strategies.push_back(std::make_unique<model::CostMarkupStrategy>(2.0));
  strategies.push_back(std::make_unique<model::CostMarkupStrategy>(0.5));
  strategies.push_back(std::make_unique<model::DelayedArrivalStrategy>(2));
  strategies.push_back(std::make_unique<model::EarlyDepartureStrategy>(2));
  strategies.push_back(std::make_unique<model::RandomMisreportStrategy>());

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;
  const auction::SecondPriceBaseline baseline;

  io::TextTable table({"strategy", "online-greedy", "offline-vcg",
                       "second-price baseline"});
  Rng rng(99);
  for (const auto& strategy : strategies) {
    const model::BidProfile bids =
        model::apply_single_deviation(scenario, me, *strategy, rng);
    table.add_row({strategy->name(),
                   online.run(scenario, bids).utility(scenario, me).to_string(),
                   offline.run(scenario, bids).utility(scenario, me).to_string(),
                   baseline.run(scenario, bids)
                       .utility(scenario, me)
                       .to_string()});
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table:\n"
      << "  * online-greedy and offline-vcg: no row beats the 'truthful' "
         "row -- Theorems 1 and 4 in action.\n"
      << "  * second-price baseline: 'delayed-arrival(+2)' beats honesty "
         "(the paper's Fig. 5: payment jumps 4 -> 8, utility 1 -> 5).\n"
      << "  * undercutting (x0.5) never helps and can turn utility "
         "negative under the baseline: you win slots you are paid too "
         "little for.\n";
  return 0;
}
