// Urban noise mapping (the Ear-Phone-style application from the paper's
// introduction [2]): a city platform continuously crowdsources noise
// samples from commuters' phones.
//
// The example runs several independent auction rounds of the Table-I
// workload, compares the online mechanism (what such a platform must run:
// tasks arrive unpredictably) against the offline optimum (the clairvoyant
// benchmark), and prints the round-by-round ledger a deployment would
// monitor: welfare, payout, overpayment, and task coverage.
#include <iostream>

#include "analysis/metrics.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main() {
  using namespace mcs;

  // A midtown sensing campaign: a moderate stream of commuter phones, each
  // willing to sample noise for a handful of 5-minute slots; sensing
  // queries (street segments to cover) arrive at ~2 per slot. Costs model
  // battery + data in cents.
  model::WorkloadConfig campaign;
  campaign.num_slots = 40;
  campaign.phone_arrival_rate = 5.0;
  campaign.task_arrival_rate = 2.0;
  campaign.mean_cost = 20.0;
  campaign.mean_active_length = 4.0;
  campaign.task_value = Money::from_units(45);

  std::cout << "Noise-mapping campaign: " << campaign.num_slots
            << " slots/round, lambda=" << campaign.phone_arrival_rate
            << " phones/slot, " << campaign.task_arrival_rate
            << " street-segments/slot, nu=" << campaign.task_value << "\n\n";

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;

  io::TextTable ledger({"round", "phones", "tasks", "covered", "welfare(on)",
                        "welfare(off)", "payout(on)", "sigma(on)"});
  Rng rng(2014);
  double welfare_online = 0.0;
  double welfare_offline = 0.0;
  for (int round = 1; round <= 5; ++round) {
    const model::Scenario scenario = model::generate_scenario(campaign, rng);
    const model::BidProfile bids = scenario.truthful_bids();

    const analysis::RoundMetrics on =
        analysis::compute_metrics(scenario, bids, online.run(scenario, bids));
    const analysis::RoundMetrics off = analysis::compute_metrics(
        scenario, bids, offline.run(scenario, bids));
    welfare_online += on.social_welfare.to_double();
    welfare_offline += off.social_welfare.to_double();

    ledger.row()
        .cell(static_cast<std::int64_t>(round))
        .cell(static_cast<std::int64_t>(scenario.phone_count()))
        .cell(static_cast<std::int64_t>(on.tasks_total))
        .cell(on.completion_rate * 100.0, 1)
        .cell(on.social_welfare.to_double(), 1)
        .cell(off.social_welfare.to_double(), 1)
        .cell(on.total_payment.to_double(), 1)
        .cell(on.overpayment_ratio, 3);
  }
  ledger.print(std::cout);

  std::cout << "\nOver 5 rounds the online mechanism captured "
            << io::format_double(100.0 * welfare_online / welfare_offline, 1)
            << "% of the clairvoyant offline welfare (Theorem 6 guarantees "
               ">= 50%), while remaining truthful for commuters whose "
               "availability the platform cannot verify.\n";
  return 0;
}
