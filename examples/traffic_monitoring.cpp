// Road-traffic delay estimation (the VTrack-style application from the
// paper's introduction [4]) with a rush-hour profile: task demand is
// time-varying within the round, which is exactly the "random arrivals of
// tasks" regime the online mechanism is designed for.
//
// The double-hump commute curve is expressed through the workload model's
// non-homogeneous rate profiles (WorkloadConfig::*_rate_profile), then the
// online auction is walked slot by slot, printing the dynamic pool and the
// winners -- the Fig. 4 view, at application scale.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/metrics.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main() {
  using namespace mcs;

  constexpr Slot::rep_type kHours = 24;  // one "day" of hourly slots

  // Drivers join around the commute peaks; probe requests (tasks) follow
  // the same double-hump demand curve.
  std::vector<double> commute;
  for (Slot::rep_type hour = 1; hour <= kHours; ++hour) {
    const double h = static_cast<double>(hour);
    const double morning = std::exp(-0.5 * std::pow((h - 8.0) / 2.0, 2.0));
    const double evening = std::exp(-0.5 * std::pow((h - 18.0) / 2.0, 2.0));
    commute.push_back(0.3 + 3.0 * (morning + evening));
  }

  model::WorkloadConfig rush;
  rush.num_slots = kHours;
  rush.phone_arrival_rate = 2.0;  // base drivers/hour, scaled by the curve
  rush.task_arrival_rate = 1.0;   // base probe requests/hour
  rush.mean_active_length = 3.0;  // hours a driver keeps the app on
  rush.mean_cost = 25.0;          // cellular data + battery, cents
  rush.task_value = Money::from_units(60);
  rush.phone_rate_profile = commute;
  rush.task_rate_profile = commute;

  Rng rng(77);
  const model::Scenario scenario = model::generate_scenario(rush, rng);
  std::cout << "Rush-hour probe market: " << scenario.phone_count()
            << " drivers, " << scenario.task_count()
            << " probe requests over " << kHours << " hours\n\n";

  const model::BidProfile bids = scenario.truthful_bids();
  const auction::GreedyRun run = auction::run_greedy_allocation(scenario, bids);

  io::TextTable timeline({"hour", "pool", "probes", "hired", "marginal cost"});
  for (const auction::GreedySlotRecord& record : run.slots) {
    Money dearest;
    for (const PhoneId winner : record.winners) {
      dearest = std::max(
          dearest, bids[static_cast<std::size_t>(winner.value())].claimed_cost);
    }
    const int probes = static_cast<int>(record.winners.size()) +
                       record.unallocated_tasks;
    timeline.row()
        .cell(static_cast<std::int64_t>(record.slot.value()))
        .cell(static_cast<std::int64_t>(record.pool.size()))
        .cell(static_cast<std::int64_t>(probes))
        .cell(static_cast<std::int64_t>(record.winners.size()))
        .cell(record.winners.empty() ? std::string("-") : dearest.to_string());
  }
  timeline.print(std::cout);

  const auction::OnlineGreedyMechanism mechanism;
  const analysis::RoundMetrics metrics = analysis::compute_metrics(
      scenario, bids, mechanism.run(scenario, bids));
  std::cout << "\nEnd-of-day settlement (truthful critical-value payments):\n"
            << analysis::describe(metrics)
            << "\nDemand peaks strain the pool around 8:00 and 18:00 -- the "
               "mechanism hires pricier drivers exactly there, and pays "
               "every winner its critical value so none benefits from "
               "hiding its availability window.\n";
  return 0;
}
