// Run the auction mechanisms on a scenario file -- the "bring your own
// trace" entry point.
//
//   ./run_from_file --file my_campaign.mcs
//
// Without --file, the example generates a Table-I-style round, saves it to
// ./demo_scenario.mcs (so you can inspect and edit the plain-text format),
// loads it back, and runs both mechanisms on it.
#include <iostream>

#include "analysis/metrics.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/scenario_io.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli("Runs both truthful mechanisms on a scenario file.");
  cli.add_string("file", "", "scenario file (empty: generate + save a demo)");
  cli.add_int("seed", 42, "seed for the generated demo scenario");
  if (!cli.parse(argc, argv)) return 0;

  std::string path = cli.get_string("file");
  if (path.empty()) {
    path = "demo_scenario.mcs";
    model::WorkloadConfig workload;
    workload.num_slots = 12;
    workload.phone_arrival_rate = 3.0;
    workload.task_arrival_rate = 1.5;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    model::save_scenario(path, model::generate_scenario(workload, rng));
    std::cout << "no --file given; wrote a demo scenario to ./" << path
              << " (plain text -- open it, tweak it, re-run)\n\n";
  }

  const model::Scenario scenario = model::load_scenario(path);
  std::cout << "loaded " << path << ":\n" << model::describe(scenario) << '\n';

  const model::BidProfile bids = scenario.truthful_bids();
  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;

  io::TextTable table({"metric", "online", "offline"});
  const analysis::RoundMetrics on =
      analysis::compute_metrics(scenario, bids, online.run(scenario, bids));
  const analysis::RoundMetrics off =
      analysis::compute_metrics(scenario, bids, offline.run(scenario, bids));
  table.add_row({"social welfare", on.social_welfare.to_string(),
                 off.social_welfare.to_string()});
  table.add_row({"total payment", on.total_payment.to_string(),
                 off.total_payment.to_string()});
  table.add_row({"overpayment ratio", io::format_double(on.overpayment_ratio, 3),
                 io::format_double(off.overpayment_ratio, 3)});
  table.add_row({"tasks allocated",
                 std::to_string(on.tasks_allocated) + "/" +
                     std::to_string(on.tasks_total),
                 std::to_string(off.tasks_allocated) + "/" +
                     std::to_string(off.tasks_total)});
  table.print(std::cout);
  return 0;
}
