// The platform as it would actually run: a live, slot-by-slot market.
//
// This example drives the incremental OnlinePlatform directly (no batch
// Scenario up front, beyond using one as the script of arrivals): tasks
// are announced as queries come in, phones bid the moment they join, and
// the console shows the protocol transcript -- including payments landing
// exactly in each winner's reported departure slot. It is the Fig. 1/2
// message flow of the paper, executable.
#include <iostream>

#include "io/cli.hpp"
#include "model/paper_examples.hpp"
#include "platform/round_driver.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Replays the paper's Fig. 4 round through the live slot-by-slot "
      "platform and prints the full protocol transcript.");
  if (!cli.parse(argc, argv)) return 0;

  const model::Scenario scenario = model::fig4_scenario();
  std::cout << "Live round: " << scenario.task_count() << " sensing queries, "
            << scenario.phone_count() << " smartphones, "
            << scenario.num_slots << " slots.\n"
            << "(paper Fig. 4 instance; phone ids below are 0-based)\n\n";

  const platform::RoundResult result =
      platform::run_round(scenario, scenario.truthful_bids());

  Slot current{0};
  for (const platform::RoundEvent& event : result.transcript) {
    if (event.slot != current) {
      current = event.slot;
      std::cout << "--- slot " << current << " ---\n";
    }
    std::cout << "  " << event << '\n';
  }

  std::cout << "\nEnd of round. Total paid: "
            << result.outcome.total_payment()
            << " (the batch mechanism computes the identical outcome; see "
               "tests/platform_test.cpp for the equivalence proof-by-test).\n";
  return 0;
}
