// Quickstart: build a tiny crowdsourcing round by hand, run both truthful
// mechanisms, and read the outcome. This is the 60-second tour of the
// public API; see noise_mapping.cpp / traffic_monitoring.cpp for realistic
// workloads and strategic_user.cpp for the incentive story.
#include <iostream>

#include "analysis/metrics.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "model/scenario.hpp"

int main() {
  using namespace mcs;

  // One round of m = 4 slots. The platform values every completed sensing
  // task at nu = 15. Three smartphones are active in parts of the round;
  // three tasks arrive over time.
  const model::Scenario scenario = model::ScenarioBuilder(4)
                                       .value(15)
                                       .phone(1, 2, 4)   // phone 0: slots 1-2, cost 4
                                       .phone(1, 4, 6)   // phone 1: whole round, cost 6
                                       .phone(3, 4, 2)   // phone 2: slots 3-4, cost 2
                                       .task(1)
                                       .task(3)
                                       .task(4)
                                       .build();
  std::cout << model::describe(scenario);

  // Phones submit bids; here everyone reports truthfully (which both
  // mechanisms make the best strategy -- see strategic_user.cpp).
  const model::BidProfile bids = scenario.truthful_bids();

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;
  for (const auction::Mechanism* mechanism :
       std::initializer_list<const auction::Mechanism*>{&online, &offline}) {
    const auction::Outcome outcome = mechanism->run(scenario, bids);
    std::cout << "\n--- " << mechanism->name() << " ---\n";
    for (const model::Task& task : scenario.tasks) {
      std::cout << "task " << task.id << " (slot " << task.slot << "): ";
      if (const auto phone = outcome.allocation.phone_for(task.id)) {
        std::cout << "phone " << *phone << ", paid "
                  << outcome.payments[static_cast<std::size_t>(phone->value())]
                  << '\n';
      } else {
        std::cout << "unallocated\n";
      }
    }
    const analysis::RoundMetrics metrics =
        analysis::compute_metrics(scenario, bids, outcome);
    std::cout << analysis::describe(metrics);
  }
  return 0;
}
