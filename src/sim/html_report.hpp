// Self-contained HTML report of the reproduced evaluation figures.
//
// One file, zero dependencies: each figure is rendered as an inline SVG
// line chart with its data table underneath, plus the run parameters, so
// results can be shared or archived as a single artifact. `mcs_cli report`
// is the command-line entry point.
#pragma once

#include <string>
#include <vector>

#include "sim/experiments.hpp"

namespace mcs::sim {

/// Renders the report document for already-computed figure series.
/// `subtitle` typically records the run parameters (reps, seed).
[[nodiscard]] std::string figures_html_report(
    const std::vector<FigureSeries>& figures, const std::string& subtitle);

/// Runs every registered figure with `base` and writes the report to
/// `path` (throws IoError on filesystem problems). Returns the number of
/// figures rendered.
int write_html_report(const std::string& path, const SimulationConfig& base);

}  // namespace mcs::sim
