#include "sim/sweep.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace mcs::sim {

std::vector<SweepPoint> run_sweep(
    const SimulationConfig& base, const std::vector<double>& xs,
    const ConfigMutator& mutate,
    const std::vector<const auction::Mechanism*>& mechanisms) {
  MCS_EXPECTS(!xs.empty(), "sweep requires at least one x value");
  MCS_EXPECTS(static_cast<bool>(mutate), "sweep requires a mutator");

  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (const double x : xs) {
    SimulationConfig config = base;
    mutate(config.workload, x);
    MCS_LOG_INFO("sweep point x=" << x);
    points.push_back(SweepPoint{x, simulate(config, mechanisms)});
  }
  return points;
}

}  // namespace mcs::sim
