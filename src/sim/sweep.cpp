#include "sim/sweep.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::sim {

std::vector<SweepPoint> run_sweep(
    const SimulationConfig& base, const std::vector<double>& xs,
    const ConfigMutator& mutate,
    const std::vector<const auction::Mechanism*>& mechanisms,
    std::string_view param_name) {
  MCS_EXPECTS(!xs.empty(), "sweep requires at least one x value");
  MCS_EXPECTS(static_cast<bool>(mutate), "sweep requires a mutator");

  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (const double x : xs) {
    SimulationConfig config = base;
    mutate(config.workload, x);
    MCS_LOG_INFO("sweep point " << param_name << "=" << x);
    const obs::ScopedTimer point_timer("sim.sweep.point_duration_us");
    obs::count("sim.sweep.points");
    points.push_back(SweepPoint{x, simulate(config, mechanisms)});
  }
  return points;
}

}  // namespace mcs::sim
