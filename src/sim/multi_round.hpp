// Multi-round market simulation with a persistent phone community.
//
// The paper's auction "is executed round by round" (Section III-B) and its
// Fig. 9 discussion claims the market "is stable even in the long run";
// the single-round simulator cannot speak to that, because it redraws the
// whole population each repetition. This driver keeps a *community*:
// phones join (Poisson over the round), keep their private cost across
// rounds, participate in every round they remain for (with a freshly drawn
// active window -- a commuter's availability changes daily, its cost
// structure does not), and churn out with a configurable retention
// probability. Both mechanisms run on the same community each round.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/metrics.hpp"
#include "common/stats.hpp"
#include "model/workload.hpp"

namespace mcs::sim {

struct MultiRoundConfig {
  model::WorkloadConfig workload;   ///< per-round arrivals & shapes
  int rounds = 30;
  /// Probability that a community member stays for the next round.
  double retention = 0.5;
  std::uint64_t seed = 42;

  void validate() const;
};

struct RoundRecord {
  int round{0};
  int community_size{0};  ///< phones participating this round
  int tasks{0};
  analysis::RoundMetrics online;
  analysis::RoundMetrics offline;
};

struct MultiRoundResult {
  std::vector<RoundRecord> rounds;
  RunningStats online_sigma;
  RunningStats offline_sigma;
  RunningStats online_welfare;
  RunningStats offline_welfare;
  RunningStats community_size;
};

/// Runs the chained simulation; deterministic in the config.
[[nodiscard]] MultiRoundResult run_multi_round(const MultiRoundConfig& config);

}  // namespace mcs::sim
