#include "sim/multi_round.hpp"

#include <algorithm>
#include <cmath>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::sim {

void MultiRoundConfig::validate() const {
  workload.validate();
  if (rounds < 1) throw InvalidArgumentError("rounds must be >= 1");
  if (retention < 0.0 || retention > 1.0 || !std::isfinite(retention)) {
    throw InvalidArgumentError("retention must be in [0, 1]");
  }
}

namespace {

/// Draws a fresh active window for a community member: arrival uniform in
/// the round, length from the workload's distribution, truncated at m.
SlotInterval draw_window(const model::WorkloadConfig& workload, Rng& rng) {
  const auto arrival = static_cast<Slot::rep_type>(
      rng.uniform_int(1, workload.num_slots));
  const auto max_length = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(2.0 * workload.mean_active_length)) - 1);
  const auto length =
      static_cast<Slot::rep_type>(rng.uniform_int(1, max_length));
  const Slot::rep_type depart =
      std::min<Slot::rep_type>(arrival + length - 1, workload.num_slots);
  return SlotInterval::of(arrival, depart);
}

}  // namespace

MultiRoundResult run_multi_round(const MultiRoundConfig& config) {
  config.validate();
  Rng rng(config.seed);

  // Community members carry a stable private cost between rounds. Costs
  // are drawn with the same distribution the single-round generator uses
  // (uniform with the configured mean; see model/workload.cpp) -- for
  // simplicity the multi-round driver supports the uniform family only.
  MCS_EXPECTS(config.workload.cost_distribution ==
                  model::CostDistribution::kUniform,
              "multi-round driver supports the uniform cost family");
  const auto cost_hi = std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(std::llround(2.0 * config.workload.mean_cost)) -
          1);

  std::vector<Money> community_costs;
  const PoissonSampler newcomer_arrivals(config.workload.phone_arrival_rate *
                                         config.workload.num_slots);
  const PoissonSampler task_arrivals(config.workload.task_arrival_rate);

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;

  MultiRoundResult result;
  result.rounds.reserve(static_cast<std::size_t>(config.rounds));

  for (int round = 1; round <= config.rounds; ++round) {
    // Churn, then admit this round's newcomers to the community.
    std::erase_if(community_costs,
                  [&](Money) { return !rng.bernoulli(config.retention); });
    const std::int64_t newcomers = newcomer_arrivals.sample(rng);
    for (std::int64_t k = 0; k < newcomers; ++k) {
      community_costs.push_back(
          Money::from_units(rng.uniform_int(1, cost_hi)));
    }

    // Build this round's scenario: every member participates with a fresh
    // window; tasks arrive Poisson per slot as in the single-round model.
    model::Scenario scenario;
    scenario.num_slots = config.workload.num_slots;
    scenario.task_value = config.workload.task_value;
    for (const Money cost : community_costs) {
      scenario.phones.push_back(
          model::TrueProfile{draw_window(config.workload, rng), cost});
    }
    for (Slot::rep_type t = 1; t <= config.workload.num_slots; ++t) {
      const std::int64_t tasks = task_arrivals.sample(rng);
      for (std::int64_t k = 0; k < tasks; ++k) {
        scenario.tasks.push_back(model::Task{
            TaskId{static_cast<int>(scenario.tasks.size())}, Slot{t}, {}});
      }
    }
    scenario.validate();
    const model::BidProfile bids = scenario.truthful_bids();

    RoundRecord record;
    record.round = round;
    record.community_size = scenario.phone_count();
    record.tasks = scenario.task_count();
    record.online =
        analysis::compute_metrics(scenario, bids, online.run(scenario, bids));
    record.offline =
        analysis::compute_metrics(scenario, bids, offline.run(scenario, bids));

    result.online_sigma.add(record.online.overpayment_ratio);
    result.offline_sigma.add(record.offline.overpayment_ratio);
    result.online_welfare.add(record.online.social_welfare.to_double());
    result.offline_welfare.add(record.offline.social_welfare.to_double());
    result.community_size.add(static_cast<double>(record.community_size));
    result.rounds.push_back(std::move(record));
  }
  return result;
}

}  // namespace mcs::sim
