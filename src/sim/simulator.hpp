// Repeated-round simulation (paper Section VI-A methodology).
//
// Each repetition draws an independent round from the workload model (the
// paper's auction "executed round by round"), runs every registered
// mechanism on the truthful bid profile, derives the round metrics, and
// accumulates them. Reproducible: repetition r uses the deterministic
// child stream fork(base_seed, r), so sweeps and reruns see identical
// workloads per (seed, r) regardless of which mechanisms run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "auction/mechanism.hpp"
#include "common/stats.hpp"
#include "model/workload.hpp"

namespace mcs::sim {

struct SimulationConfig {
  model::WorkloadConfig workload;
  int repetitions = 30;
  std::uint64_t base_seed = 42;
  /// Decision-event sampling: when an obs::EventLog is installed and
  /// log_every_n > 0, every n-th repetition (0, n, 2n, ...) records its
  /// full decision trail, bracketed by a "repetition_started" marker; the
  /// others run with event recording suppressed. 0 disables sampling (no
  /// repetition records events). simulate_parallel workers inherit no
  /// thread-local event log, so sampling only applies to the sequential
  /// path (and to parallel runs that fall back to it).
  int log_every_n = 0;
};

/// Aggregated metrics of one mechanism over all repetitions.
struct MechanismAggregate {
  std::string name;
  RunningStats social_welfare;
  RunningStats overpayment_ratio;
  RunningStats total_payment;
  RunningStats completion_rate;
  RunningStats platform_utility;
};

struct SimulationResult {
  std::vector<MechanismAggregate> mechanisms;
  RunningStats phones_per_round;
  RunningStats tasks_per_round;

  /// Aggregate for a mechanism by name; throws InvalidArgumentError when
  /// absent.
  [[nodiscard]] const MechanismAggregate& by_name(const std::string& name) const;
};

/// Runs the simulation. `mechanisms` are non-owning pointers; each must be
/// valid for the duration of the call.
[[nodiscard]] SimulationResult simulate(
    const SimulationConfig& config,
    const std::vector<const auction::Mechanism*>& mechanisms);

/// Multi-threaded variant. Repetitions are dealt round-robin to `threads`
/// workers (0 = hardware concurrency); per-repetition RNG streams are the
/// same deterministic forks the sequential run uses, so the sample set is
/// identical to simulate() -- aggregates may differ only in floating-point
/// accumulation order. Mechanisms must be safe to call concurrently (all
/// mechanisms in this library are: run() is const and stateless).
[[nodiscard]] SimulationResult simulate_parallel(
    const SimulationConfig& config,
    const std::vector<const auction::Mechanism*>& mechanisms,
    int threads = 0);

/// The mechanism pair every figure compares: online greedy and offline VCG,
/// in that order (matching the paper's plot legends).
struct StandardMechanisms {
  StandardMechanisms();
  [[nodiscard]] std::vector<const auction::Mechanism*> pointers() const;

  std::unique_ptr<auction::Mechanism> online;
  std::unique_ptr<auction::Mechanism> offline;
};

}  // namespace mcs::sim
