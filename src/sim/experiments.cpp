#include "sim/experiments.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::sim {

namespace {

ConfigMutator slots_mutator() {
  return [](model::WorkloadConfig& w, double x) {
    w.num_slots = static_cast<Slot::rep_type>(std::llround(x));
  };
}

ConfigMutator arrival_mutator() {
  return [](model::WorkloadConfig& w, double x) { w.phone_arrival_rate = x; };
}

ConfigMutator cost_mutator() {
  // Sweeping c-bar; the task value nu stays at the Table-I default so the
  // welfare trend reflects costs alone (DESIGN.md substitution notes).
  return [](model::WorkloadConfig& w, double x) { w.mean_cost = x; };
}

std::vector<FigureSpec> make_figures() {
  std::vector<FigureSpec> figures;
  figures.push_back(FigureSpec{
      "fig6", "Social welfare vs number of slots m", "m",
      {30, 40, 50, 60, 70, 80}, FigureMetric::kSocialWelfare,
      slots_mutator()});
  figures.push_back(FigureSpec{
      "fig7", "Social welfare vs arrival rate lambda of smartphones",
      "lambda", {4, 5, 6, 7, 8}, FigureMetric::kSocialWelfare,
      arrival_mutator()});
  figures.push_back(FigureSpec{
      "fig8", "Social welfare vs average of real costs", "c-bar",
      {10, 20, 30, 40, 50}, FigureMetric::kSocialWelfare, cost_mutator()});
  figures.push_back(FigureSpec{
      "fig9", "Overpayment ratio vs number of slots m", "m",
      {30, 40, 50, 60, 70, 80}, FigureMetric::kOverpaymentRatio,
      slots_mutator()});
  figures.push_back(FigureSpec{
      "fig10", "Overpayment ratio vs arrival rate lambda of smartphones",
      "lambda", {4, 5, 6, 7, 8}, FigureMetric::kOverpaymentRatio,
      arrival_mutator()});
  figures.push_back(FigureSpec{
      "fig11", "Overpayment ratio vs average of real costs", "c-bar",
      {10, 20, 30, 40, 50}, FigureMetric::kOverpaymentRatio, cost_mutator()});
  return figures;
}

}  // namespace

const std::vector<FigureSpec>& all_figures() {
  static const std::vector<FigureSpec> figures = make_figures();
  return figures;
}

const FigureSpec& figure(const std::string& id) {
  for (const FigureSpec& spec : all_figures()) {
    if (spec.id == id) return spec;
  }
  throw InvalidArgumentError("unknown figure id: " + id);
}

io::TextTable FigureSeries::to_table() const {
  io::TextTable table(header);
  for (const auto& row : rows) table.add_row(row);
  return table;
}

std::string FigureSeries::to_chart() const {
  const io::AsciiChart chart;
  return chart.to_string(
      xs, {io::ChartSeries{"online", online_means, 'o'},
           io::ChartSeries{"offline", offline_means, 'x'}});
}

FigureSeries run_figure(const FigureSpec& spec, const SimulationConfig& base) {
  const StandardMechanisms mechanisms;
  const std::vector<SweepPoint> points = run_sweep(
      base, spec.xs, spec.mutate, mechanisms.pointers(), spec.x_label);

  const bool welfare = spec.metric == FigureMetric::kSocialWelfare;
  const std::string metric_name =
      welfare ? "welfare" : "overpayment_ratio";
  const int precision = welfare ? 1 : 4;

  FigureSeries series;
  series.id = spec.id;
  series.title = spec.title;
  series.header = {spec.x_label, "online_" + metric_name,
                   "offline_" + metric_name, "online_ci95", "offline_ci95"};
  for (const SweepPoint& point : points) {
    const MechanismAggregate& online = point.result.mechanisms.at(0);
    const MechanismAggregate& offline = point.result.mechanisms.at(1);
    const RunningStats& on = welfare ? online.social_welfare
                                     : online.overpayment_ratio;
    const RunningStats& off = welfare ? offline.social_welfare
                                      : offline.overpayment_ratio;
    series.rows.push_back({io::format_double(point.x, spec.x_label == "lambda" ? 1 : 0),
                           io::format_double(on.mean(), precision),
                           io::format_double(off.mean(), precision),
                           io::format_double(on.ci95_half_width(), precision),
                           io::format_double(off.ci95_half_width(), precision)});
    series.xs.push_back(point.x);
    series.online_means.push_back(on.mean());
    series.offline_means.push_back(off.mean());
  }
  return series;
}

}  // namespace mcs::sim
