#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <thread>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::sim {

const MechanismAggregate& SimulationResult::by_name(
    const std::string& name) const {
  for (const MechanismAggregate& aggregate : mechanisms) {
    if (aggregate.name == name) return aggregate;
  }
  throw InvalidArgumentError("no aggregate for mechanism: " + name);
}

namespace {

void check_inputs(const SimulationConfig& config,
                  const std::vector<const auction::Mechanism*>& mechanisms) {
  MCS_EXPECTS(config.repetitions >= 1, "repetitions must be >= 1");
  MCS_EXPECTS(!mechanisms.empty(), "at least one mechanism required");
  config.workload.validate();
  for (const auction::Mechanism* mechanism : mechanisms) {
    MCS_EXPECTS(mechanism != nullptr, "null mechanism");
  }
}

SimulationResult make_result_shell(
    const std::vector<const auction::Mechanism*>& mechanisms) {
  SimulationResult result;
  result.mechanisms.reserve(mechanisms.size());
  for (const auction::Mechanism* mechanism : mechanisms) {
    MechanismAggregate aggregate;
    aggregate.name = mechanism->name();
    result.mechanisms.push_back(std::move(aggregate));
  }
  return result;
}

/// One repetition: generate the round from the deterministic per-rep
/// stream, run every mechanism, accumulate into `result`.
void run_repetition(const SimulationConfig& config,
                    const std::vector<const auction::Mechanism*>& mechanisms,
                    int rep, SimulationResult& result) {
  const obs::ScopedTimer rep_timer("sim.repetition_duration_us");
  obs::count("sim.repetitions");
  // Event sampling: keep the decision log for every n-th repetition,
  // suppress the rest (an unsampled sim would otherwise record every
  // decision of every repetition -- far too noisy for 30+ reps).
  const bool sample_events =
      config.log_every_n > 0 && rep % config.log_every_n == 0;
  std::optional<obs::ScopedEventLog> suppress_events;
  if (!sample_events) suppress_events.emplace(nullptr);
  if (sample_events) {
    obs::log_event([&] {
      obs::Event event("repetition_started");
      event.with("rep", static_cast<std::int64_t>(rep))
          .with("seed", static_cast<std::int64_t>(config.base_seed));
      return event;
    });
  }
  // The shared (seed, rep) fork discipline of model::round_scenario keeps
  // repetition k reproducible and independent of execution order.
  const model::Scenario scenario =
      model::round_scenario(config.workload, config.base_seed, rep);
  const model::BidProfile bids = scenario.truthful_bids();
  result.phones_per_round.add(static_cast<double>(scenario.phone_count()));
  result.tasks_per_round.add(static_cast<double>(scenario.task_count()));

  for (std::size_t k = 0; k < mechanisms.size(); ++k) {
    auction::Outcome outcome;
    {
      // Per-mechanism totals; the names are only materialised when
      // telemetry is on, so the disabled path stays allocation-free.
      std::optional<obs::ScopedTimer> mech_timer;
      if (obs::current_registry() != nullptr) {
        const std::string prefix = "sim.mechanism." + mechanisms[k]->name();
        obs::count(prefix + ".runs");
        mech_timer.emplace(prefix + ".duration_us");
      }
      outcome = mechanisms[k]->run(scenario, bids);
    }
    const analysis::RoundMetrics metrics =
        analysis::compute_metrics(scenario, bids, outcome);
    MechanismAggregate& aggregate = result.mechanisms[k];
    aggregate.social_welfare.add(metrics.social_welfare.to_double());
    aggregate.overpayment_ratio.add(metrics.overpayment_ratio);
    aggregate.total_payment.add(metrics.total_payment.to_double());
    aggregate.completion_rate.add(metrics.completion_rate);
    aggregate.platform_utility.add(metrics.platform_utility.to_double());
  }
}

void merge_into(SimulationResult& into, const SimulationResult& from) {
  MCS_ASSERT(into.mechanisms.size() == from.mechanisms.size(),
             "merge shape mismatch");
  for (std::size_t k = 0; k < into.mechanisms.size(); ++k) {
    MechanismAggregate& a = into.mechanisms[k];
    const MechanismAggregate& b = from.mechanisms[k];
    a.social_welfare.merge(b.social_welfare);
    a.overpayment_ratio.merge(b.overpayment_ratio);
    a.total_payment.merge(b.total_payment);
    a.completion_rate.merge(b.completion_rate);
    a.platform_utility.merge(b.platform_utility);
  }
  into.phones_per_round.merge(from.phones_per_round);
  into.tasks_per_round.merge(from.tasks_per_round);
}

}  // namespace

SimulationResult simulate(
    const SimulationConfig& config,
    const std::vector<const auction::Mechanism*>& mechanisms) {
  check_inputs(config, mechanisms);
  const obs::TraceSpan span("sim.simulate");
  SimulationResult result = make_result_shell(mechanisms);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    run_repetition(config, mechanisms, rep, result);
    MCS_LOG_DEBUG("simulate: repetition " << rep << " done");
  }
  return result;
}

SimulationResult simulate_parallel(
    const SimulationConfig& config,
    const std::vector<const auction::Mechanism*>& mechanisms, int threads) {
  check_inputs(config, mechanisms);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min(threads, config.repetitions);
  if (threads == 1) return simulate(config, mechanisms);

  const obs::TraceSpan span("sim.simulate_parallel");
  std::vector<SimulationResult> partials(
      static_cast<std::size_t>(threads));
  for (auto& partial : partials) partial = make_result_shell(mechanisms);

  // Worker-local registries: each worker records into its own registry
  // (new threads inherit no thread-local state), and the partials are
  // folded into the caller's registry in worker order after the join.
  // Counter and histogram merges are sums, so the reduced counts equal a
  // sequential run over the same repetitions exactly.
  obs::MetricsRegistry* const parent_registry = obs::current_registry();
  std::vector<obs::MetricsRegistry> worker_metrics(
      static_cast<std::size_t>(threads));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::optional<obs::ScopedRegistry> telemetry;
      if (parent_registry != nullptr) {
        telemetry.emplace(&worker_metrics[static_cast<std::size_t>(w)]);
      }
      for (int rep = w; rep < config.repetitions; rep += threads) {
        run_repetition(config, mechanisms, rep,
                       partials[static_cast<std::size_t>(w)]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  SimulationResult result = std::move(partials.front());
  for (std::size_t w = 1; w < partials.size(); ++w) {
    merge_into(result, partials[w]);
  }
  if (parent_registry != nullptr) {
    for (const obs::MetricsRegistry& partial : worker_metrics) {
      parent_registry->merge(partial);
    }
  }
  return result;
}

StandardMechanisms::StandardMechanisms()
    : online(std::make_unique<auction::OnlineGreedyMechanism>()),
      offline(std::make_unique<auction::OfflineVcgMechanism>()) {}

std::vector<const auction::Mechanism*> StandardMechanisms::pointers() const {
  return {online.get(), offline.get()};
}

}  // namespace mcs::sim
