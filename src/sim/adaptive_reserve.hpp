// Adaptive reserve pricing across rounds: a no-regret learner on top of
// the truthful online mechanism.
//
// The budget-planner example picks one reserve offline; a deployed
// platform can instead *learn* it. Each round the planner maintains a
// weight per candidate reserve (the "arms"), plays the weighted-majority
// pick, observes the round, and -- because this is a simulator -- scores
// every arm counterfactually on the same realized round (full-information
// feedback), updating weights multiplicatively (Hedge). Classic online
// learning then guarantees the played sequence's average objective
// approaches the best fixed reserve in hindsight; the tests and
// `bench/adaptive_reserve` check exactly that.
//
// Crucially, the underlying per-round mechanism stays exactly truthful at
// *every* reserve (DESIGN.md §5): learning tunes the platform's knob, not
// the phones' incentives. (In a real deployment counterfactual scoring is
// unavailable; swapping Hedge for a bandit rule like EXP3 changes only the
// update, not this interface.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "common/stats.hpp"
#include "model/workload.hpp"

namespace mcs::sim {

struct AdaptiveReserveConfig {
  model::WorkloadConfig workload;     ///< per-round market
  std::vector<Money> reserve_grid;    ///< candidate reserves (the arms)
  int rounds = 60;
  double learning_rate = 0.15;        ///< Hedge step size
  std::uint64_t seed = 42;

  /// What the planner maximizes each round.
  enum class Objective {
    kPlatformUtility,  ///< allocated value minus payments (default)
    kSocialWelfare,
  };
  Objective objective = Objective::kPlatformUtility;

  void validate() const;
};

struct AdaptiveRoundRecord {
  int round{0};
  std::size_t played_arm{0};  ///< index into reserve_grid
  double played_objective{0.0};
  double best_arm_objective{0.0};  ///< this round's best arm (hindsight)
};

struct AdaptiveReserveResult {
  std::vector<AdaptiveRoundRecord> rounds;
  std::vector<double> final_weights;     ///< normalized, per arm
  std::vector<double> cumulative_by_arm; ///< total objective per fixed arm
  double cumulative_played{0.0};

  /// Index of the best fixed arm in hindsight.
  [[nodiscard]] std::size_t best_fixed_arm() const;

  /// Total regret of the played sequence vs the best fixed arm.
  [[nodiscard]] double total_regret() const;

  /// Regret averaged per round (should shrink as rounds grow).
  [[nodiscard]] double average_regret(int rounds_count) const;
};

/// Runs the learner; deterministic in the config.
[[nodiscard]] AdaptiveReserveResult run_adaptive_reserve(
    const AdaptiveReserveConfig& config);

}  // namespace mcs::sim
