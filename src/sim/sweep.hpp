// Parameter sweeps: one simulation per x-value of a figure.
//
// Every evaluation figure varies exactly one workload parameter (m, lambda,
// or c-bar) and plots a metric for the online and offline mechanisms. A
// Sweep binds the parameter mutation to the x-values and runs the simulator
// at each point with the same base seed, so figures differ only in the
// swept parameter.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace mcs::sim {

/// Applies one sweep x-value to the workload (e.g. "set num_slots = x").
using ConfigMutator = std::function<void(model::WorkloadConfig&, double x)>;

struct SweepPoint {
  double x{0.0};
  SimulationResult result;
};

/// Runs the simulation at every x. The base config's swept field is
/// overwritten by the mutator; everything else (including the seed) is
/// shared across points. `param_name` names the swept axis in logs and
/// telemetry (e.g. "m", "lambda", "c-bar"); defaults to "x" for callers
/// that sweep an anonymous parameter. Each point's wall time lands in the
/// installed registry ("sim.sweep.point_duration_us").
[[nodiscard]] std::vector<SweepPoint> run_sweep(
    const SimulationConfig& base, const std::vector<double>& xs,
    const ConfigMutator& mutate,
    const std::vector<const auction::Mechanism*>& mechanisms,
    std::string_view param_name = "x");

}  // namespace mcs::sim
