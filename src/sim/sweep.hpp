// Parameter sweeps: one simulation per x-value of a figure.
//
// Every evaluation figure varies exactly one workload parameter (m, lambda,
// or c-bar) and plots a metric for the online and offline mechanisms. A
// Sweep binds the parameter mutation to the x-values and runs the simulator
// at each point with the same base seed, so figures differ only in the
// swept parameter.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.hpp"

namespace mcs::sim {

/// Applies one sweep x-value to the workload (e.g. "set num_slots = x").
using ConfigMutator = std::function<void(model::WorkloadConfig&, double x)>;

struct SweepPoint {
  double x{0.0};
  SimulationResult result;
};

/// Runs the simulation at every x. The base config's swept field is
/// overwritten by the mutator; everything else (including the seed) is
/// shared across points.
[[nodiscard]] std::vector<SweepPoint> run_sweep(
    const SimulationConfig& base, const std::vector<double>& xs,
    const ConfigMutator& mutate,
    const std::vector<const auction::Mechanism*>& mechanisms);

}  // namespace mcs::sim
