// The figure registry: every evaluation plot of the paper as a runnable
// experiment.
//
// Figures 6-8 plot social welfare, Figures 9-11 the overpayment ratio, each
// against one swept parameter (number of slots m, smartphone arrival rate
// lambda, average real cost c-bar) with everything else at the Table-I
// defaults. run_figure executes the sweep and renders the series both as a
// TextTable (what the bench binaries print) and as CSV rows (what --csv
// dumps); EXPERIMENTS.md records the expected qualitative shape per figure.
#pragma once

#include <string>
#include <vector>

#include "io/ascii_chart.hpp"
#include "io/table.hpp"
#include "sim/sweep.hpp"

namespace mcs::sim {

enum class FigureMetric { kSocialWelfare, kOverpaymentRatio };

struct FigureSpec {
  std::string id;        ///< "fig6" .. "fig11"
  std::string title;     ///< e.g. "Social welfare vs number of slots m"
  std::string x_label;   ///< e.g. "m"
  std::vector<double> xs;
  FigureMetric metric{FigureMetric::kSocialWelfare};
  ConfigMutator mutate;
};

/// The specs for Figures 6-11 in paper order.
[[nodiscard]] const std::vector<FigureSpec>& all_figures();

/// Spec by id; throws InvalidArgumentError for unknown ids.
[[nodiscard]] const FigureSpec& figure(const std::string& id);

/// One reproduced figure: the series for the online and offline mechanisms
/// with 95% confidence half-widths.
struct FigureSeries {
  std::string id;
  std::string title;
  std::vector<std::string> header;          ///< x, online, offline, ci columns
  std::vector<std::vector<std::string>> rows;

  /// Numeric copies of the series (for charts and programmatic checks).
  std::vector<double> xs;
  std::vector<double> online_means;
  std::vector<double> offline_means;

  [[nodiscard]] io::TextTable to_table() const;

  /// Terminal plot of both series (io::AsciiChart).
  [[nodiscard]] std::string to_chart() const;
};

/// Runs the sweep for a figure spec with the given simulation settings
/// (the spec's mutator overrides the swept field per point).
[[nodiscard]] FigureSeries run_figure(const FigureSpec& spec,
                                      const SimulationConfig& base);

}  // namespace mcs::sim
