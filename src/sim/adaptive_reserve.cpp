#include "sim/adaptive_reserve.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/metrics.hpp"
#include "auction/online_greedy.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mcs::sim {

void AdaptiveReserveConfig::validate() const {
  workload.validate();
  if (reserve_grid.empty()) {
    throw InvalidArgumentError("reserve grid must be nonempty");
  }
  for (const Money reserve : reserve_grid) {
    if (reserve.is_negative()) {
      throw InvalidArgumentError("reserves must be >= 0");
    }
  }
  if (rounds < 1) throw InvalidArgumentError("rounds must be >= 1");
  if (learning_rate <= 0.0 || !std::isfinite(learning_rate)) {
    throw InvalidArgumentError("learning rate must be positive and finite");
  }
}

std::size_t AdaptiveReserveResult::best_fixed_arm() const {
  MCS_EXPECTS(!cumulative_by_arm.empty(), "empty result");
  return static_cast<std::size_t>(
      std::max_element(cumulative_by_arm.begin(), cumulative_by_arm.end()) -
      cumulative_by_arm.begin());
}

double AdaptiveReserveResult::total_regret() const {
  return cumulative_by_arm[best_fixed_arm()] - cumulative_played;
}

double AdaptiveReserveResult::average_regret(int rounds_count) const {
  MCS_EXPECTS(rounds_count >= 1, "rounds must be >= 1");
  return total_regret() / rounds_count;
}

AdaptiveReserveResult run_adaptive_reserve(
    const AdaptiveReserveConfig& config) {
  config.validate();
  const std::size_t arms = config.reserve_grid.size();

  // Pre-built mechanisms, one per arm.
  std::vector<auction::OnlineGreedyMechanism> mechanisms;
  mechanisms.reserve(arms);
  for (const Money reserve : config.reserve_grid) {
    auction::OnlineGreedyConfig mechanism_config;
    mechanism_config.reserve_price = reserve;
    mechanisms.emplace_back(mechanism_config);
  }

  std::vector<double> log_weights(arms, 0.0);
  AdaptiveReserveResult result;
  result.cumulative_by_arm.assign(arms, 0.0);

  // Objective scale for Hedge's loss normalization: a crude upper bound on
  // a round's objective, |tasks| * nu expected.
  const double objective_scale =
      std::max(1.0, config.workload.task_arrival_rate *
                        static_cast<double>(config.workload.num_slots) *
                        config.workload.task_value.to_double());

  Rng rng(config.seed);
  for (int round = 1; round <= config.rounds; ++round) {
    const model::Scenario scenario =
        model::generate_scenario(config.workload, rng);
    const model::BidProfile bids = scenario.truthful_bids();

    // Play the current weighted-majority arm (deterministic given state).
    const std::size_t played = static_cast<std::size_t>(
        std::max_element(log_weights.begin(), log_weights.end()) -
        log_weights.begin());

    // Full-information feedback: score every arm on this realized round.
    std::vector<double> objective(arms, 0.0);
    for (std::size_t arm = 0; arm < arms; ++arm) {
      const analysis::RoundMetrics metrics = analysis::compute_metrics(
          scenario, bids, mechanisms[arm].run(scenario, bids));
      objective[arm] =
          config.objective == AdaptiveReserveConfig::Objective::kSocialWelfare
              ? metrics.social_welfare.to_double()
              : metrics.platform_utility.to_double();
      result.cumulative_by_arm[arm] += objective[arm];
    }
    result.cumulative_played += objective[played];

    AdaptiveRoundRecord record;
    record.round = round;
    record.played_arm = played;
    record.played_objective = objective[played];
    record.best_arm_objective =
        *std::max_element(objective.begin(), objective.end());
    result.rounds.push_back(record);

    // Hedge update in log space (numerically stable for long horizons).
    for (std::size_t arm = 0; arm < arms; ++arm) {
      log_weights[arm] +=
          config.learning_rate * objective[arm] / objective_scale;
    }
  }

  // Normalized final weights for inspection.
  const double max_log =
      *std::max_element(log_weights.begin(), log_weights.end());
  double total = 0.0;
  result.final_weights.assign(arms, 0.0);
  for (std::size_t arm = 0; arm < arms; ++arm) {
    result.final_weights[arm] = std::exp(log_weights[arm] - max_log);
    total += result.final_weights[arm];
  }
  for (double& w : result.final_weights) w /= total;
  return result;
}

}  // namespace mcs::sim
