#include "analysis/trace_report.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"
#include "io/json_parse.hpp"

namespace mcs::analysis {

namespace {

std::uint64_t u64_field(const io::JsonValue& object, std::string_view key) {
  const std::int64_t v = object.at(key).as_int();
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

TraceRecord decode_trace(const io::JsonValue& line) {
  TraceRecord record;
  record.trace_id = line.at("trace_id").as_string();
  record.round = line.at("round").as_int();
  record.shard = static_cast<int>(line.at("shard").as_int());
  record.status = line.at("status").as_string();
  for (const io::JsonValue& reason : line.at("retained").as_array()) {
    record.retained.push_back(reason.as_string());
  }
  record.violations = line.int_or("violations", 0);
  record.open_ns = u64_field(line, "open_ns");
  record.close_ns = u64_field(line, "close_ns");
  record.latency_ns = u64_field(line, "latency_ns");
  record.spans_dropped = line.int_or("spans_dropped", 0);
  for (const io::JsonValue& span : line.at("spans").as_array()) {
    TraceRecord::Span out;
    out.phase = span.at("phase").as_string();
    out.slot = static_cast<std::int32_t>(span.int_or("slot", -1));
    out.start_ns = u64_field(span, "start_ns");
    out.end_ns = u64_field(span, "end_ns");
    record.spans.push_back(std::move(out));
  }
  return record;
}

void decode_summary(const io::JsonValue& line, TraceStreamSummary& out) {
  out.rounds = line.int_or("rounds", 0);
  out.completed = line.int_or("completed", 0);
  out.retained = line.int_or("retained", 0);
  out.retained_slow = line.int_or("retained_slow", 0);
  out.retained_econ = line.int_or("retained_econ", 0);
  out.retained_error = line.int_or("retained_error", 0);
  out.dropped = line.int_or("dropped", 0);
  out.retained_evicted = line.int_or("retained_evicted", 0);
  out.spans_truncated = line.int_or("spans_truncated", 0);
  const io::JsonValue& threshold = line.at("slow_threshold_ns");
  out.slow_threshold_ns = threshold.is_null() ? -1 : threshold.as_int();
  for (const auto& [name, stats] : line.at("phases").as_object()) {
    TracePhaseStats phase;
    phase.count = stats.int_or("count", 0);
    const io::JsonValue* p50 = stats.find("p50_ns");
    const io::JsonValue* p99 = stats.find("p99_ns");
    phase.p50_ns = (p50 != nullptr && p50->is_number()) ? p50->as_number()
                                                        : 0.0;
    phase.p99_ns = (p99 != nullptr && p99->is_number()) ? p99->as_number()
                                                        : 0.0;
    phase.max_ns = stats.int_or("max_ns", 0);
    out.phases.emplace(name, phase);
  }
}

void decode_exemplars(const io::JsonValue& line, TraceStreamSummary& out) {
  out.exemplar_threshold_ns = u64_field(line, "threshold_ns");
  for (const io::JsonValue& entry : line.at("entries").as_array()) {
    TraceExemplar exemplar;
    exemplar.bucket_le_ns = u64_field(entry, "le_ns");
    exemplar.latency_ns = u64_field(entry, "latency_ns");
    exemplar.trace_id = entry.at("trace_id").as_string();
    exemplar.round = entry.at("round").as_int();
    out.exemplars.push_back(std::move(exemplar));
  }
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  }
  return buf;
}

std::string pad(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string span_label(const TraceRecord::Span& span) {
  if (span.phase == std::string(obs::to_string(obs::TracePhase::kSlotTick)) &&
      span.slot >= 0) {
    return "slot " + std::to_string(span.slot);
  }
  return span.phase;
}

/// One ASCII waterfall row: the span's position inside the trace window
/// rendered into a fixed-width gutter.
std::string waterfall_bar(const TraceRecord::Span& span, std::uint64_t w0,
                          std::uint64_t w1, std::size_t width) {
  std::string bar(width, ' ');
  const double window = w1 > w0 ? static_cast<double>(w1 - w0) : 1.0;
  const double start =
      span.start_ns > w0 ? static_cast<double>(span.start_ns - w0) : 0.0;
  const double dur = span.end_ns > span.start_ns
                         ? static_cast<double>(span.end_ns - span.start_ns)
                         : 0.0;
  auto offset = static_cast<std::size_t>(start / window *
                                         static_cast<double>(width));
  offset = std::min(offset, width - 1);
  auto len = static_cast<std::size_t>(dur / window *
                                      static_cast<double>(width));
  len = std::max<std::size_t>(len, 1);
  len = std::min(len, width - offset);
  for (std::size_t i = 0; i < len; ++i) bar[offset + i] = '#';
  return bar;
}

}  // namespace

TraceStreamSummary summarize_trace_stream(std::istream& in) {
  TraceStreamSummary out;
  bool have_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const io::JsonValue parsed = io::parse_json(line);
    if (!have_header) {
      const io::JsonValue* schema = parsed.find("schema");
      if (schema == nullptr || schema->as_string() != obs::kTraceSchema) {
        throw InvalidArgumentError(
            "trace-report: stream does not start with an " +
            std::string(obs::kTraceSchema) + " header");
      }
      out.shards = static_cast<int>(parsed.int_or("shards", 0));
      out.ring_capacity = parsed.int_or("ring_capacity", 0);
      out.max_spans = parsed.int_or("max_spans", 0);
      const io::JsonValue* threshold = parsed.find("slow_threshold_ns");
      out.auto_threshold = threshold != nullptr && threshold->is_string();
      have_header = true;
      continue;
    }
    const std::string type = parsed.string_or("type", "");
    if (type == "trace") {
      out.traces.push_back(decode_trace(parsed));
    } else if (type == "summary") {
      decode_summary(parsed, out);
    } else if (type == "exemplars") {
      decode_exemplars(parsed, out);
    }
    // Unknown record types: skipped for forward compatibility.
  }
  if (!have_header) {
    throw InvalidArgumentError("trace-report: empty stream (no " +
                               std::string(obs::kTraceSchema) + " header)");
  }
  return out;
}

void render_trace_report(std::ostream& os, const TraceStreamSummary& summary,
                         int top_k) {
  os << obs::kTraceSchema << " -- " << summary.shards << " shard(s), "
     << summary.rounds << " round(s) traced, " << summary.completed
     << " completed\n";
  os << "retained " << summary.retained << " (slow " << summary.retained_slow
     << ", econ " << summary.retained_econ << ", error "
     << summary.retained_error << "), dropped " << summary.dropped
     << ", retained evicted " << summary.retained_evicted
     << ", spans truncated " << summary.spans_truncated << "\n";
  os << "slow threshold: ";
  if (summary.slow_threshold_ns < 0) {
    os << (summary.auto_threshold ? "auto (not warmed up)" : "none");
  } else {
    os << format_ns(static_cast<double>(summary.slow_threshold_ns))
       << (summary.auto_threshold ? " (auto p99)" : " (fixed)");
  }
  os << "\n\n";

  os << "per-phase latency (all rounds, sketch-backed):\n";
  os << "  " << pad("phase", 12) << pad("count", 10) << pad("p50", 12)
     << pad("p99", 12) << "max\n";
  for (std::size_t p = 0; p < obs::kTracePhaseCount; ++p) {
    const std::string name(
        obs::to_string(static_cast<obs::TracePhase>(p)));
    const auto it = summary.phases.find(name);
    if (it == summary.phases.end()) continue;
    const TracePhaseStats& stats = it->second;
    os << "  " << pad(name, 12) << pad(std::to_string(stats.count), 10);
    if (stats.count == 0) {
      os << pad("-", 12) << pad("-", 12) << "-\n";
    } else {
      os << pad(format_ns(stats.p50_ns), 12) << pad(format_ns(stats.p99_ns), 12)
         << format_ns(static_cast<double>(stats.max_ns)) << "\n";
    }
  }

  std::vector<const TraceRecord*> slowest;
  slowest.reserve(summary.traces.size());
  for (const TraceRecord& trace : summary.traces) slowest.push_back(&trace);
  std::sort(slowest.begin(), slowest.end(),
            [](const TraceRecord* a, const TraceRecord* b) {
              if (a->latency_ns != b->latency_ns) {
                return a->latency_ns > b->latency_ns;
              }
              return a->round < b->round;
            });
  if (top_k >= 0 && slowest.size() > static_cast<std::size_t>(top_k)) {
    slowest.resize(static_cast<std::size_t>(top_k));
  }

  os << "\nslowest retained rounds (top " << slowest.size() << " of "
     << summary.traces.size() << "):\n";
  constexpr std::size_t kBarWidth = 32;
  for (const TraceRecord* trace : slowest) {
    os << "  round " << trace->round << "  shard " << trace->shard
       << "  trace " << trace->trace_id << "  " << trace->status << "  [";
    for (std::size_t i = 0; i < trace->retained.size(); ++i) {
      if (i > 0) os << ",";
      os << trace->retained[i];
    }
    os << "]  " << format_ns(static_cast<double>(trace->latency_ns));
    if (trace->violations > 0) {
      os << "  " << trace->violations << " violation(s)";
    }
    os << "\n";
    // Waterfall window: the whole recorded timeline of this trace.
    std::uint64_t w0 = trace->open_ns;
    std::uint64_t w1 = trace->close_ns;
    for (const TraceRecord::Span& span : trace->spans) {
      w0 = std::min(w0, span.start_ns);
      w1 = std::max(w1, span.end_ns);
    }
    for (const TraceRecord::Span& span : trace->spans) {
      os << "    " << pad(span_label(span), 12) << "|"
         << waterfall_bar(span, w0, w1, kBarWidth) << "|  "
         << format_ns(static_cast<double>(span.end_ns >= span.start_ns
                                              ? span.end_ns - span.start_ns
                                              : 0))
         << "\n";
    }
  }

  if (!summary.exemplars.empty()) {
    os << "\nsketch exemplars (latency >= "
       << format_ns(static_cast<double>(summary.exemplar_threshold_ns))
       << "):\n";
    for (const TraceExemplar& exemplar : summary.exemplars) {
      os << "  le "
         << pad(format_ns(static_cast<double>(exemplar.bucket_le_ns)), 12)
         << "worst "
         << pad(format_ns(static_cast<double>(exemplar.latency_ns)), 12)
         << "round " << exemplar.round << "  trace " << exemplar.trace_id
         << "\n";
    }
  }
}

}  // namespace mcs::analysis
