// Allocation-monotonicity auditing (Definition 10).
//
// The online mechanism's truthfulness proof rests on monotonicity: a
// winning bid must keep winning under any "improvement" -- an earlier
// reported arrival, a later reported departure, or a lower claimed cost.
// The auditor takes every winner of the greedy allocation and re-runs it
// under a grid of improved bids; any improvement that loses is a violation.
// (Improvements here ignore the true profile on purpose: monotonicity is a
// property of the allocation *rule*, not of what reports are legal.)
#pragma once

#include <string>
#include <vector>

#include "auction/online_greedy.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

struct MonotonicityOptions {
  Slot::rep_type max_arrival_earlier = 3;   ///< probe arrivals a-1 .. a-max
  Slot::rep_type max_departure_later = 3;   ///< probe departures d+1 .. d+max
  std::vector<double> cost_factors{0.0, 0.25, 0.5, 0.9};  ///< probe b * f
};

struct MonotonicityViolation {
  PhoneId phone{0};
  model::Bid original_bid{SlotInterval::of(1, 1), Money{}};
  model::Bid improved_bid{SlotInterval::of(1, 1), Money{}};
};

struct MonotonicityReport {
  int winners_checked{0};
  int improvements_tested{0};
  std::vector<MonotonicityViolation> violations;

  [[nodiscard]] bool monotone() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Audits the greedy allocation rule (Algorithm 1) on one instance.
[[nodiscard]] MonotonicityReport audit_greedy_monotonicity(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config = {},
    const MonotonicityOptions& options = {});

}  // namespace mcs::analysis
