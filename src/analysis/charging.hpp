// A mechanized proof of Theorem 6 (the paper omits it): per-instance
// charging certificates for the greedy allocation's 1/2-competitiveness.
//
// The classical charging argument, made executable. Fix an instance with a
// *uniform* task value nu and every claimed cost at most nu (so all edge
// weights are nonnegative). Let OPT be a maximum-weight allocation and G
// the greedy one. Charge every OPT edge (tau @ slot t, phone p) to a
// greedy edge:
//
//   * same-phone charge: if greedy allocated p (to some task tau'), charge
//     to (tau', p). Both edges cost b_p against the same value nu, so the
//     charged greedy edge's weight EQUALS the OPT edge's weight.
//   * same-task charge: otherwise p is never allocated by greedy, so p sat
//     in greedy's pool throughout slot t -- greedy therefore served tau,
//     by some q at least as cheap as p (or it would have taken p). Charge
//     to (tau, q), whose weight is >= the OPT edge's weight.
//
// Every greedy edge receives at most one charge of each kind, and every
// charge is covered by the charged edge's weight; summing,
// omega_OPT <= 2 * omega_G. build_... constructs the explicit charge list;
// verify_... re-checks every one of these claims from scratch and throws
// on the first violation -- a proof checker, not a trust-me flag.
//
// The preconditions are real: with per-task values the bound genuinely
// fails (a cheap phone grabbed by a worthless early task can block a
// priceless later one -- see ChargingTest.WeightedValuesBreakTheorem6),
// which is why the builder rejects weighted instances instead of
// pretending.
#pragma once

#include <vector>

#include "auction/online_greedy.hpp"
#include "common/money.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

enum class ChargeKind {
  kSamePhone,  ///< OPT's phone is busy in greedy; equal-weight charge
  kSameTask,   ///< OPT's phone idle in greedy => greedy served the task cheaper
};

/// One OPT edge redirected onto one greedy edge.
struct Charge {
  TaskId opt_task{-1};
  PhoneId opt_phone{-1};
  ChargeKind kind{ChargeKind::kSamePhone};
  TaskId greedy_task{-1};
  PhoneId greedy_phone{-1};
};

struct ChargingCertificate {
  Money greedy_welfare;   ///< omega_G (claimed welfare of the greedy run)
  Money optimal_welfare;  ///< omega_OPT
  std::vector<Charge> charges;  ///< one per OPT edge
};

/// Builds the certificate. Throws InvalidArgumentError when the instance is
/// outside the theorem's scope: weighted tasks, or a claimed cost above the
/// task value. (The construction itself asserts the proof's case analysis;
/// an assertion failure would mean the theorem -- or this library -- is
/// wrong.)
[[nodiscard]] ChargingCertificate build_half_competitive_certificate(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config = {});

/// Re-verifies a certificate from first principles against the instance:
/// each OPT edge charged exactly once, charge targets are real greedy
/// edges with the claimed relationship (same phone / same task + cheaper),
/// no greedy edge is charged twice with the same kind, every charge is
/// weight-covered, and the implied bound omega_OPT <= 2 * omega_G holds
/// numerically. Throws ContractViolation on the first broken claim.
void verify_half_competitive_certificate(
    const ChargingCertificate& certificate, const model::Scenario& scenario,
    const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config = {});

}  // namespace mcs::analysis
