#include "analysis/monotonicity.hpp"

#include <algorithm>
#include <sstream>

namespace mcs::analysis {

std::string MonotonicityReport::summary() const {
  std::ostringstream os;
  os << "checked " << winners_checked << " winners, " << improvements_tested
     << " improvements: ";
  if (monotone()) {
    os << "allocation rule is monotone";
  } else {
    os << violations.size() << " improvements that lost";
  }
  return os.str();
}

MonotonicityReport audit_greedy_monotonicity(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config,
    const MonotonicityOptions& options) {
  MonotonicityReport report;
  const auction::GreedyRun base =
      auction::run_greedy_allocation(scenario, bids, config);

  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    if (!base.allocation.is_winner(phone)) continue;
    ++report.winners_checked;

    const model::Bid& original = bids[static_cast<std::size_t>(i)];
    const Slot::rep_type a = original.window.begin().value();
    const Slot::rep_type d = original.window.end().value();

    // Candidate improvements: each dimension improved independently and in
    // combination, clamped to the round.
    std::vector<model::Bid> improvements;
    for (Slot::rep_type earlier = 0; earlier <= options.max_arrival_earlier;
         ++earlier) {
      const Slot::rep_type begin = std::max<Slot::rep_type>(1, a - earlier);
      for (Slot::rep_type later = 0; later <= options.max_departure_later;
           ++later) {
        const Slot::rep_type end =
            std::min<Slot::rep_type>(scenario.num_slots, d + later);
        improvements.push_back(
            model::Bid{SlotInterval::of(begin, end), original.claimed_cost});
        for (const double factor : options.cost_factors) {
          improvements.push_back(model::Bid{
              SlotInterval::of(begin, end),
              Money::from_double(original.claimed_cost.to_double() * factor)});
        }
      }
    }

    for (const model::Bid& improved : improvements) {
      if (improved == original) continue;
      ++report.improvements_tested;
      const model::BidProfile probe = model::with_bid(bids, phone, improved);
      const auction::GreedyRun run =
          auction::run_greedy_allocation(scenario, probe, config);
      if (!run.allocation.is_winner(phone)) {
        report.violations.push_back(
            MonotonicityViolation{phone, original, improved});
      }
    }
  }
  return report;
}

}  // namespace mcs::analysis
