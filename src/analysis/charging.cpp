#include "analysis/charging.hpp"

#include <map>

#include "auction/offline_vcg.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "matching/hungarian.hpp"

namespace mcs::analysis {

namespace {

void check_scope(const model::Scenario& scenario, const model::BidProfile& bids,
                 const auction::OnlineGreedyConfig& config) {
  if (config.reserve_price) {
    throw InvalidArgumentError(
        "charging certificate covers the plain Algorithm 1 (a reserve "
        "price can bar OPT's phones from the pool, voiding the case "
        "analysis)");
  }
  if (scenario.has_weighted_tasks()) {
    throw InvalidArgumentError(
        "charging certificate requires a uniform task value (Theorem 6 "
        "fails for weighted tasks; see ChargingTest.WeightedValuesBreak"
        "Theorem6)");
  }
  for (const model::Bid& bid : bids) {
    if (bid.claimed_cost > scenario.task_value) {
      throw InvalidArgumentError(
          "charging certificate requires every claimed cost <= nu "
          "(nonnegative edge weights)");
    }
  }
}

}  // namespace

ChargingCertificate build_half_competitive_certificate(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config) {
  scenario.validate();
  model::validate_bids(scenario, bids);
  check_scope(scenario, bids, config);

  const auction::GreedyRun greedy =
      auction::run_greedy_allocation(scenario, bids, config);
  const matching::WeightMatrix graph =
      auction::OfflineVcgMechanism::build_graph(scenario, bids);
  matching::MaxWeightMatcher matcher(graph);
  const matching::Matching& opt = matcher.solve();

  ChargingCertificate certificate;
  certificate.optimal_welfare = matcher.total_weight();
  Money greedy_welfare;
  for (int t = 0; t < scenario.task_count(); ++t) {
    if (const auto phone = greedy.allocation.phone_for(TaskId{t})) {
      greedy_welfare +=
          scenario.task_value -
          bids[static_cast<std::size_t>(phone->value())].claimed_cost;
    }
  }
  certificate.greedy_welfare = greedy_welfare;

  for (int t = 0; t < scenario.task_count(); ++t) {
    const auto opt_col = opt.row_to_col[static_cast<std::size_t>(t)];
    if (!opt_col) continue;  // task unserved by OPT: nothing to charge
    const PhoneId p{*opt_col};
    Charge charge;
    charge.opt_task = TaskId{t};
    charge.opt_phone = p;

    if (const auto greedy_task = greedy.allocation.task_for(p)) {
      // Case 1: OPT's phone is busy in greedy.
      charge.kind = ChargeKind::kSamePhone;
      charge.greedy_task = *greedy_task;
      charge.greedy_phone = p;
    } else {
      // Case 2: p idles in greedy, so it stayed in the pool through slot t
      // and greedy must have served tau -- with someone at least as cheap.
      const auto q = greedy.allocation.phone_for(TaskId{t});
      MCS_ASSERT(q.has_value(),
                 "Theorem 6 case analysis: greedy left a task unserved "
                 "while OPT's phone for it was idle and active");
      MCS_ASSERT(bids[static_cast<std::size_t>(q->value())].claimed_cost <=
                     bids[static_cast<std::size_t>(p.value())].claimed_cost,
                 "Theorem 6 case analysis: greedy's pick must be at least "
                 "as cheap as the idle OPT phone");
      charge.kind = ChargeKind::kSameTask;
      charge.greedy_task = TaskId{t};
      charge.greedy_phone = *q;
    }
    certificate.charges.push_back(charge);
  }
  return certificate;
}

void verify_half_competitive_certificate(
    const ChargingCertificate& certificate, const model::Scenario& scenario,
    const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config) {
  scenario.validate();
  model::validate_bids(scenario, bids);
  check_scope(scenario, bids, config);

  // Recompute both allocations from scratch -- the certificate is not
  // trusted to describe them.
  const auction::GreedyRun greedy =
      auction::run_greedy_allocation(scenario, bids, config);
  const matching::WeightMatrix graph =
      auction::OfflineVcgMechanism::build_graph(scenario, bids);
  matching::MaxWeightMatcher matcher(graph);
  const matching::Matching& opt = matcher.solve();

  MCS_ASSERT(certificate.optimal_welfare == matcher.total_weight(),
             "certificate misstates the optimal welfare");

  const auto cost_of = [&](PhoneId phone) {
    return bids[static_cast<std::size_t>(phone.value())].claimed_cost;
  };

  // Exactly one charge per OPT edge.
  std::vector<char> opt_edge_charged(
      static_cast<std::size_t>(scenario.task_count()), 0);
  // Per greedy edge (keyed by its phone -- one task per phone), at most one
  // charge of each kind.
  std::map<int, int> phone_charges;  // greedy phone -> bitmask of kinds

  Money charged_total;      // sum of OPT edge weights via charges
  Money cover_total;        // sum of charged greedy edge weights

  for (const Charge& charge : certificate.charges) {
    const auto t = static_cast<std::size_t>(charge.opt_task.value());
    MCS_ASSERT(charge.opt_task.value() >= 0 &&
                   charge.opt_task.value() < scenario.task_count(),
               "charge names an unknown task");
    MCS_ASSERT(!opt_edge_charged[t], "OPT edge charged twice");
    opt_edge_charged[t] = 1;

    // The OPT edge must exist as claimed.
    const auto opt_col = opt.row_to_col[t];
    MCS_ASSERT(opt_col && PhoneId{*opt_col} == charge.opt_phone,
               "charge misstates the OPT edge");
    const Money opt_weight = scenario.task_value - cost_of(charge.opt_phone);
    MCS_ASSERT(!opt_weight.is_negative(), "OPT edge weight negative");

    // The greedy edge must exist as claimed.
    const auto greedy_task = greedy.allocation.task_for(charge.greedy_phone);
    MCS_ASSERT(greedy_task && *greedy_task == charge.greedy_task,
               "charge targets a non-existent greedy edge");
    const Money greedy_weight =
        scenario.task_value - cost_of(charge.greedy_phone);

    // Kind-specific structure + weight cover.
    switch (charge.kind) {
      case ChargeKind::kSamePhone:
        MCS_ASSERT(charge.greedy_phone == charge.opt_phone,
                   "same-phone charge must keep the phone");
        break;
      case ChargeKind::kSameTask:
        MCS_ASSERT(charge.greedy_task == charge.opt_task,
                   "same-task charge must keep the task");
        MCS_ASSERT(cost_of(charge.greedy_phone) <= cost_of(charge.opt_phone),
                   "same-task charge requires a cheaper greedy phone");
        break;
    }
    MCS_ASSERT(opt_weight <= greedy_weight,
               "charge not covered by the greedy edge's weight");

    const int kind_bit = charge.kind == ChargeKind::kSamePhone ? 1 : 2;
    int& mask = phone_charges[charge.greedy_phone.value()];
    MCS_ASSERT((mask & kind_bit) == 0,
               "greedy edge charged twice with the same kind");
    mask |= kind_bit;

    charged_total += opt_weight;
    cover_total += greedy_weight;
  }

  // Completeness: every OPT edge was charged.
  for (int t = 0; t < scenario.task_count(); ++t) {
    if (opt.row_to_col[static_cast<std::size_t>(t)]) {
      MCS_ASSERT(opt_edge_charged[static_cast<std::size_t>(t)],
                 "an OPT edge was never charged");
    }
  }

  // The chain of inequalities the charges establish:
  //   omega_OPT = charged_total <= cover_total <= 2 * omega_G.
  MCS_ASSERT(charged_total == certificate.optimal_welfare,
             "charges do not sum to the optimal welfare");
  MCS_ASSERT(cover_total <= certificate.greedy_welfare * 2,
             "cover exceeds twice the greedy welfare");
  MCS_ASSERT(certificate.optimal_welfare <= certificate.greedy_welfare * 2,
             "the 1/2-competitive bound itself");
}

}  // namespace mcs::analysis
