// Flight-recorder run capture, deterministic replay, and per-bidder
// explanation (the tooling side of obs/event_log.hpp).
//
// record_run() executes a mechanism with an event log installed and
// brackets the decision trail with two bookkeeping records:
//
//   run_started   -- the full inputs (scenario text, encoded bid profile)
//                    and the mechanism configuration, enough to re-execute
//                    the run from the log alone;
//   run_finished  -- the outcome in a canonical one-line encoding.
//
// replay_run() closes the loop: it re-executes the recorded scenario/bid
// profile through the recorded mechanism configuration and byte-compares
// the reproduced outcome encoding against the recorded one. A clean replay
// certifies the log is a faithful record of a deterministic run -- the CI
// determinism oracle behind `mcs_cli replay`. explain_phone() renders one
// bidder's view of the trail (admission, pools, wins, probes, payment) as
// a plain-text narrative -- `mcs_cli explain`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "auction/mechanism.hpp"
#include "model/scenario.hpp"
#include "obs/event_log.hpp"

namespace mcs::analysis {

/// Mechanism selection as the CLI exposes it. The string form (rather than
/// a Mechanism*) is what travels inside run_started records, so a replay
/// can reconstruct the exact configuration.
struct RunSpec {
  std::string mechanism = "online";  ///< online|offline|second-price|batched
  double reserve = 0.0;              ///< online reserve price (0 = none)
  bool profitable_only = false;      ///< skip bids above the task value
  std::int64_t batch = 5;            ///< batch size for "batched"
};

/// Builds the mechanism a RunSpec names; throws InvalidArgumentError on an
/// unknown name.
[[nodiscard]] std::unique_ptr<auction::Mechanism> make_mechanism(
    const RunSpec& spec);

/// Canonical one-line encodings used inside run_started / run_finished
/// records. Deterministic and exact (Money via to_string), so equality of
/// encodings is equality of the encoded values.
[[nodiscard]] std::string encode_bids(const model::BidProfile& bids);
[[nodiscard]] model::BidProfile decode_bids(const std::string& text);
[[nodiscard]] std::string encode_outcome(const auction::Outcome& outcome);

/// Runs `spec`'s mechanism on (scenario, bids) with `log` installed for the
/// calling thread, recording the full decision trail bracketed by
/// run_started / run_finished. With `probe_critical_values` set and an
/// online-greedy spec, additionally runs the critical-value bisection for
/// every winner so the log carries each winner's probe trail (what
/// explain_phone uses to name the critical bid).
auction::Outcome record_run(obs::EventLog& log, const RunSpec& spec,
                            const model::Scenario& scenario,
                            const model::BidProfile& bids,
                            bool probe_critical_values = false);

struct ReplayReport {
  bool clean = false;         ///< reproduced encoding == recorded encoding
  std::string mechanism;      ///< mechanism named by the recorded run
  std::uint64_t events = 0;   ///< records read from the log
  std::string recorded;       ///< outcome encoding stored in run_finished
  std::string reproduced;     ///< outcome encoding of the re-executed run
  std::string diff;           ///< empty when clean, else first-divergence note
};

/// Reads a JSONL event log, re-executes the recorded run, and compares
/// outcomes. Throws InvalidArgumentError when the stream is not a
/// mcs.events.v1 log containing exactly one run_started / run_finished
/// pair. Replay itself records no events.
[[nodiscard]] ReplayReport replay_run(std::istream& events_jsonl);

/// Narrates one phone's round from a JSONL event log: admission or
/// rejection, candidate-pool standing per slot, wins with runner-up
/// context, the critical-value probe trail, and the payment derivation.
[[nodiscard]] std::string explain_phone(std::istream& events_jsonl,
                                        int phone);

}  // namespace mcs::analysis
