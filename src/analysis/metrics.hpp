// Evaluation metrics (paper Section VI-A).
//
// The evaluation reports two headline metrics: social welfare (Definition
// 3) and the overpayment ratio (Definition 11),
//
//    sigma = sum_{winners} (p_i - c_i) / sum_{winners} c_i,
//
// i.e. how much the platform pays on top of true costs, relative to those
// costs. We additionally derive task completion rate and platform utility,
// which the examples and Table-I bench print for context.
#pragma once

#include <string>

#include "auction/outcome.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

struct RoundMetrics {
  Money social_welfare;    ///< sum of nu - c_i over allocated tasks
  Money claimed_welfare;   ///< sum of nu - b_i (what the solver optimized)
  Money total_payment;     ///< sum of p_i
  Money total_true_cost;   ///< sum of c_i over winners
  Money overpayment;       ///< total_payment - total_true_cost
  double overpayment_ratio{0.0};  ///< sigma; 0 when there are no winners
  int tasks_total{0};
  int tasks_allocated{0};
  double completion_rate{0.0};    ///< allocated / total; 1 when no tasks
  Money platform_utility;  ///< allocated * nu - total_payment
  /// Jain index over the winners' payments; 1 when no winners.
  double payment_fairness{1.0};
};

/// Derives all metrics of one round from its outcome.
[[nodiscard]] RoundMetrics compute_metrics(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           const auction::Outcome& outcome);

/// Multi-line human-readable rendering (examples, Table-I bench).
[[nodiscard]] std::string describe(const RoundMetrics& metrics);

}  // namespace mcs::analysis
