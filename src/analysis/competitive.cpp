#include "analysis/competitive.hpp"

#include "auction/offline_vcg.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace mcs::analysis {

CompetitiveResult competitive_ratio(const model::Scenario& scenario,
                                    const model::BidProfile& bids,
                                    const auction::OnlineGreedyConfig& config) {
  CompetitiveResult result;

  const auction::GreedyRun run =
      auction::run_greedy_allocation(scenario, bids, config);
  Money online;
  for (int t = 0; t < scenario.task_count(); ++t) {
    if (const auto phone = run.allocation.phone_for(TaskId{t})) {
      online += scenario.value_of(TaskId{t}) -
                bids[static_cast<std::size_t>(phone->value())].claimed_cost;
    }
  }
  result.online_welfare = online;
  result.offline_welfare =
      auction::OfflineVcgMechanism::optimal_claimed_welfare(scenario, bids);
  MCS_ASSERT(result.offline_welfare >= result.online_welfare ||
                 !config.allocate_only_profitable,
             "profitable-only greedy cannot beat the optimum");
  result.ratio = result.offline_welfare.is_zero()
                     ? 1.0
                     : result.online_welfare.ratio_to(result.offline_welfare);
  return result;
}

double CompetitiveStudy::min_ratio() const {
  return ratios.empty() ? 1.0 : ratios.stats().min();
}

double CompetitiveStudy::mean_ratio() const {
  return ratios.empty() ? 1.0 : ratios.stats().mean();
}

CompetitiveStudy study_competitive_ratio(
    const model::WorkloadConfig& workload, int repetitions,
    std::uint64_t base_seed, const auction::OnlineGreedyConfig& config) {
  MCS_EXPECTS(repetitions >= 1, "repetitions must be >= 1");
  CompetitiveStudy study;
  const Rng parent(base_seed);
  for (int rep = 0; rep < repetitions; ++rep) {
    Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
    const model::Scenario scenario = model::generate_scenario(workload, rng);
    const CompetitiveResult result =
        competitive_ratio(scenario, scenario.truthful_bids(), config);
    study.ratios.add(result.ratio);
    ++study.instances;
    if (result.ratio < 0.5) ++study.below_half;
  }
  return study;
}

model::Scenario tight_competitive_scenario(int pairs,
                                           std::int64_t task_value_units) {
  MCS_EXPECTS(pairs >= 1, "at least one gadget required");
  MCS_EXPECTS(task_value_units >= 3, "value must exceed the gadget costs");
  model::ScenarioBuilder builder(2 * pairs);
  builder.value(task_value_units);
  for (int j = 0; j < pairs; ++j) {
    const Slot::rep_type first = 2 * j + 1;
    // Flexible phone: cheap and available both slots -- greedy grabs it in
    // the first slot, starving the second.
    builder.phone(first, first + 1, 1);
    // Rigid phone: slightly pricier, first slot only.
    builder.phone(first, first, 2);
    builder.task(first);
    builder.task(first + 1);
  }
  return builder.build();
}

}  // namespace mcs::analysis
