#include "analysis/flight.hpp"

#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "auction/batched_matching.hpp"
#include "auction/counterfactual.hpp"
#include "auction/critical_value.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "common/error.hpp"
#include "io/json_parse.hpp"
#include "model/scenario_io.hpp"

namespace mcs::analysis {

namespace {

auction::OnlineGreedyConfig online_config(const RunSpec& spec) {
  auction::OnlineGreedyConfig config;
  config.allocate_only_profitable = spec.profitable_only;
  if (spec.reserve > 0.0) {
    config.reserve_price = Money::from_double(spec.reserve);
  }
  return config;
}

}  // namespace

std::unique_ptr<auction::Mechanism> make_mechanism(const RunSpec& spec) {
  if (spec.mechanism == "online") {
    return std::make_unique<auction::OnlineGreedyMechanism>(
        online_config(spec));
  }
  if (spec.mechanism == "offline") {
    return std::make_unique<auction::OfflineVcgMechanism>();
  }
  if (spec.mechanism == "second-price") {
    auction::SecondPriceConfig config;
    config.allocation = online_config(spec);
    return std::make_unique<auction::SecondPriceBaseline>(config);
  }
  if (spec.mechanism == "batched") {
    return std::make_unique<auction::BatchedMatchingMechanism>(
        auction::BatchedMatchingConfig{
            static_cast<Slot::rep_type>(spec.batch)});
  }
  throw InvalidArgumentError(
      "unknown mechanism '" + spec.mechanism +
      "' (expected online, offline, second-price, or batched)");
}

// --------------------------------------------------------- encodings

std::string encode_bids(const model::BidProfile& bids) {
  std::ostringstream os;
  for (const model::Bid& bid : bids) {
    os << bid.window.begin().value() << ' ' << bid.window.end().value() << ' '
       << bid.claimed_cost.to_string() << ';';
  }
  return os.str();
}

model::BidProfile decode_bids(const std::string& text) {
  model::BidProfile bids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) {
      throw InvalidArgumentError("malformed bid encoding: missing ';'");
    }
    std::istringstream entry(text.substr(pos, semi - pos));
    Slot::rep_type begin = 0;
    Slot::rep_type end = 0;
    std::string cost;
    if (!(entry >> begin >> end >> cost)) {
      throw InvalidArgumentError("malformed bid encoding near offset " +
                                 std::to_string(pos));
    }
    bids.push_back(model::Bid{SlotInterval::of(begin, end),
                              Money::parse(cost)});
    pos = semi + 1;
  }
  return bids;
}

std::string encode_outcome(const auction::Outcome& outcome) {
  std::ostringstream os;
  os << "alloc";
  for (int t = 0; t < outcome.allocation.task_count(); ++t) {
    const auto phone = outcome.allocation.phone_for(TaskId{t});
    os << ' ' << (phone ? phone->value() : -1);
  }
  os << " pay";
  for (const Money payment : outcome.payments) {
    os << ' ' << payment.to_string();
  }
  return os.str();
}

// --------------------------------------------------------- record_run

auction::Outcome record_run(obs::EventLog& log, const RunSpec& spec,
                            const model::Scenario& scenario,
                            const model::BidProfile& bids,
                            bool probe_critical_values) {
  scenario.validate();
  model::validate_bids(scenario, bids);
  const std::unique_ptr<auction::Mechanism> mechanism = make_mechanism(spec);

  const obs::ScopedEventLog install(&log);
  {
    std::ostringstream scenario_text;
    model::write_scenario(scenario_text, scenario);
    obs::Event started("run_started");
    started.with("mechanism", spec.mechanism)
        .with("reserve", spec.reserve)
        .with("profitable_only", spec.profitable_only)
        .with("batch", spec.batch)
        .with("phones", static_cast<std::int64_t>(scenario.phone_count()))
        .with("tasks", static_cast<std::int64_t>(scenario.task_count()))
        .with("slots", static_cast<std::int64_t>(scenario.num_slots))
        .with("scenario", scenario_text.str())
        .with("bids", encode_bids(bids));
    log.append(std::move(started));
  }

  const auction::Outcome outcome = mechanism->run(scenario, bids);

  if (probe_critical_values && spec.mechanism == "online") {
    // Winner probe trails: the bisection records every probe into the
    // installed log (its inner allocation re-runs stay suppressed), so
    // explain_phone can trace the payment back to the critical bid. One
    // shared-prefix engine serves every winner's probes -- a single
    // factual pass, then per-probe forks at each winner's arrival.
    const auction::OnlineGreedyConfig config = online_config(spec);
    const auction::CounterfactualEngine engine(scenario, bids, config);
    for (const PhoneId winner : outcome.allocation.winners()) {
      (void)auction::greedy_critical_value(engine, winner);
    }
  }

  {
    obs::Event finished("run_finished");
    finished.with("outcome", encode_outcome(outcome))
        .with("winners", static_cast<std::int64_t>(
                             outcome.allocation.winners().size()))
        .with("total_payment", outcome.total_payment());
    log.append(std::move(finished));
  }
  return outcome;
}

// --------------------------------------------------------- replay_run

namespace {

/// Parses the stream line by line; returns every record and checks the
/// schema header.
std::vector<io::JsonValue> read_log(std::istream& is) {
  std::vector<io::JsonValue> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    records.push_back(io::parse_json(line));
  }
  if (records.empty()) {
    throw InvalidArgumentError("event log is empty");
  }
  const io::JsonValue& header = records.front();
  if (header.string_or("type", "") != "log_header" ||
      header.string_or("schema", "") != obs::EventLog::kSchema) {
    throw InvalidArgumentError(
        "not a mcs.events.v1 log (missing log_header record)");
  }
  return records;
}

}  // namespace

ReplayReport replay_run(std::istream& events_jsonl) {
  const std::vector<io::JsonValue> records = read_log(events_jsonl);

  const io::JsonValue* started = nullptr;
  const io::JsonValue* finished = nullptr;
  for (const io::JsonValue& record : records) {
    const std::string type = record.string_or("type", "");
    if (type == "run_started") {
      if (started != nullptr) {
        throw InvalidArgumentError(
            "replay expects exactly one recorded run per log");
      }
      started = &record;
    } else if (type == "run_finished") {
      finished = &record;
    }
  }
  if (started == nullptr || finished == nullptr) {
    throw InvalidArgumentError(
        "log holds no complete run (record it with mcs_cli run "
        "--events-out)");
  }

  RunSpec spec;
  spec.mechanism = started->at("mechanism").as_string();
  spec.reserve = started->at("reserve").as_number();
  spec.profitable_only = started->at("profitable_only").as_bool();
  spec.batch = started->at("batch").as_int();

  std::istringstream scenario_text(started->at("scenario").as_string());
  const model::Scenario scenario = model::read_scenario(scenario_text);
  const model::BidProfile bids = decode_bids(started->at("bids").as_string());

  ReplayReport report;
  report.mechanism = spec.mechanism;
  report.events = records.size();
  report.recorded = finished->at("outcome").as_string();
  {
    // The oracle re-run must not append to any installed log.
    const obs::ScopedEventLog suppress(nullptr);
    report.reproduced = encode_outcome(make_mechanism(spec)->run(scenario, bids));
  }
  report.clean = report.recorded == report.reproduced;
  if (!report.clean) {
    std::size_t at = 0;
    while (at < report.recorded.size() && at < report.reproduced.size() &&
           report.recorded[at] == report.reproduced[at]) {
      ++at;
    }
    report.diff = "outcomes diverge at byte " + std::to_string(at) +
                  ": recorded \"" + report.recorded + "\" vs reproduced \"" +
                  report.reproduced + "\"";
  }
  return report;
}

// ------------------------------------------------------- explain_phone

namespace {

std::string attr_or(const io::JsonValue& record, std::string_view key,
                    std::string fallback) {
  return record.string_or(key, std::move(fallback));
}

}  // namespace

std::string explain_phone(std::istream& events_jsonl, int phone) {
  const std::vector<io::JsonValue> records = read_log(events_jsonl);
  std::ostringstream out;
  bool mentioned = false;
  bool won = false;

  for (const io::JsonValue& record : records) {
    const std::string type = record.string_or("type", "");
    const std::int64_t record_phone = record.int_or("phone", -1);
    const std::int64_t slot = record.int_or("slot", -1);
    const std::int64_t task = record.int_or("task", -1);

    if (type == "run_started") {
      out << "phone " << phone << " in a '"
          << attr_or(record, "mechanism", "?") << "' run ("
          << record.int_or("phones", 0) << " phones, "
          << record.int_or("tasks", 0) << " tasks, "
          << record.int_or("slots", 0) << " slots)\n";
      continue;
    }
    if (type == "slot_pool") {
      if (const io::JsonValue* pool = record.find("pool")) {
        const auto& ids = pool->as_array();
        for (std::size_t k = 0; k < ids.size(); ++k) {
          if (ids[k].as_int() != phone) continue;
          out << "slot " << slot << ": candidate " << (k + 1) << " of "
              << ids.size() << " in the pool (cheapest first)\n";
          mentioned = true;
          break;
        }
      }
      continue;
    }
    if (record_phone != phone) continue;
    mentioned = true;

    if (type == "bid_admitted") {
      out << "slot " << slot << ": bid " << attr_or(record, "bid", "?")
          << " admitted, departs slot " << record.int_or("departs", -1)
          << '\n';
    } else if (type == "bid_rejected") {
      out << "slot " << slot << ": bid " << attr_or(record, "bid", "?")
          << " REJECTED (" << attr_or(record, "reason", "?") << ", reserve "
          << attr_or(record, "reserve", "?") << ")\n";
    } else if (type == "task_assigned") {
      won = true;
      out << "slot " << slot << ": WON task " << task << " at bid "
          << attr_or(record, "bid", "?") << " (task value "
          << attr_or(record, "task_value", "?") << ")";
      if (record.find("runner_up_phone") != nullptr) {
        out << "; runner-up phone " << record.int_or("runner_up_phone", -1)
            << " at " << attr_or(record, "runner_up_bid", "?");
      }
      out << '\n';
    } else if (type == "winner_selected") {
      won = true;
      out << "task " << task << " (slot " << slot << "): SELECTED with weight "
          << attr_or(record, "weight", "?");
      if (record.find("runner_up_phone") != nullptr) {
        out << "; runner-up phone " << record.int_or("runner_up_phone", -1)
            << " at weight " << attr_or(record, "runner_up_weight", "?");
      }
      out << '\n';
    } else if (type == "critical_probe") {
      out << "  probe bid " << attr_or(record, "probe", "?") << " -> "
          << (record.at("won").as_bool() ? "wins" : "loses") << " (bracket ["
          << attr_or(record, "lo", "?") << ", " << attr_or(record, "hi", "?")
          << "])\n";
    } else if (type == "critical_found") {
      if (const io::JsonValue* unbounded = record.find("unbounded");
          unbounded != nullptr && unbounded->as_bool()) {
        out << "critical bid unbounded up to "
            << attr_or(record, "upper_bound", "?") << " ("
            << record.int_or("probes", 0)
            << " probes; supply scarcity keeps the phone winning)\n";
      } else {
        out << "critical bid " << attr_or(record, "critical_bid", "?")
            << " (bisection bracket [" << attr_or(record, "lo", "?") << ", "
            << attr_or(record, "hi", "?") << "], "
            << record.int_or("probes", 0) << " probes)\n";
      }
    } else if (type == "payment_derivation") {
      out << "paid " << attr_or(record, "payment", "?") << " by rule "
          << attr_or(record, "rule", "?");
      if (const io::JsonValue* setter = record.find("set_by_phone")) {
        out << "; level set by rival phone " << setter->as_int();
        if (record.find("set_in_slot") != nullptr) {
          out << " in slot " << record.int_or("set_in_slot", -1);
        }
      } else if (record.find("set_in_slot") != nullptr) {
        out << "; level set in slot " << record.int_or("set_in_slot", -1);
      }
      if (const io::JsonValue* welfare = record.find("welfare_all")) {
        out << "; welfare " << welfare->as_string() << " vs "
            << attr_or(record, "welfare_without", "?") << " without the phone";
      }
      if (const io::JsonValue* scarce = record.find("scarce_applied");
          scarce != nullptr && scarce->as_bool()) {
        out << "; scarce-supply cap " << attr_or(record, "scarce_cap", "?")
            << " applied";
      }
      out << " (own bid " << attr_or(record, "own_bid", "?") << ")\n";
    } else if (type == "phone_departed_unpaid") {
      out << "slot " << slot << ": departed without an allocation (paid 0)\n";
    }
  }

  if (!mentioned) {
    out << "phone " << phone << " does not appear in this log\n";
  } else {
    out << "verdict: phone " << phone << (won ? " won" : " did not win")
        << '\n';
  }
  return out.str();
}

}  // namespace mcs::analysis
