// Individual-rationality auditing (Definition 5, Theorems 2 and 5).
//
// Under truthful reporting every phone's utility must be nonnegative:
// winners are paid at least their real cost, losers neither pay nor earn.
// The auditor runs the mechanism on the truthful profile (or any supplied
// profile whose claimed costs equal real costs) and flags every phone with
// negative utility, plus losers with nonzero payments.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "auction/mechanism.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

struct RationalityViolation {
  PhoneId phone{0};
  Money utility;
  bool is_winner{false};
};

struct RationalityReport {
  int phones_checked{0};
  std::vector<RationalityViolation> violations;

  [[nodiscard]] bool individually_rational() const {
    return violations.empty();
  }

  [[nodiscard]] std::string summary() const;
};

/// Runs the mechanism on the truthful bid profile and checks u_i >= 0 for
/// every phone.
[[nodiscard]] RationalityReport audit_individual_rationality(
    const auction::Mechanism& mechanism, const model::Scenario& scenario);

/// Checks an already-computed outcome (used when the caller wants the
/// outcome too, avoiding a second run). `bids` must be the profile the
/// outcome was produced from.
[[nodiscard]] RationalityReport check_individual_rationality(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome);

// ------------------------------------------- per-round invariant checks

/// A cheap, exact per-round economic invariant the online sentinel (and
/// any offline audit) verifies on every closed round.
enum class RoundInvariant {
  kWinnerUnderpaid,   ///< winner paid below its claimed cost (IR breach)
  kLoserPaid,         ///< non-winner with a nonzero payment
  kPaymentMismatch,   ///< streamed payment total != outcome payment total
};

[[nodiscard]] std::string_view to_string(RoundInvariant invariant);

struct InvariantViolation {
  RoundInvariant kind{RoundInvariant::kWinnerUnderpaid};
  PhoneId phone{-1};  ///< -1 when the violation is not phone-specific
  Money observed;     ///< the offending quantity (payment / total)
  Money expected;     ///< the bound it broke (claimed cost / 0 / total)
};

/// Runs the cheap per-round checks against an already-computed outcome.
/// `bids` must be the profile the outcome was produced from; when
/// `expected_total_payment` is provided (e.g. the serve engine's
/// incrementally streamed total) it is reconciled against the outcome's
/// payment vector. Unlike Outcome::validate this never throws: a broken
/// mechanism must be *reported*, not crash the caller -- this is the
/// single-sourced check shared by offline audits and the live sentinel.
[[nodiscard]] std::vector<InvariantViolation> check_round_invariants(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome,
    std::optional<Money> expected_total_payment = std::nullopt);

}  // namespace mcs::analysis
