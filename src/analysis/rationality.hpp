// Individual-rationality auditing (Definition 5, Theorems 2 and 5).
//
// Under truthful reporting every phone's utility must be nonnegative:
// winners are paid at least their real cost, losers neither pay nor earn.
// The auditor runs the mechanism on the truthful profile (or any supplied
// profile whose claimed costs equal real costs) and flags every phone with
// negative utility, plus losers with nonzero payments.
#pragma once

#include <string>
#include <vector>

#include "auction/mechanism.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

struct RationalityViolation {
  PhoneId phone{0};
  Money utility;
  bool is_winner{false};
};

struct RationalityReport {
  int phones_checked{0};
  std::vector<RationalityViolation> violations;

  [[nodiscard]] bool individually_rational() const {
    return violations.empty();
  }

  [[nodiscard]] std::string summary() const;
};

/// Runs the mechanism on the truthful bid profile and checks u_i >= 0 for
/// every phone.
[[nodiscard]] RationalityReport audit_individual_rationality(
    const auction::Mechanism& mechanism, const model::Scenario& scenario);

/// Checks an already-computed outcome (used when the caller wants the
/// outcome too, avoiding a second run). `bids` must be the profile the
/// outcome was produced from.
[[nodiscard]] RationalityReport check_individual_rationality(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome);

}  // namespace mcs::analysis
