// Perf-regression sentinel: compares two bench telemetry documents and
// renders a structured verdict.
//
// The telemetry the benches emit splits cleanly into two kinds of signal:
//
//  * Deterministic work counters (Hungarian iterations, SPFA pops,
//    critical-value probes) and deterministic distribution histograms
//    (candidate pool sizes). With the bench workloads seeded and the
//    telemetry pass pinned to one iteration per benchmark, these carry
//    ZERO measurement noise -- any drift is an algorithmic change, so the
//    comparison is exact and a mismatch is a hard failure.
//  * Duration histograms (every name ending "_us"). These are wall-clock
//    and noisy, so they are compared as candidate/baseline ratios of the
//    bucket-interpolated p50/p95/p99 (obs::estimate_quantile) against a
//    threshold, and gate the verdict only when the caller opts in
//    (gate_timings) -- CI keeps them report-only to tolerate shared-runner
//    noise.
//
// Accepted inputs: the merged "mcs.bench_telemetry.v1" wrapper written by
// scripts/collect_bench.sh (one section per bench binary) or a bare
// "mcs.telemetry.v1" report (treated as a single section), so two
// `mcs_cli run --metrics-out` reports diff just as well as two baselines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "io/json_parse.hpp"

namespace mcs::analysis {

struct BenchDiffOptions {
  /// A duration quantile ratio (candidate/baseline) above this flags the
  /// histogram as a timing regression.
  double timing_ratio_threshold{1.50};
  /// When true, timing regressions fail the verdict; otherwise they are
  /// report-only and only deterministic drift fails it.
  bool gate_timings{false};
};

/// One drifted deterministic counter (value mismatch or a key present on
/// only one side).
struct CounterDrift {
  std::string bench;  ///< section (bench binary) name
  std::string name;
  bool in_baseline{false};
  bool in_candidate{false};
  std::int64_t baseline{0};  ///< meaningful when in_baseline
  std::int64_t candidate{0};  ///< meaningful when in_candidate
};

/// One drifted deterministic (non-duration) histogram.
struct HistogramDrift {
  std::string bench;
  std::string name;
  std::string what;  ///< human-readable mismatch description
};

/// Quantile comparison of one duration ("*_us") histogram. Reported for
/// every duration histogram, regressed or not.
struct TimingDiff {
  std::string bench;
  std::string name;
  std::int64_t baseline_count{0};
  std::int64_t candidate_count{0};
  double baseline_p50{0}, baseline_p95{0}, baseline_p99{0};
  double candidate_p50{0}, candidate_p95{0}, candidate_p99{0};
  double ratio_p50{0}, ratio_p95{0}, ratio_p99{0};  ///< candidate/baseline
  /// Max of the three ratios when both sides have samples; 1.0 otherwise.
  double max_ratio{1.0};
  bool regressed{false};  ///< max_ratio > options.timing_ratio_threshold
};

struct BenchDiffReport {
  std::string baseline_label;   ///< e.g. the baseline file path
  std::string candidate_label;  ///< e.g. the candidate file path
  /// Structural problems that make the comparison unsound (schema
  /// mismatch, a bench section present on only one side). Any note is a
  /// hard failure, like counter drift.
  std::vector<std::string> notes;
  int counters_compared{0};
  std::vector<CounterDrift> counter_drifts;
  int histograms_compared{0};  ///< deterministic (non-_us) histograms
  std::vector<HistogramDrift> histogram_drifts;
  std::vector<TimingDiff> timings;  ///< every *_us histogram, name-sorted

  /// No notes, no counter drift, no deterministic-histogram drift.
  [[nodiscard]] bool deterministic_clean() const {
    return notes.empty() && counter_drifts.empty() &&
           histogram_drifts.empty();
  }
  [[nodiscard]] bool timings_regressed() const {
    for (const TimingDiff& timing : timings) {
      if (timing.regressed) return true;
    }
    return false;
  }
  /// The gate: deterministic drift always fails; timing regressions fail
  /// only under options.gate_timings.
  [[nodiscard]] bool regression(const BenchDiffOptions& options) const {
    return !deterministic_clean() ||
           (options.gate_timings && timings_regressed());
  }
};

/// Compares two parsed telemetry documents (mcs.bench_telemetry.v1 wrapper
/// or bare mcs.telemetry.v1). Throws InvalidArgumentError on documents
/// that are not telemetry reports at all.
[[nodiscard]] BenchDiffReport diff_bench_telemetry(
    const io::JsonValue& baseline, const io::JsonValue& candidate,
    const BenchDiffOptions& options = {});

/// Loads, parses, and diffs two telemetry files; labels the report with
/// the paths. Throws IoError when a file cannot be read.
[[nodiscard]] BenchDiffReport diff_bench_telemetry_files(
    const std::string& baseline_path, const std::string& candidate_path,
    const BenchDiffOptions& options = {});

/// Renders the verdict as GitHub-flavoured markdown: verdict headline,
/// drift tables, and one row per duration histogram with its p50/p95/p99
/// and ratios.
void write_bench_diff_markdown(std::ostream& os, const BenchDiffReport& report,
                               const BenchDiffOptions& options = {});

/// Machine-readable verdict, schema "mcs.bench_diff.v1".
void write_bench_diff_json(std::ostream& os, const BenchDiffReport& report,
                           const BenchDiffOptions& options = {});

}  // namespace mcs::analysis
