// Economic leaderboard reporting (mcs_cli econ-report).
//
// Two input modes, one rendering:
//
//  * batch: run a set of mechanisms over generated scenario rounds
//    (truthful bids) and fold every round's RoundMetrics into one exact
//    per-mechanism summary -- the Fig. 9-11 overpayment/welfare numbers,
//    derived through the very same compute_metrics the offline audits
//    use, so the CLI's table agrees with the analysis path to the micro;
//  * stream: summarize an mcs.serve_econ.v1 JSONL snapshot stream written
//    by the live serve econ plane (serve/econ_telemetry.hpp).
//
// Both render as a markdown table, the substrate the ROADMAP's
// strategic-agent arena will rank mechanisms with.
#pragma once

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "auction/mechanism.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

/// Produces the scenario of one round (e.g. serve::loadgen_scenario bound
/// to a LoadGenConfig; analysis cannot depend on serve, so the generator
/// is injected).
using ScenarioGenerator = std::function<model::Scenario(std::int64_t round)>;

/// Exact multi-round economic summary of one mechanism. Money fields are
/// sums over rounds (exact micros); ratios are derived from the summed
/// totals via the single-sourced obs helpers.
struct MechanismEconSummary {
  std::string mechanism;
  std::int64_t rounds{0};
  Money social_welfare;
  Money claimed_welfare;
  Money total_payment;
  Money total_true_cost;
  Money overpayment;
  double overpayment_ratio{0.0};  ///< sigma over the summed totals
  std::int64_t tasks_total{0};
  std::int64_t tasks_allocated{0};
  double coverage{1.0};
  double mean_fairness{1.0};  ///< mean per-round Jain index
  Money platform_utility;
};

/// Runs `mechanism` on truthful bids over `rounds` generated scenarios and
/// folds the per-round metrics. Deterministic given a deterministic
/// generator.
[[nodiscard]] MechanismEconSummary summarize_mechanism(
    const auction::Mechanism& mechanism, const ScenarioGenerator& generator,
    std::int64_t rounds);

/// Renders summaries as a markdown leaderboard sorted by social welfare
/// (descending; ties broken by mechanism name for determinism).
void render_econ_leaderboard(std::ostream& os,
                             std::vector<MechanismEconSummary> summaries);

// ---------------------------------------------------- snapshot streams

/// Cumulative economics at the tail of an mcs.serve_econ.v1 stream.
struct EconStreamSummary {
  std::int64_t snapshots{0};
  std::int64_t first_window{0};
  std::int64_t last_window{0};
  std::string state;  ///< econ health state of the last snapshot
  std::int64_t rounds{0};
  std::int64_t rounds_skipped{0};
  std::int64_t tasks{0};
  std::int64_t tasks_allocated{0};
  std::int64_t winners{0};
  Money payment;
  Money claimed_cost;
  Money second_price_payment;
  Money vcg_payment;
  std::int64_t vcg_rounds{0};
  std::int64_t probe_rounds{0};
  std::int64_t probe_checks{0};
  std::int64_t violations{0};
  double overpayment_ratio{0.0};
  double coverage{1.0};
};

/// Parses an mcs.serve_econ.v1 JSONL stream (one snapshot per line; blank
/// lines skipped) and returns the cumulative summary of its last
/// snapshot. Throws InvalidArgumentError on malformed lines or a wrong
/// schema tag.
[[nodiscard]] EconStreamSummary summarize_econ_stream(std::istream& is);

/// Renders a stream summary as a small markdown report.
void render_econ_stream(std::ostream& os, const EconStreamSummary& summary);

}  // namespace mcs::analysis
