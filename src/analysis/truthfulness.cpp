#include "analysis/truthfulness.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace mcs::analysis {

Money TruthfulnessReport::max_gain() const {
  Money best;
  for (const DeviationViolation& v : violations) {
    best = std::max(best, v.gain());
  }
  return best;
}

std::string TruthfulnessReport::summary() const {
  std::ostringstream os;
  os << "audited " << phones_audited << " phones, " << deviations_tested
     << " deviations: ";
  if (truthful()) {
    os << "no profitable misreport (truthful)";
  } else {
    os << violations.size() << " profitable misreports, max gain "
       << max_gain();
  }
  return os.str();
}

std::vector<model::Bid> enumerate_deviations(const model::TrueProfile& profile,
                                             const DeviationOptions& options) {
  const Slot::rep_type a = profile.active.begin().value();
  const Slot::rep_type d = profile.active.end().value();

  // Candidate claimed costs (deduplicated, nonnegative).
  std::vector<Money> costs;
  const double true_cost = profile.cost.to_double();
  for (const double factor : options.cost_factors) {
    costs.push_back(Money::from_double(true_cost * factor));
  }
  for (const std::int64_t offset : options.cost_offsets_units) {
    costs.push_back(profile.cost + Money::from_units(offset));
  }
  costs.push_back(profile.cost);
  std::erase_if(costs, [](Money m) { return m.is_negative(); });
  std::sort(costs.begin(), costs.end());
  costs.erase(std::unique(costs.begin(), costs.end()), costs.end());

  std::vector<model::Bid> deviations;
  for (Slot::rep_type delay = 0; delay <= options.max_arrival_delay; ++delay) {
    const Slot::rep_type begin = a + delay;
    if (begin > d) break;
    for (Slot::rep_type advance = 0; advance <= options.max_departure_advance;
         ++advance) {
      const Slot::rep_type end = d - advance;
      if (end < begin) break;
      for (const Money cost : costs) {
        model::Bid bid{SlotInterval::of(begin, end), cost};
        if (bid == model::truthful_bid(profile)) continue;
        MCS_ENSURES(model::is_legal_report(profile, bid),
                    "enumerated deviation must be legal");
        deviations.push_back(bid);
      }
    }
  }
  return deviations;
}

TruthfulnessReport audit_truthfulness(const auction::Mechanism& mechanism,
                                      const model::Scenario& scenario,
                                      const model::BidProfile& base_bids,
                                      const DeviationOptions& options) {
  TruthfulnessReport report;
  // In the common all-truthful audit (base_bids == truthful_bids()) every
  // phone's reference profile is the same bid vector: run it once lazily
  // and reuse the outcome instead of re-running the mechanism n times.
  std::optional<auction::Outcome> base_outcome;
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    const model::TrueProfile& profile = scenario.phone(phone);

    // Reference: this phone truthful, others as in base_bids.
    const model::BidProfile truthful_profile =
        model::with_bid(base_bids, phone, model::truthful_bid(profile));
    Money truthful_utility;
    if (truthful_profile == base_bids) {
      if (!base_outcome) base_outcome = mechanism.run(scenario, base_bids);
      truthful_utility = base_outcome->utility(scenario, phone);
    } else {
      truthful_utility =
          mechanism.run(scenario, truthful_profile).utility(scenario, phone);
    }

    ++report.phones_audited;
    for (const model::Bid& deviation :
         enumerate_deviations(profile, options)) {
      const model::BidProfile deviant_profile =
          model::with_bid(base_bids, phone, deviation);
      const Money deviant_utility =
          mechanism.run(scenario, deviant_profile).utility(scenario, phone);
      ++report.deviations_tested;
      if (deviant_utility > truthful_utility) {
        report.violations.push_back(DeviationViolation{
            phone, deviation, truthful_utility, deviant_utility});
      }
    }
  }
  return report;
}

TruthfulnessReport audit_truthfulness(const auction::Mechanism& mechanism,
                                      const model::Scenario& scenario,
                                      const DeviationOptions& options) {
  return audit_truthfulness(mechanism, scenario, scenario.truthful_bids(),
                            options);
}

}  // namespace mcs::analysis
