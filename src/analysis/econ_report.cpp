#include "analysis/econ_report.hpp"

#include <algorithm>
#include <string>

#include "analysis/report_format.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "io/json_parse.hpp"
#include "obs/econ_metrics.hpp"

namespace mcs::analysis {

MechanismEconSummary summarize_mechanism(const auction::Mechanism& mechanism,
                                         const ScenarioGenerator& generator,
                                         std::int64_t rounds) {
  MCS_EXPECTS(rounds > 0, "econ-report needs at least one round");
  MechanismEconSummary summary;
  summary.mechanism = mechanism.name();
  summary.rounds = rounds;
  double fairness_sum = 0.0;
  for (std::int64_t round = 0; round < rounds; ++round) {
    const model::Scenario scenario = generator(round);
    const model::BidProfile bids = scenario.truthful_bids();
    const auction::Outcome outcome = mechanism.run(scenario, bids);
    const RoundMetrics metrics = compute_metrics(scenario, bids, outcome);
    summary.social_welfare += metrics.social_welfare;
    summary.claimed_welfare += metrics.claimed_welfare;
    summary.total_payment += metrics.total_payment;
    summary.total_true_cost += metrics.total_true_cost;
    summary.overpayment += metrics.overpayment;
    summary.tasks_total += metrics.tasks_total;
    summary.tasks_allocated += metrics.tasks_allocated;
    summary.platform_utility += metrics.platform_utility;
    fairness_sum += metrics.payment_fairness;
  }
  summary.overpayment_ratio =
      obs::overpayment_ratio(summary.total_payment, summary.total_true_cost);
  summary.coverage =
      obs::coverage_rate(summary.tasks_allocated, summary.tasks_total);
  summary.mean_fairness = fairness_sum / static_cast<double>(rounds);
  return summary;
}

void render_econ_leaderboard(std::ostream& os,
                             std::vector<MechanismEconSummary> summaries) {
  std::sort(summaries.begin(), summaries.end(),
            [](const MechanismEconSummary& a, const MechanismEconSummary& b) {
              if (a.social_welfare != b.social_welfare) {
                return a.social_welfare > b.social_welfare;
              }
              return a.mechanism < b.mechanism;
            });
  os << "| rank | mechanism | welfare | payment | true cost | overpayment "
        "| sigma | coverage | fairness | platform utility |\n"
     << "|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  int rank = 0;
  for (const MechanismEconSummary& s : summaries) {
    os << "| " << ++rank << " | " << s.mechanism << " | "
       << s.social_welfare.to_string() << " | " << s.total_payment.to_string()
       << " | " << s.total_true_cost.to_string() << " | "
       << s.overpayment.to_string() << " | "
       << format_ratio(s.overpayment_ratio) << " | "
       << format_ratio(s.coverage) << " | " << format_ratio(s.mean_fairness)
       << " | " << s.platform_utility.to_string() << " |\n";
  }
}

EconStreamSummary summarize_econ_stream(std::istream& is) {
  EconStreamSummary summary;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const io::JsonValue snap = io::parse_json(line);
    const std::string schema = snap.string_or("schema", "");
    if (schema != "mcs.serve_econ.v1") {
      throw InvalidArgumentError("econ stream line " + std::to_string(line_no) +
                                 ": unexpected schema '" + schema + "'");
    }
    if (summary.snapshots == 0) {
      summary.first_window = snap.int_or("window", 0);
    }
    ++summary.snapshots;
    summary.last_window = snap.int_or("window", 0);
    summary.state = snap.string_or("econ_state", "unknown");
    const io::JsonValue& total = snap.at("cumulative");
    summary.rounds = total.int_or("rounds", 0);
    summary.rounds_skipped = total.int_or("rounds_skipped", 0);
    summary.tasks = total.int_or("tasks", 0);
    summary.tasks_allocated = total.int_or("tasks_allocated", 0);
    summary.winners = total.int_or("winners", 0);
    summary.payment = Money::parse(total.at("payment").as_string());
    summary.claimed_cost = Money::parse(total.at("claimed_cost").as_string());
    summary.second_price_payment =
        Money::parse(total.at("second_price_payment").as_string());
    summary.vcg_payment = Money::parse(total.at("vcg_payment").as_string());
    summary.vcg_rounds = total.int_or("vcg_rounds", 0);
    summary.probe_rounds = total.int_or("probe_rounds", 0);
    summary.probe_checks = total.int_or("probe_checks", 0);
    summary.violations = total.int_or("violations", 0);
  }
  if (summary.snapshots == 0) {
    throw InvalidArgumentError("econ stream contained no snapshots");
  }
  summary.overpayment_ratio =
      obs::overpayment_ratio(summary.payment, summary.claimed_cost);
  summary.coverage =
      obs::coverage_rate(summary.tasks_allocated, summary.tasks);
  return summary;
}

void render_econ_stream(std::ostream& os, const EconStreamSummary& s) {
  os << "# serve econ summary\n\n"
     << "- snapshots: " << s.snapshots << " (windows " << s.first_window
     << ".." << s.last_window << ")\n"
     << "- econ state: " << s.state << "\n"
     << "- rounds audited: " << s.rounds << " (skipped " << s.rounds_skipped
     << ")\n"
     << "- sentinel: " << s.probe_rounds << " deep-probed rounds, "
     << s.probe_checks << " winner probes, " << s.violations
     << " violations\n\n"
     << "| metric | value |\n|---|---:|\n"
     << "| tasks | " << s.tasks << " |\n"
     << "| tasks allocated | " << s.tasks_allocated << " |\n"
     << "| coverage | " << format_ratio(s.coverage) << " |\n"
     << "| winners | " << s.winners << " |\n"
     << "| payment | " << s.payment.to_string() << " |\n"
     << "| claimed cost | " << s.claimed_cost.to_string() << " |\n"
     << "| overpayment ratio | " << format_ratio(s.overpayment_ratio)
     << " |\n"
     << "| second-price reference payment | "
     << s.second_price_payment.to_string() << " |\n"
     << "| vcg reference payment | " << s.vcg_payment.to_string() << " ("
     << s.vcg_rounds << " rounds) |\n";
}

}  // namespace mcs::analysis
