// Competitive-ratio analysis (Theorem 6).
//
// The online greedy allocation is 1/2-competitive: for every input,
// omega_online / omega_offline >= 1/2 (welfare measured on the claimed
// costs the allocator sees; on truthful profiles that is the true social
// welfare). This module computes per-instance ratios, aggregates them over
// randomized workloads, and constructs the adversarial "flexible phone
// blocks rigid phone" family on which the bound is asymptotically tight --
// the empirical counterpart of the omitted proof.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/online_greedy.hpp"
#include "common/stats.hpp"
#include "model/scenario.hpp"
#include "model/workload.hpp"

namespace mcs::analysis {

struct CompetitiveResult {
  Money online_welfare;   ///< claimed welfare of the greedy allocation
  Money offline_welfare;  ///< optimal claimed welfare (Hungarian)
  double ratio{1.0};      ///< online / offline; 1 when offline welfare is 0
};

/// Ratio on one instance and bid profile.
[[nodiscard]] CompetitiveResult competitive_ratio(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::OnlineGreedyConfig& config = {});

struct CompetitiveStudy {
  Summary ratios;              ///< distribution over instances
  std::size_t instances{0};
  std::size_t below_half{0};   ///< instances with ratio < 1/2 (expected: 0)

  [[nodiscard]] double min_ratio() const;
  [[nodiscard]] double mean_ratio() const;
};

/// Ratios over `repetitions` truthful instances drawn from the workload.
[[nodiscard]] CompetitiveStudy study_competitive_ratio(
    const model::WorkloadConfig& workload, int repetitions,
    std::uint64_t base_seed, const auction::OnlineGreedyConfig& config = {});

/// The near-tight family: `pairs` independent two-slot gadgets. In gadget
/// j (slots 2j-1, 2j; one task per slot), a flexible phone (both slots,
/// cost 1) and a rigid phone (first slot only, cost 2) compete. Greedy
/// takes the flexible phone first and serves one task per gadget; the
/// optimum serves both. With value nu the ratio is
/// (nu - 1) / (2 nu - 3) -> 1/2 from above as nu grows.
[[nodiscard]] model::Scenario tight_competitive_scenario(
    int pairs, std::int64_t task_value_units);

}  // namespace mcs::analysis
