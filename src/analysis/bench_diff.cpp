#include "analysis/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"

namespace mcs::analysis {

namespace {

constexpr std::string_view kWrapperSchema = "mcs.bench_telemetry.v1";
constexpr std::string_view kReportSchema = "mcs.telemetry.v1";

bool is_duration_histogram(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_us";
}

std::string format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string format_ratio(double ratio) {
  if (!std::isfinite(ratio)) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

/// Sections of a telemetry document: the merged wrapper maps bench name ->
/// mcs.telemetry.v1 report; a bare report is one section named after its
/// meta.tool. `side` labels parse problems in thrown messages.
std::map<std::string, const io::JsonValue*> telemetry_sections(
    const io::JsonValue& document, const std::string& side,
    std::vector<std::string>& notes) {
  if (!document.is_object()) {
    throw InvalidArgumentError(side + ": not a JSON object");
  }
  const std::string schema = document.string_or("schema", "");
  std::map<std::string, const io::JsonValue*> sections;
  if (schema == kReportSchema) {
    std::string name = "report";
    if (const io::JsonValue* meta = document.find("meta")) {
      name = meta->string_or("tool", name);
    }
    sections.emplace(name, &document);
    return sections;
  }
  if (schema != kWrapperSchema) {
    throw InvalidArgumentError(side + ": unexpected schema '" + schema +
                               "' (want " + std::string(kWrapperSchema) +
                               " or " + std::string(kReportSchema) + ")");
  }
  for (const auto& [key, value] : document.as_object()) {
    if (key == "schema") continue;
    if (!value.is_object() || value.string_or("schema", "") != kReportSchema) {
      notes.push_back(side + ": section '" + key + "' is not a " +
                      std::string(kReportSchema) + " report");
      continue;
    }
    sections.emplace(key, &value);
  }
  return sections;
}

std::map<std::string, std::int64_t> counters_of(const io::JsonValue& report) {
  std::map<std::string, std::int64_t> counters;
  if (const io::JsonValue* object = report.find("counters")) {
    for (const auto& [name, value] : object->as_object()) {
      counters.emplace(name, value.as_int());
    }
  }
  return counters;
}

obs::MetricsSnapshot::HistogramData histogram_of(const io::JsonValue& value,
                                                 const std::string& where) {
  obs::MetricsSnapshot::HistogramData data;
  data.count = value.at("count").as_int();
  data.sum = value.at("sum").as_number();
  if (data.count > 0) {
    data.min = value.at("min").as_number();
    data.max = value.at("max").as_number();
  }
  for (const io::JsonValue& bucket : value.at("buckets").as_array()) {
    const io::JsonValue& le = bucket.at("le");
    if (le.is_string()) {
      if (le.as_string() != "+Inf") {
        throw InvalidArgumentError(where + ": bad bucket edge '" +
                                   le.as_string() + "'");
      }
    } else {
      data.boundaries.push_back(le.as_number());
    }
    data.bucket_counts.push_back(bucket.at("count").as_int());
  }
  return data;
}

std::map<std::string, obs::MetricsSnapshot::HistogramData> histograms_of(
    const io::JsonValue& report, const std::string& where) {
  std::map<std::string, obs::MetricsSnapshot::HistogramData> histograms;
  if (const io::JsonValue* object = report.find("histograms")) {
    for (const auto& [name, value] : object->as_object()) {
      histograms.emplace(name, histogram_of(value, where + "/" + name));
    }
  }
  return histograms;
}

void diff_counters(const std::string& bench,
                   const std::map<std::string, std::int64_t>& baseline,
                   const std::map<std::string, std::int64_t>& candidate,
                   BenchDiffReport& report) {
  std::set<std::string> names;
  for (const auto& [name, value] : baseline) names.insert(name);
  for (const auto& [name, value] : candidate) names.insert(name);
  for (const std::string& name : names) {
    ++report.counters_compared;
    const auto base = baseline.find(name);
    const auto cand = candidate.find(name);
    CounterDrift drift;
    drift.bench = bench;
    drift.name = name;
    drift.in_baseline = base != baseline.end();
    drift.in_candidate = cand != candidate.end();
    if (drift.in_baseline) drift.baseline = base->second;
    if (drift.in_candidate) drift.candidate = cand->second;
    if (!drift.in_baseline || !drift.in_candidate ||
        drift.baseline != drift.candidate) {
      report.counter_drifts.push_back(std::move(drift));
    }
  }
}

void diff_deterministic_histogram(
    const std::string& bench, const std::string& name,
    const obs::MetricsSnapshot::HistogramData& baseline,
    const obs::MetricsSnapshot::HistogramData& candidate,
    BenchDiffReport& report) {
  std::string what;
  if (baseline.boundaries != candidate.boundaries) {
    what = "bucket boundaries changed";
  } else if (baseline.count != candidate.count) {
    what = "count " + std::to_string(baseline.count) + " -> " +
           std::to_string(candidate.count);
  } else if (baseline.bucket_counts != candidate.bucket_counts) {
    what = "bucket counts shifted";
  } else if (baseline.sum != candidate.sum) {
    what = "sum " + format_number(baseline.sum) + " -> " +
           format_number(candidate.sum);
  }
  if (!what.empty()) {
    report.histogram_drifts.push_back({bench, name, std::move(what)});
  }
}

double safe_ratio(double baseline, double candidate) {
  if (baseline > 0.0) return candidate / baseline;
  if (candidate <= 0.0) return 1.0;
  return std::numeric_limits<double>::infinity();
}

void diff_duration_histogram(
    const std::string& bench, const std::string& name,
    const obs::MetricsSnapshot::HistogramData* baseline,
    const obs::MetricsSnapshot::HistogramData* candidate,
    const BenchDiffOptions& options, BenchDiffReport& report) {
  TimingDiff timing;
  timing.bench = bench;
  timing.name = name;
  if (baseline != nullptr) {
    timing.baseline_count = baseline->count;
    timing.baseline_p50 = obs::estimate_quantile(*baseline, 0.50);
    timing.baseline_p95 = obs::estimate_quantile(*baseline, 0.95);
    timing.baseline_p99 = obs::estimate_quantile(*baseline, 0.99);
  }
  if (candidate != nullptr) {
    timing.candidate_count = candidate->count;
    timing.candidate_p50 = obs::estimate_quantile(*candidate, 0.50);
    timing.candidate_p95 = obs::estimate_quantile(*candidate, 0.95);
    timing.candidate_p99 = obs::estimate_quantile(*candidate, 0.99);
  }
  if (timing.baseline_count > 0 && timing.candidate_count > 0) {
    timing.ratio_p50 = safe_ratio(timing.baseline_p50, timing.candidate_p50);
    timing.ratio_p95 = safe_ratio(timing.baseline_p95, timing.candidate_p95);
    timing.ratio_p99 = safe_ratio(timing.baseline_p99, timing.candidate_p99);
    timing.max_ratio =
        std::max({timing.ratio_p50, timing.ratio_p95, timing.ratio_p99});
    timing.regressed = timing.max_ratio > options.timing_ratio_threshold;
  }
  report.timings.push_back(std::move(timing));
}

void diff_section(const std::string& bench, const io::JsonValue& baseline,
                  const io::JsonValue& candidate,
                  const BenchDiffOptions& options, BenchDiffReport& report) {
  diff_counters(bench, counters_of(baseline), counters_of(candidate), report);

  const auto baseline_histograms =
      histograms_of(baseline, "baseline/" + bench);
  const auto candidate_histograms =
      histograms_of(candidate, "candidate/" + bench);
  std::set<std::string> names;
  for (const auto& [name, data] : baseline_histograms) names.insert(name);
  for (const auto& [name, data] : candidate_histograms) names.insert(name);
  for (const std::string& name : names) {
    const auto base = baseline_histograms.find(name);
    const auto cand = candidate_histograms.find(name);
    const obs::MetricsSnapshot::HistogramData* base_data =
        base != baseline_histograms.end() ? &base->second : nullptr;
    const obs::MetricsSnapshot::HistogramData* cand_data =
        cand != candidate_histograms.end() ? &cand->second : nullptr;
    if (is_duration_histogram(name)) {
      diff_duration_histogram(bench, name, base_data, cand_data, options,
                              report);
      continue;
    }
    ++report.histograms_compared;
    if (base_data == nullptr || cand_data == nullptr) {
      report.histogram_drifts.push_back(
          {bench, name,
           base_data == nullptr ? "only in candidate" : "only in baseline"});
      continue;
    }
    diff_deterministic_histogram(bench, name, *base_data, *cand_data, report);
  }
}

}  // namespace

BenchDiffReport diff_bench_telemetry(const io::JsonValue& baseline,
                                     const io::JsonValue& candidate,
                                     const BenchDiffOptions& options) {
  BenchDiffReport report;
  const auto baseline_sections =
      telemetry_sections(baseline, "baseline", report.notes);
  const auto candidate_sections =
      telemetry_sections(candidate, "candidate", report.notes);
  std::set<std::string> benches;
  for (const auto& [name, section] : baseline_sections) benches.insert(name);
  for (const auto& [name, section] : candidate_sections) benches.insert(name);
  for (const std::string& bench : benches) {
    const auto base = baseline_sections.find(bench);
    const auto cand = candidate_sections.find(bench);
    if (base == baseline_sections.end()) {
      report.notes.push_back("bench section '" + bench +
                             "' missing from baseline");
      continue;
    }
    if (cand == candidate_sections.end()) {
      report.notes.push_back("bench section '" + bench +
                             "' missing from candidate");
      continue;
    }
    diff_section(bench, *base->second, *cand->second, options, report);
  }
  return report;
}

BenchDiffReport diff_bench_telemetry_files(const std::string& baseline_path,
                                           const std::string& candidate_path,
                                           const BenchDiffOptions& options) {
  const auto load = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot open telemetry file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return io::parse_json(text.str());
  };
  const io::JsonValue baseline = load(baseline_path);
  const io::JsonValue candidate = load(candidate_path);
  BenchDiffReport report = diff_bench_telemetry(baseline, candidate, options);
  report.baseline_label = baseline_path;
  report.candidate_label = candidate_path;
  return report;
}

void write_bench_diff_markdown(std::ostream& os,
                               const BenchDiffReport& report,
                               const BenchDiffOptions& options) {
  const bool failed = report.regression(options);
  os << "# bench-diff: " << (failed ? "REGRESSION" : "OK") << "\n\n";
  if (!report.baseline_label.empty() || !report.candidate_label.empty()) {
    os << "baseline `" << report.baseline_label << "` vs candidate `"
       << report.candidate_label << "`\n\n";
  }
  if (!report.notes.empty()) {
    os << "## Structural problems\n\n";
    for (const std::string& note : report.notes) os << "- " << note << '\n';
    os << '\n';
  }

  os << "## Deterministic counters (exact)\n\n"
     << report.counters_compared << " compared, " << report.counter_drifts.size()
     << " drifted.\n";
  if (!report.counter_drifts.empty()) {
    os << "\n| bench | counter | baseline | candidate |\n"
       << "|---|---|---:|---:|\n";
    for (const CounterDrift& drift : report.counter_drifts) {
      os << "| " << drift.bench << " | `" << drift.name << "` | "
         << (drift.in_baseline ? std::to_string(drift.baseline)
                               : std::string("(missing)"))
         << " | "
         << (drift.in_candidate ? std::to_string(drift.candidate)
                                : std::string("(missing)"))
         << " |\n";
    }
  }
  os << '\n';

  os << "## Deterministic histograms (exact)\n\n"
     << report.histograms_compared << " compared, "
     << report.histogram_drifts.size() << " drifted.\n";
  if (!report.histogram_drifts.empty()) {
    os << "\n| bench | histogram | drift |\n|---|---|---|\n";
    for (const HistogramDrift& drift : report.histogram_drifts) {
      os << "| " << drift.bench << " | `" << drift.name << "` | " << drift.what
         << " |\n";
    }
  }
  os << '\n';

  os << "## Duration histograms (threshold "
     << format_ratio(options.timing_ratio_threshold) << ", "
     << (options.gate_timings ? "gating" : "report-only") << ")\n\n";
  if (report.timings.empty()) {
    os << "none.\n";
    return;
  }
  os << "| bench | histogram | n | p50 | p95 | p99 | p50 ratio | p95 ratio "
        "| p99 ratio | |\n"
     << "|---|---|---:|---:|---:|---:|---:|---:|---:|---|\n";
  for (const TimingDiff& timing : report.timings) {
    os << "| " << timing.bench << " | `" << timing.name << "` | ";
    if (timing.baseline_count == 0 || timing.candidate_count == 0) {
      os << timing.baseline_count << " -> " << timing.candidate_count
         << " | - | - | - | - | - | - | "
         << (timing.baseline_count == 0 ? "only in candidate"
                                        : "only in baseline")
         << " |\n";
      continue;
    }
    os << timing.candidate_count << " | "
       << format_number(timing.baseline_p50) << " -> "
       << format_number(timing.candidate_p50) << " | "
       << format_number(timing.baseline_p95) << " -> "
       << format_number(timing.candidate_p95) << " | "
       << format_number(timing.baseline_p99) << " -> "
       << format_number(timing.candidate_p99) << " | "
       << format_ratio(timing.ratio_p50) << " | "
       << format_ratio(timing.ratio_p95) << " | "
       << format_ratio(timing.ratio_p99) << " | "
       << (timing.regressed ? "REGRESSED" : "") << " |\n";
  }
}

void write_bench_diff_json(std::ostream& os, const BenchDiffReport& report,
                           const BenchDiffOptions& options) {
  io::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "mcs.bench_diff.v1");
  json.field("verdict", report.regression(options)
                            ? std::string_view("regression")
                            : std::string_view("ok"));
  json.field("baseline", report.baseline_label);
  json.field("candidate", report.candidate_label);
  json.key("options").begin_object();
  json.field("timing_ratio_threshold", options.timing_ratio_threshold);
  json.field("gate_timings", options.gate_timings);
  json.end_object();
  json.key("notes").begin_array();
  for (const std::string& note : report.notes) json.value(note);
  json.end_array();
  json.key("counters").begin_object();
  json.field("compared", static_cast<std::int64_t>(report.counters_compared));
  json.key("drifts").begin_array();
  for (const CounterDrift& drift : report.counter_drifts) {
    json.begin_object();
    json.field("bench", drift.bench);
    json.field("name", drift.name);
    if (drift.in_baseline) json.field("baseline", drift.baseline);
    if (drift.in_candidate) json.field("candidate", drift.candidate);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("histograms").begin_object();
  json.field("compared",
             static_cast<std::int64_t>(report.histograms_compared));
  json.key("drifts").begin_array();
  for (const HistogramDrift& drift : report.histogram_drifts) {
    json.begin_object();
    json.field("bench", drift.bench);
    json.field("name", drift.name);
    json.field("what", drift.what);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("timings").begin_array();
  for (const TimingDiff& timing : report.timings) {
    json.begin_object();
    json.field("bench", timing.bench);
    json.field("name", timing.name);
    json.field("baseline_count", timing.baseline_count);
    json.field("candidate_count", timing.candidate_count);
    if (timing.baseline_count > 0 && timing.candidate_count > 0) {
      json.field("baseline_p50", timing.baseline_p50);
      json.field("baseline_p95", timing.baseline_p95);
      json.field("baseline_p99", timing.baseline_p99);
      json.field("candidate_p50", timing.candidate_p50);
      json.field("candidate_p95", timing.candidate_p95);
      json.field("candidate_p99", timing.candidate_p99);
      json.field("ratio_p50", timing.ratio_p50);
      json.field("ratio_p95", timing.ratio_p95);
      json.field("ratio_p99", timing.ratio_p99);
      json.field("regressed", timing.regressed);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

}  // namespace mcs::analysis
