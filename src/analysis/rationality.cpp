#include "analysis/rationality.hpp"

#include <sstream>

namespace mcs::analysis {

std::string RationalityReport::summary() const {
  std::ostringstream os;
  os << "checked " << phones_checked << " phones: ";
  if (individually_rational()) {
    os << "all utilities nonnegative (individually rational)";
  } else {
    os << violations.size() << " phones with negative utility";
  }
  return os.str();
}

RationalityReport check_individual_rationality(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome) {
  outcome.validate(scenario, bids);
  RationalityReport report;
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    ++report.phones_checked;
    const Money utility = outcome.utility(scenario, phone);
    if (utility.is_negative()) {
      report.violations.push_back(RationalityViolation{
          phone, utility, outcome.allocation.is_winner(phone)});
    }
  }
  return report;
}

RationalityReport audit_individual_rationality(
    const auction::Mechanism& mechanism, const model::Scenario& scenario) {
  const model::BidProfile bids = scenario.truthful_bids();
  return check_individual_rationality(scenario, bids,
                                      mechanism.run(scenario, bids));
}

std::string_view to_string(RoundInvariant invariant) {
  switch (invariant) {
    case RoundInvariant::kWinnerUnderpaid:
      return "winner-underpaid";
    case RoundInvariant::kLoserPaid:
      return "loser-paid";
    case RoundInvariant::kPaymentMismatch:
      return "payment-mismatch";
  }
  return "unknown";
}

std::vector<InvariantViolation> check_round_invariants(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome,
    std::optional<Money> expected_total_payment) {
  std::vector<InvariantViolation> violations;
  Money total;
  const int phones = scenario.phone_count();
  for (int i = 0; i < phones; ++i) {
    const PhoneId phone{i};
    const auto index = static_cast<std::size_t>(i);
    const Money payment =
        index < outcome.payments.size() ? outcome.payments[index] : Money{};
    total += payment;
    if (outcome.allocation.is_winner(phone)) {
      const Money claimed =
          index < bids.size() ? bids[index].claimed_cost : Money{};
      if ((payment - claimed).is_negative()) {
        violations.push_back(InvariantViolation{
            RoundInvariant::kWinnerUnderpaid, phone, payment, claimed});
      }
    } else if (!payment.is_zero()) {
      violations.push_back(
          InvariantViolation{RoundInvariant::kLoserPaid, phone, payment,
                             Money{}});
    }
  }
  if (expected_total_payment && total != *expected_total_payment) {
    violations.push_back(InvariantViolation{RoundInvariant::kPaymentMismatch,
                                            PhoneId{-1}, total,
                                            *expected_total_payment});
  }
  return violations;
}

}  // namespace mcs::analysis
