#include "analysis/rationality.hpp"

#include <sstream>

namespace mcs::analysis {

std::string RationalityReport::summary() const {
  std::ostringstream os;
  os << "checked " << phones_checked << " phones: ";
  if (individually_rational()) {
    os << "all utilities nonnegative (individually rational)";
  } else {
    os << violations.size() << " phones with negative utility";
  }
  return os.str();
}

RationalityReport check_individual_rationality(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const auction::Outcome& outcome) {
  outcome.validate(scenario, bids);
  RationalityReport report;
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    ++report.phones_checked;
    const Money utility = outcome.utility(scenario, phone);
    if (utility.is_negative()) {
      report.violations.push_back(RationalityViolation{
          phone, utility, outcome.allocation.is_winner(phone)});
    }
  }
  return report;
}

RationalityReport audit_individual_rationality(
    const auction::Mechanism& mechanism, const model::Scenario& scenario) {
  const model::BidProfile bids = scenario.truthful_bids();
  return check_individual_rationality(scenario, bids,
                                      mechanism.run(scenario, bids));
}

}  // namespace mcs::analysis
