// Machine-readable round reports.
//
// One JSON document per (scenario, mechanism, outcome): scenario shape,
// the full allocation with payments, and every derived metric. This is the
// integration surface for external tooling (dashboards, notebooks,
// regression diffing); `mcs_cli run --json <path>` writes it.
#pragma once

#include <iosfwd>
#include <string>

#include "auction/outcome.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

/// Writes the report; the document is a single JSON object:
/// {
///   "mechanism": "...",
///   "scenario": { "slots": m, "task_value": nu, "phones": n, "tasks": g },
///   "metrics": { "social_welfare": ..., "overpayment_ratio": ..., ... },
///   "allocation": [ { "task": 0, "slot": 1, "value": nu_0,
///                     "phone": 3, "payment": ... } | unserved entries ],
///   "phones": [ { "id": 0, "window": [a, d], "claimed_cost": ...,
///                 "winner": true, "payment": ..., "utility": ... } ]
/// }
/// Money fields are emitted as exact decimal strings (Money::to_string).
void write_round_report_json(std::ostream& os, const model::Scenario& scenario,
                             const model::BidProfile& bids,
                             const auction::Outcome& outcome,
                             const std::string& mechanism_name);

/// String convenience.
[[nodiscard]] std::string round_report_json(const model::Scenario& scenario,
                                            const model::BidProfile& bids,
                                            const auction::Outcome& outcome,
                                            const std::string& mechanism_name);

}  // namespace mcs::analysis
