// Truthfulness auditing by exhaustive deviation testing (Definition 4).
//
// A mechanism is truthful iff no phone can strictly increase its utility by
// any *legal* misreport (window inside the true one, any claimed cost),
// whatever the others report. The auditor fixes everyone else's bids,
// enumerates a grid of legal deviations for one phone at a time -- every
// (arrival delay, departure advance) pair up to configured limits crossed
// with a set of cost perturbations -- re-runs the mechanism for each, and
// compares utilities computed from *true* costs.
//
// This is how the library empirically verifies Theorems 1 and 4, and how it
// reproduces the paper's negative result: on the Fig. 4 instance the
// per-slot second-price baseline fails the audit with exactly the Fig. 5
// manipulation (phone 1 delays two slots, gains 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "auction/mechanism.hpp"
#include "common/money.hpp"
#include "model/scenario.hpp"

namespace mcs::analysis {

struct DeviationOptions {
  /// Claimed cost = true cost scaled by each factor...
  std::vector<double> cost_factors{0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0};
  /// ...plus true cost shifted by each offset (units).
  std::vector<std::int64_t> cost_offsets_units{-2, -1, 1, 2, 10};
  /// Enumerate arrival delays 0..max (clamped to the true window).
  Slot::rep_type max_arrival_delay = 3;
  /// Enumerate departure advances 0..max (clamped).
  Slot::rep_type max_departure_advance = 3;
};

/// One profitable misreport found by the audit.
struct DeviationViolation {
  PhoneId phone{0};
  model::Bid deviant_bid{SlotInterval::of(1, 1), Money{}};
  Money truthful_utility;
  Money deviant_utility;

  [[nodiscard]] Money gain() const {
    return deviant_utility - truthful_utility;
  }
};

struct TruthfulnessReport {
  int phones_audited{0};
  int deviations_tested{0};
  std::vector<DeviationViolation> violations;

  [[nodiscard]] bool truthful() const { return violations.empty(); }

  /// Largest utility gain over all violations (zero when truthful).
  [[nodiscard]] Money max_gain() const;

  [[nodiscard]] std::string summary() const;
};

/// Audits `mechanism` on `scenario` against the given base reports of the
/// other phones (pass scenario.truthful_bids() for the standard audit).
/// The phone under audit always deviates from its *true* profile; its entry
/// in `base_bids` is replaced by its truthful bid when computing the
/// reference utility.
[[nodiscard]] TruthfulnessReport audit_truthfulness(
    const auction::Mechanism& mechanism, const model::Scenario& scenario,
    const model::BidProfile& base_bids, const DeviationOptions& options = {});

/// Convenience overload: others report truthfully.
[[nodiscard]] TruthfulnessReport audit_truthfulness(
    const auction::Mechanism& mechanism, const model::Scenario& scenario,
    const DeviationOptions& options = {});

/// Enumerates the legal deviation grid for one profile (exposed for tests).
[[nodiscard]] std::vector<model::Bid> enumerate_deviations(
    const model::TrueProfile& profile, const DeviationOptions& options);

}  // namespace mcs::analysis
