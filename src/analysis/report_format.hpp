// Shared numeric formatting for the markdown leaderboards.
//
// Every leaderboard this repo renders (econ-report, the arena) formats
// derived ratios identically -- fixed %.4f via snprintf, locale-free --
// so reports are byte-stable across runs, threads, and platforms, and a
// diff between two leaderboards is a diff between their numbers, never
// their formatting. Money fields never pass through here: they render
// exact via Money::to_string.
#pragma once

#include <cstdio>
#include <string>

namespace mcs::analysis {

/// Fixed four-decimal rendering of a dimensionless ratio.
[[nodiscard]] inline std::string format_ratio(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", value);
  return buf;
}

}  // namespace mcs::analysis
