#include "analysis/report_json.hpp"

#include <sstream>

#include "analysis/metrics.hpp"
#include "common/assert.hpp"
#include "io/json.hpp"

namespace mcs::analysis {

void write_round_report_json(std::ostream& os, const model::Scenario& scenario,
                             const model::BidProfile& bids,
                             const auction::Outcome& outcome,
                             const std::string& mechanism_name) {
  const RoundMetrics metrics = compute_metrics(scenario, bids, outcome);

  io::JsonWriter json(os);
  json.begin_object();
  json.field("mechanism", mechanism_name);

  json.key("scenario").begin_object();
  json.field("slots", static_cast<std::int64_t>(scenario.num_slots));
  json.field("task_value", scenario.task_value.to_string());
  json.field("phones", static_cast<std::int64_t>(scenario.phone_count()));
  json.field("tasks", static_cast<std::int64_t>(scenario.task_count()));
  json.end_object();

  json.key("metrics").begin_object();
  json.field("social_welfare", metrics.social_welfare.to_string());
  json.field("claimed_welfare", metrics.claimed_welfare.to_string());
  json.field("total_payment", metrics.total_payment.to_string());
  json.field("total_true_cost", metrics.total_true_cost.to_string());
  json.field("overpayment", metrics.overpayment.to_string());
  json.field("overpayment_ratio", metrics.overpayment_ratio);
  json.field("tasks_total", static_cast<std::int64_t>(metrics.tasks_total));
  json.field("tasks_allocated",
             static_cast<std::int64_t>(metrics.tasks_allocated));
  json.field("completion_rate", metrics.completion_rate);
  json.field("platform_utility", metrics.platform_utility.to_string());
  json.end_object();

  json.key("allocation").begin_array();
  for (const model::Task& task : scenario.tasks) {
    json.begin_object();
    json.field("task", static_cast<std::int64_t>(task.id.value()));
    json.field("slot", static_cast<std::int64_t>(task.slot.value()));
    json.field("value", scenario.value_of(task.id).to_string());
    if (const auto phone = outcome.allocation.phone_for(task.id)) {
      json.field("phone", static_cast<std::int64_t>(phone->value()));
      json.field("payment",
                 outcome.payments[static_cast<std::size_t>(phone->value())]
                     .to_string());
    } else {
      json.key("phone").null();
    }
    json.end_object();
  }
  json.end_array();

  json.key("phones").begin_array();
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    const model::Bid& bid = bids[static_cast<std::size_t>(i)];
    json.begin_object();
    json.field("id", static_cast<std::int64_t>(i));
    json.key("window").begin_array();
    json.value(static_cast<std::int64_t>(bid.window.begin().value()));
    json.value(static_cast<std::int64_t>(bid.window.end().value()));
    json.end_array();
    json.field("claimed_cost", bid.claimed_cost.to_string());
    json.field("winner", outcome.allocation.is_winner(phone));
    json.field("payment",
               outcome.payments[static_cast<std::size_t>(i)].to_string());
    json.field("utility", outcome.utility(scenario, phone).to_string());
    json.end_object();
  }
  json.end_array();

  json.end_object();
  MCS_ENSURES(json.complete(), "round report must be a complete document");
  os << '\n';
}

std::string round_report_json(const model::Scenario& scenario,
                              const model::BidProfile& bids,
                              const auction::Outcome& outcome,
                              const std::string& mechanism_name) {
  std::ostringstream os;
  write_round_report_json(os, scenario, bids, outcome, mechanism_name);
  return os.str();
}

}  // namespace mcs::analysis
