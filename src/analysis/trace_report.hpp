// Offline digest of an "mcs.trace.v1" round-trace stream.
//
// The serve engine's trace plane (serve/trace_plane.hpp) exports retained
// round timelines plus a per-phase summary; this is the read side --
// mcs_cli trace-report parses the JSONL stream back and renders the
// operator view: where the p99 went, phase by phase, with ASCII span
// waterfalls of the slowest retained rounds. Lives in the analysis layer
// (which cannot link serve), so the schema constants and span vocabulary
// come from obs/round_trace.hpp, the layer both sides share.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/round_trace.hpp"

namespace mcs::analysis {

/// One retained trace, as decoded from a "trace" record.
struct TraceRecord {
  std::string trace_id;
  std::int64_t round{-1};
  int shard{0};
  std::string status;
  std::vector<std::string> retained;  ///< reason labels, wire order
  std::int64_t violations{0};
  std::uint64_t open_ns{0};
  std::uint64_t close_ns{0};
  std::uint64_t latency_ns{0};
  std::int64_t spans_dropped{0};

  struct Span {
    std::string phase;
    std::int32_t slot{-1};
    std::uint64_t start_ns{0};
    std::uint64_t end_ns{0};
  };
  std::vector<Span> spans;
};

/// Per-phase quantiles from the stream's "summary" record.
struct TracePhaseStats {
  std::int64_t count{0};
  double p50_ns{0.0};  ///< 0 when the phase is empty
  double p99_ns{0.0};
  std::int64_t max_ns{0};
};

/// One sketch exemplar from the "exemplars" record.
struct TraceExemplar {
  std::uint64_t bucket_le_ns{0};
  std::uint64_t latency_ns{0};
  std::string trace_id;
  std::int64_t round{-1};
};

/// Everything a trace-report needs, decoded from one stream.
struct TraceStreamSummary {
  int shards{0};
  std::int64_t ring_capacity{0};
  std::int64_t max_spans{0};
  bool auto_threshold{false};  ///< header said slow_threshold_ns "auto"

  std::vector<TraceRecord> traces;  ///< retained traces, stream order

  // "summary" record totals.
  std::int64_t rounds{0};
  std::int64_t completed{0};
  std::int64_t retained{0};
  std::int64_t retained_slow{0};
  std::int64_t retained_econ{0};
  std::int64_t retained_error{0};
  std::int64_t dropped{0};
  std::int64_t retained_evicted{0};
  std::int64_t spans_truncated{0};
  /// Effective slow threshold; negative when the sampler never warmed up.
  std::int64_t slow_threshold_ns{-1};
  /// Keyed by phase name, wire order preserved via obs::TracePhase below.
  std::map<std::string, TracePhaseStats> phases;

  std::uint64_t exemplar_threshold_ns{0};
  std::vector<TraceExemplar> exemplars;
};

/// Parses one mcs.trace.v1 stream. Throws InvalidArgumentError on
/// malformed JSON, a missing/foreign header, or mistyped records; unknown
/// record types are skipped (forward compatibility).
[[nodiscard]] TraceStreamSummary summarize_trace_stream(std::istream& in);

/// The operator view: retention totals, per-phase p50/p99 table, the
/// top_k slowest retained rounds as ASCII span waterfalls, and the
/// exemplar table.
void render_trace_report(std::ostream& os, const TraceStreamSummary& summary,
                         int top_k = 5);

}  // namespace mcs::analysis
