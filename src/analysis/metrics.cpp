#include "analysis/metrics.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace mcs::analysis {

RoundMetrics compute_metrics(const model::Scenario& scenario,
                             const model::BidProfile& bids,
                             const auction::Outcome& outcome) {
  outcome.validate(scenario, bids);

  RoundMetrics metrics;
  metrics.social_welfare = outcome.social_welfare(scenario);
  metrics.claimed_welfare = outcome.claimed_welfare(scenario, bids);
  metrics.total_payment = outcome.total_payment();
  metrics.total_true_cost = outcome.total_true_cost(scenario);
  metrics.overpayment = metrics.total_payment - metrics.total_true_cost;
  metrics.overpayment_ratio =
      metrics.total_true_cost.is_zero()
          ? 0.0
          : metrics.overpayment.ratio_to(metrics.total_true_cost);
  metrics.tasks_total = scenario.task_count();
  metrics.tasks_allocated = outcome.allocation.allocated_count();
  metrics.completion_rate =
      metrics.tasks_total == 0
          ? 1.0
          : static_cast<double>(metrics.tasks_allocated) /
                static_cast<double>(metrics.tasks_total);
  Money allocated_value;
  for (int t = 0; t < outcome.allocation.task_count(); ++t) {
    if (outcome.allocation.phone_for(TaskId{t})) {
      allocated_value += scenario.value_of(TaskId{t});
    }
  }
  metrics.platform_utility = allocated_value - metrics.total_payment;
  return metrics;
}

std::string describe(const RoundMetrics& m) {
  std::ostringstream os;
  os << "  social welfare:    " << m.social_welfare << '\n'
     << "  claimed welfare:   " << m.claimed_welfare << '\n'
     << "  total payment:     " << m.total_payment << '\n'
     << "  total true cost:   " << m.total_true_cost << '\n'
     << "  overpayment:       " << m.overpayment << " (ratio "
     << m.overpayment_ratio << ")\n"
     << "  tasks allocated:   " << m.tasks_allocated << " / " << m.tasks_total
     << '\n'
     << "  platform utility:  " << m.platform_utility << '\n';
  return os.str();
}

}  // namespace mcs::analysis
