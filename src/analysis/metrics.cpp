#include "analysis/metrics.hpp"

#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "obs/econ_metrics.hpp"

namespace mcs::analysis {

RoundMetrics compute_metrics(const model::Scenario& scenario,
                             const model::BidProfile& bids,
                             const auction::Outcome& outcome) {
  outcome.validate(scenario, bids);

  RoundMetrics metrics;
  metrics.social_welfare = outcome.social_welfare(scenario);
  metrics.claimed_welfare = outcome.claimed_welfare(scenario, bids);
  metrics.total_payment = outcome.total_payment();
  metrics.total_true_cost = outcome.total_true_cost(scenario);
  metrics.overpayment = metrics.total_payment - metrics.total_true_cost;
  // Definition 11 sigma and the coverage ratio are single-sourced in
  // obs/econ_metrics so the live serve plane and econ-report derive the
  // exact same numbers from the same Money totals.
  metrics.overpayment_ratio =
      obs::overpayment_ratio(metrics.total_payment, metrics.total_true_cost);
  metrics.tasks_total = scenario.task_count();
  metrics.tasks_allocated = outcome.allocation.allocated_count();
  metrics.completion_rate =
      obs::coverage_rate(metrics.tasks_allocated, metrics.tasks_total);
  Money allocated_value;
  for (int t = 0; t < outcome.allocation.task_count(); ++t) {
    if (outcome.allocation.phone_for(TaskId{t})) {
      allocated_value += scenario.value_of(TaskId{t});
    }
  }
  metrics.platform_utility = allocated_value - metrics.total_payment;
  std::vector<Money> winner_payments;
  for (const PhoneId winner : outcome.allocation.winners()) {
    winner_payments.push_back(
        outcome.payments[static_cast<std::size_t>(winner.value())]);
  }
  metrics.payment_fairness = obs::jain_fairness(winner_payments);
  return metrics;
}

std::string describe(const RoundMetrics& m) {
  std::ostringstream os;
  os << "  social welfare:    " << m.social_welfare << '\n'
     << "  claimed welfare:   " << m.claimed_welfare << '\n'
     << "  total payment:     " << m.total_payment << '\n'
     << "  total true cost:   " << m.total_true_cost << '\n'
     << "  overpayment:       " << m.overpayment << " (ratio "
     << m.overpayment_ratio << ")\n"
     << "  tasks allocated:   " << m.tasks_allocated << " / " << m.tasks_total
     << '\n'
     << "  platform utility:  " << m.platform_utility << '\n';
  return os.str();
}

}  // namespace mcs::analysis
