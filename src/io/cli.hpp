// Tiny command-line flag parser for the bench/example binaries.
//
// Every figure harness accepts the same small vocabulary:
//   --reps N     repetitions per sweep point
//   --seed S     base RNG seed
//   --csv PATH   also dump the series as CSV
//   --help       print usage
// plus harness-specific flags registered by the binary. The parser is
// strict: unknown flags are an error (catches typos in scripted runs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcs::io {

class CliParser {
 public:
  /// `program_summary` is printed by --help.
  explicit CliParser(std::string program_summary);

  /// Registers a flag taking a value; `description` is for --help.
  void add_string(const std::string& name, std::string default_value,
                  std::string description);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string description);
  void add_double(const std::string& name, double default_value,
                  std::string description);
  /// Registers a boolean switch (present => true).
  void add_switch(const std::string& name, std::string description);

  /// Parses argv. Returns false if --help was requested (usage already
  /// printed); throws InvalidArgumentError on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_switch(const std::string& name) const;

  /// Usage text (also printed on --help).
  [[nodiscard]] std::string usage(const std::string& argv0) const;

 private:
  enum class Kind { kString, kInt, kDouble, kSwitch };

  struct Flag {
    Kind kind;
    std::string value;      // canonical textual value
    std::string default_value;
    std::string description;
    bool seen{false};
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
};

}  // namespace mcs::io
