#include "io/csv.hpp"

#include <fstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::io {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

void CsvWriter::set_header(std::vector<std::string> header) {
  MCS_EXPECTS(!header_written_ && rows_written_ == 0,
              "set_header must precede the first row");
  header_ = std::move(header);
}

void CsvWriter::write_record(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (!header_written_ && !header_.empty()) {
    write_record(header_);
    header_written_ = true;
  }
  if (!header_.empty()) {
    MCS_EXPECTS(cells.size() == header_.size(),
                "CSV row width must match header width");
  }
  write_record(cells);
  ++rows_written_;
}

void write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  if (!file) throw IoError("cannot open CSV output file: " + path);
  CsvWriter writer(file);
  writer.set_header(header);
  for (const auto& row : rows) writer.write_row(row);
  if (!file) throw IoError("error while writing CSV output file: " + path);
}

}  // namespace mcs::io
