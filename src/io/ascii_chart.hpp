// Terminal line charts for the figure benches.
//
// Each reproduced figure is a couple of series over a swept parameter; a
// small ASCII plot under the data table makes the paper's *shape* claims
// (increasing/decreasing/stable, who is on top, where gaps grow) visible
// at a glance in the bench output without any external tooling.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mcs::io {

struct ChartSeries {
  std::string name;
  std::vector<double> ys;  ///< one value per x position
  char marker{'o'};
};

class AsciiChart {
 public:
  /// Plot area dimensions in characters (excluding axis labels).
  AsciiChart(int width = 60, int height = 16);

  /// Renders all series over the shared x values. Requirements: at least
  /// one x, every series sized like xs, xs strictly increasing. Collisions
  /// between series are drawn as '#'.
  void render(std::ostream& os, const std::vector<double>& xs,
              const std::vector<ChartSeries>& series) const;

  [[nodiscard]] std::string to_string(const std::vector<double>& xs,
                                      const std::vector<ChartSeries>& series) const;

 private:
  int width_;
  int height_;
};

}  // namespace mcs::io
