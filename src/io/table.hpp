// Fixed-width ASCII table rendering.
//
// Bench binaries print each reproduced figure as a table of series (the
// paper's plots reduced to their data): one row per x-value, one column per
// mechanism. TextTable right-aligns numeric cells and sizes columns to
// content, so the output is directly readable in a terminal or diffable in
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mcs::io {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed string/double rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable& table) : table_(table) {}
    RowBuilder& cell(std::string text);
    RowBuilder& cell(double value, int precision = 2);
    RowBuilder& cell(std::int64_t value);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TextTable& table_;
    std::vector<std::string> cells_;
  };

  /// Starts a fluent row; the row is committed when the builder goes out of
  /// scope.
  [[nodiscard]] RowBuilder row() { return RowBuilder{*this}; }

  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   m    online  offline
  ///   ---  ------  -------
  ///   30   201.5   266.0
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by table/CSV output).
[[nodiscard]] std::string format_double(double value, int precision = 2);

}  // namespace mcs::io
