// Self-contained SVG line charts.
//
// The ASCII charts serve the terminal; for sharing results, `mcs_cli
// report` assembles every reproduced figure into one HTML file, and this
// renderer draws each figure as an inline SVG -- no external plotting
// dependency, deterministic output (byte-stable for fixed input, so
// reports diff cleanly across runs).
#pragma once

#include <string>
#include <vector>

namespace mcs::io {

struct SvgSeries {
  std::string name;
  std::vector<double> ys;   ///< one value per x position
  std::string color;        ///< CSS color, e.g. "#1f77b4"
};

class SvgChart {
 public:
  /// Canvas size in pixels (plot area is inset by fixed margins).
  SvgChart(int width = 640, int height = 360);

  /// Renders a complete <svg> element: axes with ticks, one polyline plus
  /// point markers per series, and a legend. Requirements mirror
  /// AsciiChart: nonempty strictly-increasing xs, series sized like xs,
  /// finite values.
  [[nodiscard]] std::string render(const std::string& title,
                                   const std::string& x_label,
                                   const std::string& y_label,
                                   const std::vector<double>& xs,
                                   const std::vector<SvgSeries>& series) const;

 private:
  int width_;
  int height_;
};

}  // namespace mcs::io
