// Minimal streaming JSON writer.
//
// Experiment results can be exported as JSON (machine-readable companion to
// the CSV dumps). The writer is a push-style emitter with a tiny state
// machine that enforces well-formedness (balanced containers, keys only in
// objects) via contract checks -- enough for this library's output needs
// without pulling in a JSON dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::io {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);

  /// Containers. Every begin must be matched by the corresponding end; the
  /// destructor checks balance.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be directly inside an object and followed by a value.
  JsonWriter& key(std::string_view name);

  /// Scalar values.
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once all containers are closed and at least one value was written.
  [[nodiscard]] bool complete() const;

  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

 private:
  enum class Frame { kObjectAwaitKey, kObjectAwaitValue, kArray };

  void before_value();
  void write_escaped(std::string_view text);

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool any_output_{false};
  bool first_in_container_{true};
};

/// Escapes a string per JSON rules (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace mcs::io
