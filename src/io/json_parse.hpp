// Minimal recursive-descent JSON parser -- the read side of io/json.hpp.
//
// The flight-recorder tooling (mcs_cli replay / explain) consumes its own
// JSONL event logs, so the library needs to parse exactly what JsonWriter
// emits: objects, arrays, strings with the standard escapes, numbers,
// booleans, and null. Numbers are held as double (every integer the event
// log emits fits a double exactly); money amounts travel as decimal
// strings and never lose precision. Object key order is preserved so a
// parse -> reserialize round trip of a log line is byte-stable.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::io {

/// One parsed JSON value. A tagged union kept deliberately simple: objects
/// are key -> value maps (duplicate keys rejected), arrays are vectors.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  /// Typed accessors; each throws InvalidArgumentError when the value is
  /// not of the requested kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< number, checked integral
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  /// Object members in insertion (document) order; throws
  /// InvalidArgumentError when the value is not an object.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  as_object() const;

  /// Object member, or nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member; throws InvalidArgumentError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Convenience: member `key` as a string/int, or the fallback when the
  /// member is absent.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_{Kind::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  std::vector<JsonValue> array_;
  /// Insertion-ordered members (JSONL lines are small; linear find is fine).
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is not. Throws InvalidArgumentError with an offset on
/// malformed input. Safe on untrusted bytes: truncated documents, invalid
/// escapes, non-finite numbers, and containers nested deeper than 128
/// levels all produce a clean error, never a crash.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace mcs::io
