#include "io/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::io {

namespace {

std::int64_t parse_int(const std::string& name, const std::string& text) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw InvalidArgumentError("flag --" + name + " expects an integer, got '" +
                               text + "'");
  }
  return out;
}

double parse_double(const std::string& name, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return out;
  } catch (const std::exception&) {
    throw InvalidArgumentError("flag --" + name + " expects a number, got '" +
                               text + "'");
  }
}

}  // namespace

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {
  add_switch("help", "print this usage text and exit");
}

void CliParser::add_string(const std::string& name, std::string default_value,
                           std::string description) {
  MCS_EXPECTS(!flags_.contains(name), "duplicate flag registration");
  flags_[name] = Flag{Kind::kString, default_value, std::move(default_value),
                      std::move(description), false};
}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        std::string description) {
  MCS_EXPECTS(!flags_.contains(name), "duplicate flag registration");
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, text, text, std::move(description), false};
}

void CliParser::add_double(const std::string& name, double default_value,
                           std::string description) {
  MCS_EXPECTS(!flags_.contains(name), "duplicate flag registration");
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::kDouble, os.str(), os.str(), std::move(description),
                      false};
}

void CliParser::add_switch(const std::string& name, std::string description) {
  MCS_EXPECTS(!flags_.contains(name), "duplicate flag registration");
  flags_[name] = Flag{Kind::kSwitch, "0", "0", std::move(description), false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgumentError("unexpected positional argument '" + arg +
                                 "'");
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
      has_inline_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw InvalidArgumentError("unknown flag --" + name + "\n" +
                                 usage(argv[0]));
    }
    Flag& flag = it->second;
    flag.seen = true;
    if (flag.kind == Kind::kSwitch) {
      if (has_inline_value) {
        throw InvalidArgumentError("switch --" + name + " takes no value");
      }
      flag.value = "1";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        throw InvalidArgumentError("flag --" + name + " requires a value");
      }
      inline_value = argv[++i];
    }
    // Validate eagerly so errors point at the offending flag.
    if (flag.kind == Kind::kInt) parse_int(name, inline_value);
    if (flag.kind == Kind::kDouble) parse_double(name, inline_value);
    flag.value = inline_value;
  }
  if (get_switch("help")) {
    std::cout << usage(argv[0]);
    return false;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name,
                                       Kind kind) const {
  const auto it = flags_.find(name);
  MCS_EXPECTS(it != flags_.end(), "flag was never registered: " + name);
  MCS_EXPECTS(it->second.kind == kind, "flag accessed with wrong type: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return parse_int(name, find(name, Kind::kInt).value);
}

double CliParser::get_double(const std::string& name) const {
  return parse_double(name, find(name, Kind::kDouble).value);
}

bool CliParser::get_switch(const std::string& name) const {
  return find(name, Kind::kSwitch).value == "1";
}

std::string CliParser::usage(const std::string& argv0) const {
  std::ostringstream os;
  os << summary_ << "\n\nUsage: " << argv0 << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (flag.kind != Kind::kSwitch) os << " <value>";
    os << "  " << flag.description;
    if (flag.kind != Kind::kSwitch) os << " (default: " << flag.default_value << ')';
    os << '\n';
  }
  return os.str();
}

}  // namespace mcs::io
