#include "io/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace mcs::io {

namespace {

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 36;
constexpr int kMarginBottom = 48;
constexpr int kTicks = 5;

std::string fmt(double value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << value;
  std::string text = os.str();
  // Trim trailing zeros for compact tick labels.
  while (text.find('.') != std::string::npos &&
         (text.back() == '0' || text.back() == '.')) {
    const char c = text.back();
    text.pop_back();
    if (c == '.') break;
  }
  return text;
}

/// Escape for SVG text content (XML rules; json_escape covers quotes and
/// control characters, but XML needs & and < handled, so do it directly).
std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

SvgChart::SvgChart(int width, int height) : width_(width), height_(height) {
  MCS_EXPECTS(width >= 160 && height >= 120, "SVG canvas too small");
}

std::string SvgChart::render(const std::string& title,
                             const std::string& x_label,
                             const std::string& y_label,
                             const std::vector<double>& xs,
                             const std::vector<SvgSeries>& series) const {
  MCS_EXPECTS(!xs.empty(), "chart needs at least one x value");
  MCS_EXPECTS(!series.empty(), "chart needs at least one series");
  for (std::size_t k = 1; k < xs.size(); ++k) {
    MCS_EXPECTS(xs[k] > xs[k - 1], "x values must be strictly increasing");
  }
  double y_min = series.front().ys.empty() ? 0.0 : series.front().ys.front();
  double y_max = y_min;
  for (const SvgSeries& s : series) {
    MCS_EXPECTS(s.ys.size() == xs.size(), "series size must match x values");
    for (const double y : s.ys) {
      MCS_EXPECTS(std::isfinite(y), "series values must be finite");
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (y_max == y_min) {
    const double pad = y_max == 0.0 ? 1.0 : std::abs(y_max) * 0.1;
    y_min -= pad;
    y_max += pad;
  }

  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;
  const double x_min = xs.front();
  const double x_span = xs.back() > x_min ? xs.back() - x_min : 1.0;
  const auto px = [&](double x) {
    return kMarginLeft + (x - x_min) / x_span * plot_w;
  };
  const auto py = [&](double y) {
    return kMarginTop + (y_max - y) / (y_max - y_min) * plot_h;
  };

  std::ostringstream svg;
  svg << std::fixed << std::setprecision(1);
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
      << height_ << "\" font-family=\"sans-serif\" font-size=\"12\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width_ / 2 << "\" y=\"18\" text-anchor=\"middle\" "
      << "font-size=\"14\" font-weight=\"bold\">" << xml_escape(title)
      << "</text>\n";

  // Gridlines + tick labels.
  for (int k = 0; k < kTicks; ++k) {
    const double frac = static_cast<double>(k) / (kTicks - 1);
    const double y_value = y_min + (y_max - y_min) * frac;
    const double y = py(y_value);
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << y << "\" x2=\""
        << (width_ - kMarginRight) << "\" y2=\"" << y
        << "\" stroke=\"#dddddd\"/>\n";
    svg << "<text x=\"" << (kMarginLeft - 6) << "\" y=\"" << (y + 4)
        << "\" text-anchor=\"end\">" << fmt(y_value) << "</text>\n";

    const double x_value = x_min + x_span * frac;
    const double x = px(x_value);
    svg << "<text x=\"" << x << "\" y=\"" << (height_ - kMarginBottom + 18)
        << "\" text-anchor=\"middle\">" << fmt(x_value) << "</text>\n";
  }
  // Axes.
  svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << kMarginTop
      << "\" x2=\"" << kMarginLeft << "\" y2=\""
      << (height_ - kMarginBottom) << "\" stroke=\"black\"/>\n";
  svg << "<line x1=\"" << kMarginLeft << "\" y1=\""
      << (height_ - kMarginBottom) << "\" x2=\"" << (width_ - kMarginRight)
      << "\" y2=\"" << (height_ - kMarginBottom)
      << "\" stroke=\"black\"/>\n";
  svg << "<text x=\"" << (kMarginLeft + plot_w / 2) << "\" y=\""
      << (height_ - 10) << "\" text-anchor=\"middle\">" << xml_escape(x_label)
      << "</text>\n";
  svg << "<text x=\"14\" y=\"" << (kMarginTop + plot_h / 2)
      << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 "
      << (kMarginTop + plot_h / 2) << ")\">" << xml_escape(y_label)
      << "</text>\n";

  // Series: polyline + point markers.
  for (const SvgSeries& s : series) {
    svg << "<polyline fill=\"none\" stroke=\"" << s.color
        << "\" stroke-width=\"2\" points=\"";
    for (std::size_t k = 0; k < xs.size(); ++k) {
      if (k > 0) svg << ' ';
      svg << px(xs[k]) << ',' << py(s.ys[k]);
    }
    svg << "\"/>\n";
    for (std::size_t k = 0; k < xs.size(); ++k) {
      svg << "<circle cx=\"" << px(xs[k]) << "\" cy=\"" << py(s.ys[k])
          << "\" r=\"3\" fill=\"" << s.color << "\"/>\n";
    }
  }

  // Legend, top-right inside the plot.
  double legend_y = kMarginTop + 14;
  for (const SvgSeries& s : series) {
    const double x0 = width_ - kMarginRight - 150;
    svg << "<line x1=\"" << x0 << "\" y1=\"" << (legend_y - 4) << "\" x2=\""
        << (x0 + 22) << "\" y2=\"" << (legend_y - 4) << "\" stroke=\""
        << s.color << "\" stroke-width=\"2\"/>\n";
    svg << "<text x=\"" << (x0 + 28) << "\" y=\"" << legend_y << "\">"
        << xml_escape(s.name) << "</text>\n";
    legend_y += 18;
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace mcs::io
