// CSV emission for experiment series.
//
// Each bench binary can dump its series as RFC-4180 CSV (--csv <path>) so
// the figures can be re-plotted with any external tool. Fields containing
// separators, quotes, or newlines are quoted and inner quotes doubled.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mcs::io {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os);

  /// Writes one record; emits the header row on the first call if set.
  void set_header(std::vector<std::string> header);
  void write_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far (header excluded).
  [[nodiscard]] std::size_t rows_written() const { return rows_written_; }

 private:
  void write_record(const std::vector<std::string>& cells);

  std::ostream& os_;
  std::vector<std::string> header_;
  bool header_written_{false};
  std::size_t rows_written_{0};
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes a whole table (header + rows) to a file; throws IoError on
/// failure. Used by the bench binaries' --csv flag.
void write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace mcs::io
