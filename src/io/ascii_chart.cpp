#include "io/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace mcs::io {

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
  MCS_EXPECTS(width >= 10 && height >= 4, "chart area too small");
}

void AsciiChart::render(std::ostream& os, const std::vector<double>& xs,
                        const std::vector<ChartSeries>& series) const {
  MCS_EXPECTS(!xs.empty(), "chart needs at least one x value");
  MCS_EXPECTS(!series.empty(), "chart needs at least one series");
  for (std::size_t k = 1; k < xs.size(); ++k) {
    MCS_EXPECTS(xs[k] > xs[k - 1], "x values must be strictly increasing");
  }

  double y_min = series.front().ys.empty() ? 0.0 : series.front().ys.front();
  double y_max = y_min;
  for (const ChartSeries& s : series) {
    MCS_EXPECTS(s.ys.size() == xs.size(), "series size must match x values");
    for (const double y : s.ys) {
      MCS_EXPECTS(std::isfinite(y), "series values must be finite");
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (y_max == y_min) {
    // Flat data: open up a symmetric band so the line sits mid-chart.
    const double pad = y_max == 0.0 ? 1.0 : std::abs(y_max) * 0.1;
    y_min -= pad;
    y_max += pad;
  }

  const double x_min = xs.front();
  const double x_max = xs.back();
  const double x_span = x_max > x_min ? x_max - x_min : 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  const auto plot = [&](double x, double y, char marker) {
    const int col = static_cast<int>(std::lround(
        (x - x_min) / x_span * (width_ - 1)));
    const int row = static_cast<int>(std::lround(
        (y_max - y) / (y_max - y_min) * (height_ - 1)));
    char& cell = grid[static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(col)];
    cell = (cell == ' ' || cell == marker) ? marker : '#';
  };
  for (const ChartSeries& s : series) {
    for (std::size_t k = 0; k < xs.size(); ++k) {
      plot(xs[k], s.ys[k], s.marker);
    }
  }

  // Left axis labels on the top, middle, and bottom rows.
  const auto label_for_row = [&](int row) -> std::string {
    const double y =
        y_max - (y_max - y_min) * row / static_cast<double>(height_ - 1);
    std::ostringstream text;
    text << std::setw(10) << std::fixed << std::setprecision(2) << y;
    return text.str();
  };
  for (int row = 0; row < height_; ++row) {
    const bool labeled = row == 0 || row == height_ - 1 || row == height_ / 2;
    os << (labeled ? label_for_row(row) : std::string(10, ' ')) << " |"
       << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  {
    std::ostringstream x_axis;
    x_axis << std::setw(12) << std::left << "" << xs.front();
    std::string line = x_axis.str();
    std::ostringstream right;
    right << xs.back();
    const std::string right_text = right.str();
    const std::size_t total = 12 + static_cast<std::size_t>(width_);
    if (line.size() + right_text.size() < total) {
      line += std::string(total - line.size() - right_text.size(), ' ');
    }
    os << line << right_text << '\n';
  }
  os << std::string(12, ' ');
  for (std::size_t k = 0; k < series.size(); ++k) {
    if (k > 0) os << "   ";
    os << series[k].marker << " = " << series[k].name;
  }
  os << "   (# = overlap)\n";
}

std::string AsciiChart::to_string(const std::vector<double>& xs,
                                  const std::vector<ChartSeries>& series) const {
  std::ostringstream os;
  render(os, xs, series);
  return os.str();
}

}  // namespace mcs::io
