#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace mcs::io {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MCS_EXPECTS(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MCS_EXPECTS(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(double value, int precision) {
  cells_.push_back(format_double(value, precision));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TextTable::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace mcs::io
