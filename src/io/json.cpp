#include "io/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace mcs::io {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() {
  // Cannot throw from a destructor; an unbalanced writer is a bug that the
  // complete() accessor lets tests detect.
}

bool JsonWriter::complete() const { return any_output_ && stack_.empty(); }

void JsonWriter::before_value() {
  MCS_EXPECTS(stack_.empty() ? !any_output_
                             : stack_.back() != Frame::kObjectAwaitKey,
              "JSON value not allowed here (missing key or extra root?)");
  if (!stack_.empty() && stack_.back() == Frame::kArray) {
    if (!first_in_container_) os_ << ',';
  }
  if (!stack_.empty() && stack_.back() == Frame::kObjectAwaitValue) {
    stack_.back() = Frame::kObjectAwaitKey;
  }
  first_in_container_ = false;
  any_output_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObjectAwaitKey);
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MCS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObjectAwaitKey,
              "end_object without matching begin_object (or dangling key)");
  stack_.pop_back();
  os_ << '}';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MCS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray,
              "end_array without matching begin_array");
  stack_.pop_back();
  os_ << ']';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MCS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObjectAwaitKey,
              "JSON key outside an object");
  if (!first_in_container_) os_ << ',';
  os_ << '"' << json_escape(name) << "\":";
  stack_.back() = Frame::kObjectAwaitValue;
  first_in_container_ = true;  // suppress comma before the value
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  os_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view{text});
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (std::isfinite(number)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", number);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace mcs::io
