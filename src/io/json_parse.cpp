#include "io/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace mcs::io {

namespace {

class Parser {
 public:
  /// Containers deeper than this are rejected. The serve decoder feeds
  /// untrusted streams through parse_json, and the parser recurses per
  /// nesting level, so without a cap a hostile "[[[[..." document converts
  /// directly into stack exhaustion. 128 is far beyond anything the
  /// library's own writers emit (JSONL lines nest 3-4 deep).
  static constexpr int kMaxDepth = 128;

  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgumentError("JSON parse error at offset " +
                               std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  /// RAII nesting guard: parse_object/parse_array recurse through
  /// parse_value, so container depth equals guard nesting.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue parse_value() {
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // The writer only escapes control characters, so non-ASCII code
          // points are passed through UTF-8 encoded; decode the BMP anyway.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("number out of range '" + token + "'");
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw InvalidArgumentError("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw InvalidArgumentError("JSON value is not a number");
  }
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double n = as_number();
  // The int64-representable doubles live in [-2^63, 2^63); casting
  // anything outside that range is UB, not saturation. 9223372036854775807
  // in JSON text parses to the double 2^63 exactly, so it must be caught
  // here, before the cast.
  if (!(n >= -9223372036854775808.0 && n < 9223372036854775808.0)) {
    throw InvalidArgumentError("JSON number is out of int64 range");
  }
  const auto as_integer = static_cast<std::int64_t>(n);
  if (static_cast<double>(as_integer) != n) {
    throw InvalidArgumentError("JSON number is not integral");
  }
  return as_integer;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw InvalidArgumentError("JSON value is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    throw InvalidArgumentError("JSON value is not an array");
  }
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) {
    throw InvalidArgumentError("JSON value is not an object");
  }
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw InvalidArgumentError("missing JSON object member '" +
                               std::string(key) + "'");
  }
  return *value;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr ? value->as_string() : std::move(fallback);
}

std::int64_t JsonValue::int_or(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr ? value->as_int() : fallback;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace mcs::io
