#include "arena/policy.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "auction/counterfactual.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::arena {

namespace {

/// Parses "name(arg)" into its pieces; `arg` empty when there is none.
struct SpecParts {
  std::string_view head;
  std::string_view arg;
  bool has_arg{false};
};

SpecParts split_spec(std::string_view spec) {
  SpecParts parts;
  const std::size_t open = spec.find('(');
  if (open == std::string_view::npos) {
    parts.head = spec;
    return parts;
  }
  if (spec.back() != ')') {
    throw InvalidArgumentError("policy spec has '(' without trailing ')': " +
                               std::string(spec));
  }
  parts.head = spec.substr(0, open);
  parts.arg = spec.substr(open + 1, spec.size() - open - 2);
  parts.has_arg = true;
  return parts;
}

double parse_double_arg(std::string_view spec, std::string_view arg) {
  double value{};
  const auto* end = arg.data() + arg.size();
  const auto [ptr, ec] = std::from_chars(arg.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw InvalidArgumentError("policy spec has a malformed number: " +
                               std::string(spec));
  }
  return value;
}

Slot::rep_type parse_slot_arg(std::string_view spec, std::string_view arg) {
  Slot::rep_type value{};
  const auto* end = arg.data() + arg.size();
  const auto [ptr, ec] = std::from_chars(arg.data(), end, value);
  if (ec != std::errc{} || ptr != end || value < 0) {
    throw InvalidArgumentError(
        "policy spec needs a nonnegative integer slot count: " +
        std::string(spec));
  }
  return value;
}

}  // namespace

model::Bid BidderPolicy::respond(const auction::CounterfactualEngine& engine,
                                 PhoneId self) const {
  // Non-adaptive default: keep the pass-1 report.
  return engine.bids()[static_cast<std::size_t>(self.value())];
}

model::Bid TruthfulPolicy::report(const model::TrueProfile& profile,
                                  Rng& rng) const {
  return model::TruthfulStrategy{}.report(profile, rng);
}

CostShadePolicy::CostShadePolicy(double factor)
    : strategy_(factor), factor_(factor) {}

model::Bid CostShadePolicy::report(const model::TrueProfile& profile,
                                   Rng& rng) const {
  return strategy_.report(profile, rng);
}

std::string CostShadePolicy::name() const {
  std::ostringstream os;
  os << "shade(" << factor_ << ')';
  return os.str();
}

DelayArrivalPolicy::DelayArrivalPolicy(Slot::rep_type delay)
    : strategy_(delay), delay_(delay) {}

model::Bid DelayArrivalPolicy::report(const model::TrueProfile& profile,
                                      Rng& rng) const {
  return strategy_.report(profile, rng);
}

std::string DelayArrivalPolicy::name() const {
  std::ostringstream os;
  os << "delay(" << delay_ << ')';
  return os.str();
}

EarlyDeparturePolicy::EarlyDeparturePolicy(Slot::rep_type advance)
    : strategy_(advance), advance_(advance) {}

model::Bid EarlyDeparturePolicy::report(const model::TrueProfile& profile,
                                        Rng& rng) const {
  return strategy_.report(profile, rng);
}

std::string EarlyDeparturePolicy::name() const {
  std::ostringstream os;
  os << "early(" << advance_ << ')';
  return os.str();
}

model::Bid BestResponsePolicy::report(const model::TrueProfile& profile,
                                      Rng& rng) const {
  return model::TruthfulStrategy{}.report(profile, rng);
}

model::Bid BestResponsePolicy::respond(
    const auction::CounterfactualEngine& engine, PhoneId self) const {
  const model::Bid base = engine.bids()[static_cast<std::size_t>(self.value())];
  const auto probe = engine.critical_value_of(self);
  if (!probe.winnable || !probe.critical.has_value()) {
    // Unwinnable: no claim wins, stay truthful. Unbounded (scarcity): the
    // mechanism already pays the scarcity cap regardless of the claim
    // under greedy/VCG; under second-price there is no runner-up to
    // undercut -- raising the claim only risks the allocation. Hold.
    return base;
  }
  const Money critical = *probe.critical;
  if (critical <= base.claimed_cost) {
    // The win threshold is at (or below) the true cost: no profitable
    // upward shade exists.
    return base;
  }
  // Highest claim that still wins: one micro below the first losing claim.
  return model::Bid{base.window, Money::from_micros(critical.micros() - 1)};
}

std::unique_ptr<BidderPolicy> make_policy(std::string_view spec) {
  const SpecParts parts = split_spec(spec);
  const auto require_arg = [&](bool want) {
    if (parts.has_arg != want) {
      throw InvalidArgumentError(
          want ? "policy spec needs a parameter, e.g. shade(1.5): " +
                     std::string(spec)
               : "policy spec takes no parameter: " + std::string(spec));
    }
  };
  if (parts.head == "truthful") {
    require_arg(false);
    return std::make_unique<TruthfulPolicy>();
  }
  if (parts.head == "shade") {
    require_arg(true);
    const double factor = parse_double_arg(spec, parts.arg);
    if (!(factor >= 0.0) || !std::isfinite(factor)) {
      throw InvalidArgumentError("shade factor must be finite and >= 0: " +
                                 std::string(spec));
    }
    return std::make_unique<CostShadePolicy>(factor);
  }
  if (parts.head == "delay") {
    require_arg(true);
    return std::make_unique<DelayArrivalPolicy>(parse_slot_arg(spec, parts.arg));
  }
  if (parts.head == "early") {
    require_arg(true);
    return std::make_unique<EarlyDeparturePolicy>(
        parse_slot_arg(spec, parts.arg));
  }
  if (parts.head == "best-response") {
    require_arg(false);
    return std::make_unique<BestResponsePolicy>();
  }
  throw InvalidArgumentError(
      "unknown policy '" + std::string(spec) +
      "' (known: truthful, shade(F), delay(K), early(K), best-response)");
}

}  // namespace mcs::arena
