#include "arena/arena.hpp"

#include <atomic>
#include <charconv>
#include <cmath>
#include <optional>
#include <thread>

#include "auction/offline_vcg.hpp"
#include "auction/patience_greedy.hpp"
#include "auction/posted_price.hpp"
#include "auction/second_price.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::arena {

namespace {

/// "name(arg)" splitter mirroring policy parsing (kept local: mechanism
/// specs and policy specs are separate vocabularies).
struct MechSpec {
  std::string_view head;
  std::string_view arg;
  bool has_arg{false};
};

MechSpec split_mech(std::string_view spec) {
  MechSpec parts;
  const std::size_t open = spec.find('(');
  if (open == std::string_view::npos) {
    parts.head = spec;
    return parts;
  }
  if (spec.back() != ')') {
    throw InvalidArgumentError("mechanism spec has '(' without ')': " +
                               std::string(spec));
  }
  parts.head = spec.substr(0, open);
  parts.arg = spec.substr(open + 1, spec.size() - open - 2);
  parts.has_arg = true;
  return parts;
}

}  // namespace

std::unique_ptr<auction::Mechanism> make_arena_mechanism(
    std::string_view spec, const MatchConfig& match) {
  const MechSpec parts = split_mech(spec);
  const auto require_arg = [&](bool want) {
    if (parts.has_arg != want) {
      throw InvalidArgumentError(
          want ? "mechanism spec needs a parameter: " + std::string(spec)
               : "mechanism spec takes no parameter: " + std::string(spec));
    }
  };
  if (parts.head == "online") {
    require_arg(false);
    return std::make_unique<auction::OnlineGreedyMechanism>(match.greedy);
  }
  if (parts.head == "offline") {
    require_arg(false);
    return std::make_unique<auction::OfflineVcgMechanism>();
  }
  if (parts.head == "second-price") {
    require_arg(false);
    auction::SecondPriceConfig config;
    config.allocation = match.greedy;
    return std::make_unique<auction::SecondPriceBaseline>(config);
  }
  if (parts.head == "posted") {
    require_arg(true);
    double price{};
    const auto* end = parts.arg.data() + parts.arg.size();
    const auto [ptr, ec] = std::from_chars(parts.arg.data(), end, price);
    if (ec != std::errc{} || ptr != end || !(price >= 0.0) ||
        !std::isfinite(price)) {
      throw InvalidArgumentError("posted price must be a finite number >= 0: " +
                                 std::string(spec));
    }
    return std::make_unique<auction::PostedPriceMechanism>(
        Money::from_double(price));
  }
  if (parts.head == "patience") {
    require_arg(true);
    Slot::rep_type patience{};
    const auto* end = parts.arg.data() + parts.arg.size();
    const auto [ptr, ec] = std::from_chars(parts.arg.data(), end, patience);
    if (ec != std::errc{} || ptr != end || patience < 0) {
      throw InvalidArgumentError(
          "patience must be a nonnegative slot count: " + std::string(spec));
    }
    auction::PatienceConfig config;
    config.patience = patience;
    config.scarce_payment = match.greedy.scarce_payment;
    return std::make_unique<auction::PatienceGreedyMechanism>(config);
  }
  throw InvalidArgumentError(
      "unknown mechanism '" + std::string(spec) +
      "' (known: online, offline, second-price, posted(P), patience(K))");
}

ArenaResult run_arena(const ArenaConfig& config) {
  MCS_EXPECTS(config.rounds > 0, "arena needs at least one round");
  if (config.mechanisms.empty() || config.mixes.empty()) {
    throw InvalidArgumentError("arena needs >= 1 mechanism and >= 1 mix");
  }
  config.match.workload.validate();
  const obs::TraceSpan span("arena.run");

  // Build the grid up front so spec errors surface before any work.
  std::vector<std::unique_ptr<auction::Mechanism>> mechanisms;
  mechanisms.reserve(config.mechanisms.size());
  for (const std::string& spec : config.mechanisms) {
    mechanisms.push_back(make_arena_mechanism(spec, config.match));
  }
  std::vector<PolicyMix> mixes;
  mixes.reserve(config.mixes.size());
  for (const std::string& spec : config.mixes) {
    mixes.push_back(PolicyMix::parse(spec));
  }

  const std::size_t cells = mechanisms.size() * mixes.size();
  const auto rounds = static_cast<std::size_t>(config.rounds);

  // Work layout: item 0..rounds-1 is the shared VCG reference; item
  // rounds + c*rounds + r is (cell c, round r). Results land in
  // preallocated per-round slots, so claim order cannot affect the fold.
  std::vector<std::int64_t> vcg_micros(rounds, 0);
  std::vector<std::vector<RoundCellStats>> cell_rounds(cells);
  for (auto& per_round : cell_rounds) per_round.resize(rounds);

  int threads = config.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  const std::size_t total_items = rounds * (cells + 1);
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), total_items));

  const auto run_item = [&](std::size_t item) {
    if (item < rounds) {
      vcg_micros[item] =
          vcg_reference_micros(config.match, static_cast<std::int64_t>(item));
      return;
    }
    const std::size_t flat = item - rounds;
    const std::size_t cell = flat / rounds;
    const std::size_t round = flat % rounds;
    const std::size_t mech = cell / mixes.size();
    const std::size_t mix = cell % mixes.size();
    cell_rounds[cell][round] =
        evaluate_round(config.match, *mechanisms[mech], mixes[mix],
                       static_cast<std::int64_t>(round));
  };

  if (threads == 1) {
    for (std::size_t item = 0; item < total_items; ++item) run_item(item);
  } else {
    // Worker-local registries, merged in worker order after the join --
    // counter merges are sums, so totals match a serial run exactly.
    obs::MetricsRegistry* const parent_registry = obs::current_registry();
    std::vector<obs::MetricsRegistry> worker_metrics(
        static_cast<std::size_t>(threads));
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        std::optional<obs::ScopedRegistry> telemetry;
        if (parent_registry != nullptr) {
          telemetry.emplace(&worker_metrics[static_cast<std::size_t>(w)]);
        }
        while (true) {
          const std::size_t item = next.fetch_add(1);
          if (item >= total_items) break;
          run_item(item);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    if (parent_registry != nullptr) {
      for (const obs::MetricsRegistry& partial : worker_metrics) {
        parent_registry->merge(partial);
      }
    }
  }

  ArenaResult result;
  result.seed = config.match.seed;
  result.rounds = config.rounds;
  result.probes_per_policy = config.match.probes_per_policy;
  result.workload = config.match.workload;
  std::int64_t vcg_total = 0;
  for (const std::int64_t micros : vcg_micros) vcg_total += micros;
  result.vcg_reference_payment = Money::from_micros(vcg_total);
  result.cells.reserve(cells);
  for (std::size_t mech = 0; mech < mechanisms.size(); ++mech) {
    for (std::size_t mix = 0; mix < mixes.size(); ++mix) {
      const std::size_t cell = mech * mixes.size() + mix;
      result.cells.push_back(fold_cell(mechanisms[mech]->name(), mixes[mix],
                                       cell_rounds[cell], vcg_total));
    }
  }
  return result;
}

}  // namespace mcs::arena
