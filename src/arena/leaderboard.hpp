// Arena leaderboard rendering: mcs.arena.v1 JSON + markdown.
//
// Both renderings are a pure function of an ArenaResult, which is itself
// byte-deterministic across runs and thread counts -- so regenerating a
// leaderboard and diffing it against a committed one is a meaningful CI
// gate. The markdown follows the econ-report leaderboard's shape (ranked
// table sorted by social welfare descending, ties by name; ratios in the
// shared %.4f format) and appends a per-policy detail table carrying the
// incentive-to-deviate columns the truthfulness invariants read.
#pragma once

#include <iosfwd>

#include "arena/arena.hpp"

namespace mcs::arena {

/// Versioned machine-readable leaderboard (single JSON object, one
/// trailing newline). Money travels as exact decimal strings.
void write_arena_json(std::ostream& os, const ArenaResult& result);

/// Human-readable markdown leaderboard + per-policy detail.
void render_arena_markdown(std::ostream& os, const ArenaResult& result);

}  // namespace mcs::arena
