#include "arena/population.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::arena {

namespace {

double parse_weight(std::string_view spec, std::string_view text) {
  double weight{};
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, weight);
  if (ec != std::errc{} || ptr != end || !(weight > 0.0) ||
      !std::isfinite(weight)) {
    throw InvalidArgumentError("policy weight must be a finite number > 0: " +
                               std::string(spec));
  }
  return weight;
}

/// Splits on `sep` at depth 0 (commas inside "shade(1,5)"-style parens are
/// kept -- parameters never contain commas today, but the guard keeps the
/// grammar extensible).
std::vector<std::string_view> split_top_level(std::string_view text,
                                              char sep) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') --depth;
    if (text[i] == sep && depth == 0) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(text.substr(start));
  return out;
}

/// 53-bit uniform in [0, 1) from a pure hash chain of the identifiers.
double assignment_draw(std::uint64_t assignment_seed, std::int64_t round,
                       PhoneId phone) {
  SplitMix64 hash(assignment_seed);
  SplitMix64 mixed(hash.next() ^
                   SplitMix64(static_cast<std::uint64_t>(round)).next());
  constexpr std::uint64_t kPhoneSalt = 0x51;
  SplitMix64 final_hash(
      mixed.next() ^
      SplitMix64(static_cast<std::uint64_t>(phone.value()) + kPhoneSalt)
          .next());
  return static_cast<double>(final_hash.next() >> 11) * 0x1.0p-53;
}

}  // namespace

PolicyMix::PolicyMix(std::string name, std::vector<Entry> entries)
    : name_(std::move(name)), entries_(std::move(entries)) {
  MCS_EXPECTS(!entries_.empty(), "a policy mix needs at least one entry");
  double total = 0.0;
  for (const Entry& entry : entries_) {
    MCS_EXPECTS(entry.policy != nullptr, "policy mix entry without a policy");
    MCS_EXPECTS(entry.weight > 0.0 && std::isfinite(entry.weight),
                "policy mix weights must be finite and > 0");
    total += entry.weight;
  }
  cumulative_.reserve(entries_.size());
  double acc = 0.0;
  for (const Entry& entry : entries_) {
    acc += entry.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against accumulated rounding
}

PolicyMix PolicyMix::parse(std::string_view spec) {
  std::string_view body = spec;
  std::string name(spec);
  // An '=' at depth 0 separates the display name from the entry list. Look
  // only before the first '(' so "shade(1.5)" alone never misparses.
  const std::size_t eq = spec.find('=');
  if (eq != std::string_view::npos && eq < spec.find('(')) {
    name = std::string(spec.substr(0, eq));
    body = spec.substr(eq + 1);
  }
  if (name.empty() || body.empty()) {
    throw InvalidArgumentError("empty policy mix spec: " + std::string(spec));
  }
  std::vector<Entry> entries;
  for (const std::string_view part : split_top_level(body, ',')) {
    if (part.empty()) {
      throw InvalidArgumentError("empty entry in policy mix: " +
                                 std::string(spec));
    }
    // The weight is the suffix after the last depth-0 ':'.
    std::string_view policy_spec = part;
    double weight = 1.0;
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    for (std::size_t i = 0; i < part.size(); ++i) {
      if (part[i] == '(') ++depth;
      if (part[i] == ')') --depth;
      if (part[i] == ':' && depth == 0) colon = i;
    }
    if (colon != std::string_view::npos) {
      policy_spec = part.substr(0, colon);
      weight = parse_weight(spec, part.substr(colon + 1));
    }
    entries.push_back(Entry{make_policy(policy_spec), weight});
  }
  return PolicyMix(std::move(name), std::move(entries));
}

bool PolicyMix::has_adaptive() const {
  for (const Entry& entry : entries_) {
    if (entry.policy->adaptive()) return true;
  }
  return false;
}

std::size_t PolicyMix::assign(std::uint64_t assignment_seed,
                              std::int64_t round, PhoneId phone) const {
  const double draw = assignment_draw(assignment_seed, round, phone);
  for (std::size_t i = 0; i + 1 < cumulative_.size(); ++i) {
    if (draw < cumulative_[i]) return i;
  }
  return entries_.size() - 1;
}

std::string PolicyMix::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << ',';
    os << entries_[i].policy->name() << ':' << entries_[i].weight;
  }
  return os.str();
}

}  // namespace mcs::arena
