// Policy mixes and deterministic population assignment.
//
// A PolicyMix is a weighted catalog of bidder policies ("75% truthful, 25%
// shade(1.5)"). Each arena round draws a fresh scenario, and every phone in
// it is assigned one policy of the mix by a pure hash of
// (assignment seed, round, phone): the same phone of the same round gets
// the same policy in every cell of the leaderboard, whichever mechanism is
// being attacked and however many worker threads run the cells. That
// phone-level alignment is what makes cross-mechanism comparisons of the
// same mix an apples-to-apples read.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arena/policy.hpp"

namespace mcs::arena {

/// A named, weighted population of bidder policies.
class PolicyMix {
 public:
  struct Entry {
    std::unique_ptr<BidderPolicy> policy;
    double weight{1.0};
  };

  PolicyMix(std::string name, std::vector<Entry> entries);

  /// Parses "name=policy:weight,policy:weight,..." (weights optional,
  /// default 1; name optional -- defaults to the spec itself). Examples:
  ///   "truthful"
  ///   "shaded=truthful:3,shade(1.5):1"
  ///   "fig5=truthful:1,delay(2):1"
  /// Throws InvalidArgumentError on unknown policies or bad weights.
  [[nodiscard]] static PolicyMix parse(std::string_view spec);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// True when any entry's policy is adaptive (needs the respond pass).
  [[nodiscard]] bool has_adaptive() const;

  /// Index of the policy governing `phone` in `round`: a pure function of
  /// the arguments -- no generator state -- so assignment is identical
  /// across mechanisms, threads, and runs. Weights are respected in
  /// proportion (cumulative split of a 53-bit uniform draw).
  [[nodiscard]] std::size_t assign(std::uint64_t assignment_seed,
                                   std::int64_t round, PhoneId phone) const;

  /// Canonical "policy:weight,..." rendering (stable across runs; used in
  /// leaderboard JSON so a report names the mix it measured).
  [[nodiscard]] std::string describe() const;

 private:
  std::string name_;
  std::vector<Entry> entries_;
  std::vector<double> cumulative_;  ///< normalized cumulative weights
};

}  // namespace mcs::arena
