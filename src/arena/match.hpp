// Per-cell round evaluation: one (mechanism x policy mix) match.
//
// A cell of the arena leaderboard is one mechanism defending against one
// policy mix over many seeded rounds. Each round draws the shared
// model::round_scenario stream, assigns policies by the mix's pure hash,
// collects pass-1 reports (plus the adaptive respond pass when the mix
// needs one), runs the mechanism, and measures:
//
//  * platform economics -- welfare, payment, true cost, coverage, Jain
//    fairness -- through the same analysis::compute_metrics the offline
//    audits use;
//  * per-policy agent economics -- mean utility, win counts;
//  * incentive-to-deviate -- for sampled agents, the utility of the bid
//    their policy submitted minus the utility of the truthful bid, with
//    every other bid frozen at the cell's final profile. For strategic
//    agents that is the *realized* gain versus their truthful twin (same
//    seed, one extra mechanism run); for truthful agents it is the
//    *prospective* best gain over a canonical deviation set
//    (shade(1.5), delay(2)), so a truthful mechanism must keep it <= 0
//    within the one-micro critical-value granularity while the
//    second-price baseline shows Fig. 5-style positive gains.
//
// All per-round quantities are exact (int64 micros); doubles appear only
// in derived per-round ratios folded in fixed round order, so cell
// summaries are bit-identical however rounds are scheduled across threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arena/population.hpp"
#include "auction/mechanism.hpp"
#include "auction/online_greedy.hpp"
#include "model/workload.hpp"

namespace mcs::arena {

/// Shared knobs of one arena run (everything but the mechanism/mix grid).
struct MatchConfig {
  model::WorkloadConfig workload;
  std::uint64_t seed{42};
  /// Deviation probes per (round, policy): agents sampled by pure hash.
  /// 0 disables the incentive-to-deviate column.
  std::int64_t probes_per_policy{4};
  /// Greedy configuration the best-responder's critical-value probes use
  /// (and the online-greedy cell, when the caller builds it to match).
  auction::OnlineGreedyConfig greedy;
};

/// Exact per-policy tallies of one round.
struct PolicyRoundStats {
  std::int64_t agents{0};
  std::int64_t winners{0};
  std::int64_t utility_micros{0};   ///< sum of payment - true cost
  std::int64_t probes{0};
  std::int64_t gain_micros{0};      ///< sum of deviation deltas
  std::int64_t max_gain_micros{0};  ///< max delta; 0 when probes == 0
};

/// Exact tallies of one (cell, round) evaluation.
struct RoundCellStats {
  std::int64_t welfare_micros{0};
  std::int64_t payment_micros{0};
  std::int64_t true_cost_micros{0};
  std::int64_t tasks_total{0};
  std::int64_t tasks_allocated{0};
  double fairness{1.0};  ///< per-round Jain index over winners' payments
  std::vector<PolicyRoundStats> policies;  ///< parallel to mix.entries()
};

/// Leaderboard row: one cell folded over all rounds.
struct CellResult {
  std::string mechanism;
  std::string mix;
  std::string mix_detail;  ///< PolicyMix::describe()
  std::int64_t rounds{0};
  Money social_welfare;
  Money total_payment;
  Money total_true_cost;
  Money vcg_payment;  ///< offline-VCG-on-truthful reference, same rounds
  double overpayment_ratio{0.0};  ///< sigma over summed totals
  double payment_vs_vcg{0.0};     ///< total_payment / vcg_payment; 0 if no ref
  std::int64_t tasks_total{0};
  std::int64_t tasks_allocated{0};
  double coverage{1.0};
  double mean_fairness{1.0};  ///< mean of per-round Jain indexes

  struct PolicySummary {
    std::string policy;
    double weight{1.0};
    std::int64_t agents{0};
    std::int64_t winners{0};
    Money utility;             ///< exact summed utility
    double mean_utility{0.0};  ///< utility / agents (money units)
    std::int64_t probes{0};
    double mean_deviation_gain{0.0};  ///< gain sum / probes (money units)
    Money max_deviation_gain;         ///< largest single-agent delta
  };
  std::vector<PolicySummary> policies;
};

/// Builds the final bid profile of one round under `mix`: hash assignment,
/// pass-1 reports in phone order from a per-round forked stream, then the
/// respond pass for adaptive entries. `assignment_out` (optional) receives
/// each phone's policy index.
[[nodiscard]] model::BidProfile build_round_bids(
    const MatchConfig& config, const PolicyMix& mix,
    const model::Scenario& scenario, std::int64_t round,
    std::vector<std::size_t>* assignment_out = nullptr);

/// Evaluates one (mechanism, mix, round) cell-round. Pure given its
/// arguments; safe to call concurrently from worker threads.
[[nodiscard]] RoundCellStats evaluate_round(const MatchConfig& config,
                                            const auction::Mechanism& mechanism,
                                            const PolicyMix& mix,
                                            std::int64_t round);

/// Offline-VCG total payment on the round's *truthful* bids -- the
/// clairvoyant reference every cell's payment_vs_vcg is measured against.
[[nodiscard]] std::int64_t vcg_reference_micros(const MatchConfig& config,
                                                std::int64_t round);

/// Folds per-round stats (must be in round order: double accumulation
/// order is part of the determinism contract) into one leaderboard row.
[[nodiscard]] CellResult fold_cell(const std::string& mechanism_name,
                                   const PolicyMix& mix,
                                   const std::vector<RoundCellStats>& rounds,
                                   std::int64_t vcg_total_micros);

}  // namespace mcs::arena
