#include "arena/match.hpp"

#include <algorithm>
#include <limits>

#include "analysis/metrics.hpp"
#include "auction/offline_vcg.hpp"
#include "common/assert.hpp"
#include "obs/econ_metrics.hpp"
#include "obs/metrics.hpp"

namespace mcs::arena {

namespace {

// Salts keep the three deterministic streams of one arena seed -- policy
// assignment, pass-1 report randomness, probe sampling -- independent: a
// change in how one stream is consumed can never shift another.
constexpr std::uint64_t kAssignSalt = 0x61726E61'61736731ULL;  // "arna asg1"
constexpr std::uint64_t kReportSalt = 0x61726E61'72707431ULL;  // "arna rpt1"
constexpr std::uint64_t kProbeSalt = 0x61726E61'70726231ULL;   // "arna prb1"

std::uint64_t assignment_seed(std::uint64_t seed) {
  return SplitMix64(seed ^ kAssignSalt).next();
}

/// Pure sampling hash: the `probes_per_policy` phones with the smallest
/// hash per (round, policy) are the deviation probes.
std::uint64_t probe_hash(std::uint64_t seed, std::int64_t round,
                         PhoneId phone) {
  SplitMix64 outer(seed ^ kProbeSalt);
  SplitMix64 mixed(outer.next() ^
                   SplitMix64(static_cast<std::uint64_t>(round)).next());
  return SplitMix64(mixed.next() +
                    static_cast<std::uint64_t>(phone.value()))
      .next();
}

std::int64_t utility_micros(const model::Scenario& scenario,
                            const auction::Outcome& outcome, PhoneId phone) {
  return outcome.utility(scenario, phone).micros();
}

/// The canonical deviation set truthful probe agents try: the cost shade
/// and the Fig. 5 arrival delay, the arena's two headline attacks.
const std::vector<const BidderPolicy*>& canonical_deviations() {
  static const CostShadePolicy shade(1.5);
  static const DelayArrivalPolicy delay(2);
  static const std::vector<const BidderPolicy*> all = {&shade, &delay};
  return all;
}

}  // namespace

model::BidProfile build_round_bids(const MatchConfig& config,
                                   const PolicyMix& mix,
                                   const model::Scenario& scenario,
                                   std::int64_t round,
                                   std::vector<std::size_t>* assignment_out) {
  const std::uint64_t assign_seed = assignment_seed(config.seed);
  const std::size_t phones = scenario.phones.size();
  std::vector<std::size_t> assignment(phones);
  for (std::size_t i = 0; i < phones; ++i) {
    assignment[i] = mix.assign(assign_seed, round,
                               PhoneId{static_cast<PhoneId::rep_type>(i)});
  }

  // Pass 1: base reports, phone order, one per-round forked stream -- the
  // sequential draw order is part of the determinism contract.
  Rng report_rng =
      Rng(config.seed ^ kReportSalt).fork(static_cast<std::uint64_t>(round));
  model::BidProfile bids;
  bids.reserve(phones);
  for (std::size_t i = 0; i < phones; ++i) {
    const BidderPolicy& policy = *mix.entries()[assignment[i]].policy;
    const model::TrueProfile& profile = scenario.phones[i];
    model::Bid bid = policy.report(profile, report_rng);
    MCS_ENSURES(model::is_legal_report(profile, bid),
                "arena policy produced an illegal report: " + policy.name());
    bids.push_back(bid);
  }

  // Pass 2: adaptive responses against the frozen pass-1 profile, all
  // sharing one engine (one factual pass per round, not per responder).
  if (mix.has_adaptive()) {
    bool any_adaptive = false;
    for (std::size_t i = 0; i < phones; ++i) {
      if (mix.entries()[assignment[i]].policy->adaptive()) {
        any_adaptive = true;
        break;
      }
    }
    if (any_adaptive) {
      const auction::CounterfactualEngine engine(scenario, bids,
                                                 config.greedy);
      model::BidProfile refined = bids;
      for (std::size_t i = 0; i < phones; ++i) {
        const BidderPolicy& policy = *mix.entries()[assignment[i]].policy;
        if (!policy.adaptive()) continue;
        const PhoneId self{static_cast<PhoneId::rep_type>(i)};
        model::Bid bid = policy.respond(engine, self);
        MCS_ENSURES(model::is_legal_report(scenario.phones[i], bid),
                    "arena respond pass produced an illegal report: " +
                        policy.name());
        refined[i] = bid;
      }
      bids = std::move(refined);
    }
  }

  if (assignment_out != nullptr) *assignment_out = std::move(assignment);
  return bids;
}

RoundCellStats evaluate_round(const MatchConfig& config,
                              const auction::Mechanism& mechanism,
                              const PolicyMix& mix, std::int64_t round) {
  obs::count("arena.rounds");
  const model::Scenario scenario =
      model::round_scenario(config.workload, config.seed, round);
  std::vector<std::size_t> assignment;
  const model::BidProfile bids =
      build_round_bids(config, mix, scenario, round, &assignment);
  const auction::Outcome outcome = mechanism.run(scenario, bids);
  const analysis::RoundMetrics metrics =
      analysis::compute_metrics(scenario, bids, outcome);

  RoundCellStats stats;
  stats.welfare_micros = metrics.social_welfare.micros();
  stats.payment_micros = metrics.total_payment.micros();
  stats.true_cost_micros = metrics.total_true_cost.micros();
  stats.tasks_total = metrics.tasks_total;
  stats.tasks_allocated = metrics.tasks_allocated;
  stats.fairness = metrics.payment_fairness;
  stats.policies.resize(mix.size());

  for (std::size_t i = 0; i < scenario.phones.size(); ++i) {
    const PhoneId phone{static_cast<PhoneId::rep_type>(i)};
    PolicyRoundStats& policy_stats = stats.policies[assignment[i]];
    ++policy_stats.agents;
    if (outcome.allocation.is_winner(phone)) ++policy_stats.winners;
    policy_stats.utility_micros += utility_micros(scenario, outcome, phone);
  }

  if (config.probes_per_policy <= 0) return stats;

  // Deviation probes: per policy, the probes_per_policy assigned phones
  // with the smallest sampling hash (ties by phone id).
  for (std::size_t p = 0; p < mix.size(); ++p) {
    std::vector<std::pair<std::uint64_t, std::size_t>> candidates;
    for (std::size_t i = 0; i < scenario.phones.size(); ++i) {
      if (assignment[i] != p) continue;
      candidates.emplace_back(
          probe_hash(config.seed, round,
                     PhoneId{static_cast<PhoneId::rep_type>(i)}),
          i);
    }
    std::sort(candidates.begin(), candidates.end());
    const std::size_t take =
        std::min(candidates.size(),
                 static_cast<std::size_t>(config.probes_per_policy));

    PolicyRoundStats& policy_stats = stats.policies[p];
    std::int64_t max_gain = std::numeric_limits<std::int64_t>::min();
    for (std::size_t k = 0; k < take; ++k) {
      const std::size_t i = candidates[k].second;
      const PhoneId phone{static_cast<PhoneId::rep_type>(i)};
      const model::Bid truth = model::truthful_bid(scenario.phones[i]);
      const std::int64_t actual = utility_micros(scenario, outcome, phone);
      std::int64_t delta = 0;
      bool probed = false;
      if (bids[i] == truth) {
        // Told the truth (by policy or by clamped no-op deviation):
        // prospective probe -- would any canonical deviation have paid?
        delta = std::numeric_limits<std::int64_t>::min();
        Rng unused(0);
        for (const BidderPolicy* deviation : canonical_deviations()) {
          const model::Bid deviated =
              deviation->report(scenario.phones[i], unused);
          if (deviated == truth) continue;  // clamped no-op
          const auction::Outcome alt = mechanism.run(
              scenario, model::with_bid(bids, phone, deviated));
          obs::count("arena.deviation_runs");
          delta = std::max(delta,
                           utility_micros(scenario, alt, phone) - actual);
          probed = true;
        }
      } else {
        // Deviated by policy: realized gain versus the truthful twin.
        const auction::Outcome twin =
            mechanism.run(scenario, model::with_bid(bids, phone, truth));
        obs::count("arena.deviation_runs");
        delta = actual - utility_micros(scenario, twin, phone);
        probed = true;
      }
      if (!probed) continue;
      ++policy_stats.probes;
      policy_stats.gain_micros += delta;
      max_gain = std::max(max_gain, delta);
    }
    if (policy_stats.probes > 0) policy_stats.max_gain_micros = max_gain;
  }
  return stats;
}

std::int64_t vcg_reference_micros(const MatchConfig& config,
                                  std::int64_t round) {
  const model::Scenario scenario =
      model::round_scenario(config.workload, config.seed, round);
  const auction::OfflineVcgMechanism vcg;
  const auction::Outcome outcome = vcg.run_truthful(scenario);
  obs::count("arena.vcg_reference_rounds");
  return outcome.total_payment().micros();
}

CellResult fold_cell(const std::string& mechanism_name, const PolicyMix& mix,
                     const std::vector<RoundCellStats>& rounds,
                     std::int64_t vcg_total_micros) {
  CellResult cell;
  cell.mechanism = mechanism_name;
  cell.mix = mix.name();
  cell.mix_detail = mix.describe();
  cell.rounds = static_cast<std::int64_t>(rounds.size());
  cell.vcg_payment = Money::from_micros(vcg_total_micros);
  cell.policies.resize(mix.size());
  for (std::size_t p = 0; p < mix.size(); ++p) {
    cell.policies[p].policy = mix.entries()[p].policy->name();
    cell.policies[p].weight = mix.entries()[p].weight;
  }

  std::int64_t welfare = 0;
  std::int64_t payment = 0;
  std::int64_t true_cost = 0;
  double fairness_sum = 0.0;
  std::vector<std::int64_t> max_gain(mix.size(),
                                     std::numeric_limits<std::int64_t>::min());
  for (const RoundCellStats& round : rounds) {
    MCS_ASSERT(round.policies.size() == mix.size(),
               "fold_cell: round stats shape mismatch");
    welfare += round.welfare_micros;
    payment += round.payment_micros;
    true_cost += round.true_cost_micros;
    cell.tasks_total += round.tasks_total;
    cell.tasks_allocated += round.tasks_allocated;
    fairness_sum += round.fairness;
    for (std::size_t p = 0; p < mix.size(); ++p) {
      CellResult::PolicySummary& summary = cell.policies[p];
      const PolicyRoundStats& stats = round.policies[p];
      summary.agents += stats.agents;
      summary.winners += stats.winners;
      summary.utility =
          Money::from_micros(summary.utility.micros() + stats.utility_micros);
      summary.probes += stats.probes;
      if (stats.probes > 0) {
        max_gain[p] = std::max(max_gain[p], stats.max_gain_micros);
      }
    }
  }
  cell.social_welfare = Money::from_micros(welfare);
  cell.total_payment = Money::from_micros(payment);
  cell.total_true_cost = Money::from_micros(true_cost);
  cell.overpayment_ratio =
      obs::overpayment_ratio(cell.total_payment, cell.total_true_cost);
  cell.payment_vs_vcg = vcg_total_micros > 0
                            ? cell.total_payment.ratio_to(cell.vcg_payment)
                            : 0.0;
  cell.coverage = obs::coverage_rate(cell.tasks_allocated, cell.tasks_total);
  cell.mean_fairness =
      rounds.empty() ? 1.0 : fairness_sum / static_cast<double>(rounds.size());

  // Per-policy derived ratios: gather exact gain sums first.
  std::vector<std::int64_t> gain_sum(mix.size(), 0);
  for (const RoundCellStats& round : rounds) {
    for (std::size_t p = 0; p < mix.size(); ++p) {
      gain_sum[p] += round.policies[p].gain_micros;
    }
  }
  for (std::size_t p = 0; p < mix.size(); ++p) {
    CellResult::PolicySummary& summary = cell.policies[p];
    if (summary.agents > 0) {
      summary.mean_utility = static_cast<double>(summary.utility.micros()) /
                             static_cast<double>(summary.agents) / 1e6;
    }
    if (summary.probes > 0) {
      summary.mean_deviation_gain = static_cast<double>(gain_sum[p]) /
                                    static_cast<double>(summary.probes) / 1e6;
      summary.max_deviation_gain = Money::from_micros(max_gain[p]);
    }
  }
  return cell;
}

}  // namespace mcs::arena
