#include "arena/leaderboard.hpp"

#include <algorithm>
#include <ostream>

#include "analysis/report_format.hpp"
#include "io/json.hpp"

namespace mcs::arena {

namespace {

using analysis::format_ratio;

void write_policy(io::JsonWriter& json,
                  const CellResult::PolicySummary& policy) {
  json.begin_object()
      .field("policy", policy.policy)
      .field("weight", policy.weight)
      .field("agents", policy.agents)
      .field("winners", policy.winners)
      .field("utility", policy.utility.to_string())
      .field("mean_utility", policy.mean_utility)
      .field("probes", policy.probes)
      .field("mean_deviation_gain", policy.mean_deviation_gain)
      .field("max_deviation_gain", policy.max_deviation_gain.to_string())
      .end_object();
}

void write_cell(io::JsonWriter& json, const CellResult& cell) {
  json.begin_object()
      .field("mechanism", cell.mechanism)
      .field("mix", cell.mix)
      .field("mix_detail", cell.mix_detail)
      .field("rounds", cell.rounds)
      .field("social_welfare", cell.social_welfare.to_string())
      .field("total_payment", cell.total_payment.to_string())
      .field("total_true_cost", cell.total_true_cost.to_string())
      .field("vcg_payment", cell.vcg_payment.to_string())
      .field("overpayment_ratio", cell.overpayment_ratio)
      .field("payment_vs_vcg", cell.payment_vs_vcg)
      .field("tasks_total", cell.tasks_total)
      .field("tasks_allocated", cell.tasks_allocated)
      .field("coverage", cell.coverage)
      .field("mean_fairness", cell.mean_fairness)
      .key("policies")
      .begin_array();
  for (const CellResult::PolicySummary& policy : cell.policies) {
    write_policy(json, policy);
  }
  json.end_array().end_object();
}

/// Leaderboard order: welfare descending, ties by mechanism then mix name
/// (matching render_econ_leaderboard's discipline).
std::vector<const CellResult*> ranked(const ArenaResult& result) {
  std::vector<const CellResult*> cells;
  cells.reserve(result.cells.size());
  for (const CellResult& cell : result.cells) cells.push_back(&cell);
  std::sort(cells.begin(), cells.end(),
            [](const CellResult* a, const CellResult* b) {
              if (a->social_welfare != b->social_welfare) {
                return a->social_welfare > b->social_welfare;
              }
              if (a->mechanism != b->mechanism) {
                return a->mechanism < b->mechanism;
              }
              return a->mix < b->mix;
            });
  return cells;
}

}  // namespace

void write_arena_json(std::ostream& os, const ArenaResult& result) {
  io::JsonWriter json(os);
  json.begin_object()
      .field("schema", "mcs.arena.v1")
      .field("seed", static_cast<std::int64_t>(result.seed))
      .field("rounds", result.rounds)
      .field("probes_per_policy", result.probes_per_policy)
      .key("workload")
      .begin_object()
      .field("num_slots", static_cast<std::int64_t>(result.workload.num_slots))
      .field("phone_arrival_rate", result.workload.phone_arrival_rate)
      .field("task_arrival_rate", result.workload.task_arrival_rate)
      .field("mean_cost", result.workload.mean_cost)
      .field("mean_active_length", result.workload.mean_active_length)
      .field("task_value", result.workload.task_value.to_string())
      .field("cost_distribution",
             model::to_string(result.workload.cost_distribution))
      .end_object()
      .field("vcg_reference_payment", result.vcg_reference_payment.to_string())
      .key("cells")
      .begin_array();
  for (const CellResult& cell : result.cells) write_cell(json, cell);
  json.end_array().end_object();
  os << '\n';
}

void render_arena_markdown(std::ostream& os, const ArenaResult& result) {
  os << "# arena leaderboard\n\n"
     << "- seed: " << result.seed << ", rounds: " << result.rounds
     << ", deviation probes per (round, policy): "
     << result.probes_per_policy << "\n"
     << "- workload: " << result.workload.num_slots << " slots, lambda "
     << format_ratio(result.workload.phone_arrival_rate) << ", lambda_t "
     << format_ratio(result.workload.task_arrival_rate) << ", mean cost "
     << format_ratio(result.workload.mean_cost) << ", value "
     << result.workload.task_value.to_string() << "\n"
     << "- offline VCG reference payment (truthful bids): "
     << result.vcg_reference_payment.to_string() << "\n\n"
     << "| rank | mechanism | mix | welfare | payment | vs VCG | sigma "
        "| coverage | fairness | max dev gain |\n"
     << "|---:|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  int rank = 0;
  const std::vector<const CellResult*> cells = ranked(result);
  for (const CellResult* cell : cells) {
    Money max_gain;
    bool any_probe = false;
    for (const CellResult::PolicySummary& policy : cell->policies) {
      if (policy.probes == 0) continue;
      max_gain = any_probe ? std::max(max_gain, policy.max_deviation_gain)
                           : policy.max_deviation_gain;
      any_probe = true;
    }
    os << "| " << ++rank << " | " << cell->mechanism << " | " << cell->mix
       << " | " << cell->social_welfare.to_string() << " | "
       << cell->total_payment.to_string() << " | "
       << format_ratio(cell->payment_vs_vcg) << " | "
       << format_ratio(cell->overpayment_ratio) << " | "
       << format_ratio(cell->coverage) << " | "
       << format_ratio(cell->mean_fairness) << " | "
       << (any_probe ? max_gain.to_string() : std::string("n/a")) << " |\n";
  }

  os << "\n## per-policy detail\n\n"
     << "| mechanism | mix | policy | weight | agents | winners "
        "| mean utility | probes | mean dev gain | max dev gain |\n"
     << "|---|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const CellResult* cell : cells) {
    for (const CellResult::PolicySummary& policy : cell->policies) {
      os << "| " << cell->mechanism << " | " << cell->mix << " | "
         << policy.policy << " | " << format_ratio(policy.weight) << " | "
         << policy.agents << " | " << policy.winners << " | "
         << format_ratio(policy.mean_utility) << " | " << policy.probes
         << " | ";
      if (policy.probes > 0) {
        os << format_ratio(policy.mean_deviation_gain) << " | "
           << policy.max_deviation_gain.to_string();
      } else {
        os << "n/a | n/a";
      }
      os << " |\n";
    }
  }
}

}  // namespace mcs::arena
