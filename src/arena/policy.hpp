// Strategic bidder policies for the arena (the attacker catalog).
//
// A BidderPolicy turns one phone's private profile into the bid it submits
// in an arena round. The non-adaptive policies wrap model::ReportStrategy
// implementations (truthful, cost-shading by a factor, the Fig. 5
// arrival-delay manipulation, early departure); the best-responder is
// adaptive: after every agent's base report is fixed, it probes its own
// greedy critical value through auction::CounterfactualEngine::
// critical_value_of -- the same read-only seam the flight recorder's
// explain path uses -- and shades its claimed cost to just below that
// threshold. Against the paper's truthful mechanisms the probe is provably
// futile (payment equals the critical value no matter the bid); against
// the per-slot second-price baseline it is exactly the informed attacker
// the Section V-C counterexample warns about.
//
// Every policy must produce a *legal* report (is_legal_report holds): the
// arena models rational-but-constrained smartphones, not malformed input.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "auction/counterfactual.hpp"
#include "common/rng.hpp"
#include "model/scenario.hpp"
#include "model/strategy.hpp"

namespace mcs::arena {

class BidderPolicy {
 public:
  virtual ~BidderPolicy() = default;

  /// Base report from private information alone (pass 1). Must be a legal
  /// report for `profile`.
  [[nodiscard]] virtual model::Bid report(const model::TrueProfile& profile,
                                          Rng& rng) const = 0;

  /// Adaptive policies refine their bid once everyone's base report is on
  /// the table (pass 2). `engine` is a counterfactual engine built over
  /// the full pass-1 profile (this agent's own entry set to its base
  /// report); adaptive agents respond to it independently -- they do not
  /// observe other responders' refinements. A one-shot best response, not
  /// an equilibrium search; sharing one engine amortizes the factual pass
  /// across every responder of the round.
  [[nodiscard]] virtual bool adaptive() const { return false; }
  [[nodiscard]] virtual model::Bid respond(
      const auction::CounterfactualEngine& engine, PhoneId self) const;

  /// Stable identifier used in mix specs, leaderboards, and JSON.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Reports the private profile unchanged.
class TruthfulPolicy final : public BidderPolicy {
 public:
  [[nodiscard]] model::Bid report(const model::TrueProfile& profile,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "truthful"; }
};

/// Claims cost = true cost * factor (> 1 inflates -- the classic
/// procurement shade; window truthful).
class CostShadePolicy final : public BidderPolicy {
 public:
  explicit CostShadePolicy(double factor);

  [[nodiscard]] model::Bid report(const model::TrueProfile& profile,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double factor() const { return factor_; }

 private:
  model::CostMarkupStrategy strategy_;
  double factor_;
};

/// Delays the reported arrival by `delay` slots (Fig. 5(b), clamped so the
/// window stays nonempty).
class DelayArrivalPolicy final : public BidderPolicy {
 public:
  explicit DelayArrivalPolicy(Slot::rep_type delay);

  [[nodiscard]] model::Bid report(const model::TrueProfile& profile,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  model::DelayedArrivalStrategy strategy_;
  Slot::rep_type delay_;
};

/// Advances the reported departure by `advance` slots (clamped).
class EarlyDeparturePolicy final : public BidderPolicy {
 public:
  explicit EarlyDeparturePolicy(Slot::rep_type advance);

  [[nodiscard]] model::Bid report(const model::TrueProfile& profile,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  model::EarlyDepartureStrategy strategy_;
  Slot::rep_type advance_;
};

/// The informed attacker: base report is truthful; in the respond pass it
/// builds a CounterfactualEngine over the round, probes its own greedy
/// critical value, and -- when it wins truthfully and the critical value
/// is bounded above its cost -- raises its claimed cost to one micro below
/// the threshold (the highest claim that still wins). Losing or scarce
/// agents stay truthful: shading down to buy a win can only be paid at or
/// below the win threshold, which is below their true cost.
class BestResponsePolicy final : public BidderPolicy {
 public:
  [[nodiscard]] model::Bid report(const model::TrueProfile& profile,
                                  Rng& rng) const override;
  [[nodiscard]] bool adaptive() const override { return true; }
  [[nodiscard]] model::Bid respond(const auction::CounterfactualEngine& engine,
                                   PhoneId self) const override;
  [[nodiscard]] std::string name() const override { return "best-response"; }
};

/// Parses one policy spec: "truthful", "shade(1.5)", "delay(2)",
/// "early(1)", or "best-response". Throws InvalidArgumentError on an
/// unknown name or out-of-domain parameter.
[[nodiscard]] std::unique_ptr<BidderPolicy> make_policy(std::string_view spec);

}  // namespace mcs::arena
