// Arena orchestration: the (mechanism x policy mix) grid at population
// scale.
//
// run_arena evaluates every cell of the grid over the same seeded round
// stream plus one shared offline-VCG-on-truthful reference pass, fanning
// (cell, round) work items over worker threads. Determinism contract: the
// result -- and the leaderboard bytes rendered from it -- is identical at
// 1 and N threads, because
//  * every work item is a pure function of (config, cell, round): scenario
//    generation, policy assignment, and probe sampling are all derived by
//    hashing/forking the arena seed, never from shared mutable state;
//  * per-round results land in preallocated slots indexed by round and are
//    folded sequentially in round order after the join (exact Money
//    arithmetic commutes; double folds do not, so their order is pinned);
//  * metrics registries are worker-local and merged in worker order after
//    the join (counter merges are sums, which commute).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arena/match.hpp"

namespace mcs::arena {

/// Full arena specification: the grid plus the shared match knobs.
struct ArenaConfig {
  MatchConfig match;
  std::int64_t rounds{400};
  /// Worker threads for the (cell, round) fan-out; 0 = hardware
  /// concurrency, 1 = serial. Any value yields identical results.
  int threads{1};
  /// Mechanism specs (see make_arena_mechanism).
  std::vector<std::string> mechanisms;
  /// Policy-mix specs (see PolicyMix::parse).
  std::vector<std::string> mixes;
};

struct ArenaResult {
  std::uint64_t seed{0};
  std::int64_t rounds{0};
  std::int64_t probes_per_policy{0};
  model::WorkloadConfig workload;
  Money vcg_reference_payment;  ///< offline VCG on truthful bids, all rounds
  std::vector<CellResult> cells;  ///< grid order: mechanisms x mixes
};

/// Builds the mechanism an arena spec names:
///   online           Algorithm 1 + 2 (config.match.greedy)
///   offline          offline VCG
///   second-price     the per-slot second-price baseline (not truthful)
///   posted(P)        posted price P (money units)
///   patience(K)      task-patience greedy, K extra slots
/// Throws InvalidArgumentError on an unknown spec.
[[nodiscard]] std::unique_ptr<auction::Mechanism> make_arena_mechanism(
    std::string_view spec, const MatchConfig& match);

/// Runs the full grid. Throws InvalidArgumentError on empty grids or bad
/// specs; validates the workload up front.
[[nodiscard]] ArenaResult run_arena(const ArenaConfig& config);

}  // namespace mcs::arena
