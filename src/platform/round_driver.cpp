#include "platform/round_driver.hpp"

#include <string>

#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::platform {

namespace {

/// Counter name for a protocol event kind ("platform.events.<kind>").
std::string_view event_counter_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskAnnounced:
      return "platform.events.task_announced";
    case EventKind::kBidSubmitted:
      return "platform.events.bid_submitted";
    case EventKind::kTaskAssigned:
      return "platform.events.task_assigned";
    case EventKind::kTaskUnserved:
      return "platform.events.task_unserved";
    case EventKind::kSensingReported:
      return "platform.events.sensing_reported";
    case EventKind::kPaymentIssued:
      return "platform.events.payment_issued";
    case EventKind::kDeparted:
      return "platform.events.departed";
  }
  return "platform.events.unknown";
}

}  // namespace

RoundEventView RoundResult::events_of(EventKind kind) const {
  return RoundEventView(transcript, kind);
}

RoundResult run_round(const model::Scenario& scenario,
                      const model::BidProfile& bids,
                      auction::OnlineGreedyConfig config) {
  const obs::TraceSpan span("platform.round");
  scenario.validate();
  model::validate_bids(scenario, bids);

  OnlinePlatform platform(scenario.num_slots, scenario.task_value, config);

  RoundResult result;
  result.outcome.allocation =
      auction::Allocation(scenario.task_count(), scenario.phone_count());
  result.outcome.payments.assign(scenario.phones.size(), Money{});

  std::size_t task_cursor = 0;
  for (Slot::rep_type t = 1; t <= scenario.num_slots; ++t) {
    // Sensing queries that arrived this slot become task announcements.
    while (task_cursor < scenario.tasks.size() &&
           scenario.tasks[task_cursor].slot.value() == t) {
      const model::Task& task = scenario.tasks[task_cursor];
      platform.announce_task(task.id, task.value);
      result.transcript.push_back(
          RoundEvent{Slot{t}, EventKind::kTaskAnnounced, AgentId{-1}, task.id,
                     scenario.value_of(task.id)});
      ++task_cursor;
    }
    // Phones whose reported arrival is this slot join and bid.
    for (int i = 0; i < scenario.phone_count(); ++i) {
      const model::Bid& bid = bids[static_cast<std::size_t>(i)];
      if (bid.window.begin().value() != t) continue;
      if (platform.submit_bid(AgentId{i}, bid)) {
        result.transcript.push_back(RoundEvent{
            Slot{t}, EventKind::kBidSubmitted, AgentId{i}, TaskId{-1},
            bid.claimed_cost});
      }
    }

    const SlotReport report = platform.advance_slot();
    for (const auto& [task, agent] : report.assignments) {
      result.outcome.allocation.assign(task, agent);
      result.transcript.push_back(
          RoundEvent{Slot{t}, EventKind::kTaskAssigned, agent, task, Money{}});
      // The task takes the slot; the report comes back before slot end.
      result.transcript.push_back(RoundEvent{
          Slot{t}, EventKind::kSensingReported, agent, task, Money{}});
    }
    for (const TaskId task : report.unserved_tasks) {
      result.transcript.push_back(
          RoundEvent{Slot{t}, EventKind::kTaskUnserved, AgentId{-1}, task,
                     Money{}});
    }
    for (const auto& [agent, payment] : report.payments) {
      result.outcome.payments[static_cast<std::size_t>(agent.value())] =
          payment;
      result.transcript.push_back(RoundEvent{
          Slot{t}, EventKind::kPaymentIssued, agent, TaskId{-1}, payment});
    }
    for (const AgentId agent : report.unpaid_departures) {
      result.transcript.push_back(RoundEvent{
          Slot{t}, EventKind::kDeparted, agent, TaskId{-1}, Money{}});
      obs::log_event([&] {
        obs::Event event("phone_departed_unpaid");
        event.slot = static_cast<std::int32_t>(t);
        event.phone = agent.value();
        return event;
      });
    }
  }
  MCS_ENSURES(platform.finished(), "driver must consume the whole round");
  result.outcome.validate(scenario, bids);
  obs::log_event([&] {
    obs::Event event("round_finished");
    Money total_paid;
    for (const Money payment : result.outcome.payments) total_paid += payment;
    std::int64_t unserved = 0;
    for (const RoundEvent& round_event : result.transcript) {
      if (round_event.kind == EventKind::kTaskUnserved) ++unserved;
    }
    event
        .with("winners", static_cast<std::int64_t>(
                             result.outcome.allocation.winners().size()))
        .with("total_paid", total_paid)
        .with("unserved_tasks", unserved)
        .with("slots", static_cast<std::int64_t>(scenario.num_slots));
    return event;
  });
  if (obs::MetricsRegistry* registry = obs::current_registry()) {
    registry->counter("platform.rounds").add(1);
    registry->counter("platform.slots")
        .add(static_cast<std::int64_t>(scenario.num_slots));
    for (const RoundEvent& event : result.transcript) {
      registry->counter(event_counter_name(event.kind)).add(1);
    }
  }
  return result;
}

}  // namespace mcs::platform
