#include "platform/platform.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace mcs::platform {

OnlinePlatform::OnlinePlatform(Slot::rep_type num_slots,
                               Money default_task_value,
                               auction::OnlineGreedyConfig config)
    : num_slots_(num_slots),
      default_task_value_(default_task_value),
      config_(config) {
  MCS_EXPECTS(num_slots >= 1, "round must have at least one slot");
  MCS_EXPECTS(!default_task_value.is_negative(), "task value must be >= 0");
}

void OnlinePlatform::announce_task(TaskId id, std::optional<Money> value) {
  MCS_EXPECTS(!finished(), "round is over");
  MCS_EXPECTS(id.value() == last_task_id_ + 1,
              "task ids must be dense and increasing");
  last_task_id_ = id.value();
  tasks_.push_back(StoredTask{id, Slot{current_slot_},
                              value.value_or(default_task_value_)});
}

bool OnlinePlatform::submit_bid(AgentId agent, const model::Bid& bid) {
  MCS_EXPECTS(!finished(), "round is over");
  MCS_EXPECTS(bid.window.begin().value() == current_slot_,
              "phones bid in the slot they join");
  MCS_EXPECTS(bid.window.end().value() <= num_slots_,
              "reported departure beyond the round");
  MCS_EXPECTS(!bid.claimed_cost.is_negative(), "claimed cost must be >= 0");
  for (const StoredBid& existing : bids_) {
    MCS_EXPECTS(existing.agent != agent, "agent already submitted a bid");
  }
  if (config_.reserve_price && bid.claimed_cost > *config_.reserve_price) {
    obs::log_event([&] {
      obs::Event event("bid_rejected");
      event.slot = static_cast<std::int32_t>(current_slot_);
      event.phone = agent.value();
      event.with("reason", std::string("reserve"))
          .with("bid", bid.claimed_cost)
          .with("reserve", *config_.reserve_price);
      return event;
    });
    return false;  // rejected at the door
  }
  bids_.push_back(StoredBid{agent, bid, false, Slot{0}});
  obs::log_event([&] {
    obs::Event event("bid_admitted");
    event.slot = static_cast<std::int32_t>(current_slot_);
    event.phone = agent.value();
    event.with("bid", bid.claimed_cost)
        .with("departs", static_cast<std::int64_t>(bid.window.end().value()));
    return event;
  });
  return true;
}

Money OnlinePlatform::scarce_cap_for(Money task_value) const {
  if (config_.reserve_price) {
    return config_.allocate_only_profitable
               ? std::min(*config_.reserve_price, task_value)
               : *config_.reserve_price;
  }
  return task_value;
}

SlotReport OnlinePlatform::advance_slot() {
  MCS_EXPECTS(!finished(), "round is over");
  const Slot::rep_type t = current_slot_;
  SlotReport report;
  report.slot = Slot{t};

  // --- Algorithm 1 step: assign this slot's tasks, dearest value first.
  std::vector<std::size_t> slot_tasks;
  for (std::size_t k = first_task_of_slot_; k < tasks_.size(); ++k) {
    slot_tasks.push_back(k);
  }
  first_task_of_slot_ = tasks_.size();
  std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks_[a].value > tasks_[b].value;
                   });

  // Active unallocated bids, cheapest (then lowest agent id) first.
  std::vector<StoredBid*> pool;
  for (StoredBid& stored : bids_) {
    if (!stored.allocated && stored.bid.window.contains(Slot{t})) {
      pool.push_back(&stored);
    }
  }
  std::sort(pool.begin(), pool.end(), [](const StoredBid* a, const StoredBid* b) {
    if (a->bid.claimed_cost != b->bid.claimed_cost) {
      return a->bid.claimed_cost < b->bid.claimed_cost;
    }
    return a->agent < b->agent;
  });
  obs::log_event([&] {
    obs::Event event("slot_pool");
    event.slot = static_cast<std::int32_t>(t);
    std::vector<std::int64_t> ids;
    std::vector<std::int64_t> costs;
    ids.reserve(pool.size());
    costs.reserve(pool.size());
    for (const StoredBid* stored : pool) {
      ids.push_back(stored->agent.value());
      costs.push_back(stored->bid.claimed_cost.micros());
    }
    event.with("pool", std::move(ids))
        .with("pool_costs_micros", std::move(costs))
        .with("tasks", static_cast<std::int64_t>(slot_tasks.size()));
    return event;
  });

  std::size_t next = 0;
  for (const std::size_t k : slot_tasks) {
    const StoredTask& task = tasks_[k];
    if (next >= pool.size()) {
      report.unserved_tasks.push_back(task.id);
      obs::log_event([&] {
        obs::Event event("task_unserved");
        event.slot = static_cast<std::int32_t>(t);
        event.task = task.id.value();
        event.with("reason", std::string("pool_empty"))
            .with("task_value", task.value);
        return event;
      });
      continue;
    }
    StoredBid* cheapest = pool[next];
    if (config_.allocate_only_profitable &&
        cheapest->bid.claimed_cost > task.value) {
      report.unserved_tasks.push_back(task.id);
      obs::log_event([&] {
        obs::Event event("task_unserved");
        event.slot = static_cast<std::int32_t>(t);
        event.task = task.id.value();
        event.with("reason", std::string("unprofitable"))
            .with("task_value", task.value)
            .with("cheapest_bid", cheapest->bid.claimed_cost)
            .with("cheapest_phone",
                  static_cast<std::int64_t>(cheapest->agent.value()));
        return event;
      });
      continue;  // the phone stays available for later tasks
    }
    cheapest->allocated = true;
    cheapest->win_slot = Slot{t};
    report.assignments.emplace_back(task.id, cheapest->agent);
    obs::log_event([&] {
      obs::Event event("task_assigned");
      event.slot = static_cast<std::int32_t>(t);
      event.task = task.id.value();
      event.phone = cheapest->agent.value();
      event.with("bid", cheapest->bid.claimed_cost)
          .with("task_value", task.value);
      if (next + 1 < pool.size()) {
        const StoredBid* runner_up = pool[next + 1];
        event.with("runner_up_phone",
                   static_cast<std::int64_t>(runner_up->agent.value()))
            .with("runner_up_bid", runner_up->bid.claimed_cost);
      }
      return event;
    });
    ++next;
  }

  // --- Departures: settle everyone whose reported departure is this slot.
  for (const StoredBid& stored : bids_) {
    if (stored.bid.window.end().value() != t) continue;
    if (stored.allocated) {
      const Money payment = payment_for(stored);
      total_paid_ += payment;
      report.payments.emplace_back(stored.agent, payment);
    } else {
      report.unpaid_departures.push_back(stored.agent);
    }
  }

  ++current_slot_;
  return report;
}

std::vector<OnlinePlatform::ReplaySlot> OnlinePlatform::replay_without(
    AgentId excluded, Slot::rep_type last_slot) const {
  std::vector<ReplaySlot> result(static_cast<std::size_t>(last_slot) + 1);

  // Shared-prefix fork: the excluded agent cannot influence any slot
  // before its own submission, so the counterfactual history up to that
  // slot *is* the recorded history. Rebuild the fork state from the
  // stored win_slot flags (every allocation before `fork` is final by the
  // time payments are issued) and the task list, and replay only the
  // suffix. This derivation is deliberately independent of the batch
  // engine's checkpoint mechanism, so the equivalence tests keep
  // cross-validating both.
  Slot::rep_type fork = 1;
  for (const StoredBid& stored : bids_) {
    if (stored.agent == excluded) {
      fork = stored.bid.window.begin().value();
      break;
    }
  }

  // Fresh bookkeeping over the stored history (never touches the live
  // allocation flags).
  std::vector<char> taken(bids_.size(), 0);
  for (std::size_t b = 0; b < bids_.size(); ++b) {
    if (bids_[b].allocated && bids_[b].win_slot.value() < fork) taken[b] = 1;
  }
  // tasks_ is slot-sorted (announced in slot order): skip to the suffix.
  std::size_t task_cursor = 0;
  while (task_cursor < tasks_.size() &&
         tasks_[task_cursor].slot.value() < fork) {
    ++task_cursor;
  }
  obs::MetricsRegistry* const registry = obs::current_registry();
  if (registry != nullptr) {
    registry->counter("platform.counterfactual.forks").add(1);
    registry->counter("platform.counterfactual.slots_skipped")
        .add(static_cast<std::int64_t>(fork) - 1);
    if (last_slot >= fork) {
      registry->counter("platform.counterfactual.slots_replayed")
          .add(static_cast<std::int64_t>(last_slot - fork) + 1);
    }
  }

  for (Slot::rep_type t = fork; t <= last_slot; ++t) {
    std::vector<std::size_t> slot_tasks;
    while (task_cursor < tasks_.size() &&
           tasks_[task_cursor].slot.value() == t) {
      slot_tasks.push_back(task_cursor);
      ++task_cursor;
    }
    // Skip tasks of earlier slots (possible when history starts mid-round).
    std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks_[a].value > tasks_[b].value;
                     });

    std::vector<std::size_t> pool;
    for (std::size_t b = 0; b < bids_.size(); ++b) {
      if (taken[b]) continue;
      const StoredBid& stored = bids_[b];
      if (stored.agent == excluded) continue;
      if (stored.bid.window.contains(Slot{t})) pool.push_back(b);
    }
    std::sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
      if (bids_[a].bid.claimed_cost != bids_[b].bid.claimed_cost) {
        return bids_[a].bid.claimed_cost < bids_[b].bid.claimed_cost;
      }
      return bids_[a].agent < bids_[b].agent;
    });

    ReplaySlot& replay = result[static_cast<std::size_t>(t)];
    std::size_t next = 0;
    for (const std::size_t k : slot_tasks) {
      const StoredTask& task = tasks_[k];
      if (next >= pool.size()) {
        const Money cap = scarce_cap_for(task.value);
        replay.scarce_cap =
            std::max(replay.scarce_cap.value_or(Money{}), cap);
        continue;
      }
      const StoredBid& cheapest = bids_[pool[next]];
      if (config_.allocate_only_profitable &&
          cheapest.bid.claimed_cost > task.value) {
        const Money cap = scarce_cap_for(task.value);
        replay.scarce_cap =
            std::max(replay.scarce_cap.value_or(Money{}), cap);
        continue;
      }
      taken[pool[next]] = 1;
      replay.dearest_winner = std::max(
          replay.dearest_winner.value_or(Money{}), cheapest.bid.claimed_cost);
      ++next;
    }
  }
  return result;
}

Money OnlinePlatform::payment_for(const StoredBid& winner) const {
  const Slot::rep_type depart = winner.bid.window.end().value();
  const std::vector<ReplaySlot> replay = replay_without(winner.agent, depart);

  Money payment = winner.bid.claimed_cost;
  std::optional<Slot::rep_type> setter_slot;
  bool scarce = false;
  Money scarce_cap;
  for (Slot::rep_type t = winner.win_slot.value(); t <= depart; ++t) {
    const ReplaySlot& slot = replay[static_cast<std::size_t>(t)];
    if (slot.dearest_winner && *slot.dearest_winner > payment) {
      payment = *slot.dearest_winner;
      setter_slot = t;
    }
    if (slot.scarce_cap) {
      scarce = true;
      scarce_cap = std::max(scarce_cap, *slot.scarce_cap);
    }
  }
  bool scarce_applied = false;
  if (scarce && config_.scarce_payment ==
                    auction::OnlineGreedyConfig::ScarcePayment::kCapAtValue) {
    if (scarce_cap > payment) {
      payment = scarce_cap;
      scarce_applied = true;
      setter_slot.reset();
    }
  }
  obs::log_event([&] {
    obs::Event event("payment_derivation");
    event.slot = static_cast<std::int32_t>(depart);
    event.phone = winner.agent.value();
    event.with("rule", std::string("algorithm2.replay_max"))
        .with("payment", payment)
        .with("own_bid", winner.bid.claimed_cost)
        .with("win_slot",
              static_cast<std::int64_t>(winner.win_slot.value()));
    if (setter_slot) {
      event.with("set_in_slot", static_cast<std::int64_t>(*setter_slot));
    }
    event.with("scarce", scarce);
    if (scarce) event.with("scarce_cap", scarce_cap);
    event.with("scarce_applied", scarce_applied);
    return event;
  });
  return payment;
}

}  // namespace mcs::platform
