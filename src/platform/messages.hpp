// Protocol vocabulary of the mobile crowdsourcing system (paper Figs. 1-2).
//
// The reverse-auction round is a message exchange between the cloud
// platform and the smartphones: sensing queries become task announcements,
// phones submit bids on arrival, the platform assigns tasks slot by slot,
// assigned phones return sensing reports, and payments are issued in each
// winner's reported departure slot (Section V-C fixes that timing: the
// critical value depends on bids up to d~_i, so it is computable exactly
// then and no earlier). RoundEvent is the transcript entry the driver
// records for every such message.
#pragma once

#include <ostream>
#include <string>

#include "common/money.hpp"
#include "common/types.hpp"
#include "model/bid.hpp"

namespace mcs::platform {

/// Identity of a smartphone agent within a round. Matches the PhoneId of
/// the scenario the round was built from.
using AgentId = PhoneId;

enum class EventKind {
  kTaskAnnounced,    ///< platform announces a task arriving this slot
  kBidSubmitted,     ///< phone joins the market with its bid
  kTaskAssigned,     ///< platform assigns a task to a phone
  kTaskUnserved,     ///< no eligible phone; the task expires
  kSensingReported,  ///< assigned phone returns its sensing data
  kPaymentIssued,    ///< platform pays a winner (at its reported departure)
  kDeparted,         ///< phone leaves the market unpaid (it lost)
};

[[nodiscard]] std::string to_string(EventKind kind);

/// One transcript entry. Fields that do not apply to a kind are left at
/// their defaults (agent = -1, task = -1, amount = 0).
struct RoundEvent {
  Slot slot{0};
  EventKind kind{EventKind::kTaskAnnounced};
  AgentId agent{-1};
  TaskId task{-1};
  Money amount;

  friend bool operator==(const RoundEvent&, const RoundEvent&) = default;
};

std::ostream& operator<<(std::ostream& os, const RoundEvent& event);

}  // namespace mcs::platform
