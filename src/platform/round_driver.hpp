// Drives one full auction round through the OnlinePlatform, producing a
// transcript of every protocol message plus a batch-comparable Outcome.
//
// The driver is the bridge between the declarative world (a Scenario plus
// a BidProfile) and the message-passing platform: it announces each task
// in its arrival slot, submits each phone's bid in the phone's *reported*
// arrival slot, advances the platform slot by slot, and assembles the
// resulting assignments and departure-time payments into an
// auction::Outcome -- which the tests require to be byte-identical to the
// batch OnlineGreedyMechanism on the same inputs.
#pragma once

#include <cstddef>
#include <iterator>
#include <vector>

#include "auction/outcome.hpp"
#include "model/scenario.hpp"
#include "platform/platform.hpp"

namespace mcs::platform {

/// Lazy, allocation-free view of the transcript entries of one EventKind.
/// Borrows the transcript it was built from: the view (and its iterators)
/// must not outlive the RoundResult. Iteration order is transcript order.
class RoundEventView {
 public:
  class iterator {
   public:
    using value_type = RoundEvent;
    using reference = const RoundEvent&;
    using pointer = const RoundEvent*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const std::vector<RoundEvent>* transcript, std::size_t index,
             EventKind kind)
        : transcript_(transcript), index_(index), kind_(kind) {
      skip_to_match();
    }

    reference operator*() const { return (*transcript_)[index_]; }
    pointer operator->() const { return &(*transcript_)[index_]; }

    iterator& operator++() {
      ++index_;
      skip_to_match();
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    void skip_to_match() {
      while (index_ < transcript_->size() &&
             (*transcript_)[index_].kind != kind_) {
        ++index_;
      }
    }

    const std::vector<RoundEvent>* transcript_{nullptr};
    std::size_t index_{0};
    EventKind kind_{EventKind::kTaskAnnounced};
  };

  RoundEventView(const std::vector<RoundEvent>& transcript, EventKind kind)
      : transcript_(&transcript), kind_(kind) {}

  [[nodiscard]] iterator begin() const {
    return iterator(transcript_, 0, kind_);
  }
  [[nodiscard]] iterator end() const {
    return iterator(transcript_, transcript_->size(), kind_);
  }

  /// Number of matching entries (walks the transcript; O(transcript)).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const RoundEvent& event : *transcript_) {
      if (event.kind == kind_) ++n;
    }
    return n;
  }
  [[nodiscard]] bool empty() const { return begin() == end(); }
  /// First matching entry; requires !empty().
  [[nodiscard]] const RoundEvent& front() const { return *begin(); }

 private:
  const std::vector<RoundEvent>* transcript_;
  EventKind kind_;
};

struct RoundResult {
  auction::Outcome outcome;
  std::vector<RoundEvent> transcript;

  /// Transcript entries of one kind (testing/inspection helper). Returns a
  /// borrowed view -- no events are copied; keep the RoundResult alive
  /// while iterating.
  [[nodiscard]] RoundEventView events_of(EventKind kind) const;
};

/// Runs the round. Bids rejected by the platform reserve produce no
/// kBidSubmitted event; every served task yields kTaskAssigned followed by
/// kSensingReported in the same slot; every winner's kPaymentIssued lands
/// in its reported departure slot.
[[nodiscard]] RoundResult run_round(const model::Scenario& scenario,
                                    const model::BidProfile& bids,
                                    auction::OnlineGreedyConfig config = {});

}  // namespace mcs::platform
