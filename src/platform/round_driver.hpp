// Drives one full auction round through the OnlinePlatform, producing a
// transcript of every protocol message plus a batch-comparable Outcome.
//
// The driver is the bridge between the declarative world (a Scenario plus
// a BidProfile) and the message-passing platform: it announces each task
// in its arrival slot, submits each phone's bid in the phone's *reported*
// arrival slot, advances the platform slot by slot, and assembles the
// resulting assignments and departure-time payments into an
// auction::Outcome -- which the tests require to be byte-identical to the
// batch OnlineGreedyMechanism on the same inputs.
#pragma once

#include <vector>

#include "auction/outcome.hpp"
#include "model/scenario.hpp"
#include "platform/platform.hpp"

namespace mcs::platform {

struct RoundResult {
  auction::Outcome outcome;
  std::vector<RoundEvent> transcript;

  /// Transcript entries of one kind (testing/inspection helper).
  [[nodiscard]] std::vector<RoundEvent> events_of(EventKind kind) const;
};

/// Runs the round. Bids rejected by the platform reserve produce no
/// kBidSubmitted event; every served task yields kTaskAssigned followed by
/// kSensingReported in the same slot; every winner's kPaymentIssued lands
/// in its reported departure slot.
[[nodiscard]] RoundResult run_round(const model::Scenario& scenario,
                                    const model::BidProfile& bids,
                                    auction::OnlineGreedyConfig config = {});

}  // namespace mcs::platform
