#include "platform/messages.hpp"

namespace mcs::platform {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskAnnounced:
      return "task-announced";
    case EventKind::kBidSubmitted:
      return "bid-submitted";
    case EventKind::kTaskAssigned:
      return "task-assigned";
    case EventKind::kTaskUnserved:
      return "task-unserved";
    case EventKind::kSensingReported:
      return "sensing-reported";
    case EventKind::kPaymentIssued:
      return "payment-issued";
    case EventKind::kDeparted:
      return "departed";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const RoundEvent& event) {
  os << "slot " << event.slot << ": " << to_string(event.kind);
  if (event.agent.value() >= 0) os << " phone=" << event.agent;
  if (event.task.value() >= 0) os << " task=" << event.task;
  if (!event.amount.is_zero()) os << " amount=" << event.amount;
  return os;
}

}  // namespace mcs::platform
