// The cloud platform, as a slot-by-slot state machine.
//
// auction::OnlineGreedyMechanism is the *specification*: it consumes a
// whole Scenario at once. A deployed platform cannot -- it learns about
// tasks and bids as they arrive and must assign, collect, and pay
// incrementally. OnlinePlatform is that deployable artifact: push tasks
// and bids into the current slot, call advance_slot(), and read back the
// assignments made and the payments issued (each winner is paid in its
// reported departure slot, the earliest moment its Algorithm-2 critical
// value is determined).
//
// The implementation is deliberately independent of the batch mechanism
// (its own pool bookkeeping, its own counterfactual replay), so the test
// suite's equivalence check -- identical allocation and payments on
// randomized rounds -- cross-validates both.
#pragma once

#include <optional>
#include <vector>

#include "auction/online_greedy.hpp"
#include "common/money.hpp"
#include "common/types.hpp"
#include "model/bid.hpp"
#include "platform/messages.hpp"

namespace mcs::platform {

/// Everything that happened while processing one slot.
struct SlotReport {
  Slot slot{0};
  std::vector<std::pair<TaskId, AgentId>> assignments;
  std::vector<TaskId> unserved_tasks;
  /// Winners whose reported departure is this slot, with their payment.
  std::vector<std::pair<AgentId, Money>> payments;
  /// Losers whose reported departure is this slot (they get nothing).
  std::vector<AgentId> unpaid_departures;
};

class OnlinePlatform {
 public:
  /// A round of `num_slots`; `default_task_value` is nu for tasks announced
  /// without an override. The config carries the same knobs as the batch
  /// mechanism (profitability guard, reserve price, scarcity policy).
  OnlinePlatform(Slot::rep_type num_slots, Money default_task_value,
                 auction::OnlineGreedyConfig config = {});

  [[nodiscard]] Slot current_slot() const { return Slot{current_slot_}; }
  [[nodiscard]] bool finished() const { return current_slot_ > num_slots_; }

  /// Announces a task arriving in the *current* slot. Ids must be dense and
  /// increasing across the round (the scenario convention).
  void announce_task(TaskId id, std::optional<Money> value = std::nullopt);

  /// A phone joins the market in the current slot (its reported arrival
  /// must be the current slot -- phones bid when they join). Returns false
  /// when the bid is rejected at the door by the platform reserve.
  bool submit_bid(AgentId agent, const model::Bid& bid);

  /// Processes the current slot: runs the Algorithm-1 step, issues
  /// Algorithm-2 payments to winners departing this slot, then moves to
  /// the next slot.
  SlotReport advance_slot();

  /// Total money paid out so far.
  [[nodiscard]] Money total_paid() const { return total_paid_; }

 private:
  struct StoredBid {
    AgentId agent{-1};
    model::Bid bid{SlotInterval::of(1, 1), Money{}};
    bool allocated{false};
    Slot win_slot{0};
  };

  struct StoredTask {
    TaskId id{-1};
    Slot slot{0};
    Money value;
  };

  /// Replays the greedy allocation over the stored history up to
  /// `last_slot`, pretending `excluded` never bid. Returns, per slot,
  /// the highest winning claimed cost (or nullopt for no winners) and the
  /// scarcity cap contribution of unserved tasks. Shared-prefix: slots
  /// before the excluded agent's submission are inherited from the
  /// recorded history (entries stay empty), not replayed -- callers read
  /// from the winner's win slot, which is never earlier.
  struct ReplaySlot {
    std::optional<Money> dearest_winner;
    std::optional<Money> scarce_cap;
  };
  [[nodiscard]] std::vector<ReplaySlot> replay_without(
      AgentId excluded, Slot::rep_type last_slot) const;

  [[nodiscard]] Money payment_for(const StoredBid& winner) const;
  [[nodiscard]] Money scarce_cap_for(Money task_value) const;

  Slot::rep_type num_slots_;
  Slot::rep_type current_slot_{1};
  Money default_task_value_;
  auction::OnlineGreedyConfig config_;

  std::vector<StoredBid> bids_;     // every admitted bid, by submission order
  std::vector<StoredTask> tasks_;   // every announced task
  std::size_t first_task_of_slot_{0};  // tasks_ index where this slot begins
  Money total_paid_;
  int last_task_id_{-1};
};

}  // namespace mcs::platform
