// Sensing tasks (paper Section III-A).
//
// A task tau_{j,k} arrives in slot j, takes one slot to complete, and is
// worth a fixed value to the platform when completed. The paper uses one
// scenario-wide value nu; as an extension this library also supports
// *weighted sensing queries* -- a per-task value override -- which the
// paper's introduction motivates (diverse queries) but its evaluation does
// not exercise. A task with no override is worth the scenario's nu.
#pragma once

#include <optional>
#include <ostream>

#include "common/money.hpp"
#include "common/types.hpp"

namespace mcs::model {

struct Task {
  TaskId id;   ///< dense index within the scenario (0-based)
  Slot slot;   ///< arrival slot j (1-based)
  /// Per-task value override; nullopt = the scenario-wide nu.
  std::optional<Money> value;

  friend bool operator==(const Task&, const Task&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Task& task) {
  os << "Task{id=" << task.id << ", slot=" << task.slot;
  if (task.value) os << ", value=" << *task.value;
  return os << '}';
}

}  // namespace mcs::model
