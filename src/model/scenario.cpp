#include "model/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::model {

const TrueProfile& Scenario::phone(PhoneId id) const {
  MCS_EXPECTS(id.value() >= 0 && id.value() < phone_count(),
              "PhoneId out of range");
  return phones[static_cast<std::size_t>(id.value())];
}

Money Scenario::value_of(TaskId task) const {
  MCS_EXPECTS(task.value() >= 0 && task.value() < task_count(),
              "TaskId out of range");
  const Task& t = tasks[static_cast<std::size_t>(task.value())];
  return t.value.value_or(task_value);
}

bool Scenario::has_weighted_tasks() const {
  for (const Task& task : tasks) {
    if (task.value) return true;
  }
  return false;
}

std::vector<int> Scenario::tasks_per_slot() const {
  std::vector<int> r(static_cast<std::size_t>(num_slots) + 1, 0);
  for (const Task& task : tasks) {
    ++r[static_cast<std::size_t>(task.slot.value())];
  }
  return r;
}

BidProfile Scenario::truthful_bids() const {
  BidProfile bids;
  bids.reserve(phones.size());
  for (const TrueProfile& profile : phones) bids.push_back(truthful_bid(profile));
  return bids;
}

void Scenario::validate() const {
  if (num_slots < 1) {
    throw InvalidScenarioError("scenario must have at least one slot");
  }
  if (task_value.is_negative()) {
    throw InvalidScenarioError("task value nu must be nonnegative");
  }
  Slot previous_slot{0};
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const Task& task = tasks[k];
    if (task.id.value() != static_cast<int>(k)) {
      throw InvalidScenarioError("task ids must be dense and in order");
    }
    if (task.slot.value() < 1 || task.slot.value() > num_slots) {
      throw InvalidScenarioError("task slot outside the round");
    }
    if (task.slot < previous_slot) {
      throw InvalidScenarioError("tasks must be sorted by arrival slot");
    }
    previous_slot = task.slot;
    if (task.value && (task.value->is_negative() || *task.value >= Money::max())) {
      throw InvalidScenarioError("per-task value out of range");
    }
  }
  for (const TrueProfile& profile : phones) {
    if (profile.active.begin().value() < 1 ||
        profile.active.end().value() > num_slots) {
      throw InvalidScenarioError("phone active window outside the round");
    }
    if (profile.cost.is_negative() || profile.cost >= Money::max()) {
      throw InvalidScenarioError("phone cost out of range");
    }
  }
}

ScenarioBuilder::ScenarioBuilder(Slot::rep_type num_slots) {
  scenario_.num_slots = num_slots;
  scenario_.task_value = Money::from_units(0);
}

ScenarioBuilder& ScenarioBuilder::value(std::int64_t units) {
  scenario_.task_value = Money::from_units(units);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::value(Money nu) {
  scenario_.task_value = nu;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::phone(Slot::rep_type begin,
                                        Slot::rep_type end,
                                        std::int64_t cost_units) {
  return phone(SlotInterval::of(begin, end), Money::from_units(cost_units));
}

ScenarioBuilder& ScenarioBuilder::phone(SlotInterval active, Money cost) {
  scenario_.phones.push_back(TrueProfile{active, cost});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::task(Slot::rep_type slot) {
  scenario_.tasks.push_back(Task{
      TaskId{static_cast<int>(scenario_.tasks.size())}, Slot{slot}, {}});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::valued_task(Slot::rep_type slot,
                                              std::int64_t value_units) {
  scenario_.tasks.push_back(Task{TaskId{static_cast<int>(scenario_.tasks.size())},
                                 Slot{slot}, Money::from_units(value_units)});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::tasks(Slot::rep_type slot, int count) {
  MCS_EXPECTS(count >= 0, "task count must be >= 0");
  for (int k = 0; k < count; ++k) task(slot);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  Scenario scenario = scenario_;
  // Tasks may have been added out of slot order; re-sort and renumber so the
  // dense-id invariant holds.
  std::stable_sort(scenario.tasks.begin(), scenario.tasks.end(),
                   [](const Task& a, const Task& b) { return a.slot < b.slot; });
  for (std::size_t k = 0; k < scenario.tasks.size(); ++k) {
    scenario.tasks[k].id = TaskId{static_cast<int>(k)};
  }
  scenario.validate();
  return scenario;
}

BidProfile with_bid(BidProfile bids, PhoneId id, Bid replacement) {
  MCS_EXPECTS(id.value() >= 0 &&
                  static_cast<std::size_t>(id.value()) < bids.size(),
              "PhoneId out of range");
  bids[static_cast<std::size_t>(id.value())] = replacement;
  return bids;
}

void validate_bids(const Scenario& scenario, const BidProfile& bids) {
  if (bids.size() != scenario.phones.size()) {
    throw InvalidScenarioError("bid profile size differs from phone count");
  }
  for (const Bid& bid : bids) {
    if (bid.window.begin().value() < 1 ||
        bid.window.end().value() > scenario.num_slots) {
      throw InvalidScenarioError("bid window outside the round");
    }
    if (bid.claimed_cost.is_negative() || bid.claimed_cost >= Money::max()) {
      throw InvalidScenarioError("claimed cost out of range");
    }
  }
}

std::string describe(const Scenario& scenario) {
  std::ostringstream os;
  os << "Scenario: m=" << scenario.num_slots << " slots, nu="
     << scenario.task_value << ", " << scenario.task_count() << " tasks, "
     << scenario.phone_count() << " phones\n";
  const std::vector<int> r = scenario.tasks_per_slot();
  os << "  tasks per slot:";
  for (Slot::rep_type t = 1; t <= scenario.num_slots; ++t) {
    os << ' ' << r[static_cast<std::size_t>(t)];
  }
  os << '\n';
  for (int i = 0; i < scenario.phone_count(); ++i) {
    const TrueProfile& p = scenario.phones[static_cast<std::size_t>(i)];
    os << "  phone " << i << ": active " << p.active << ", cost " << p.cost
       << '\n';
  }
  return os.str();
}

}  // namespace mcs::model
