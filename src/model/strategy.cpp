#include "model/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace mcs::model {

Bid TruthfulStrategy::report(const TrueProfile& profile, Rng& /*rng*/) const {
  return truthful_bid(profile);
}

CostMarkupStrategy::CostMarkupStrategy(double factor) : factor_(factor) {
  MCS_EXPECTS(factor >= 0.0 && std::isfinite(factor),
              "markup factor must be finite and >= 0");
}

Bid CostMarkupStrategy::report(const TrueProfile& profile, Rng& /*rng*/) const {
  return Bid{profile.active,
             Money::from_double(profile.cost.to_double() * factor_)};
}

std::string CostMarkupStrategy::name() const {
  std::ostringstream os;
  os << "cost-markup(x" << factor_ << ')';
  return os.str();
}

DelayedArrivalStrategy::DelayedArrivalStrategy(Slot::rep_type delay)
    : delay_(delay) {
  MCS_EXPECTS(delay >= 0, "delay must be >= 0");
}

Bid DelayedArrivalStrategy::report(const TrueProfile& profile,
                                   Rng& /*rng*/) const {
  const Slot::rep_type begin =
      std::min<Slot::rep_type>(profile.active.begin().value() + delay_,
                               profile.active.end().value());
  return Bid{SlotInterval{Slot{begin}, profile.active.end()}, profile.cost};
}

std::string DelayedArrivalStrategy::name() const {
  std::ostringstream os;
  os << "delayed-arrival(+" << delay_ << ')';
  return os.str();
}

EarlyDepartureStrategy::EarlyDepartureStrategy(Slot::rep_type advance)
    : advance_(advance) {
  MCS_EXPECTS(advance >= 0, "advance must be >= 0");
}

Bid EarlyDepartureStrategy::report(const TrueProfile& profile,
                                   Rng& /*rng*/) const {
  const Slot::rep_type end =
      std::max<Slot::rep_type>(profile.active.end().value() - advance_,
                               profile.active.begin().value());
  return Bid{SlotInterval{profile.active.begin(), Slot{end}}, profile.cost};
}

std::string EarlyDepartureStrategy::name() const {
  std::ostringstream os;
  os << "early-departure(-" << advance_ << ')';
  return os.str();
}

Bid RandomMisreportStrategy::report(const TrueProfile& profile,
                                    Rng& rng) const {
  const Slot::rep_type a = profile.active.begin().value();
  const Slot::rep_type d = profile.active.end().value();
  const auto begin = static_cast<Slot::rep_type>(rng.uniform_int(a, d));
  const auto end = static_cast<Slot::rep_type>(rng.uniform_int(begin, d));
  const double factor = rng.uniform_real(0.25, 4.0);
  return Bid{SlotInterval::of(begin, end),
             Money::from_double(profile.cost.to_double() * factor)};
}

BidProfile apply_strategy(const Scenario& scenario,
                          const ReportStrategy& strategy, Rng& rng) {
  BidProfile bids;
  bids.reserve(scenario.phones.size());
  for (const TrueProfile& profile : scenario.phones) {
    Bid bid = strategy.report(profile, rng);
    MCS_ENSURES(is_legal_report(profile, bid),
                "strategy produced an illegal report: " + strategy.name());
    bids.push_back(bid);
  }
  return bids;
}

BidProfile apply_single_deviation(const Scenario& scenario, PhoneId deviator,
                                  const ReportStrategy& strategy, Rng& rng) {
  BidProfile bids = scenario.truthful_bids();
  const TrueProfile& profile = scenario.phone(deviator);
  Bid bid = strategy.report(profile, rng);
  MCS_ENSURES(is_legal_report(profile, bid),
              "strategy produced an illegal report: " + strategy.name());
  bids[static_cast<std::size_t>(deviator.value())] = bid;
  return bids;
}

}  // namespace mcs::model
