// Plain-text scenario persistence.
//
// Lets users run the mechanisms on their own traces and archive generated
// workloads next to experiment results. The format is line-oriented and
// diff-friendly:
//
//   mcs-scenario v1
//   # comments and blank lines are ignored
//   slots 5
//   value 20            # scenario-wide nu
//   phone 2 5 3         # begin end cost      (one line per smartphone)
//   task 1              # arrival slot
//   task 3 value 30     # weighted task (per-task value override)
//
// Money fields use the Money::to_string decimal format. Reading validates
// the result (Scenario::validate), so a loaded scenario carries the same
// guarantees as a built one; parse errors report the offending line.
#pragma once

#include <iosfwd>
#include <string>

#include "model/scenario.hpp"

namespace mcs::model {

/// Writes the scenario in the format above (deterministic output:
/// phones in id order, then tasks in id order).
void write_scenario(std::ostream& os, const Scenario& scenario);

/// Parses a scenario; throws InvalidScenarioError with a line reference on
/// malformed input, and validates the result.
[[nodiscard]] Scenario read_scenario(std::istream& is);

/// File convenience wrappers; throw IoError on filesystem problems.
void save_scenario(const std::string& path, const Scenario& scenario);
[[nodiscard]] Scenario load_scenario(const std::string& path);

}  // namespace mcs::model
