#include "model/paper_examples.hpp"

namespace mcs::model {

Scenario fig4_scenario(std::int64_t task_value_units) {
  return ScenarioBuilder(5)
      .value(task_value_units)
      .phone(2, 5, 3)   // paper's Smartphone 1
      .phone(1, 4, 5)   // Smartphone 2 (the prose fixes this row exactly)
      .phone(3, 5, 11)  // Smartphone 3
      .phone(5, 5, 9)   // Smartphone 4
      .phone(2, 2, 4)   // Smartphone 5
      .phone(3, 5, 8)   // Smartphone 6
      .phone(1, 3, 6)   // Smartphone 7
      .task(1)
      .task(2)
      .task(3)
      .task(4)
      .task(5)
      .build();
}

Bid fig5_delayed_bid_phone1() {
  return Bid{SlotInterval::of(4, 5), Money::from_units(3)};
}

Scenario fig3_scenario() {
  return ScenarioBuilder(2)
      .value(10)
      .phone(1, 2, 4)  // Smartphone 1, present from the first slot
      .phone(2, 2, 6)  // joins in slot 2
      .phone(2, 2, 3)  // joins in slot 2
      .phone(2, 2, 7)  // joins in slot 2
      .tasks(1, 2)     // tau_{1,1}, tau_{1,2}
      .tasks(2, 3)     // tau_{2,1}, tau_{2,2}, tau_{2,3}
      .build();
}

}  // namespace mcs::model
