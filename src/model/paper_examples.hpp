// The worked examples of the paper, reconstructed as concrete scenarios.
//
// The figure bitmaps in the source dump are unreadable, but the prose of
// Sections IV-B and V-B/V-C pins both examples down; DESIGN.md Section 7
// documents the reconstruction and its consistency checks. These instances
// anchor the unit tests: the online mechanism must reproduce the paper's
// allocation (phones 2, 1, 7 win slots 1-3), Algorithm 2 must pay phone 1
// exactly 9, and the second-price baseline must reward phone 1's delayed
// arrival with a payment jump from 4 to 8.
#pragma once

#include "model/scenario.hpp"

namespace mcs::model {

/// Fig. 4 / Fig. 5 instance: m = 5 slots, one task per slot, seven phones.
///
///   phone | active | cost          (phone ids here are 0-based: paper's
///   ------+--------+-----           "Smartphone k" is PhoneId{k-1})
///     1   | [2,5]  |  3
///     2   | [1,4]  |  5
///     3   | [3,5]  | 11
///     4   | [5,5]  |  9
///     5   | [2,2]  |  4
///     6   | [3,5]  |  8
///     7   | [1,3]  |  6
///
/// `task_value_units` defaults to 20 (> max cost 11) so all welfare weights
/// are positive; the paper's example never fixes nu.
[[nodiscard]] Scenario fig4_scenario(std::int64_t task_value_units = 20);

/// The misreport of Fig. 5(b): phone 1 (paper's Smartphone 1) delays its
/// reported arrival by two slots, claiming window [4,5] with unchanged cost.
[[nodiscard]] Bid fig5_delayed_bid_phone1();

/// Fig. 3 illustration: 2 slots; two tasks arrive in slot 1 and three in
/// slot 2; Smartphone 1 is present from slot 1, three more phones join in
/// slot 2. Used by the graph-construction test.
[[nodiscard]] Scenario fig3_scenario();

}  // namespace mcs::model
