#include "model/scenario_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace mcs::model {

namespace {

constexpr const char* kHeader = "mcs-scenario v1";

[[noreturn]] void parse_error(int line_number, const std::string& message) {
  std::ostringstream os;
  os << "scenario parse error at line " << line_number << ": " << message;
  throw InvalidScenarioError(os.str());
}

/// Splits on whitespace, dropping everything after a '#'.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line.substr(0, line.find('#')));
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

std::int64_t parse_int(const std::string& token, int line_number,
                       const char* what) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    parse_error(line_number, std::string("expected integer for ") + what +
                                 ", got '" + token + "'");
  }
}

Money parse_money(const std::string& token, int line_number, const char* what) {
  try {
    return Money::parse(token);
  } catch (const InvalidArgumentError&) {
    parse_error(line_number, std::string("expected amount for ") + what +
                                 ", got '" + token + "'");
  }
}

}  // namespace

void write_scenario(std::ostream& os, const Scenario& scenario) {
  scenario.validate();
  os << kHeader << '\n';
  os << "slots " << scenario.num_slots << '\n';
  os << "value " << scenario.task_value << '\n';
  for (const TrueProfile& phone : scenario.phones) {
    os << "phone " << phone.active.begin() << ' ' << phone.active.end() << ' '
       << phone.cost << '\n';
  }
  for (const Task& task : scenario.tasks) {
    os << "task " << task.slot;
    if (task.value) os << " value " << *task.value;
    os << '\n';
  }
}

Scenario read_scenario(std::istream& is) {
  Scenario scenario;
  bool saw_header = false;
  bool saw_slots = false;
  std::string line;
  int line_number = 0;

  while (std::getline(is, line)) {
    ++line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (!saw_header) {
      // The header is matched on the raw (comment-stripped) tokens.
      if (tokens.size() == 2 && tokens[0] == "mcs-scenario" &&
          tokens[1] == "v1") {
        saw_header = true;
        continue;
      }
      parse_error(line_number, "missing 'mcs-scenario v1' header");
    }

    const std::string& keyword = tokens[0];
    if (keyword == "slots") {
      if (tokens.size() != 2) parse_error(line_number, "slots takes one value");
      scenario.num_slots = static_cast<Slot::rep_type>(
          parse_int(tokens[1], line_number, "slots"));
      saw_slots = true;
    } else if (keyword == "value") {
      if (tokens.size() != 2) parse_error(line_number, "value takes one amount");
      scenario.task_value = parse_money(tokens[1], line_number, "value");
    } else if (keyword == "phone") {
      if (tokens.size() != 4) {
        parse_error(line_number, "phone takes: begin end cost");
      }
      const auto begin = static_cast<Slot::rep_type>(
          parse_int(tokens[1], line_number, "phone begin"));
      const auto end = static_cast<Slot::rep_type>(
          parse_int(tokens[2], line_number, "phone end"));
      if (begin > end) parse_error(line_number, "phone window inverted");
      scenario.phones.push_back(
          TrueProfile{SlotInterval::of(begin, end),
                      parse_money(tokens[3], line_number, "phone cost")});
    } else if (keyword == "task") {
      if (tokens.size() != 2 && !(tokens.size() == 4 && tokens[2] == "value")) {
        parse_error(line_number, "task takes: slot [value <amount>]");
      }
      Task task{TaskId{static_cast<int>(scenario.tasks.size())},
                Slot{static_cast<Slot::rep_type>(
                    parse_int(tokens[1], line_number, "task slot"))},
                {}};
      if (tokens.size() == 4) {
        task.value = parse_money(tokens[3], line_number, "task value");
      }
      scenario.tasks.push_back(task);
    } else {
      parse_error(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_header) parse_error(line_number + 1, "empty input (no header)");
  if (!saw_slots) parse_error(line_number + 1, "missing 'slots' line");

  // Tasks may appear in any order in the file; restore the dense-id,
  // sorted-by-slot invariant.
  std::stable_sort(scenario.tasks.begin(), scenario.tasks.end(),
                   [](const Task& a, const Task& b) { return a.slot < b.slot; });
  for (std::size_t k = 0; k < scenario.tasks.size(); ++k) {
    scenario.tasks[k].id = TaskId{static_cast<int>(k)};
  }
  scenario.validate();
  return scenario;
}

void save_scenario(const std::string& path, const Scenario& scenario) {
  std::ofstream file(path);
  if (!file) throw IoError("cannot open scenario file for writing: " + path);
  write_scenario(file, scenario);
  if (!file) throw IoError("error while writing scenario file: " + path);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("cannot open scenario file: " + path);
  return read_scenario(file);
}

}  // namespace mcs::model
