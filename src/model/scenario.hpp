// A complete auction instance and the submitted bid profile.
//
// Scenario is the *ground truth* of one auction round: the slot horizon m,
// the task value nu, the task arrivals, and each smartphone's private
// profile. A BidProfile is what the phones actually submit -- one bid per
// phone, indexed by PhoneId. Mechanisms consume (Scenario, BidProfile);
// utilities are always evaluated against the Scenario's true costs. The
// separation lets the truthfulness audits swap a single phone's bid while
// holding the world fixed (Definition 4's B_i vs B_{-i}).
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/types.hpp"
#include "model/bid.hpp"
#include "model/task.hpp"

namespace mcs::model {

/// One bid per smartphone; index is the PhoneId value.
using BidProfile = std::vector<Bid>;

struct Scenario {
  Slot::rep_type num_slots{0};  ///< m: slots per round, slots are 1..m
  Money task_value;             ///< nu: platform value per completed task
  std::vector<Task> tasks;      ///< sorted by (slot, id); ids dense 0..gamma-1
  std::vector<TrueProfile> phones;  ///< index is the PhoneId value

  [[nodiscard]] int phone_count() const {
    return static_cast<int>(phones.size());
  }
  [[nodiscard]] int task_count() const { return static_cast<int>(tasks.size()); }

  [[nodiscard]] const TrueProfile& phone(PhoneId id) const;

  /// Value the platform gains from completing `task`: its per-task
  /// override when set (weighted-query extension), else the scenario nu.
  [[nodiscard]] Money value_of(TaskId task) const;

  /// True when any task carries a per-task value override.
  [[nodiscard]] bool has_weighted_tasks() const;

  /// r_t for t = 1..m (index 0 unused), the paper's task-arrival vector R.
  [[nodiscard]] std::vector<int> tasks_per_slot() const;

  /// The truthful bid profile B-bar (every phone reports its profile).
  [[nodiscard]] BidProfile truthful_bids() const;

  /// Throws InvalidScenarioError unless: m >= 1; every task's slot is in
  /// [1, m]; task ids are dense and sorted by slot; every phone's active
  /// window lies in [1, m]; every cost is nonnegative and below Money::max.
  void validate() const;
};

/// Fluent construction for tests and examples:
///   auto s = ScenarioBuilder(5).value(20).phone(2, 5, 3).task(1).build();
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(Slot::rep_type num_slots);

  ScenarioBuilder& value(std::int64_t units);
  ScenarioBuilder& value(Money nu);

  /// Adds a phone active on [begin, end] with an integer-unit cost; returns
  /// *this. Phones receive ids in insertion order.
  ScenarioBuilder& phone(Slot::rep_type begin, Slot::rep_type end,
                         std::int64_t cost_units);
  ScenarioBuilder& phone(SlotInterval active, Money cost);

  /// Adds one task arriving in `slot` (worth the scenario-wide nu).
  ScenarioBuilder& task(Slot::rep_type slot);

  /// Adds one task arriving in `slot` with its own value (weighted-query
  /// extension).
  ScenarioBuilder& valued_task(Slot::rep_type slot, std::int64_t value_units);

  /// Adds `count` tasks arriving in `slot`.
  ScenarioBuilder& tasks(Slot::rep_type slot, int count);

  /// Validates and returns the scenario.
  [[nodiscard]] Scenario build() const;

 private:
  Scenario scenario_;
};

/// Replaces phone `id`'s bid in a copy of `bids` (deviation testing).
[[nodiscard]] BidProfile with_bid(BidProfile bids, PhoneId id, Bid replacement);

/// Validates a bid profile against a scenario: one bid per phone, windows
/// within [1, m], costs in range. Does NOT require reports to be legal
/// w.r.t. the private profiles -- strategic misreports are the point -- but
/// a window outside the round or a negative cost is malformed input.
void validate_bids(const Scenario& scenario, const BidProfile& bids);

/// Human-readable multi-line dump (used by examples and failure messages).
[[nodiscard]] std::string describe(const Scenario& scenario);

}  // namespace mcs::model
