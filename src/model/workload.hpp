// Randomized workload generation (paper Section VI-A, Table I).
//
// Smartphone arrivals and task arrivals are Poisson processes over the
// slotted round; active-window lengths and real costs are drawn from
// configurable distributions. The defaults reproduce Table I exactly:
// lambda = 6 phones/slot, lambda_t = 3 tasks/slot, average real cost 25,
// m = 50 slots, average active length 5 slots (10% of m). The paper leaves
// the cost distribution and task value nu unspecified; DESIGN.md Section 2
// documents our substitutions (uniform costs with the stated mean,
// nu = 50 = 2 * default c-bar).
#pragma once

#include <cstdint>
#include <string>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "model/scenario.hpp"

namespace mcs::model {

/// Family of the real-cost distribution; each is parameterized so its mean
/// equals WorkloadConfig::mean_cost.
enum class CostDistribution {
  kUniform,      ///< integer-unit Uniform[1, 2*mean - 1] (the default)
  kNormal,       ///< Normal(mean, mean/4) truncated to [0.5, 2*mean]
  kExponential,  ///< Exponential(mean) truncated to (0, 4*mean]
};

[[nodiscard]] std::string to_string(CostDistribution distribution);

struct WorkloadConfig {
  Slot::rep_type num_slots = 50;      ///< m
  double phone_arrival_rate = 6.0;    ///< lambda (phones per slot)
  double task_arrival_rate = 3.0;     ///< lambda_t (tasks per slot)
  double mean_cost = 25.0;            ///< c-bar (money units)
  double mean_active_length = 5.0;    ///< average active window (slots)
  Money task_value = Money::from_units(50);  ///< nu
  CostDistribution cost_distribution = CostDistribution::kUniform;

  /// Optional non-homogeneous arrival shapes (extension; the paper's
  /// processes are homogeneous). When nonempty, the profile is stretched
  /// over the round and slot t's rate becomes
  /// base_rate * profile[floor((t-1) * profile.size() / m)] -- e.g. a
  /// double-hump commute curve for the traffic example. Multipliers must
  /// be finite and >= 0; an empty profile means homogeneous.
  std::vector<double> phone_rate_profile;
  std::vector<double> task_rate_profile;

  /// Effective per-slot rates after applying the profiles.
  [[nodiscard]] double phone_rate_at(Slot::rep_type slot) const;
  [[nodiscard]] double task_rate_at(Slot::rep_type slot) const;

  /// Throws InvalidArgumentError when a field is out of domain.
  void validate() const;
};

/// Draws one auction round. Phones arriving in slot t get a = t and
/// d = min(t + L - 1, m) with L ~ Uniform[1, 2*mean_active_length - 1];
/// r_t ~ Poisson(lambda_t) tasks arrive per slot. Deterministic in (config,
/// rng state).
[[nodiscard]] Scenario generate_scenario(const WorkloadConfig& config, Rng& rng);

/// Round `round` of the seeded workload stream: draws from the independent
/// child stream Rng(seed).fork(round), so round k is reproducible without
/// replaying rounds 0..k-1. This is the single fork discipline every
/// multi-round driver (sim repetitions, serve loadgen, the arena) shares;
/// two drivers with the same (config, seed, round) see the same scenario.
[[nodiscard]] Scenario round_scenario(const WorkloadConfig& config,
                                      std::uint64_t seed, std::int64_t round);

}  // namespace mcs::model
