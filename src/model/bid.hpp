// Bids and private smartphone profiles (paper Section III-A/B).
//
// A smartphone's *private* information is its true active window [a_i, d_i]
// and real per-task cost c_i (TrueProfile). What it *submits* is a bid
// B_i = (a~_i, d~_i, b_i) (Bid). The no-early-arrival / no-late-departure
// rule constrains reports: a~_i >= a_i and d~_i <= d_i, because a phone
// cannot serve outside its true availability; the claimed cost b_i is
// unconstrained. Keeping the two types distinct makes "who knows what"
// explicit throughout the mechanism and audit code.
#pragma once

#include <ostream>

#include "common/interval.hpp"
#include "common/money.hpp"
#include "common/types.hpp"

namespace mcs::model {

/// Ground truth known only to the smartphone itself.
struct TrueProfile {
  SlotInterval active;  ///< true availability [a_i, d_i]
  Money cost;           ///< real cost c_i of performing one task

  friend bool operator==(const TrueProfile&, const TrueProfile&) = default;
};

/// What the smartphone submits to the platform.
struct Bid {
  SlotInterval window;  ///< reported active time [a~_i, d~_i]
  Money claimed_cost;   ///< claimed cost b_i

  friend bool operator==(const Bid&, const Bid&) = default;
};

/// The bid a truthful smartphone submits: exactly its private information.
[[nodiscard]] Bid truthful_bid(const TrueProfile& profile);

/// True iff `bid` is a *feasible* report for `profile`: the reported window
/// lies inside the true active time (no early arrival, no late departure)
/// and the claimed cost is nonnegative and finite.
[[nodiscard]] bool is_legal_report(const TrueProfile& profile, const Bid& bid);

std::ostream& operator<<(std::ostream& os, const TrueProfile& profile);
std::ostream& operator<<(std::ostream& os, const Bid& bid);

}  // namespace mcs::model
