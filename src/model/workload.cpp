#include "model/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::model {

std::string to_string(CostDistribution distribution) {
  switch (distribution) {
    case CostDistribution::kUniform:
      return "uniform";
    case CostDistribution::kNormal:
      return "normal";
    case CostDistribution::kExponential:
      return "exponential";
  }
  return "?";
}

namespace {

double profile_multiplier(const std::vector<double>& profile,
                          Slot::rep_type slot, Slot::rep_type num_slots) {
  if (profile.empty()) return 1.0;
  const auto index = static_cast<std::size_t>(
      (static_cast<std::int64_t>(slot) - 1) *
      static_cast<std::int64_t>(profile.size()) / num_slots);
  return profile[std::min(index, profile.size() - 1)];
}

void validate_profile(const std::vector<double>& profile, const char* name) {
  for (const double multiplier : profile) {
    if (multiplier < 0.0 || !std::isfinite(multiplier)) {
      throw InvalidArgumentError(std::string(name) +
                                 " multipliers must be finite and >= 0");
    }
  }
}

}  // namespace

double WorkloadConfig::phone_rate_at(Slot::rep_type slot) const {
  return phone_arrival_rate *
         profile_multiplier(phone_rate_profile, slot, num_slots);
}

double WorkloadConfig::task_rate_at(Slot::rep_type slot) const {
  return task_arrival_rate *
         profile_multiplier(task_rate_profile, slot, num_slots);
}

void WorkloadConfig::validate() const {
  if (num_slots < 1) throw InvalidArgumentError("num_slots must be >= 1");
  validate_profile(phone_rate_profile, "phone_rate_profile");
  validate_profile(task_rate_profile, "task_rate_profile");
  if (phone_arrival_rate < 0.0 || !std::isfinite(phone_arrival_rate)) {
    throw InvalidArgumentError("phone_arrival_rate must be finite and >= 0");
  }
  if (task_arrival_rate < 0.0 || !std::isfinite(task_arrival_rate)) {
    throw InvalidArgumentError("task_arrival_rate must be finite and >= 0");
  }
  if (mean_cost < 1.0 || !std::isfinite(mean_cost)) {
    throw InvalidArgumentError("mean_cost must be finite and >= 1");
  }
  if (mean_active_length < 1.0 || !std::isfinite(mean_active_length)) {
    throw InvalidArgumentError("mean_active_length must be finite and >= 1");
  }
  if (task_value.is_negative()) {
    throw InvalidArgumentError("task_value must be nonnegative");
  }
}

namespace {

Money draw_cost(const WorkloadConfig& config, Rng& rng) {
  switch (config.cost_distribution) {
    case CostDistribution::kUniform: {
      // Integer units on [1, 2*mean - 1]: mean exactly c-bar for integer
      // c-bar, support strictly positive.
      const auto hi = static_cast<std::int64_t>(
          std::llround(2.0 * config.mean_cost)) - 1;
      UniformIntSampler sampler(1, std::max<std::int64_t>(1, hi));
      return Money::from_units(sampler.sample(rng));
    }
    case CostDistribution::kNormal: {
      NormalSampler sampler(config.mean_cost, config.mean_cost / 4.0);
      return Money::from_double(
          sampler.sample_truncated(rng, 0.5, 2.0 * config.mean_cost));
    }
    case CostDistribution::kExponential: {
      const ExponentialSampler sampler(1.0 / config.mean_cost);
      double x;
      do {
        x = sampler.sample(rng);
      } while (x <= 0.0 || x > 4.0 * config.mean_cost);
      return Money::from_double(x);
    }
  }
  throw InvalidArgumentError("unknown cost distribution");
}

}  // namespace

Scenario generate_scenario(const WorkloadConfig& config, Rng& rng) {
  config.validate();

  Scenario scenario;
  scenario.num_slots = config.num_slots;
  scenario.task_value = config.task_value;

  const bool homogeneous =
      config.phone_rate_profile.empty() && config.task_rate_profile.empty();
  const PoissonSampler phone_arrivals(config.phone_arrival_rate);
  const PoissonSampler task_arrivals(config.task_arrival_rate);
  const auto max_length = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(2.0 * config.mean_active_length)) - 1);
  const UniformIntSampler length_sampler(1, max_length);

  for (Slot::rep_type t = 1; t <= config.num_slots; ++t) {
    const std::int64_t phones =
        homogeneous ? phone_arrivals.sample(rng)
                    : PoissonSampler(config.phone_rate_at(t)).sample(rng);
    for (std::int64_t k = 0; k < phones; ++k) {
      const auto length =
          static_cast<Slot::rep_type>(length_sampler.sample(rng));
      const Slot::rep_type depart =
          std::min<Slot::rep_type>(t + length - 1, config.num_slots);
      scenario.phones.push_back(
          TrueProfile{SlotInterval::of(t, depart), draw_cost(config, rng)});
    }
    const std::int64_t tasks =
        homogeneous ? task_arrivals.sample(rng)
                    : PoissonSampler(config.task_rate_at(t)).sample(rng);
    for (std::int64_t k = 0; k < tasks; ++k) {
      scenario.tasks.push_back(
          Task{TaskId{static_cast<int>(scenario.tasks.size())}, Slot{t}, {}});
    }
  }

  scenario.validate();
  return scenario;
}

Scenario round_scenario(const WorkloadConfig& config, std::uint64_t seed,
                        std::int64_t round) {
  Rng rng = Rng(seed).fork(static_cast<std::uint64_t>(round));
  return generate_scenario(config, rng);
}

}  // namespace mcs::model
