#include "model/bid.hpp"

namespace mcs::model {

Bid truthful_bid(const TrueProfile& profile) {
  return Bid{profile.active, profile.cost};
}

bool is_legal_report(const TrueProfile& profile, const Bid& bid) {
  return profile.active.contains(bid.window) &&
         !bid.claimed_cost.is_negative() && bid.claimed_cost < Money::max();
}

std::ostream& operator<<(std::ostream& os, const TrueProfile& profile) {
  return os << "TrueProfile{active=" << profile.active
            << ", cost=" << profile.cost << '}';
}

std::ostream& operator<<(std::ostream& os, const Bid& bid) {
  return os << "Bid{window=" << bid.window << ", cost=" << bid.claimed_cost
            << '}';
}

}  // namespace mcs::model
