// Reporting strategies: how a (possibly strategic) smartphone turns its
// private profile into a submitted bid.
//
// The paper's smartphones are rational and strategic (Section III-B): they
// may claim a higher/lower cost, delay their reported arrival, or advance
// their reported departure -- but can never report a window outside the
// true one. Each strategy here produces a *legal* report by construction;
// the truthfulness audits and the strategic-user example drive mechanisms
// with these strategies to measure whether lying ever pays.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "model/bid.hpp"
#include "model/scenario.hpp"

namespace mcs::model {

/// Interface: map a private profile to a submitted bid. Implementations
/// must return a legal report (is_legal_report holds).
class ReportStrategy {
 public:
  virtual ~ReportStrategy() = default;

  [[nodiscard]] virtual Bid report(const TrueProfile& profile,
                                   Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Reports the private information unchanged.
class TruthfulStrategy final : public ReportStrategy {
 public:
  [[nodiscard]] Bid report(const TrueProfile& profile, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "truthful"; }
};

/// Claims cost = true cost * factor (factor >= 0; > 1 inflates, < 1
/// undercuts). Window reported truthfully.
class CostMarkupStrategy final : public ReportStrategy {
 public:
  explicit CostMarkupStrategy(double factor);

  [[nodiscard]] Bid report(const TrueProfile& profile, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double factor_;
};

/// Delays the reported arrival by `delay` slots (clamped so the window
/// stays nonempty) -- the manipulation of Fig. 5(b).
class DelayedArrivalStrategy final : public ReportStrategy {
 public:
  explicit DelayedArrivalStrategy(Slot::rep_type delay);

  [[nodiscard]] Bid report(const TrueProfile& profile, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Slot::rep_type delay_;
};

/// Advances the reported departure by `advance` slots (clamped).
class EarlyDepartureStrategy final : public ReportStrategy {
 public:
  explicit EarlyDepartureStrategy(Slot::rep_type advance);

  [[nodiscard]] Bid report(const TrueProfile& profile, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Slot::rep_type advance_;
};

/// Draws a uniformly random legal misreport: window a random subinterval of
/// the true one, cost scaled by a random factor in [0.25, 4].
class RandomMisreportStrategy final : public ReportStrategy {
 public:
  [[nodiscard]] Bid report(const TrueProfile& profile, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "random-misreport"; }
};

/// Applies `strategy` to every phone of the scenario.
[[nodiscard]] BidProfile apply_strategy(const Scenario& scenario,
                                        const ReportStrategy& strategy,
                                        Rng& rng);

/// Truthful bids for everyone except `deviator`, who uses `strategy`.
[[nodiscard]] BidProfile apply_single_deviation(const Scenario& scenario,
                                                PhoneId deviator,
                                                const ReportStrategy& strategy,
                                                Rng& rng);

}  // namespace mcs::model
