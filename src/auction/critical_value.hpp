// Generic critical-value computation (Definition 9).
//
// For a monotone allocation rule, a bidder's critical value b^c is the
// threshold claimed cost: bid strictly below it and win, bid strictly above
// it and lose. This module computes b^c by bisection over the claimed cost,
// re-running the allocation as a black box. It is deliberately independent
// of Algorithm 2, so the tests can confirm that Algorithm 2's payment *is*
// the critical value -- the heart of the Theorem 4 proof -- without sharing
// any code with it.
#pragma once

#include <functional>
#include <optional>

#include "auction/online_greedy.hpp"
#include "common/money.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

/// Predicate: does the bidder win when claiming `cost` (all else fixed)?
/// Must be monotone: winning at c implies winning at every c' <= c.
using WinsWithCost = std::function<bool(Money cost)>;

/// Bisects for the threshold between winning and losing claimed costs on
/// [0, upper_bound].
///
/// Preconditions: wins(0) is true (call this only for bidders that win at
/// some cost) and `wins` is monotone.
/// Returns nullopt when the bidder wins even at `upper_bound` (the critical
/// value is unbounded within the probed range, e.g. under supply scarcity);
/// otherwise returns a value within `tolerance_micros` of the threshold
/// (default: exact to one micro-unit).
///
/// When an obs::EventLog is installed, every probe is recorded as a
/// "critical_probe" event (probe bid, win/lose, resulting [lo, hi]
/// bracket) followed by one "critical_found" summary; `log_phone` tags the
/// records with the bidder under search (-1 = untagged). The `wins`
/// predicate itself should suppress any instrumentation of its inner
/// allocation re-run (greedy_critical_value does).
[[nodiscard]] std::optional<Money> bisect_critical_value(
    const WinsWithCost& wins, Money upper_bound,
    std::int64_t tolerance_micros = 1, std::int32_t log_phone = -1);

class CounterfactualEngine;  // auction/counterfactual.hpp

/// Critical claimed cost of `phone` under the greedy online allocation
/// (Algorithm 1) with everyone else's bids fixed. Requires that `phone`
/// wins when claiming 0. Returns nullopt when the phone wins at any probed
/// cost (supply scarcity). The probe range is the task value plus the
/// maximum claimed cost in `bids` (saturating at Money::max() on
/// adversarial inputs), which exceeds any bounded critical value of the
/// greedy rule. Probes evaluate on a shared-prefix CounterfactualEngine
/// built on the spot; the bisection *algorithm* stays independent of
/// Algorithm 2's max-over-winners derivation, preserving the
/// payment-equals-critical-value cross-check.
[[nodiscard]] std::optional<Money> greedy_critical_value(
    const model::Scenario& scenario, const model::BidProfile& bids,
    PhoneId phone, const OnlineGreedyConfig& config = {});

/// Same search on a caller-provided engine: amortizes the factual pass
/// when probing many phones of one (scenario, bids, config) triple, as
/// the flight recorder's record_run does.
[[nodiscard]] std::optional<Money> greedy_critical_value(
    const CounterfactualEngine& engine, PhoneId phone);

// ------------------------------------------------- winner-payment audit

/// Verdict of one deep winner probe (the live econ sentinel's sampled
/// check; also usable by offline truthfulness audits).
enum class PaymentAuditVerdict {
  kOk,                 ///< wins at its claim and is paid the critical value
  kLosesAtClaim,       ///< allocation inconsistency: winner loses when
                       ///< re-run at its own reported cost
  kPaymentNotCritical, ///< bounded critical value exists but != payment
  kUnboundedSkipped,   ///< critical value unbounded (supply scarcity);
                       ///< the equality check does not apply
};

struct PaymentAudit {
  PaymentAuditVerdict verdict{PaymentAuditVerdict::kOk};
  std::optional<Money> critical;  ///< bounded critical value when found

  [[nodiscard]] bool violated() const {
    return verdict == PaymentAuditVerdict::kLosesAtClaim ||
           verdict == PaymentAuditVerdict::kPaymentNotCritical;
  }
};

/// Audits one factual winner against Theorem 4's payment characterization:
/// (a) the phone still wins when re-run at its reported cost, and (b) its
/// payment `paid` equals the greedy critical value -- within the one-micro
/// bisection granularity -- when that value is bounded. Probes run on the
/// shared-prefix engine, so the factual pass is amortized across winners
/// of the same round.
[[nodiscard]] PaymentAudit audit_winner_payment(
    const CounterfactualEngine& engine, PhoneId phone, Money paid);

}  // namespace mcs::auction
