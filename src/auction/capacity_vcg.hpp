// Capacitated offline VCG -- the multi-task extension.
//
// The paper restricts every smartphone to at most one task per round
// (constraint (5)); its model section remarks that larger tasks are split
// into unit tasks, which makes multi-task phones the natural next step. In
// this extension phone i may serve up to cap_i tasks, still at most one
// per slot (a task occupies the whole slot).
//
// A maximum-weight *matching* no longer captures the per-slot constraint,
// so the allocation is solved exactly as a min-cost flow:
//
//   source -> task (1, 0)
//   task -> (phone, slot-of-task) (1, -(value - b_i))   if window covers it
//   task -> sink (1, 0)                                  "leave unserved"
//   (phone, slot) -> phone (1, 0)                        one task per slot
//   phone -> sink (cap_i, 0)                             total capacity
//
// Payments are VCG with per-phone marginals (full re-solves): a winner
// serving q_i tasks is paid q_i * b_i + (omega*(B) - omega*(B_{-i})),
// which keeps the mechanism truthful in cost and reported window, and
// makes *understating* capacity (the only feasible capacity lie: a phone
// cannot serve more than it can) unprofitable.
//
// This extension deliberately has its own outcome type: the paper-faithful
// auction::Outcome encodes the one-task-per-phone invariant, which no
// longer holds here.
#pragma once

#include <optional>
#include <vector>

#include "common/money.hpp"
#include "common/types.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

/// Per-phone task capacities; index is the PhoneId value. All entries
/// must be >= 0 (0 = the phone abstains).
using CapacityProfile = std::vector<int>;

/// Uniform capacity helper.
[[nodiscard]] CapacityProfile uniform_capacity(int phone_count, int capacity);

struct CapacityOutcome {
  std::vector<std::optional<PhoneId>> task_to_phone;  ///< index: TaskId
  std::vector<std::vector<TaskId>> phone_to_tasks;    ///< index: PhoneId
  std::vector<Money> payments;  ///< aggregate per phone (losers: 0)

  [[nodiscard]] int allocated_count() const;
  [[nodiscard]] int tasks_served_by(PhoneId phone) const;

  /// Sum over served tasks of (value - true cost of the server).
  [[nodiscard]] Money social_welfare(const model::Scenario& scenario) const;

  /// Same with claimed costs.
  [[nodiscard]] Money claimed_welfare(const model::Scenario& scenario,
                                      const model::BidProfile& bids) const;

  [[nodiscard]] Money total_payment() const;

  /// Utility of a phone: payment minus (true cost x tasks served).
  [[nodiscard]] Money utility(const model::Scenario& scenario,
                              PhoneId phone) const;

  /// Structural checks: cross-links consistent, windows respected, at most
  /// one task per (phone, slot), capacities respected, losers paid 0.
  void validate(const model::Scenario& scenario, const model::BidProfile& bids,
                const CapacityProfile& capacities) const;
};

/// Optimal capacitated claimed welfare (the flow objective).
[[nodiscard]] Money optimal_capacity_welfare(const model::Scenario& scenario,
                                             const model::BidProfile& bids,
                                             const CapacityProfile& capacities);

/// Runs the capacitated VCG auction: optimal allocation + VCG payments.
[[nodiscard]] CapacityOutcome run_capacity_vcg(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const CapacityProfile& capacities);

}  // namespace mcs::auction
