#include "auction/posted_price.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/assert.hpp"

namespace mcs::auction {

PostedPriceMechanism::PostedPriceMechanism(PostedPriceConfig config)
    : config_(config) {
  MCS_EXPECTS(!config.price.is_negative(), "posted price must be >= 0");
}

std::string PostedPriceMechanism::name() const {
  std::ostringstream os;
  os << "posted-price(" << config_.price << ')';
  return os.str();
}

Outcome PostedPriceMechanism::run(const model::Scenario& scenario,
                                  const model::BidProfile& bids) const {
  scenario.validate();
  model::validate_bids(scenario, bids);

  Outcome outcome;
  outcome.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  outcome.payments.assign(scenario.phones.size(), Money{});

  std::vector<char> allocated(scenario.phones.size(), 0);
  const std::vector<int> tasks_per_slot = scenario.tasks_per_slot();
  std::size_t next_task = 0;

  for (Slot::rep_type t = 1; t <= scenario.num_slots; ++t) {
    // Willing pool: active, unallocated, claimed cost at most the posted
    // price; served in queue order (earliest reported arrival, then id).
    std::vector<int> willing;
    for (int i = 0; i < scenario.phone_count(); ++i) {
      const model::Bid& bid = bids[static_cast<std::size_t>(i)];
      if (!allocated[static_cast<std::size_t>(i)] &&
          bid.window.contains(Slot{t}) &&
          bid.claimed_cost <= config_.price) {
        willing.push_back(i);
      }
    }
    std::sort(willing.begin(), willing.end(), [&](int a, int b) {
      const Slot arrival_a = bids[static_cast<std::size_t>(a)].window.begin();
      const Slot arrival_b = bids[static_cast<std::size_t>(b)].window.begin();
      if (arrival_a != arrival_b) return arrival_a < arrival_b;
      return a < b;
    });

    const int r_t = tasks_per_slot[static_cast<std::size_t>(t)];
    std::size_t cursor = 0;
    for (int k = 0; k < r_t; ++k) {
      const TaskId task{static_cast<int>(next_task)};
      ++next_task;
      if (cursor >= willing.size()) continue;  // task expires
      const int phone = willing[cursor++];
      allocated[static_cast<std::size_t>(phone)] = 1;
      outcome.allocation.assign(task, PhoneId{phone});
      outcome.payments[static_cast<std::size_t>(phone)] = config_.price;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

Money best_posted_price(const model::Scenario& scenario) {
  std::vector<Money> candidates;
  for (const model::TrueProfile& phone : scenario.phones) {
    candidates.push_back(phone.cost);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.empty()) return Money{};

  const model::BidProfile bids = scenario.truthful_bids();
  Money best_price = candidates.front();
  Money best_welfare = Money::from_units(INT64_MIN / Money::kScale / 4);
  for (const Money price : candidates) {
    const PostedPriceMechanism mechanism(price);
    const Money welfare =
        mechanism.run(scenario, bids).social_welfare(scenario);
    if (welfare > best_welfare) {  // strict: ties keep the lower price
      best_welfare = welfare;
      best_price = price;
    }
  }
  return best_price;
}

}  // namespace mcs::auction
