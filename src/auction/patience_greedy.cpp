#include "auction/patience_greedy.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "matching/hungarian.hpp"

namespace mcs::auction {

namespace {

struct PoolEntry {
  std::int64_t cost_micros;
  int phone;
  friend bool operator<(const PoolEntry& a, const PoolEntry& b) {
    if (a.cost_micros != b.cost_micros) return a.cost_micros < b.cost_micros;
    return a.phone < b.phone;
  }
};

struct PendingTask {
  Slot::rep_type deadline;
  int task;
  friend bool operator<(const PendingTask& a, const PendingTask& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.task < b.task;
  }
};

}  // namespace

PatienceRun run_patience_allocation(const model::Scenario& scenario,
                                    const model::BidProfile& bids,
                                    const PatienceConfig& config,
                                    std::optional<PhoneId> exclude,
                                    Slot::rep_type last_slot) {
  MCS_EXPECTS(config.patience >= 0, "patience must be >= 0");
  model::validate_bids(scenario, bids);
  const Slot::rep_type horizon =
      last_slot == 0 ? scenario.num_slots
                     : std::min(last_slot, scenario.num_slots);

  std::vector<std::vector<int>> phone_arrivals(
      static_cast<std::size_t>(scenario.num_slots) + 1);
  for (int i = 0; i < scenario.phone_count(); ++i) {
    if (exclude && exclude->value() == i) continue;
    phone_arrivals[static_cast<std::size_t>(
                       bids[static_cast<std::size_t>(i)].window.begin().value())]
        .push_back(i);
  }

  PatienceRun run;
  run.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  run.slots.reserve(static_cast<std::size_t>(horizon));

  std::set<PoolEntry> pool;
  std::set<PendingTask> pending;  // EDF order
  std::size_t task_cursor = 0;

  for (Slot::rep_type t = 1; t <= horizon; ++t) {
    for (const int phone : phone_arrivals[static_cast<std::size_t>(t)]) {
      pool.insert(PoolEntry{
          bids[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
    }
    for (auto it = pool.begin(); it != pool.end();) {
      if (bids[static_cast<std::size_t>(it->phone)].window.end().value() < t) {
        it = pool.erase(it);
      } else {
        ++it;
      }
    }

    PatienceSlotRecord record;
    record.slot = Slot{t};

    // New arrivals join the pending queue with their deadline.
    while (task_cursor < scenario.tasks.size() &&
           scenario.tasks[task_cursor].slot.value() == t) {
      const Slot::rep_type deadline = std::min<Slot::rep_type>(
          t + config.patience, scenario.num_slots);
      pending.insert(PendingTask{
          deadline, scenario.tasks[task_cursor].id.value()});
      ++task_cursor;
    }
    // Serve pending tasks EDF-first with the cheapest bids.
    while (!pending.empty() && !pool.empty()) {
      const PendingTask task = *pending.begin();
      pending.erase(pending.begin());
      const PoolEntry chosen = *pool.begin();
      pool.erase(pool.begin());
      run.allocation.assign(TaskId{task.task}, PhoneId{chosen.phone}, Slot{t});
      record.served.emplace_back(TaskId{task.task}, PhoneId{chosen.phone});
    }
    // Anything still pending whose deadline is this slot is now dead --
    // recording the expiry in the slot it became unservable keeps the
    // payment scheme's scarcity window aligned with Algorithm 2 at P = 0.
    while (!pending.empty() && pending.begin()->deadline <= t) {
      record.expired.push_back(TaskId{pending.begin()->task});
      pending.erase(pending.begin());
    }
    record.pending_after = static_cast<int>(pending.size());
    run.slots.push_back(std::move(record));
  }
  // Tasks still pending when the horizon ends expire silently (they are
  // simply unallocated in the result).
  return run;
}

std::string PatienceGreedyMechanism::name() const {
  std::ostringstream os;
  os << "patience-greedy(P=" << config_.patience << ')';
  return os.str();
}

Outcome PatienceGreedyMechanism::run(const model::Scenario& scenario,
                                     const model::BidProfile& bids) const {
  scenario.validate();
  const PatienceRun base = run_patience_allocation(scenario, bids, config_);

  Outcome outcome;
  outcome.allocation = base.allocation;
  outcome.payments.assign(scenario.phones.size(), Money{});

  for (const PatienceSlotRecord& record : base.slots) {
    for (const auto& [task, winner] : record.served) {
      (void)task;
      const Slot win_slot = record.slot;
      const model::Bid& own = bids[static_cast<std::size_t>(winner.value())];
      const Slot::rep_type depart = own.window.end().value();

      const PatienceRun without =
          run_patience_allocation(scenario, bids, config_, winner, depart);
      Money payment = own.claimed_cost;
      bool scarce = false;
      Money scarce_cap;
      for (const PatienceSlotRecord& counterfactual : without.slots) {
        if (counterfactual.slot < win_slot) continue;
        for (const auto& [served_task, served_phone] : counterfactual.served) {
          (void)served_task;
          payment = std::max(
              payment,
              bids[static_cast<std::size_t>(served_phone.value())].claimed_cost);
        }
        for (const TaskId expired : counterfactual.expired) {
          scarce = true;
          scarce_cap = std::max(scarce_cap, scenario.value_of(expired));
        }
      }
      if (scarce && config_.scarce_payment ==
                        OnlineGreedyConfig::ScarcePayment::kCapAtValue) {
        payment = std::max(payment, scarce_cap);
      }
      outcome.payments[static_cast<std::size_t>(winner.value())] = payment;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

Money optimal_patience_welfare(const model::Scenario& scenario,
                               const model::BidProfile& bids,
                               Slot::rep_type patience) {
  MCS_EXPECTS(patience >= 0, "patience must be >= 0");
  model::validate_bids(scenario, bids);
  matching::WeightMatrix graph(scenario.task_count(), scenario.phone_count());
  for (int t = 0; t < scenario.task_count(); ++t) {
    const Slot::rep_type arrival =
        scenario.tasks[static_cast<std::size_t>(t)].slot.value();
    const Slot::rep_type deadline =
        std::min<Slot::rep_type>(arrival + patience, scenario.num_slots);
    const SlotInterval service_window = SlotInterval::of(arrival, deadline);
    const Money value = scenario.value_of(TaskId{t});
    for (int i = 0; i < scenario.phone_count(); ++i) {
      const model::Bid& bid = bids[static_cast<std::size_t>(i)];
      if (bid.window.intersect(service_window)) {
        graph.set(t, i, value - bid.claimed_cost);
      }
    }
  }
  matching::MaxWeightMatcher matcher(graph);
  return matcher.total_weight();
}

}  // namespace mcs::auction
