// Batched-matching mechanism: the lookahead ablation between the paper's
// two designs.
//
// The platform buffers w consecutive slots, then allocates the batch's
// tasks optimally (maximum-weight matching over the buffered tasks and the
// still-unallocated bids) and pays batch-local VCG prices. The two extremes
// recover the paper's mechanisms:
//
//   w = 1  -- per-slot optimal matching = the greedy allocation, with
//             per-slot VCG = (r_t+1)-th price payments: essentially the
//             second-price baseline, which Fig. 5 shows is NOT
//             time-truthful;
//   w = m  -- the offline VCG mechanism exactly.
//
// In between, welfare interpolates toward the offline optimum, but
// truthfulness does NOT arrive gradually: for any w < m a phone spanning a
// batch boundary can profit by delaying its reported arrival into the next
// batch (the Fig. 5 manipulation survives any finite lookahead). The
// ablation bench quantifies both sides, which is precisely the argument
// for Algorithm 2's over-time critical payments: they buy truthfulness
// without any lookahead at all.
//
// This mechanism is an *analysis tool*, not a recommended design; use
// OnlineGreedyMechanism or OfflineVcgMechanism in applications.
#pragma once

#include "auction/mechanism.hpp"

namespace mcs::auction {

struct BatchedMatchingConfig {
  /// Number of consecutive slots buffered per batch (>= 1). Values at or
  /// above the round length reproduce the offline mechanism.
  Slot::rep_type batch_size = 5;
};

class BatchedMatchingMechanism final : public Mechanism {
 public:
  explicit BatchedMatchingMechanism(BatchedMatchingConfig config);

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const BatchedMatchingConfig& config() const { return config_; }

 private:
  BatchedMatchingConfig config_;
};

}  // namespace mcs::auction
