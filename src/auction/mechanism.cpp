#include "auction/mechanism.hpp"

namespace mcs::auction {

Outcome Mechanism::run_truthful(const model::Scenario& scenario) const {
  return run(scenario, scenario.truthful_bids());
}

}  // namespace mcs::auction
