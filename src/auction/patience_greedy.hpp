// Task-patience extension: sensing tasks may wait before expiring.
//
// The paper requires a task to be served in its arrival slot (it is
// "completed in a single slot" and allocated when announced). Real queries
// often tolerate a delay: a noise-map tile is useful if sampled within the
// next few slots. This extension gives every task a patience of P extra
// slots -- it may be served in [arrival, arrival + P] and expires
// otherwise. P = 0 reproduces the paper's Algorithm 1 exactly.
//
// Allocation: the platform keeps a pending queue of live tasks. Each slot
// it serves pending tasks in earliest-deadline-first order (ties by id),
// assigning each the cheapest active unallocated bid. EDF minimizes
// expirations among nonidle policies; the ablation bench quantifies how
// much welfare patience buys back on supply-constrained rounds.
//
// Payments generalize Algorithm 2: winner i (served in slot t'_i, reported
// departure d~_i) is paid the maximum winning claimed cost over slots
// [t'_i, d~_i] of a re-run without B_i (at least b_i); a task *expiring*
// in that window marks scarcity, capped at the task's value. The payment
// equals i's critical value in the supply regimes where the paper's
// mechanism has one (the property tests check this via independent
// bisection), so truthfulness carries over empirically; a formal proof for
// P > 0 is future work the paper's framework does not cover.
#pragma once

#include <optional>
#include <vector>

#include "auction/mechanism.hpp"
#include "auction/online_greedy.hpp"

namespace mcs::auction {

struct PatienceConfig {
  /// Extra slots a task stays serviceable after its arrival (0 = paper).
  Slot::rep_type patience = 0;

  /// Payment policy for scarcity (same semantics as the online mechanism).
  OnlineGreedyConfig::ScarcePayment scarce_payment =
      OnlineGreedyConfig::ScarcePayment::kCapAtValue;
};

/// One slot of the patience allocation.
struct PatienceSlotRecord {
  Slot slot{0};
  /// (task, phone) pairs served this slot, cheapest phone first.
  std::vector<std::pair<TaskId, PhoneId>> served;
  /// Tasks whose deadline passed unserved at the start of this slot.
  std::vector<TaskId> expired;
  /// Live-but-unserved tasks carried to the next slot.
  int pending_after{0};
};

struct PatienceRun {
  Allocation allocation;  ///< with explicit service slots
  std::vector<PatienceSlotRecord> slots;
};

/// Runs the EDF/cheapest-first allocation, optionally excluding one phone
/// (the payment counterfactual) and stopping after `last_slot` (0 = all).
[[nodiscard]] PatienceRun run_patience_allocation(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const PatienceConfig& config, std::optional<PhoneId> exclude = std::nullopt,
    Slot::rep_type last_slot = 0);

class PatienceGreedyMechanism final : public Mechanism {
 public:
  explicit PatienceGreedyMechanism(PatienceConfig config) : config_(config) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override;

 private:
  PatienceConfig config_;
};

/// The offline optimum under patience: maximum-weight matching where a
/// task-phone edge exists when the phone's window intersects the task's
/// service window [arrival, arrival + P]. The paper's offline graph is the
/// P = 0 case. (One phone still serves at most one task, and tasks in the
/// same slot need distinct phones only -- the paper's model imposes no
/// per-slot capacity -- so matching remains the exact formulation.)
[[nodiscard]] Money optimal_patience_welfare(const model::Scenario& scenario,
                                             const model::BidProfile& bids,
                                             Slot::rep_type patience);

}  // namespace mcs::auction
