#include "auction/batched_matching.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "matching/hungarian.hpp"

namespace mcs::auction {

BatchedMatchingMechanism::BatchedMatchingMechanism(
    BatchedMatchingConfig config)
    : config_(config) {
  MCS_EXPECTS(config.batch_size >= 1, "batch size must be >= 1");
}

std::string BatchedMatchingMechanism::name() const {
  std::ostringstream os;
  os << "batched-matching(w=" << config_.batch_size << ')';
  return os.str();
}

Outcome BatchedMatchingMechanism::run(const model::Scenario& scenario,
                                      const model::BidProfile& bids) const {
  scenario.validate();
  model::validate_bids(scenario, bids);

  Outcome outcome;
  outcome.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  outcome.payments.assign(scenario.phones.size(), Money{});

  std::vector<char> allocated(scenario.phones.size(), 0);
  std::size_t task_cursor = 0;  // tasks are sorted by slot

  for (Slot::rep_type batch_begin = 1; batch_begin <= scenario.num_slots;
       batch_begin += config_.batch_size) {
    const Slot::rep_type batch_end = std::min<Slot::rep_type>(
        batch_begin + config_.batch_size - 1, scenario.num_slots);

    // Tasks buffered in this batch.
    std::vector<TaskId> batch_tasks;
    while (task_cursor < scenario.tasks.size() &&
           scenario.tasks[task_cursor].slot.value() <= batch_end) {
      batch_tasks.push_back(scenario.tasks[task_cursor].id);
      ++task_cursor;
    }
    if (batch_tasks.empty()) continue;

    // Batch graph: buffered tasks x still-unallocated bids, edges where the
    // reported window covers the task's slot (same construction as the
    // offline mechanism, restricted to the batch).
    matching::WeightMatrix graph(static_cast<int>(batch_tasks.size()),
                                 scenario.phone_count());
    for (std::size_t r = 0; r < batch_tasks.size(); ++r) {
      const TaskId task = batch_tasks[r];
      const Slot slot = scenario.tasks[static_cast<std::size_t>(task.value())].slot;
      const Money value = scenario.value_of(task);
      for (int i = 0; i < scenario.phone_count(); ++i) {
        if (allocated[static_cast<std::size_t>(i)]) continue;
        const model::Bid& bid = bids[static_cast<std::size_t>(i)];
        if (bid.window.contains(slot)) {
          graph.set(static_cast<int>(r), i, value - bid.claimed_cost);
        }
      }
    }

    matching::MaxWeightMatcher matcher(graph);
    const matching::Matching& matching = matcher.solve();
    const Money batch_welfare = matcher.total_weight();

    for (std::size_t r = 0; r < batch_tasks.size(); ++r) {
      const auto col = matching.row_to_col[r];
      if (!col) continue;
      outcome.allocation.assign(batch_tasks[r], PhoneId{*col});
    }
    // Batch-local VCG prices (truthful w.r.t. costs within the batch; the
    // header explains why time-truthfulness is still lost).
    for (std::size_t r = 0; r < batch_tasks.size(); ++r) {
      const auto col = matching.row_to_col[r];
      if (!col) continue;
      const Money without = matcher.total_weight_without_column(*col);
      outcome.payments[static_cast<std::size_t>(*col)] =
          batch_welfare + bids[static_cast<std::size_t>(*col)].claimed_cost -
          without;
      allocated[static_cast<std::size_t>(*col)] = 1;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace mcs::auction
