#include "auction/counterfactual.hpp"

#include <algorithm>
#include <set>

#include "auction/critical_value.hpp"
#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace mcs::auction {

namespace {

void count_fork(const char* fork_counter, std::int64_t replayed,
                std::int64_t skipped) {
  obs::MetricsRegistry* const registry = obs::current_registry();
  if (registry == nullptr) return;
  registry->counter(fork_counter).add(1);
  registry->counter("auction.counterfactual.slots_replayed").add(replayed);
  registry->counter("auction.counterfactual.slots_skipped").add(skipped);
}

}  // namespace

CounterfactualEngine::CounterfactualEngine(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           const OnlineGreedyConfig& config)
    : scenario_(scenario), bids_(bids), config_(config) {
  // The internal factual pass exists only to capture checkpoints; its
  // allocation decisions are not decisions of any recorded run.
  const obs::ScopedEventLog suppress_factual(nullptr);
  (void)run_greedy_allocation(scenario_, bids_, config_, std::nullopt, 0,
                              &checkpoints_);
  build_indexes();
}

CounterfactualEngine::CounterfactualEngine(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           const OnlineGreedyConfig& config,
                                           GreedyCheckpoints checkpoints)
    : scenario_(scenario),
      bids_(bids),
      config_(config),
      checkpoints_(std::move(checkpoints)) {
  MCS_EXPECTS(!checkpoints_.slots.empty(),
              "adopted checkpoints must cover at least slot 1");
  build_indexes();
}

void CounterfactualEngine::build_indexes() {
  obs::count("auction.counterfactual.engine_builds");
  tasks_per_slot_ = scenario_.tasks_per_slot();
  // A phone reporting window [a~, d~] is swept out of the pool at the
  // start of slot d~ + 1; index that slot so replays erase only actual
  // departures (same shape as the arrivals index).
  departures_.assign(static_cast<std::size_t>(scenario_.num_slots) + 2, {});
  for (const std::vector<int>& slot_arrivals : checkpoints_.arrivals) {
    for (const int phone : slot_arrivals) {
      const Slot::rep_type departs_after =
          bids_[static_cast<std::size_t>(phone)].window.end().value() + 1;
      departures_[static_cast<std::size_t>(departs_after)].push_back(phone);
    }
  }
}

std::vector<CounterfactualEngine::ReplaySlot>
CounterfactualEngine::replay_without(PhoneId exclude, Slot::rep_type from_slot,
                                     Slot::rep_type last_slot) const {
  const model::Bid& excluded = bids_[static_cast<std::size_t>(exclude.value())];
  const Slot::rep_type fork = excluded.window.begin().value();
  const Slot::rep_type last = std::min(last_slot, horizon());
  std::vector<ReplaySlot> out;
  if (fork > last || from_slot > last) {
    count_fork("auction.counterfactual.payment_forks", 0, 0);
    return out;
  }
  MCS_EXPECTS(from_slot >= fork,
              "replay_without forks at the excluded phone's reported "
              "arrival; from_slot cannot precede it");

  // Slots before `fork` are byte-identical with and without the excluded
  // bid: inherit them from the factual checkpoint instead of replaying.
  const GreedyCheckpoints::SlotStart& start =
      checkpoints_.slots[static_cast<std::size_t>(fork)];
  std::set<PoolBid> pool(start.pool.begin(), start.pool.end());
  std::size_t next_task = start.next_task;
  out.reserve(static_cast<std::size_t>(last - from_slot) + 1);

  std::vector<TaskId> slot_tasks;
  for (Slot::rep_type t = fork; t <= last; ++t) {
    for (const int phone : checkpoints_.arrivals[static_cast<std::size_t>(t)]) {
      if (phone == exclude.value()) continue;
      pool.insert(PoolBid{
          bids_[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
    }
    for (const int phone : departures_[static_cast<std::size_t>(t)]) {
      if (phone == exclude.value()) continue;
      pool.erase(PoolBid{
          bids_[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
    }

    const int r_t = tasks_per_slot_[static_cast<std::size_t>(t)];
    slot_tasks.clear();
    for (int k = 0; k < r_t; ++k) {
      slot_tasks.push_back(
          TaskId{static_cast<int>(next_task + static_cast<std::size_t>(k))});
    }
    next_task += static_cast<std::size_t>(r_t);
    std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                     [&](TaskId a, TaskId b) {
                       return scenario_.value_of(a) > scenario_.value_of(b);
                     });

    ReplaySlot record;
    record.slot = Slot{t};
    for (const TaskId task : slot_tasks) {
      const bool pool_dry = pool.empty();
      if (!pool_dry) {
        const PoolBid chosen = *pool.begin();
        if (!config_.allocate_only_profitable ||
            Money::from_micros(chosen.cost_micros) <=
                scenario_.value_of(task)) {
          pool.erase(pool.begin());
          // Assignments pop the pool in ascending cost order, so the last
          // one is the slot's dearest winner (Algorithm 2 line 6).
          record.dearest_cost = Money::from_micros(chosen.cost_micros);
          record.dearest_phone = PhoneId{chosen.phone};
          continue;
        }
      }
      // Unserved (dry pool, or cheapest bid unprofitable for this task):
      // without the excluded phone this task has no winner, so the
      // excluded phone's threshold for it is the reserve price if set,
      // else the task's value as the documented cap.
      Money cap = scenario_.value_of(task);
      if (config_.reserve_price) {
        cap = config_.allocate_only_profitable
                  ? std::min(*config_.reserve_price, cap)
                  : *config_.reserve_price;
      }
      record.scarce_cap = std::max(record.scarce_cap.value_or(Money{}), cap);
    }
    if (t >= from_slot) out.push_back(record);
  }

  count_fork("auction.counterfactual.payment_forks", last - fork + 1,
             fork - 1);
  return out;
}

bool CounterfactualEngine::wins_with_cost(PhoneId phone, Money cost) const {
  const model::Bid& own = bids_[static_cast<std::size_t>(phone.value())];
  if (config_.reserve_price && cost > *config_.reserve_price) {
    count_fork("auction.counterfactual.probe_forks", 0, 0);
    return false;  // above the platform reserve: never admitted
  }
  const Slot::rep_type fork = own.window.begin().value();
  const Slot::rep_type last = std::min(own.window.end().value(), horizon());
  if (fork > last) {
    count_fork("auction.counterfactual.probe_forks", 0, 0);
    return false;
  }

  const GreedyCheckpoints::SlotStart& start =
      checkpoints_.slots[static_cast<std::size_t>(fork)];
  std::set<PoolBid> pool(start.pool.begin(), start.pool.end());
  std::size_t next_task = start.next_task;
  const PoolBid probe{cost.micros(), phone.value()};

  std::vector<TaskId> slot_tasks;
  for (Slot::rep_type t = fork; t <= last; ++t) {
    for (const int p : checkpoints_.arrivals[static_cast<std::size_t>(t)]) {
      if (p == phone.value()) continue;  // replaced by the probed bid
      pool.insert(
          PoolBid{bids_[static_cast<std::size_t>(p)].claimed_cost.micros(), p});
    }
    if (t == fork) pool.insert(probe);
    for (const int p : departures_[static_cast<std::size_t>(t)]) {
      if (p == phone.value()) continue;
      pool.erase(
          PoolBid{bids_[static_cast<std::size_t>(p)].claimed_cost.micros(), p});
    }

    const int r_t = tasks_per_slot_[static_cast<std::size_t>(t)];
    slot_tasks.clear();
    for (int k = 0; k < r_t; ++k) {
      slot_tasks.push_back(
          TaskId{static_cast<int>(next_task + static_cast<std::size_t>(k))});
    }
    next_task += static_cast<std::size_t>(r_t);
    std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                     [&](TaskId a, TaskId b) {
                       return scenario_.value_of(a) > scenario_.value_of(b);
                     });

    for (const TaskId task : slot_tasks) {
      if (pool.empty()) continue;
      const PoolBid chosen = *pool.begin();
      if (config_.allocate_only_profitable &&
          Money::from_micros(chosen.cost_micros) > scenario_.value_of(task)) {
        continue;  // cheapest bid unprofitable: the phone stays pooled
      }
      pool.erase(pool.begin());
      if (chosen.phone == phone.value()) {
        // Allocated once means allocated for good: exit early.
        count_fork("auction.counterfactual.probe_forks", t - fork + 1,
                   fork - 1);
        return true;
      }
    }
  }
  count_fork("auction.counterfactual.probe_forks", last - fork + 1, fork - 1);
  return false;
}

CounterfactualEngine::CriticalValueProbe CounterfactualEngine::
    critical_value_of(PhoneId phone) const {
  CriticalValueProbe probe;
  {
    // A probe is bookkeeping, not a decision of any recorded run.
    const obs::ScopedEventLog suppress_inner(nullptr);
    probe.winnable = wins_with_cost(phone, Money{});
  }
  if (!probe.winnable) return probe;
  probe.critical = greedy_critical_value(*this, phone);
  return probe;
}

}  // namespace mcs::auction
