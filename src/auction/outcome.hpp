// Auction outcomes: allocation + payments.
//
// An Allocation maps tasks to winning smartphones (the paper's allocation
// rule pi); an Outcome adds the payment vector p. Welfare and utilities are
// *derived* quantities with two flavors the library keeps rigorously apart:
//
//  * true welfare / utility: evaluated against the Scenario's private costs
//    (what Definitions 1-3 mean) -- used by all audits and metrics;
//  * claimed welfare: evaluated against the submitted bids -- what the
//    winning-bids determination algorithms actually optimize (Section IV-C
//    remarks on exactly this distinction).
#pragma once

#include <optional>
#include <vector>

#include "common/money.hpp"
#include "common/types.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

/// The allocation rule's output: which phone serves each task.
class Allocation {
 public:
  Allocation() = default;

  /// Creates an empty allocation for the given scenario shape.
  Allocation(int task_count, int phone_count);

  /// Records that `task` is served by `phone`; each side may be assigned at
  /// most once (constraint (5) of the winning-bids determination problem).
  /// The task is served in its arrival slot (the paper's model).
  void assign(TaskId task, PhoneId phone);

  /// Same, but served in `service_slot` (task-patience extension: a task
  /// may be served after its arrival). service_slot must not precede the
  /// task's arrival; validate() checks it against the scenario.
  void assign(TaskId task, PhoneId phone, Slot service_slot);

  /// Slot the task is served in: the recorded service slot, or the task's
  /// arrival slot when none was recorded. Requires the task to be
  /// allocated.
  [[nodiscard]] Slot service_slot_for(TaskId task,
                                      const model::Scenario& scenario) const;

  [[nodiscard]] std::optional<PhoneId> phone_for(TaskId task) const;
  [[nodiscard]] std::optional<TaskId> task_for(PhoneId phone) const;
  [[nodiscard]] bool is_winner(PhoneId phone) const;

  [[nodiscard]] int task_count() const {
    return static_cast<int>(task_to_phone_.size());
  }
  [[nodiscard]] int phone_count() const {
    return static_cast<int>(phone_to_task_.size());
  }

  /// Number of allocated tasks.
  [[nodiscard]] int allocated_count() const;

  /// All winners in PhoneId order.
  [[nodiscard]] std::vector<PhoneId> winners() const;

  /// Checks structural validity against a scenario and bid profile: every
  /// assignment within the reported window of the phone (constraint (6)).
  /// Throws ContractViolation on failure.
  void validate(const model::Scenario& scenario,
                const model::BidProfile& bids) const;

 private:
  std::vector<std::optional<PhoneId>> task_to_phone_;
  std::vector<std::optional<TaskId>> phone_to_task_;
  /// Parallel to task_to_phone_: explicit service slots (patience
  /// extension); nullopt = served in the arrival slot.
  std::vector<std::optional<Slot>> task_service_slot_;
};

/// Allocation plus the payment rule's output.
struct Outcome {
  Allocation allocation;
  std::vector<Money> payments;  ///< per phone; losers must be paid 0

  /// Sum of nu - c_i over allocated tasks (Definition 3, true costs).
  [[nodiscard]] Money social_welfare(const model::Scenario& scenario) const;

  /// Sum of nu - b_i over allocated tasks (what the solvers maximize).
  [[nodiscard]] Money claimed_welfare(const model::Scenario& scenario,
                                      const model::BidProfile& bids) const;

  /// Total money paid out by the platform.
  [[nodiscard]] Money total_payment() const;

  /// Sum of true costs of the winners (the overpayment-ratio denominator).
  [[nodiscard]] Money total_true_cost(const model::Scenario& scenario) const;

  /// Utility of one phone: payment minus true cost if it serves a task,
  /// otherwise just its payment (which a sane mechanism keeps at 0).
  [[nodiscard]] Money utility(const model::Scenario& scenario,
                              PhoneId phone) const;

  /// Structural checks: payment vector sized to phones, losers paid 0,
  /// allocation valid. Throws ContractViolation on failure.
  void validate(const model::Scenario& scenario,
                const model::BidProfile& bids) const;
};

}  // namespace mcs::auction
