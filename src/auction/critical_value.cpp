#include "auction/critical_value.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace mcs::auction {

std::optional<Money> bisect_critical_value(const WinsWithCost& wins,
                                           Money upper_bound,
                                           std::int64_t tolerance_micros) {
  MCS_EXPECTS(tolerance_micros >= 1, "tolerance must be >= 1 micro");
  MCS_EXPECTS(!upper_bound.is_negative(), "upper_bound must be >= 0");
  obs::count("auction.critical_value.searches");
  std::int64_t probes = 1;  // the wins(0) precondition probe below
  MCS_EXPECTS(wins(Money{}), "bisect_critical_value requires wins(0)");

  ++probes;
  if (wins(upper_bound)) {
    obs::count("auction.critical_value.probes", probes);
    return std::nullopt;  // unbounded in probed range
  }

  // Invariant: wins at `lo`, loses at `hi`.
  std::int64_t lo = 0;
  std::int64_t hi = upper_bound.micros();
  while (hi - lo > tolerance_micros) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    ++probes;
    if (wins(Money::from_micros(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  obs::count("auction.critical_value.probes", probes);
  // `lo` is the largest probed winning cost; with tolerance 1 micro the
  // true threshold lies in (lo, lo + 1 micro], and for mechanisms whose
  // thresholds are exact bid values (the greedy rule) `hi` equals it.
  return Money::from_micros(hi);
}

std::optional<Money> greedy_critical_value(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           PhoneId phone,
                                           const OnlineGreedyConfig& config) {
  Money max_cost;
  for (const model::Bid& bid : bids) {
    max_cost = std::max(max_cost, bid.claimed_cost);
  }
  Money max_value = scenario.task_value;
  for (const model::Task& task : scenario.tasks) {
    max_value = std::max(max_value, scenario.value_of(task.id));
  }
  const Money upper_bound = max_value + max_cost + Money::from_units(1);

  const model::Bid& own = bids[static_cast<std::size_t>(phone.value())];
  const WinsWithCost wins = [&](Money cost) {
    const model::BidProfile probe = model::with_bid(
        bids, phone, model::Bid{own.window, cost});
    const GreedyRun run = run_greedy_allocation(scenario, probe, config);
    return run.allocation.is_winner(phone);
  };
  return bisect_critical_value(wins, upper_bound);
}

}  // namespace mcs::auction
