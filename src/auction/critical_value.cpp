#include "auction/critical_value.hpp"

#include <algorithm>
#include <cstdlib>

#include "auction/counterfactual.hpp"
#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace mcs::auction {

namespace {

/// One "critical_probe" record: the probed bid, whether the bidder still
/// won, and the bracket [lo, hi] *after* folding the probe in.
void log_probe(std::int32_t phone, Money probe, bool won, std::int64_t lo,
               std::int64_t hi) {
  obs::log_event([&] {
    obs::Event event("critical_probe");
    event.phone = phone;
    event.with("probe", probe)
        .with("won", won)
        .with("lo", Money::from_micros(lo))
        .with("hi", Money::from_micros(hi));
    return event;
  });
}

}  // namespace

std::optional<Money> bisect_critical_value(const WinsWithCost& wins,
                                           Money upper_bound,
                                           std::int64_t tolerance_micros,
                                           std::int32_t log_phone) {
  MCS_EXPECTS(tolerance_micros >= 1, "tolerance must be >= 1 micro");
  MCS_EXPECTS(!upper_bound.is_negative(), "upper_bound must be >= 0");
  obs::count("auction.critical_value.searches");
  std::int64_t probes = 1;  // the wins(0) precondition probe below
  MCS_EXPECTS(wins(Money{}), "bisect_critical_value requires wins(0)");
  log_probe(log_phone, Money{}, true, 0, upper_bound.micros());

  ++probes;
  if (wins(upper_bound)) {
    obs::count("auction.critical_value.probes", probes);
    log_probe(log_phone, upper_bound, true, upper_bound.micros(),
              upper_bound.micros());
    obs::log_event([&] {
      obs::Event event("critical_found");
      event.phone = log_phone;
      event.with("unbounded", true)
          .with("upper_bound", upper_bound)
          .with("probes", probes);
      return event;
    });
    return std::nullopt;  // unbounded in probed range
  }

  // Invariant: wins at `lo`, loses at `hi`.
  std::int64_t lo = 0;
  std::int64_t hi = upper_bound.micros();
  log_probe(log_phone, upper_bound, false, lo, hi);
  while (hi - lo > tolerance_micros) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    ++probes;
    const bool won = wins(Money::from_micros(mid));
    if (won) {
      lo = mid;
    } else {
      hi = mid;
    }
    log_probe(log_phone, Money::from_micros(mid), won, lo, hi);
  }
  obs::count("auction.critical_value.probes", probes);
  // `lo` is the largest probed winning cost; with tolerance 1 micro the
  // true threshold lies in (lo, lo + 1 micro], and for mechanisms whose
  // thresholds are exact bid values (the greedy rule) `hi` equals it.
  // `critical_bid` reports `hi` -- the value this function returns and the
  // payment path charges -- so explains never drift from the money moved;
  // the [lo, hi] bracket fields keep the search window inspectable.
  obs::log_event([&] {
    obs::Event event("critical_found");
    event.phone = log_phone;
    event.with("critical_bid", Money::from_micros(hi))
        .with("lo", Money::from_micros(lo))
        .with("hi", Money::from_micros(hi))
        .with("probes", probes);
    return event;
  });
  return Money::from_micros(hi);
}

namespace {

/// Probe range: the highest task value plus the highest claimed cost
/// exceeds any bounded critical value of the greedy rule. Saturating:
/// scenario files loaded through scenario_io may carry a task value near
/// the int64 micro limit, where the naive sum is signed-overflow UB; the
/// clamped Money::max() still dominates every bounded threshold (rival
/// bids are validated strictly below it).
Money probe_upper_bound(const model::Scenario& scenario,
                        const model::BidProfile& bids) {
  Money max_cost;
  for (const model::Bid& bid : bids) {
    max_cost = std::max(max_cost, bid.claimed_cost);
  }
  Money max_value = scenario.task_value;
  for (const model::Task& task : scenario.tasks) {
    max_value = std::max(max_value, scenario.value_of(task.id));
  }
  return Money::saturating_add(Money::saturating_add(max_value, max_cost),
                               Money::from_units(1));
}

}  // namespace

std::optional<Money> greedy_critical_value(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           PhoneId phone,
                                           const OnlineGreedyConfig& config) {
  const CounterfactualEngine engine(scenario, bids, config);
  return greedy_critical_value(engine, phone);
}

std::optional<Money> greedy_critical_value(const CounterfactualEngine& engine,
                                           PhoneId phone) {
  const Money upper_bound = probe_upper_bound(engine.scenario(), engine.bids());
  const WinsWithCost wins = [&](Money cost) {
    // The probe allocation is bookkeeping of the search, not a decision of
    // the recorded run: keep its events out of the primary trail. (The
    // engine emits none itself; the suppression guards future additions.)
    const obs::ScopedEventLog suppress_inner(nullptr);
    return engine.wins_with_cost(phone, cost);
  };
  return bisect_critical_value(wins, upper_bound, 1, phone.value());
}

PaymentAudit audit_winner_payment(const CounterfactualEngine& engine,
                                  PhoneId phone, Money paid) {
  PaymentAudit audit;
  const auto index = static_cast<std::size_t>(phone.value());
  MCS_EXPECTS(index < engine.bids().size(),
              "audit_winner_payment: phone outside the bid profile");
  const Money claimed = engine.bids()[index].claimed_cost;
  {
    const obs::ScopedEventLog suppress_inner(nullptr);
    if (!engine.wins_with_cost(phone, claimed)) {
      audit.verdict = PaymentAuditVerdict::kLosesAtClaim;
      return audit;
    }
  }
  // Winning at `claimed` >= 0 plus monotonicity gives wins(0), so the
  // bisection's precondition holds.
  const std::optional<Money> critical = greedy_critical_value(engine, phone);
  if (!critical) {
    audit.verdict = PaymentAuditVerdict::kUnboundedSkipped;
    return audit;
  }
  audit.critical = critical;
  // The bisection reports the first *losing* micro; at a cost tie the
  // winner still wins at exactly the runner-up's bid, so payment and
  // bisected threshold legitimately differ by one micro (the same
  // tolerance payment_equivalence_test pins for Theorem 4).
  const std::int64_t gap = std::abs(critical->micros() - paid.micros());
  audit.verdict = gap <= 1 ? PaymentAuditVerdict::kOk
                           : PaymentAuditVerdict::kPaymentNotCritical;
  return audit;
}

}  // namespace mcs::auction
