#include "auction/critical_value.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace mcs::auction {

namespace {

/// One "critical_probe" record: the probed bid, whether the bidder still
/// won, and the bracket [lo, hi] *after* folding the probe in.
void log_probe(std::int32_t phone, Money probe, bool won, std::int64_t lo,
               std::int64_t hi) {
  obs::log_event([&] {
    obs::Event event("critical_probe");
    event.phone = phone;
    event.with("probe", probe)
        .with("won", won)
        .with("lo", Money::from_micros(lo))
        .with("hi", Money::from_micros(hi));
    return event;
  });
}

}  // namespace

std::optional<Money> bisect_critical_value(const WinsWithCost& wins,
                                           Money upper_bound,
                                           std::int64_t tolerance_micros,
                                           std::int32_t log_phone) {
  MCS_EXPECTS(tolerance_micros >= 1, "tolerance must be >= 1 micro");
  MCS_EXPECTS(!upper_bound.is_negative(), "upper_bound must be >= 0");
  obs::count("auction.critical_value.searches");
  std::int64_t probes = 1;  // the wins(0) precondition probe below
  MCS_EXPECTS(wins(Money{}), "bisect_critical_value requires wins(0)");
  log_probe(log_phone, Money{}, true, 0, upper_bound.micros());

  ++probes;
  if (wins(upper_bound)) {
    obs::count("auction.critical_value.probes", probes);
    log_probe(log_phone, upper_bound, true, upper_bound.micros(),
              upper_bound.micros());
    obs::log_event([&] {
      obs::Event event("critical_found");
      event.phone = log_phone;
      event.with("unbounded", true)
          .with("upper_bound", upper_bound)
          .with("probes", probes);
      return event;
    });
    return std::nullopt;  // unbounded in probed range
  }

  // Invariant: wins at `lo`, loses at `hi`.
  std::int64_t lo = 0;
  std::int64_t hi = upper_bound.micros();
  log_probe(log_phone, upper_bound, false, lo, hi);
  while (hi - lo > tolerance_micros) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    ++probes;
    const bool won = wins(Money::from_micros(mid));
    if (won) {
      lo = mid;
    } else {
      hi = mid;
    }
    log_probe(log_phone, Money::from_micros(mid), won, lo, hi);
  }
  obs::count("auction.critical_value.probes", probes);
  // `lo` is the largest probed winning cost; with tolerance 1 micro the
  // true threshold lies in (lo, lo + 1 micro], and for mechanisms whose
  // thresholds are exact bid values (the greedy rule) `hi` equals it.
  obs::log_event([&] {
    obs::Event event("critical_found");
    event.phone = log_phone;
    event.with("critical_bid", Money::from_micros(lo))
        .with("lo", Money::from_micros(lo))
        .with("hi", Money::from_micros(hi))
        .with("probes", probes);
    return event;
  });
  return Money::from_micros(hi);
}

std::optional<Money> greedy_critical_value(const model::Scenario& scenario,
                                           const model::BidProfile& bids,
                                           PhoneId phone,
                                           const OnlineGreedyConfig& config) {
  Money max_cost;
  for (const model::Bid& bid : bids) {
    max_cost = std::max(max_cost, bid.claimed_cost);
  }
  Money max_value = scenario.task_value;
  for (const model::Task& task : scenario.tasks) {
    max_value = std::max(max_value, scenario.value_of(task.id));
  }
  const Money upper_bound = max_value + max_cost + Money::from_units(1);

  const model::Bid& own = bids[static_cast<std::size_t>(phone.value())];
  const WinsWithCost wins = [&](Money cost) {
    // The probe allocation is bookkeeping of the search, not a decision of
    // the recorded run: keep its events out of the primary trail.
    const obs::ScopedEventLog suppress_inner(nullptr);
    const model::BidProfile probe = model::with_bid(
        bids, phone, model::Bid{own.window, cost});
    const GreedyRun run = run_greedy_allocation(scenario, probe, config);
    return run.allocation.is_winner(phone);
  };
  return bisect_critical_value(wins, upper_bound, 1, phone.value());
}

}  // namespace mcs::auction
