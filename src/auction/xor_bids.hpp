// XOR multi-window bids -- relaxing the paper's single-bid restriction.
//
// Section III-B fixes "each smartphone submits at most one bid", so a
// commuter who is free 8-9am *and* 6-8pm must pick one window to offer.
// This extension lets a phone submit several (window, cost) options with
// at most one exercised (XOR semantics) -- different windows may carry
// different costs (sensing while charging at home is cheaper than on the
// move).
//
// Offline, the problem collapses back to a matching: a phone serving task
// tau would always exercise its cheapest option covering tau's slot, so
// the task x phone graph simply takes, per pair, the best option's weight.
// The optimal allocation and VCG payments then reuse the Section IV
// machinery unchanged -- which is itself the interesting finding: the
// offline mechanism extends to XOR bids for free, while the online
// mechanism's pool ordering has no obvious single-key analog (an open
// design question we document rather than hand-wave).
#pragma once

#include <optional>
#include <vector>

#include "auction/outcome.hpp"
#include "matching/bipartite_graph.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

/// One alternative offer: "I can serve one task within `window` at `cost`".
struct BidOption {
  SlotInterval window;
  Money cost;

  friend bool operator==(const BidOption&, const BidOption&) = default;
};

/// A phone's XOR bid: any number of options, at most one exercised.
/// An empty vector means the phone abstains from the round.
using XorBid = std::vector<BidOption>;

/// One XOR bid per phone; index is the PhoneId value.
using XorBidProfile = std::vector<XorBid>;

struct XorAssignment {
  PhoneId phone{-1};
  int option{-1};  ///< index into the phone's XorBid
};

struct XorOutcome {
  /// Per task: the exercised (phone, option), or nullopt when unserved.
  std::vector<std::optional<XorAssignment>> assignments;
  std::vector<Money> payments;  ///< per phone; losers 0

  [[nodiscard]] int allocated_count() const;
  [[nodiscard]] bool is_winner(PhoneId phone) const;

  /// Claimed welfare: sum of value - exercised option cost.
  [[nodiscard]] Money claimed_welfare(const model::Scenario& scenario,
                                      const XorBidProfile& profile) const;

  /// Utility when the profile's costs are truthful: payment minus the
  /// exercised option's cost (losers: payment, which must be 0).
  [[nodiscard]] Money utility(const XorBidProfile& profile,
                              PhoneId phone) const;

  /// Structural checks (option indices valid, windows cover the tasks,
  /// each phone exercised at most once, losers unpaid).
  void validate(const model::Scenario& scenario,
                const XorBidProfile& profile) const;
};

/// The derived task x phone graph: per pair, the cheapest covering
/// option's weight (exposed for tests).
[[nodiscard]] matching::WeightMatrix build_xor_graph(
    const model::Scenario& scenario, const XorBidProfile& profile);

/// Optimal claimed welfare under XOR bids.
[[nodiscard]] Money optimal_xor_welfare(const model::Scenario& scenario,
                                        const XorBidProfile& profile);

/// Optimal allocation + phone-level VCG payments. A winner exercising
/// option o is paid cost_o plus its marginal contribution; reporting true
/// option costs and the full true option set is optimal (VCG: hiding an
/// option or inflating a cost can only shrink omega*(B) while leaving
/// omega*(B_{-i}) fixed) -- spot-checked in the tests.
[[nodiscard]] XorOutcome run_xor_vcg(const model::Scenario& scenario,
                                     const XorBidProfile& profile);

/// Embeds single-window bids as XOR bids (one option each); the outcome
/// then coincides with OfflineVcgMechanism (tested).
[[nodiscard]] XorBidProfile as_xor_profile(const model::BidProfile& bids);

}  // namespace mcs::auction
