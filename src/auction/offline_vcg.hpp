// The offline optimal truthful mechanism (paper Section IV).
//
// Winning-bids determination: build the task x phone bipartite graph of
// Fig. 3 (edge weight nu - b_i when phone i's reported window covers the
// task's slot) and take a maximum-weight matching -- optimal social welfare
// in O((n + gamma)^3) (Theorem 3). Payments are VCG (Eq. 7):
//
//    p_i = omega*(B) + b_i - omega*(B_{-i})   for winners,   0 for losers,
//
// where omega* is the optimal *claimed* welfare. With the optimal
// allocation this is truthful in all three dimensions (Theorem 1) and
// individually rational (Theorem 2).
//
// omega*(B_{-i}) is obtained from the matcher's incremental column-removal
// query (one augmenting path per winner) instead of a full re-solve; set
// OfflineVcgConfig::naive_marginals to force full re-solves (used by tests
// to cross-validate the incremental path and by the ablation bench to
// measure the speedup).
#pragma once

#include "auction/mechanism.hpp"
#include "matching/bipartite_graph.hpp"

namespace mcs::auction {

struct OfflineVcgConfig {
  /// Recompute each omega*(B_{-i}) with a fresh full solve instead of the
  /// incremental dual query. Same results, cubically slower.
  bool naive_marginals = false;
};

class OfflineVcgMechanism final : public Mechanism {
 public:
  OfflineVcgMechanism() = default;
  explicit OfflineVcgMechanism(OfflineVcgConfig config) : config_(config) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override { return "offline-vcg"; }

  /// The Section IV-B graph construction, exposed for tests (the Fig. 3
  /// example asserts the exact edge set): rows are tasks in scenario order,
  /// columns are phones, edge weight nu - b_i iff the reported window of
  /// phone i contains the task's slot.
  [[nodiscard]] static matching::WeightMatrix build_graph(
      const model::Scenario& scenario, const model::BidProfile& bids);

  /// Optimal claimed welfare omega*(B) of the instance -- the offline
  /// benchmark value used by the competitive-ratio analysis (Theorem 6).
  [[nodiscard]] static Money optimal_claimed_welfare(
      const model::Scenario& scenario, const model::BidProfile& bids);

 private:
  OfflineVcgConfig config_;
};

}  // namespace mcs::auction
