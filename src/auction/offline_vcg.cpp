#include "auction/offline_vcg.hpp"

#include <optional>
#include <string>

#include "common/assert.hpp"
#include "matching/hungarian.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"

namespace mcs::auction {

matching::WeightMatrix OfflineVcgMechanism::build_graph(
    const model::Scenario& scenario, const model::BidProfile& bids) {
  model::validate_bids(scenario, bids);
  matching::WeightMatrix graph(scenario.task_count(), scenario.phone_count());
  for (int t = 0; t < scenario.task_count(); ++t) {
    const Slot slot = scenario.tasks[static_cast<std::size_t>(t)].slot;
    const Money value = scenario.value_of(TaskId{t});
    for (int i = 0; i < scenario.phone_count(); ++i) {
      const model::Bid& bid = bids[static_cast<std::size_t>(i)];
      if (bid.window.contains(slot)) {
        graph.set(t, i, value - bid.claimed_cost);
      }
    }
  }
  return graph;
}

Money OfflineVcgMechanism::optimal_claimed_welfare(
    const model::Scenario& scenario, const model::BidProfile& bids) {
  matching::MaxWeightMatcher matcher(build_graph(scenario, bids));
  return matcher.total_weight();
}

Outcome OfflineVcgMechanism::run(const model::Scenario& scenario,
                                 const model::BidProfile& bids) const {
  const obs::TraceSpan span("offline_vcg.run");
  scenario.validate();

  Outcome outcome;
  outcome.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  outcome.payments.assign(scenario.phones.size(), Money{});

  const matching::WeightMatrix graph = build_graph(scenario, bids);
  matching::MaxWeightMatcher matcher(graph);
  Money welfare_all;  // omega*(B)
  {
    const obs::TraceSpan matching_span("offline_vcg.matching");
    const matching::Matching& matching = matcher.solve();
    welfare_all = matcher.total_weight();
    for (int t = 0; t < scenario.task_count(); ++t) {
      if (const auto col = matching.row_to_col[static_cast<std::size_t>(t)]) {
        outcome.allocation.assign(TaskId{t}, PhoneId{*col});
        obs::log_event([&] {
          obs::Event event("winner_selected");
          event.task = t;
          event.phone = *col;
          event.slot = scenario.tasks[static_cast<std::size_t>(t)].slot.value();
          event.with("weight", *graph.get(t, *col));
          // Runner-up: the best feasible weight this task could have had
          // from any other phone (ignores matching constraints elsewhere).
          std::optional<Money> runner_up;
          std::int32_t runner_up_phone = -1;
          for (int j = 0; j < scenario.phone_count(); ++j) {
            if (j == *col) continue;
            if (const auto w = graph.get(t, j);
                w && (!runner_up || *w > *runner_up)) {
              runner_up = *w;
              runner_up_phone = j;
            }
          }
          if (runner_up) {
            event.with("runner_up_weight", *runner_up)
                .with("runner_up_phone",
                      static_cast<std::int64_t>(runner_up_phone));
          }
          return event;
        });
      } else {
        obs::log_event([&] {
          obs::Event event("task_unserved");
          event.task = t;
          event.slot = scenario.tasks[static_cast<std::size_t>(t)].slot.value();
          event.with("reason", std::string("no_positive_weight_match"));
          return event;
        });
      }
    }
  }

  const obs::TraceSpan payment_span("offline_vcg.payments");
  for (const PhoneId winner : outcome.allocation.winners()) {
    const int col = winner.value();
    const Money welfare_without =  // omega*(B_{-i})
        config_.naive_marginals
            ? [&] {
                matching::MaxWeightMatcher reduced(graph.without_column(col));
                return reduced.total_weight();
              }()
            : matcher.total_weight_without_column(col);
    // Eq. (7): p_i = (omega*(B) - (-b_i)) - omega*(B_{-i}).
    const Money payment =
        welfare_all +
        bids[static_cast<std::size_t>(col)].claimed_cost - welfare_without;
    // omega*(B) >= omega*(B_{-i}) (a feasible solution without i is feasible
    // with i), so payments never fall below the claimed cost.
    MCS_ENSURES(payment >= bids[static_cast<std::size_t>(col)].claimed_cost,
                "VCG payment below claimed cost");
    outcome.payments[static_cast<std::size_t>(col)] = payment;
    obs::log_event([&] {
      obs::Event event("payment_derivation");
      event.phone = col;
      event.with("rule", std::string("vcg.marginal"))
          .with("payment", payment)
          .with("own_bid", bids[static_cast<std::size_t>(col)].claimed_cost)
          .with("welfare_all", welfare_all)
          .with("welfare_without", welfare_without);
      return event;
    });
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace mcs::auction
