#include "auction/naive_baselines.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace mcs::auction {

namespace {

/// Shared slot-by-slot skeleton: `pick` selects one pool index per task.
template <typename PickFn>
Outcome run_slotwise(const model::Scenario& scenario,
                     const model::BidProfile& bids, PickFn&& pick) {
  scenario.validate();
  model::validate_bids(scenario, bids);

  Outcome outcome;
  outcome.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  outcome.payments.assign(scenario.phones.size(), Money{});

  std::vector<char> allocated(scenario.phones.size(), 0);
  const std::vector<int> tasks_per_slot = scenario.tasks_per_slot();
  std::size_t next_task = 0;

  for (Slot::rep_type t = 1; t <= scenario.num_slots; ++t) {
    std::vector<int> pool;
    for (int i = 0; i < scenario.phone_count(); ++i) {
      if (!allocated[static_cast<std::size_t>(i)] &&
          bids[static_cast<std::size_t>(i)].window.contains(Slot{t})) {
        pool.push_back(i);
      }
    }
    const int r_t = tasks_per_slot[static_cast<std::size_t>(t)];
    for (int k = 0; k < r_t; ++k) {
      const TaskId task{static_cast<int>(next_task)};
      ++next_task;
      if (pool.empty()) continue;
      const std::size_t choice = pick(pool);
      MCS_ASSERT(choice < pool.size(), "pick out of range");
      const int phone = pool[choice];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(choice));
      allocated[static_cast<std::size_t>(phone)] = 1;
      outcome.allocation.assign(task, PhoneId{phone});
      // First-price payment: the claimed cost.
      outcome.payments[static_cast<std::size_t>(phone)] =
          bids[static_cast<std::size_t>(phone)].claimed_cost;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace

Outcome RandomAllocationMechanism::run(const model::Scenario& scenario,
                                       const model::BidProfile& bids) const {
  Rng rng(seed_);
  return run_slotwise(scenario, bids, [&rng](const std::vector<int>& pool) {
    return static_cast<std::size_t>(rng.next_below(pool.size()));
  });
}

Outcome FifoAllocationMechanism::run(const model::Scenario& scenario,
                                     const model::BidProfile& bids) const {
  return run_slotwise(scenario, bids, [&](const std::vector<int>& pool) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < pool.size(); ++k) {
      const Slot a = bids[static_cast<std::size_t>(pool[k])].window.begin();
      const Slot b = bids[static_cast<std::size_t>(pool[best])].window.begin();
      if (a < b || (a == b && pool[k] < pool[best])) best = k;
    }
    return best;
  });
}

}  // namespace mcs::auction
