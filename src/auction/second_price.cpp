#include "auction/second_price.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcs::auction {

Outcome SecondPriceBaseline::run(const model::Scenario& scenario,
                                 const model::BidProfile& bids) const {
  scenario.validate();
  GreedyRun greedy =
      run_greedy_allocation(scenario, bids, config_.allocation);

  Outcome outcome;
  outcome.allocation = std::move(greedy.allocation);
  outcome.payments.assign(scenario.phones.size(), Money{});

  for (const GreedySlotRecord& record : greedy.slots) {
    if (record.winners.empty()) continue;
    // The pool is recorded sorted by (cost, id); winners are its first
    // entries, so the best losing bid is the entry right after them.
    const std::size_t runner_up_index = record.winners.size();
    std::optional<Money> runner_up_cost;
    if (runner_up_index < record.pool.size()) {
      const PhoneId runner_up = record.pool[runner_up_index];
      runner_up_cost =
          bids[static_cast<std::size_t>(runner_up.value())].claimed_cost;
    }
    for (const PhoneId winner : record.winners) {
      const Money own =
          bids[static_cast<std::size_t>(winner.value())].claimed_cost;
      Money payment;
      if (runner_up_cost) {
        // Uniform price: every winner of the slot gets the best losing bid
        // (>= its own bid by the greedy order).
        payment = *runner_up_cost;
        MCS_ASSERT(payment >= own, "runner-up bid below a winner's bid");
      } else if (config_.no_runner_up ==
                 SecondPriceConfig::NoRunnerUp::kTaskValue) {
        payment = std::max(scenario.task_value, own);
      } else {
        payment = own;
      }
      outcome.payments[static_cast<std::size_t>(winner.value())] = payment;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace mcs::auction
