// The mechanism interface: allocation rule + payment rule as one unit.
//
// Definition 8 splits a mechanism into the winning-bids determination rule
// pi and the payment rule p; implementations bundle both behind run(),
// which consumes the scenario (public task arrivals, private profiles used
// only for validation) and the submitted bid profile, and returns the full
// outcome. Every implementation validates its own outcome before returning
// (losers paid zero, allocations inside reported windows).
#pragma once

#include <memory>
#include <string>

#include "auction/outcome.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Runs allocation + payments on the submitted bids. Implementations must
  /// be deterministic functions of (scenario, bids) unless documented
  /// otherwise (the random baseline takes an explicit seed).
  [[nodiscard]] virtual Outcome run(const model::Scenario& scenario,
                                    const model::BidProfile& bids) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience: run on the truthful bid profile.
  [[nodiscard]] Outcome run_truthful(const model::Scenario& scenario) const;
};

}  // namespace mcs::auction
